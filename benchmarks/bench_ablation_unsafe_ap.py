"""§7 'Unsafe Baseline + Address Prediction'.

The paper reports a geomean improvement of only ~0.5% when enabling
address prediction on the *unsafe* baseline — AP's value lies in
recovering security-constrained MLP, not in accelerating a conventional
out-of-order core.
"""

import pytest

from repro.harness.experiments import unsafe_ap_delta

from conftest import write_output


@pytest.fixture(scope="module")
def delta(session, benchmarks):
    return unsafe_ap_delta(session, benchmarks=benchmarks)


def test_bench_regenerate_unsafe_ap(benchmark, session, benchmarks):
    result = benchmark.pedantic(
        lambda: unsafe_ap_delta(session, benchmarks=benchmarks),
        rounds=1,
        iterations=1,
    )
    write_output("unsafe_ap_delta", result.format_table())


class TestUnsafeAPShape:
    def test_gain_is_modest(self, delta):
        """The geomean gain on the baseline must be small — far below the
        4.6-5.5pp the secure schemes gain."""
        assert -0.02 < delta.gmean_gain < 0.10

    def test_no_benchmark_catastrophically_hurt(self, delta):
        for name, value in delta.per_benchmark.items():
            assert value > 0.9, f"AP crippled the baseline on {name}"
