"""Ablations around the §5.1 predictor design choices.

The paper deliberately ships the simplest predictor to establish a floor
and calls better predictors future work; these sweeps chart the nearby
design space: confidence threshold, table size, spare-port bandwidth,
commit-only vs (insecure) execute-time training, and the per-instance
aging interpretation of "predict the current instance".
"""

import pytest

from repro.harness.ablations import (
    compare_training_policy,
    format_sweep,
    sweep_confidence_threshold,
    sweep_load_ports,
    sweep_predictor_entries,
)

from conftest import MEASURE, WARMUP, write_output

BENCH = "libquantum"   # the paper's AP standout (training/ports sweeps)
MIXED = "bzip2"        # partially-regular gather: threshold/size headroom


def test_bench_confidence_threshold(benchmark):
    results = benchmark.pedantic(
        lambda: sweep_confidence_threshold(
            MIXED, thresholds=(0, 1, 2, 4), warmup=WARMUP, measure=MEASURE
        ),
        rounds=1,
        iterations=1,
    )
    write_output(
        "ablation_confidence_threshold", format_sweep(results, "threshold")
    )
    # A very high threshold must reduce coverage relative to the default.
    assert results[4].stats.coverage <= results[0].stats.coverage + 1e-9


def test_bench_predictor_entries(benchmark):
    results = benchmark.pedantic(
        lambda: sweep_predictor_entries(
            MIXED, entries=(64, 1024), warmup=WARMUP, measure=MEASURE
        ),
        rounds=1,
        iterations=1,
    )
    write_output("ablation_predictor_entries", format_sweep(results, "entries"))
    # The kernel has few static loads: even 64 entries suffice — matching
    # §5.1's point that the structure is cheap.
    assert results[64].stats.coverage > 0.5


def test_bench_load_ports(benchmark):
    results = benchmark.pedantic(
        lambda: sweep_load_ports(
            BENCH, ports=(1, 3), warmup=WARMUP, measure=MEASURE
        ),
        rounds=1,
        iterations=1,
    )
    write_output("ablation_load_ports", format_sweep(results, "ports"))
    # Doppelgangers use spare ports: a port-starved core issues fewer.
    assert results[1].stats.dl_issued <= results[3].stats.dl_issued


def test_bench_training_policy(benchmark):
    results = benchmark.pedantic(
        lambda: compare_training_policy(BENCH, warmup=WARMUP, measure=MEASURE),
        rounds=1,
        iterations=1,
    )
    commit = results["commit"].stats
    execute = results["execute"].stats
    lines = [
        f"{'policy':<12}{'IPC':>8}{'coverage':>10}{'accuracy':>10}",
        "-" * 40,
        f"{'commit':<12}{commit.ipc:>8.3f}{commit.coverage:>9.1%}{commit.accuracy:>9.1%}",
        f"{'execute*':<12}{execute.ipc:>8.3f}{execute.coverage:>9.1%}{execute.accuracy:>9.1%}",
        "* train-at-execute is INSECURE (observes speculative addresses);",
        "  shown only to price the commit-only security requirement.",
    ]
    write_output("ablation_training_policy", "\n".join(lines))
    # Commit-only training must not be catastrophically worse — the
    # paper's design relies on it being affordable.
    assert commit.ipc > execute.ipc * 0.7
