"""Figure 6: normalized IPC of NDA-P, STT, and DoM ± Doppelganger Loads.

Regenerates the paper's central figure: per-benchmark IPC normalized to
the unsafe baseline across the six secure configurations, plus the GMEAN
bars, and asserts the qualitative shape the paper reports.
"""

import pytest

from repro.harness.experiments import figure6_normalized_ipc

from conftest import write_output


@pytest.fixture(scope="module")
def figure6(session, benchmarks):
    return figure6_normalized_ipc(session, benchmarks=benchmarks)


def test_bench_regenerate_figure6(benchmark, session, benchmarks):
    result = benchmark.pedantic(
        lambda: figure6_normalized_ipc(session, benchmarks=benchmarks),
        rounds=1,
        iterations=1,
    )
    write_output("figure6_normalized_ipc", result.format_table())


class TestFigure6Shape:
    """The paper's qualitative claims, asserted on the regenerated data."""

    def test_every_scheme_slower_than_baseline_on_average(self, figure6):
        for scheme in ("nda", "stt", "dom"):
            assert figure6.gmean[scheme] < 1.0

    def test_dom_has_largest_slowdown(self, figure6):
        assert figure6.gmean["dom"] < figure6.gmean["nda"]
        assert figure6.gmean["dom"] < figure6.gmean["stt"]

    def test_stt_has_least_slowdown(self, figure6):
        assert figure6.gmean["stt"] >= figure6.gmean["nda"]

    def test_ap_improves_every_scheme(self, figure6):
        for scheme in ("nda", "stt", "dom"):
            assert figure6.gmean[f"{scheme}+ap"] > figure6.gmean[scheme]

    def test_nda_with_ap_outpaces_plain_stt(self, figure6):
        """§7: 'the simpler NDA-P with address prediction outpaces the
        more complex STT'."""
        assert figure6.gmean["nda+ap"] > figure6.gmean["stt"]

    def test_libquantum_is_the_standout(self, figure6):
        """libquantum: DoM collapses, AP recovers a large fraction."""
        row = figure6.rows["libquantum"]
        assert row["dom"] < 0.6
        assert row["dom+ap"] > row["dom"] * 1.5

    def test_mcf_sees_little_ap_benefit(self, figure6):
        row = figure6.rows["mcf"]
        for scheme in ("nda", "stt", "dom"):
            assert row[f"{scheme}+ap"] == pytest.approx(row[scheme], abs=0.03)

    def test_xalancbmk_s_dom_ap_slowdown(self, figure6):
        """§7: xalancbmk_s loses performance under DoM+AP (L1 flooding
        from low-accuracy predictions)."""
        row = figure6.rows["xalancbmk_s"]
        assert row["dom+ap"] <= row["dom"] + 0.005

    def test_most_spec2017_overheads_low(self, figure6):
        """§7: 'the default schemes already have a low overhead' on most
        of the CPU2017 suite."""
        low_overhead = [
            name
            for name in ("x264_s", "deepsjeng_s", "leela_s", "exchange2_s", "wrf_s")
            if figure6.rows[name]["stt"] > 0.95
        ]
        assert len(low_overhead) >= 4
