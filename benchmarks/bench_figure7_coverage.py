"""Figure 7: address-predictor coverage and accuracy per benchmark.

Regenerates the per-benchmark coverage/accuracy series under DoM+AP (the
paper's representative scheme) and asserts the per-benchmark claims the
paper's §7 'Coverage and Accuracy' paragraph makes.
"""

import pytest

from repro.harness.experiments import figure7_coverage_accuracy

from conftest import write_output


@pytest.fixture(scope="module")
def figure7(session, benchmarks):
    return figure7_coverage_accuracy(session, benchmarks=benchmarks)


def test_bench_regenerate_figure7(benchmark, session, benchmarks):
    result = benchmark.pedantic(
        lambda: figure7_coverage_accuracy(session, benchmarks=benchmarks),
        rounds=1,
        iterations=1,
    )
    write_output("figure7_coverage_accuracy", result.format_table())


class TestFigure7Shape:
    def test_mcf_has_lowest_coverage(self, figure7):
        """§7: mcf's 9% coverage is the paper's lowest; pointer chasing
        defeats a stride predictor."""
        assert figure7.coverage["mcf"] == min(figure7.coverage.values())
        assert figure7.coverage["mcf"] < 0.10

    def test_xalancbmk_s_among_lowest_accuracy(self, figure7):
        """§7: xalancbmk_s has the lowest accuracy (~60% in the paper)."""
        accuracies = {
            name: value for name, value in figure7.accuracy.items() if value > 0
        }
        ranked = sorted(accuracies, key=accuracies.get)
        assert "xalancbmk_s" in ranked[:4]

    def test_streaming_benchmarks_highly_accurate(self, figure7):
        for name in ("libquantum", "hmmer", "lbm"):
            assert figure7.accuracy[name] > 0.9, name

    def test_schemes_report_similar_coverage(self, session, benchmarks):
        """§7: 'geomean coverage and accuracy are all within 1% of each
        other between the evaluated schemes' — same committed stream,
        same training.  We allow a few percent for timing noise."""
        subset = [b for b in benchmarks if b in ("hmmer", "libquantum", "bzip2")]
        dom = figure7_coverage_accuracy(session, benchmarks=subset, scheme="dom+ap")
        nda = figure7_coverage_accuracy(session, benchmarks=subset, scheme="nda+ap")
        stt = figure7_coverage_accuracy(session, benchmarks=subset, scheme="stt+ap")
        for name in subset:
            values = [x.coverage[name] for x in (dom, nda, stt)]
            assert max(values) - min(values) < 0.08, name

    def test_metrics_bounded(self, figure7):
        for table in (figure7.coverage, figure7.accuracy):
            for value in table.values():
                assert 0.0 <= value <= 1.0
