"""Extension: a two-delta address predictor (the paper's future work).

§5.1 and §9 note that the paper deliberately uses the simplest predictor
and that "the potential to further improve performance by using a more
advanced address predictor is left for future work".  This bench takes
one step along that path: the classic two-delta stride scheme, which
survives isolated irregular accesses, compared on the benchmarks whose
predictions the baseline table struggles with.
"""

import pytest

from repro.common.config import PredictorConfig, SystemConfig
from repro.common.stats import geomean
from repro.harness.runner import run_benchmark

from conftest import MEASURE, WARMUP, write_output

BENCHES = ("xalancbmk", "xalancbmk_s", "omnetpp", "bzip2", "libquantum")
TWO_DELTA = SystemConfig(predictor=PredictorConfig(kind="two_delta"))


@pytest.fixture(scope="module")
def comparison():
    rows = {}
    for name in BENCHES:
        base = run_benchmark(name, "unsafe", warmup=WARMUP, measure=MEASURE)
        plain = run_benchmark(name, "dom+ap", warmup=WARMUP, measure=MEASURE)
        robust = run_benchmark(
            name, "dom+ap", config=TWO_DELTA, warmup=WARMUP, measure=MEASURE
        )
        rows[name] = {
            "plain_ipc": plain.ipc / base.ipc,
            "robust_ipc": robust.ipc / base.ipc,
            "plain_acc": plain.stats.accuracy,
            "robust_acc": robust.stats.accuracy,
        }
    return rows


def _render(rows) -> str:
    header = (
        f"{'benchmark':<14}{'stride IPC':>11}{'2delta IPC':>11}"
        f"{'stride acc':>11}{'2delta acc':>11}"
    )
    lines = [header, "-" * len(header)]
    for name, row in rows.items():
        lines.append(
            f"{name:<14}{row['plain_ipc']:>11.3f}{row['robust_ipc']:>11.3f}"
            f"{row['plain_acc']:>10.1%}{row['robust_acc']:>10.1%}"
        )
    return "\n".join(lines)


def test_bench_two_delta(benchmark, comparison):
    benchmark.pedantic(lambda: _render(comparison), rounds=1, iterations=1)
    write_output("extension_two_delta", _render(comparison))


class TestTwoDeltaShape:
    def test_no_regression_on_regular_streams(self, comparison):
        row = comparison["libquantum"]
        assert row["robust_ipc"] >= row["plain_ipc"] * 0.97

    def test_geomean_not_worse(self, comparison):
        plain = geomean(r["plain_ipc"] for r in comparison.values())
        robust = geomean(r["robust_ipc"] for r in comparison.values())
        assert robust >= plain * 0.97
