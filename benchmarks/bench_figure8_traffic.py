"""Figure 8: normalized L1 (upper) and L2 (lower) cache accesses.

Regenerates both panels and asserts the paper's traffic claims: AP adds
L1 traffic where predictions are wrong; correct far predictions do not
inflate L2 traffic; xalancbmk floods the L1.
"""

import pytest

from repro.harness.experiments import figure8_cache_traffic

from conftest import write_output


@pytest.fixture(scope="module")
def figure8(session, benchmarks):
    return figure8_cache_traffic(session, benchmarks=benchmarks)


def test_bench_regenerate_figure8(benchmark, session, benchmarks):
    result = benchmark.pedantic(
        lambda: figure8_cache_traffic(session, benchmarks=benchmarks),
        rounds=1,
        iterations=1,
    )
    write_output("figure8_cache_traffic", result.format_table())


class TestFigure8Shape:
    def test_all_ratios_positive(self, figure8):
        for table in (figure8.l1, figure8.l2):
            for row in table.values():
                for value in row.values():
                    assert value > 0

    def test_xalancbmk_ap_floods_l1(self, figure8):
        """§7: xalancbmk's low accuracy causes a noteworthy L1 traffic
        increase with AP."""
        row = figure8.l1["xalancbmk"]
        assert row["dom+ap"] > row["dom"] * 1.05

    def test_streaming_ap_does_not_inflate_l2(self, figure8):
        """§7 (bzip2/gcc discussion): accurate address-predicted loads to
        the lower hierarchy mean no increase in L2 accesses."""
        for name in ("libquantum", "hmmer"):
            row = figure8.l2[name]
            assert row["stt+ap"] < row["stt"] * 1.25, name

    def test_dom_l1_traffic_elevated_by_reissues(self, figure8):
        """DoM probes every speculative load and re-issues delayed misses,
        so its L1 access count exceeds the baseline's on miss-heavy
        streaming workloads."""
        assert figure8.l1["libquantum"]["dom"] > 1.02

    def test_mcf_traffic_unchanged_by_ap(self, figure8):
        """No predictions -> no extra traffic."""
        assert figure8.l1["mcf"]["dom+ap"] == pytest.approx(
            figure8.l1["mcf"]["dom"], rel=0.05
        )
        assert figure8.l2["mcf"]["dom+ap"] == pytest.approx(
            figure8.l2["mcf"]["dom"], rel=0.10
        )
