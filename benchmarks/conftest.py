"""Shared infrastructure for the figure-regeneration benchmarks.

All figure benches share one :class:`ParallelSession`: its sweep runs the
(benchmark × scheme) grid once — fanned out over ``REPRO_BENCH_JOBS``
worker processes — and every figure is derived from the memoized results,
the same structure as the paper's evaluation scripts.  With
``REPRO_BENCH_CACHE`` set, the sweep also persists to disk, so
re-running the benches after an unrelated code change simulates nothing.

Environment knobs:

* ``REPRO_BENCH_WARMUP`` / ``REPRO_BENCH_MEASURE`` — instructions per
  window (defaults 2000 / 8000: minutes, not hours; raise for tighter
  statistics, e.g. 6000 / 30000 for the numbers in EXPERIMENTS.md).
* ``REPRO_BENCH_SUITE`` — ``all`` (default), ``spec2006``, ``spec2017``.
* ``REPRO_BENCH_JOBS`` — worker processes for the shared sweep
  (default: one per CPU; results are identical for any value).
* ``REPRO_BENCH_CACHE`` — persistent result-cache directory (optional).

Each bench writes its rendered table under ``benchmarks/output/`` so the
regenerated series can be diffed against EXPERIMENTS.md.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.harness.parallel import ParallelSession
from repro.harness.runner import BASELINE_SCHEME, FIGURE_SCHEMES
from repro.workloads.profiles import benchmark_names

OUTPUT_DIR = Path(__file__).parent / "output"

WARMUP = int(os.environ.get("REPRO_BENCH_WARMUP", "2000"))
MEASURE = int(os.environ.get("REPRO_BENCH_MEASURE", "8000"))
SUITE = os.environ.get("REPRO_BENCH_SUITE", "all")
JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "0")) or None
CACHE = os.environ.get("REPRO_BENCH_CACHE") or None


@pytest.fixture(scope="session")
def session(benchmarks) -> ParallelSession:
    sess = ParallelSession(
        warmup=WARMUP, measure=MEASURE, jobs=JOBS, cache_dir=CACHE
    )
    # One up-front parallel sweep; the figure benches then read memo hits.
    sess.sweep(
        benchmarks,
        (BASELINE_SCHEME, "unsafe+ap") + FIGURE_SCHEMES,
        skip_errors=True,
    )
    return sess


@pytest.fixture(scope="session")
def benchmarks() -> tuple:
    return benchmark_names(SUITE)


def write_output(name: str, text: str) -> None:
    """Persist a rendered table and echo it to stdout (-s shows it)."""
    OUTPUT_DIR.mkdir(exist_ok=True)
    path = OUTPUT_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n# {name} (warmup={WARMUP}, measure={MEASURE})")
    print(text)
