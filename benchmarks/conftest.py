"""Shared infrastructure for the figure-regeneration benchmarks.

All figure benches share one memoizing :class:`ExperimentSession` so the
(benchmark × scheme) sweep is simulated once and every figure is derived
from it — the same structure as the paper's evaluation scripts.

Environment knobs:

* ``REPRO_BENCH_WARMUP`` / ``REPRO_BENCH_MEASURE`` — instructions per
  window (defaults 2000 / 8000: minutes, not hours; raise for tighter
  statistics, e.g. 6000 / 30000 for the numbers in EXPERIMENTS.md).
* ``REPRO_BENCH_SUITE`` — ``all`` (default), ``spec2006``, ``spec2017``.

Each bench writes its rendered table under ``benchmarks/output/`` so the
regenerated series can be diffed against EXPERIMENTS.md.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.harness.runner import ExperimentSession
from repro.workloads.profiles import benchmark_names

OUTPUT_DIR = Path(__file__).parent / "output"

WARMUP = int(os.environ.get("REPRO_BENCH_WARMUP", "2000"))
MEASURE = int(os.environ.get("REPRO_BENCH_MEASURE", "8000"))
SUITE = os.environ.get("REPRO_BENCH_SUITE", "all")


@pytest.fixture(scope="session")
def session() -> ExperimentSession:
    return ExperimentSession(warmup=WARMUP, measure=MEASURE)


@pytest.fixture(scope="session")
def benchmarks() -> tuple:
    return benchmark_names(SUITE)


def write_output(name: str, text: str) -> None:
    """Persist a rendered table and echo it to stdout (-s shows it)."""
    OUTPUT_DIR.mkdir(exist_ok=True)
    path = OUTPUT_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n# {name} (warmup={WARMUP}, measure={MEASURE})")
    print(text)
