"""Figure 1 / §7 headline: geomean performance and slowdown reduction.

Regenerates the summary the paper leads with — NDA-P 88.7→93.5%, STT
90.5→95.1%, DoM 81.8→87.3% of baseline, slowdown reductions 42%/48%/30% —
and prints measured-vs-paper side by side.
"""

import pytest

from repro.harness.experiments import figure1_summary

from conftest import write_output


@pytest.fixture(scope="module")
def summary(session, benchmarks):
    return figure1_summary(session, benchmarks=benchmarks)


def test_bench_regenerate_figure1(benchmark, session, benchmarks):
    result = benchmark.pedantic(
        lambda: figure1_summary(session, benchmarks=benchmarks),
        rounds=1,
        iterations=1,
    )
    write_output("figure1_summary", result.format_table())


class TestHeadlineShape:
    def test_scheme_ordering_matches_paper(self, summary):
        """DoM slowest, STT fastest, NDA-P between (paper ordering)."""
        gmean = summary.gmean
        assert gmean["dom"] < gmean["nda"] <= gmean["stt"]

    def test_ap_ordering_preserved(self, summary):
        gmean = summary.gmean
        assert gmean["dom+ap"] < gmean["stt+ap"]

    def test_all_reductions_positive(self, summary):
        for scheme, reduction in summary.slowdown_reduction.items():
            assert reduction > 0.05, f"{scheme}: AP recovered almost nothing"

    def test_dom_reduction_in_paper_band(self, summary):
        """The paper reports 30.3% for DoM; accept a generous band around
        it — the substrate is a different simulator."""
        assert 0.15 < summary.slowdown_reduction["dom"] < 0.85

    def test_gmeans_in_plausible_bands(self, summary):
        for scheme in ("nda", "stt", "dom"):
            assert 0.6 < summary.gmean[scheme] < 1.0
            assert summary.gmean[f"{scheme}+ap"] <= 1.05
