"""Table 1: the system configuration.

Regenerates (and asserts) the paper's Table 1 from the default
configuration, and measures how fast a full system can be constructed —
the one benchmark here where wall-clock time is actually the product.
"""

from repro.common.config import default_config
from repro.pipeline.core import Core
from repro.schemes import make_scheme
from repro.workloads.kernels import stream_kernel

from conftest import write_output


def render_table1() -> str:
    cfg = default_config()
    rows = [
        ("Decode width", f"{cfg.core.decode_width} instructions"),
        ("Issue / Commit width",
         f"{cfg.core.issue_width} / {cfg.core.commit_width} instructions"),
        ("Instruction queue", f"{cfg.core.iq_entries} entries"),
        ("Reorder buffer", f"{cfg.core.rob_entries} entries"),
        ("Load queue", f"{cfg.core.lq_entries} entries"),
        ("Store queue/buffer", f"{cfg.core.sq_entries} entries"),
        ("Address predictor/prefetcher",
         f"{cfg.predictor.entries} entries, {cfg.predictor.ways}-way"),
        ("L1 D cache",
         f"{cfg.memory.l1.size_bytes // 1024}KiB, {cfg.memory.l1.ways} ways, "
         f"{cfg.memory.l1.latency} cycles, {cfg.memory.l1.mshrs} MSHRs"),
        ("Private L2 cache",
         f"{cfg.memory.l2.size_bytes // (1024 * 1024)}MiB, "
         f"{cfg.memory.l2.ways} ways, {cfg.memory.l2.latency} cycles"),
        ("Shared L3 cache",
         f"{cfg.memory.l3.size_bytes // (1024 * 1024)}MiB, "
         f"{cfg.memory.l3.ways} ways, {cfg.memory.l3.latency} cycles"),
        ("Memory access time", f"{cfg.memory.dram_latency} cycles"),
    ]
    width = max(len(label) for label, _ in rows) + 2
    return "\n".join(f"{label:<{width}}{value}" for label, value in rows)


def test_table1_matches_paper(benchmark):
    """Asserts Table 1 and writes its rendered form.

    Uses the benchmark fixture (construction cost) so the table is also
    regenerated under ``--benchmark-only``.
    """
    benchmark.pedantic(default_config, rounds=3, iterations=1)
    cfg = default_config()
    assert cfg.core.decode_width == 5
    assert cfg.core.issue_width == 8
    assert cfg.core.commit_width == 8
    assert cfg.core.iq_entries == 160
    assert cfg.core.rob_entries == 352
    assert cfg.core.lq_entries == 128
    assert cfg.core.sq_entries == 72
    assert cfg.predictor.entries == 1024
    assert cfg.predictor.ways == 8
    assert cfg.memory.l1.size_bytes == 48 * 1024
    assert cfg.memory.l1.ways == 12
    assert cfg.memory.l1.latency == 5
    assert cfg.memory.l1.mshrs == 16
    assert cfg.memory.l2.size_bytes == 2 * 1024 * 1024
    assert cfg.memory.l2.ways == 8
    assert cfg.memory.l2.latency == 15
    assert cfg.memory.l3.size_bytes == 16 * 1024 * 1024
    assert cfg.memory.l3.ways == 16
    assert cfg.memory.l3.latency == 40
    write_output("table1_config", render_table1())


def test_bench_simulator_throughput(benchmark):
    """Raw simulator speed: committed instructions per second on a
    representative workload under the heaviest scheme (DoM+AP)."""
    program = stream_kernel(
        iterations=1 << 20, footprint_words=1 << 14, dependent_check=True
    )

    def run():
        core = Core(program, make_scheme("dom+ap"))
        return core.run(max_instructions=4000)

    stats = benchmark.pedantic(run, rounds=3, iterations=1)
    assert stats.committed_instructions >= 4000
