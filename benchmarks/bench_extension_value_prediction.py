"""Extension: DoM + value prediction vs DoM + Doppelganger Loads.

The paper motivates address prediction by the failure of the original
DoM paper's value-prediction optimization (§2.3) and closes with
"addresses are easier to predict than values" (§8).  This bench runs
that comparison across the suite's memory-bound benchmarks: DoM alone,
DoM+VP (commit-trained stride value predictor, in-order validation,
squash on mismatch), and DoM+AP.
"""

import pytest

from repro.common.stats import geomean
from repro.harness.runner import run_benchmark

from conftest import MEASURE, WARMUP, write_output

BENCHES = ("libquantum", "lbm", "hmmer", "bzip2", "mcf", "omnetpp", "GemsFDTD")


@pytest.fixture(scope="module")
def comparison():
    rows = {}
    for name in BENCHES:
        base = run_benchmark(name, "unsafe", warmup=WARMUP, measure=MEASURE)
        row = {}
        for scheme in ("dom", "dom+vp", "dom+ap"):
            result = run_benchmark(name, scheme, warmup=WARMUP, measure=MEASURE)
            row[scheme] = result.ipc / base.ipc
            if scheme == "dom+vp":
                row["vp_stats"] = (
                    result.stats.vp_predictions,
                    result.stats.vp_correct,
                    result.stats.vp_squashes,
                )
        rows[name] = row
    return rows


def _render(rows) -> str:
    header = (
        f"{'benchmark':<12}{'dom':>8}{'dom+vp':>9}{'dom+ap':>9}"
        f"{'vp pred/ok/squash':>20}"
    )
    lines = [header, "-" * len(header)]
    for name, row in rows.items():
        pred, ok, squash = row["vp_stats"]
        lines.append(
            f"{name:<12}{row['dom']:>8.3f}{row['dom+vp']:>9.3f}"
            f"{row['dom+ap']:>9.3f}{f'{pred}/{ok}/{squash}':>20}"
        )
    lines.append("-" * len(header))
    for scheme in ("dom", "dom+vp", "dom+ap"):
        lines.append(
            f"{'GMEAN ' + scheme:<12}"
            f"{geomean(row[scheme] for row in rows.values()):>8.3f}"
        )
    return "\n".join(lines)


def test_bench_vp_vs_ap(benchmark, comparison):
    benchmark.pedantic(lambda: _render(comparison), rounds=1, iterations=1)
    write_output("extension_value_prediction", _render(comparison))


class TestVPvsAPShape:
    def test_ap_beats_vp_overall(self, comparison):
        """The paper's core comparative claim."""
        vp = geomean(row["dom+vp"] for row in comparison.values())
        ap = geomean(row["dom+ap"] for row in comparison.values())
        assert ap > vp

    def test_ap_beats_vp_on_the_standout(self, comparison):
        assert comparison["libquantum"]["dom+ap"] > comparison["libquantum"]["dom+vp"]

    def test_vp_never_catastrophic(self, comparison):
        """In-order validation bounds VP's damage: wrong predictions cost
        squashes but cannot corrupt state or dramatically undercut DoM."""
        for name, row in comparison.items():
            assert row["dom+vp"] > row["dom"] * 0.75, name
