"""Setup shim: enables legacy editable installs (``--no-use-pep517``)
in offline environments that lack the ``wheel`` package.  All project
metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
