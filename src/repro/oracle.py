"""The shared equivalence oracle: one definition of "these runs agree".

Two subsystems judge executions for equality and must never drift apart
in what they compare:

* the **attack harness** (:mod:`repro.attacks.harness`) runs one gadget
  under several *secrets* and asks whether the microarchitectural state
  an attacker can observe is identical — the noninterference property
  the paper's security arguments reduce to;
* the **differential fuzzer** (:mod:`repro.fuzz`) runs one random
  program under several *schemes and scheduler modes* and asks whether
  the architectural state — the only thing secure speculation is allowed
  to preserve — is identical everywhere.

Both judgements live here so there is exactly one implementation of
"snapshot a run" and "are these snapshots equal", instead of two copies
that would drift.  :mod:`repro.attacks.harness` re-exports the attack
entry points for backward compatibility.

Snapshot vocabulary:

* :func:`arch_snapshot` / :func:`reference_snapshot` — committed
  architectural state (registers, memory, halt) of a core run or of the
  in-order reference interpreter.
* :func:`observable_snapshot` — the attacker-visible microarchitectural
  view (probe-line residency plus watched access counts).
* :func:`snapshots_equal` / :func:`diff_snapshots` — equality and a
  human-readable explanation of the first differences.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.common.config import BranchPredictorConfig, SystemConfig
from repro.common.errors import ConfigError
from repro.isa.program import InterpreterResult, Program
from repro.pipeline.core import Core
from repro.schemes import make_scheme
from repro.schemes.base import SecureScheme

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.attacks.gadgets import Gadget

Snapshot = Dict[Any, Any]
"""A flat observation: hashable keys to JSON-able values."""


# ----------------------------------------------------------------------
# Snapshots
# ----------------------------------------------------------------------
def arch_snapshot(core: Core) -> Snapshot:
    """The committed architectural state of a (finished) core run.

    Keys are chosen so two runs of *any* origin can be compared:
    per-register entries, per-word memory entries, the halt flag, and the
    committed-instruction count.  Zero-valued memory words are kept: a
    store that wrote a zero is still an architectural effect and two
    executions must agree on having performed it.
    """
    snapshot: Snapshot = {
        "halted": core.halted,
        "committed": core.stats.committed_instructions,
    }
    for index, value in enumerate(core.arch.registers):
        snapshot[("reg", index)] = 0 if index == 0 else value
    for address, value in sorted(core.arch.memory.items()):
        snapshot[("mem", address)] = value
    return snapshot


def reference_snapshot(result: InterpreterResult) -> Snapshot:
    """An :func:`arch_snapshot`-shaped view of the in-order interpreter.

    The interpreter is the golden functional model; a core run whose
    snapshot differs from this one committed wrong architectural state.
    The committed-instruction count is deliberately *not* part of the
    reference view (it is compared across core runs, where it must
    match, but the interpreter's dynamic count includes no squash
    replay subtleties worth pinning here).
    """
    state = result.state
    snapshot: Snapshot = {"halted": result.halted}
    for index, value in enumerate(state.registers):
        snapshot[("reg", index)] = 0 if index == 0 else value
    for address, value in sorted(state.memory.items()):
        snapshot[("mem", address)] = value
    return snapshot


def snapshots_equal(snapshots: Mapping[Any, Snapshot]) -> bool:
    """True when every key produced an identical snapshot."""
    views = list(snapshots.values())
    return all(view == views[0] for view in views[1:])


def _render_key(key: Any) -> str:
    if isinstance(key, tuple) and len(key) == 2:
        kind, which = key
        if kind == "reg":
            return f"r{which}"
        if kind == "mem":
            return f"[{which:#x}]"
        return f"{kind}:{which}"
    return str(key)


def diff_snapshots(
    reference: Snapshot,
    candidate: Snapshot,
    limit: int = 8,
    ignore: Sequence[Any] = (),
) -> List[str]:
    """Human-readable differences between two snapshots (at most ``limit``).

    ``ignore`` names keys excluded from the comparison (e.g. a count the
    caller compares elsewhere).  The rendering names registers and memory
    words so a divergence report reads like a debugger, not a dict diff.
    """
    skipped = set(ignore)
    problems: List[str] = []
    keys = sorted(
        set(reference) | set(candidate),
        key=lambda key: (str(type(key)), str(key)),
    )
    for key in keys:
        if key in skipped:
            continue
        expected = reference.get(key, "<absent>")
        actual = candidate.get(key, "<absent>")
        if expected != actual:
            problems.append(
                f"{_render_key(key)}: expected {expected!r}, got {actual!r}"
            )
            if len(problems) >= limit:
                problems.append("... (further differences truncated)")
                break
    return problems


# ----------------------------------------------------------------------
# The attack-side oracle (moved from repro.attacks.harness)
# ----------------------------------------------------------------------
def attack_config() -> SystemConfig:
    """The system configuration attack runs use by default.

    Identical to the Table 1 system except the branch predictor runs with
    zero history bits (pure bimodal).  A real attacker *trains* the
    predictor into a known state before triggering the gadget; with
    global history the prediction at the attack point would depend on
    incidental path history, adding noise that has nothing to do with the
    schemes under test.  Bimodal counters make the trained transient path
    deterministic, which is what the paper's attack discussions assume.
    """
    return SystemConfig(branch=BranchPredictorConfig(history_bits=0))


def apply_secret(program: Program, value: int) -> Program:
    """A copy of ``program`` with every declared secret word set to ``value``.

    The canonical way to vary a secret: both the dynamic noninterference
    check (via gadget builders, validated below) and the static analyzer's
    architectural-channel precheck derive their per-secret program images
    from the ``Program.secret_regions`` declaration, so the two judges can
    never disagree about *which* state is the secret.
    """
    if not program.secret_regions:
        raise ConfigError(
            f"{program.name}: no secret regions declared; nothing to vary"
        )
    memory = dict(program.initial_memory)
    for word in program.secret_words():
        memory[word] = value & ((1 << 64) - 1)
    return Program(
        program.instructions,
        initial_memory=memory,
        initial_registers=program.initial_registers,
        name=program.name,
        secret_regions=program.secret_regions,
    )


def _check_secret_variation(reference: Program, candidate: Program) -> None:
    """Require two builds of one gadget to differ only in secret regions.

    A gadget builder that bakes the secret into anything *other* than the
    declared regions (an instruction immediate, an attacker-visible index)
    would make the noninterference comparison meaningless — the attacker
    view could differ for reasons that are not leaks.  Catching that here
    keeps the dynamic oracle and the static analyzer aligned on the same
    threat model.
    """
    if len(reference.instructions) != len(candidate.instructions) or any(
        a != b for a, b in zip(reference.instructions, candidate.instructions)
    ):
        raise ConfigError(
            f"{reference.name}: gadget instructions vary with the secret"
        )
    if reference.initial_registers != candidate.initial_registers:
        raise ConfigError(
            f"{reference.name}: gadget initial registers vary with the secret"
        )
    if reference.secret_regions != candidate.secret_regions:
        raise ConfigError(
            f"{reference.name}: gadget secret regions vary with the secret"
        )
    secret_words = set(reference.secret_words())
    differing = {
        addr
        for addr in set(reference.initial_memory) | set(candidate.initial_memory)
        if reference.initial_memory.get(addr, 0)
        != candidate.initial_memory.get(addr, 0)
    }
    outside = sorted(differing - secret_words)
    if outside:
        raise ConfigError(
            f"{reference.name}: memory outside the declared secret regions "
            f"varies with the secret (first: {outside[0]:#x}); declare it "
            f"with CodeBuilder.mark_secret or fix the builder"
        )


def build_gadget_core(
    gadget: "Gadget",
    scheme: Union[str, SecureScheme],
    config: Optional[SystemConfig],
) -> Tuple[Core, SecureScheme]:
    """A core primed to run one attack gadget (warm lines included)."""
    if isinstance(scheme, str):
        scheme = make_scheme(scheme)
    if config is None:
        config = attack_config()
    core = Core(gadget.program, scheme, config=config)
    if gadget.warm_addresses:
        core.hierarchy.warm(list(gadget.warm_addresses))
    return core, scheme


def observable_snapshot(core: Core, gadget: "Gadget") -> Snapshot:
    """The attacker-visible view after a gadget run.

    Probe-line residency for every observed address, plus per-line access
    counts for the watched lines: an access to an already-resident line
    still perturbs replacement state, which eviction probing can detect.
    """
    # Imported lazily: repro.attacks.harness imports this module at load
    # time, so a top-level import back into repro.attacks would cycle.
    from repro.attacks.observer import CacheObserver

    observer = CacheObserver(
        core.hierarchy, gadget.probe_base, values=gadget.probe_values
    )
    view: Snapshot = dict(observer.snapshot(gadget.observed_addresses))
    for line, count in core.hierarchy.watched_counts().items():
        view[("accesses", line)] = count
    return view


def noninterference_check(
    gadget_builder: Callable[[int], "Gadget"],
    scheme: Union[str, SecureScheme] = "dom+ap",
    secrets: Sequence[int] = (0, 1),
    config: Optional[SystemConfig] = None,
) -> Dict[int, Snapshot]:
    """Run the gadget once per secret and snapshot observable state.

    Returns ``{secret: {observed_address: residency_level_or_None}}``.
    The scheme is leak-free for this gadget iff all snapshots are equal —
    ``snapshots_equal(result)`` — because then no attacker measuring those
    addresses can distinguish the secrets.
    """
    snapshots: Dict[int, Snapshot] = {}
    reference_program: Optional[Program] = None
    for secret in secrets:
        gadget = gadget_builder(secret)
        if not gadget.observed_addresses:
            raise ConfigError("gadget declares no observed addresses")
        if reference_program is None:
            reference_program = gadget.program
        else:
            _check_secret_variation(reference_program, gadget.program)
        core, _ = build_gadget_core(gadget, scheme, config)
        core.hierarchy.watch(list(gadget.observed_addresses))
        core.run()
        snapshots[secret] = observable_snapshot(core, gadget)
    return snapshots


def interpret_reference(
    program: Program, max_instructions: int = 1_000_000
) -> InterpreterResult:
    """Run the functional reference model with a bounded budget.

    Thin wrapper so oracle users share one default interpretation budget;
    a program that exceeds it raises
    :class:`~repro.common.errors.ExecutionError` (the fuzzer treats that
    as its own divergence kind rather than a simulator bug).
    """
    return program.interpret(max_instructions=max_instructions)
