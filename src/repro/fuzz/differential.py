"""The cross-scheme differential oracle.

One program, many executions, one verdict.  A generated program is run
under every requested scheme × ``idle_skip`` {on, off} × guardrails
{off, full}, and every execution must:

* commit exactly the architectural state (registers, memory, halt) the
  in-order reference interpreter produces — secure speculation schemes
  are *timing* mechanisms and must never change dataflow;
* agree bit-for-bit on committed-instruction count with every other
  execution of the same program;
* within a (scheme, guardrails) pair, produce bit-identical
  :class:`~repro.common.stats.SimStats` across ``idle_skip`` modes —
  the event-driven loop is an optimization, never a semantic;
* finish without tripping the invariant checker, the deadlock watchdog,
  or the cycle budget.

Anything else is a *finding*, classified by ``kind`` so the shrinker can
demand the same failure from smaller candidates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.common.config import GuardrailConfig, SystemConfig, small_config
from repro.common.errors import ExecutionError, ReproError
from repro.isa.program import Program
from repro.oracle import (
    Snapshot,
    arch_snapshot,
    diff_snapshots,
    interpret_reference,
    reference_snapshot,
)
from repro.pipeline.core import Core

#: Divergence/verdict kinds, from most to least specific.
KIND_CLEAN = "clean"
KIND_ARCH = "arch-divergence"
KIND_STATS = "stats-divergence"
KIND_ERROR = "error"
KIND_REFERENCE_LIMIT = "reference-limit"

#: The guardrail cadence differential runs pin: full checking, frequent
#: sweeps, no crash dumps (failures travel back as data).
FUZZ_CHECK_INTERVAL = 64

#: Commit-budget slack over the reference execution.  A correct core
#: commits exactly the reference's dynamic instruction count; a core (or
#: an injected mutation) that corrupts control flow can loop forever, so
#: every matrix cell is capped at ``factor × reference + slack`` commits
#: and judged on the state it reached — a non-halted snapshot is an
#: architectural divergence, not a hang.
COMMIT_BUDGET_FACTOR = 2
COMMIT_BUDGET_SLACK = 256


def commit_budget(reference_instructions: int) -> int:
    return COMMIT_BUDGET_FACTOR * reference_instructions + COMMIT_BUDGET_SLACK


@dataclass(frozen=True)
class ExecutionMode:
    """One cell of the execution matrix."""

    scheme: str
    idle_skip: bool
    guardrails: str

    def describe(self) -> str:
        return (
            f"{self.scheme} idle_skip={'on' if self.idle_skip else 'off'} "
            f"guardrails={self.guardrails}"
        )


@dataclass
class Execution:
    """Outcome of one mode: a snapshot, or the error that prevented one."""

    mode: ExecutionMode
    ok: bool
    snapshot: Optional[Snapshot] = None
    stats: Optional[Dict[str, Any]] = None
    error_type: Optional[str] = None
    message: str = ""


@dataclass
class MatrixReport:
    """The oracle's verdict on one program."""

    program_name: str
    kind: str
    divergences: List[str] = field(default_factory=list)
    executions: List[Execution] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return self.kind == KIND_CLEAN

    def summary(self) -> str:
        if self.clean:
            return f"{self.program_name}: clean ({len(self.executions)} executions)"
        lines = [
            f"{self.program_name}: {self.kind} "
            f"({len(self.divergences)} divergence(s))"
        ]
        lines.extend(f"  {entry}" for entry in self.divergences[:12])
        if len(self.divergences) > 12:
            lines.append(f"  ... {len(self.divergences) - 12} more")
        return "\n".join(lines)


def matrix_modes(
    schemes: Sequence[str], matrix: str = "full"
) -> List[ExecutionMode]:
    """The execution matrix for a scheme list.

    ``"full"`` crosses schemes × idle_skip {on, off} × guardrails
    {off, full}; ``"schemes"`` keeps one cell per scheme (idle_skip on,
    guardrails full) for cheap smokes.
    """
    modes: List[ExecutionMode] = []
    for scheme in schemes:
        if matrix == "schemes":
            modes.append(ExecutionMode(scheme, True, "full"))
            continue
        for idle_skip in (True, False):
            for guardrails in ("off", "full"):
                modes.append(ExecutionMode(scheme, idle_skip, guardrails))
    return modes


def fuzz_config(base: Optional[SystemConfig] = None) -> SystemConfig:
    """The baseline config differential runs derive their modes from."""
    return base if base is not None else small_config()


def run_mode(
    program: Program,
    mode: ExecutionMode,
    config: SystemConfig,
    mutation: Optional[str] = None,
    max_instructions: Optional[int] = None,
) -> Execution:
    """Run one matrix cell; never raises, errors come back as data."""
    # Imported here: mutations import schemes, and keeping the scheme
    # factory out of module scope keeps this module importable from
    # anywhere (including workers) without ordering concerns.
    from repro.fuzz.mutations import make_scheme_variant

    mode_config = config.with_overrides(
        guardrails=GuardrailConfig(
            level=mode.guardrails,
            check_interval=FUZZ_CHECK_INTERVAL,
        )
    )
    try:
        scheme = make_scheme_variant(mode.scheme, mutation)
        core = Core(
            program, scheme, config=mode_config, idle_skip=mode.idle_skip
        )
        core.run(max_instructions=max_instructions)
        return Execution(
            mode=mode,
            ok=True,
            snapshot=arch_snapshot(core),
            stats=core.stats.as_dict(),
        )
    except ReproError as error:
        return Execution(
            mode=mode,
            ok=False,
            error_type=type(error).__name__,
            message=str(error),
        )
    except Exception as error:  # infrastructure bug — still a finding
        return Execution(
            mode=mode,
            ok=False,
            error_type=type(error).__name__,
            message=str(error) or repr(error),
        )


def run_matrix(
    program: Program,
    schemes: Sequence[str],
    config: Optional[SystemConfig] = None,
    matrix: str = "full",
    mutation: Optional[str] = None,
) -> MatrixReport:
    """Run the full execution matrix for ``program`` and judge it."""
    config = fuzz_config(config)
    try:
        reference_result = interpret_reference(program)
    except ExecutionError as error:
        return MatrixReport(
            program_name=program.name,
            kind=KIND_REFERENCE_LIMIT,
            divergences=[f"reference interpreter: {error}"],
        )
    reference = reference_snapshot(reference_result)
    budget = commit_budget(reference_result.instructions_executed)

    executions = [
        run_mode(program, mode, config, mutation, max_instructions=budget)
        for mode in matrix_modes(schemes, matrix)
    ]
    divergences: List[str] = []
    errors: List[str] = []

    committed_baseline: Optional[Tuple[str, int]] = None
    for execution in executions:
        label = execution.mode.describe()
        if not execution.ok:
            errors.append(f"[{label}] {execution.error_type}: {execution.message}")
            continue
        assert execution.snapshot is not None
        problems = diff_snapshots(
            reference, execution.snapshot, ignore=("committed",)
        )
        divergences.extend(f"[{label}] {entry}" for entry in problems)
        committed = execution.snapshot["committed"]
        if committed_baseline is None:
            committed_baseline = (label, committed)
        elif committed != committed_baseline[1]:
            divergences.append(
                f"[{label}] committed {committed} instructions, but "
                f"[{committed_baseline[0]}] committed {committed_baseline[1]}"
            )

    divergences.extend(_stats_divergences(executions))

    if divergences:
        kind = KIND_ARCH if _has_arch_divergence(divergences) else KIND_STATS
        divergences.extend(errors)
        return MatrixReport(program.name, kind, divergences, executions)
    if errors:
        return MatrixReport(program.name, KIND_ERROR, errors, executions)
    return MatrixReport(program.name, KIND_CLEAN, [], executions)


def _has_arch_divergence(divergences: List[str]) -> bool:
    return any(" stats[" not in entry for entry in divergences)


def _stats_divergences(executions: Sequence[Execution]) -> List[str]:
    """Bit-identity of SimStats across idle_skip, per (scheme, guardrails).

    This is PR 5's event-driven equivalence contract, enforced on every
    fuzzed program rather than only on the hand-written suite.
    """
    grouped: Dict[Tuple[str, str], List[Execution]] = {}
    for execution in executions:
        if not execution.ok or execution.stats is None:
            continue
        key = (execution.mode.scheme, execution.mode.guardrails)
        grouped.setdefault(key, []).append(execution)
    problems: List[str] = []
    for (scheme, guardrails), group in sorted(grouped.items()):
        if len(group) < 2:
            continue
        baseline = group[0]
        assert baseline.stats is not None
        for other in group[1:]:
            assert other.stats is not None
            for counter in baseline.stats:
                a = baseline.stats[counter]
                b = other.stats[counter]
                if a != b:
                    problems.append(
                        f"[{scheme} guardrails={guardrails}] stats[{counter}]: "
                        f"idle_skip=on {a} vs idle_skip=off {b}"
                    )
    return problems
