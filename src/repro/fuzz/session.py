"""The fuzzing campaign runner: jobs, worker, and parallel session.

One :class:`FuzzJob` is one (seed, profile) pair run through the full
differential matrix.  Jobs fan out over the shared
:class:`~repro.harness.jobs.JobEngine`, so fuzzing inherits the sweep
runner's fault tolerance for free: per-job timeouts with stuck-worker
kill, bounded retries of transients, crash isolation, and incremental
resolution (an interrupted campaign keeps every finished verdict).

Divergences are *successful* job executions (the worker found what it
was sent to find) — they come back as data, get minimized in the worker,
and the parent writes one self-contained repro file per finding plus a
``failure_manifest.json`` whose entries carry the full job spec and a
single replay command.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.common.config import SystemConfig, config_from_dict, config_to_dict
from repro.common.errors import ReproError
from repro.common.io import atomic_write_json
from repro.fuzz.corpus import ReproFile
from repro.fuzz.differential import (
    KIND_CLEAN,
    MatrixReport,
    fuzz_config,
    run_matrix,
)
from repro.fuzz.generator import generate_program
from repro.fuzz.profiles import FuzzProfile
from repro.fuzz.shrink import minimize
from repro.harness.jobs import JobEngine, failure_payload
from repro.harness.parallel import (
    CACHE_FORMAT_VERSION,
    FAILURE_MANIFEST_NAME,
    LEDGER_NAME,
    FailureRecord,
)
from repro.harness.store import ProgressLedger, ResultStore, campaign_id

#: Default schemes a campaign crosses — the unsafe baseline plus every
#: secure scheme, with and without address prediction for DoM.
DEFAULT_FUZZ_SCHEMES: Tuple[str, ...] = (
    "unsafe",
    "nda",
    "stt",
    "dom",
    "dom+ap",
    "dom+vp",
)


@dataclass(frozen=True)
class FuzzJob:
    """One (seed, profile) differential run as a picklable spec."""

    seed: int
    profile: Dict[str, Any]
    schemes: Tuple[str, ...]
    matrix: str
    config: Dict[str, Any]  # config_to_dict() form
    mutation: Optional[str] = None
    minimize: bool = True

    @classmethod
    def build(
        cls,
        seed: int,
        profile: FuzzProfile,
        schemes: Sequence[str],
        matrix: str,
        config: SystemConfig,
        mutation: Optional[str] = None,
        minimize_findings: bool = True,
    ) -> "FuzzJob":
        return cls(
            seed=seed,
            profile=profile.to_dict(),
            schemes=tuple(schemes),
            matrix=matrix,
            config=config_to_dict(config),
            mutation=mutation,
            minimize=minimize_findings,
        )

    @property
    def profile_name(self) -> str:
        return self.profile.get("name", "?")

    @property
    def label(self) -> str:
        return f"fuzz/{self.profile_name}/seed{self.seed}"

    def spec(self) -> Dict[str, Any]:
        """The full job as replayable data (manifest ``spec`` entries)."""
        payload = asdict(self)
        payload["kind"] = "fuzz"
        return payload

    @classmethod
    def from_spec(cls, spec: Dict[str, Any]) -> "FuzzJob":
        return cls(
            seed=spec["seed"],
            profile=dict(spec["profile"]),
            schemes=tuple(spec["schemes"]),
            matrix=spec["matrix"],
            config=dict(spec["config"]),
            mutation=spec.get("mutation"),
            minimize=spec.get("minimize", True),
        )


def _fuzz_key(job: FuzzJob) -> Dict[str, Any]:
    """The verdict store's key for a job: its full replayable spec, so
    any change to seed, profile knobs, schemes, matrix, config, or
    mutation misses by construction."""
    return job.spec()


def _fuzz_entry_slug(key: Dict[str, Any]) -> str:
    """Human-readable prefix for a fuzz verdict's file name."""
    profile = key.get("profile") or {}
    return f"{profile.get('name', 'p')}-seed{key.get('seed')}"


def fuzz_job_fields(job: FuzzJob) -> Dict[str, Any]:
    """Label + spec fields attached to engine-generated failure payloads."""
    return {
        "benchmark": job.label,
        "scheme": ",".join(job.schemes),
        "spec": job.spec(),
    }


def _shrink_predicate(job: FuzzJob, config: SystemConfig, kind: str):
    """The shrinker's "still fails the same way" test for one finding."""

    def predicate(candidate) -> bool:
        report = run_matrix(
            candidate,
            job.schemes,
            config=config,
            matrix=job.matrix,
            mutation=job.mutation,
        )
        return report.kind == kind

    return predicate


def execute_fuzz_job(job: FuzzJob) -> Dict[str, Any]:
    """Worker entry point: generate, run the matrix, minimize findings.

    Must stay module-level (pickled by name into the pool) and never
    raise.  A divergence is a *successful* execution — the payload is
    ``ok`` with a non-clean verdict and a ready-to-save repro dict; only
    infrastructure problems (generator crash, unpicklable state...)
    produce failure payloads.
    """
    try:
        profile = FuzzProfile.from_dict(job.profile)
        config = config_from_dict(job.config)
        program = generate_program(job.seed, profile)
        report = run_matrix(
            program,
            job.schemes,
            config=config,
            matrix=job.matrix,
            mutation=job.mutation,
        )
        result: Dict[str, Any] = {
            "kind": report.kind,
            "executions": len(report.executions),
            "divergences": list(report.divergences),
        }
        if not report.clean:
            minimized = program
            if job.minimize:
                minimized = minimize(
                    program, _shrink_predicate(job, config, report.kind)
                )
                # Report the divergences of the *minimized* program —
                # that is what lands in the repro file and what a triager
                # reads first.
                report = run_matrix(
                    minimized,
                    job.schemes,
                    config=config,
                    matrix=job.matrix,
                    mutation=job.mutation,
                )
            repro = ReproFile.from_finding(
                seed=job.seed,
                profile=job.profile,
                schemes=job.schemes,
                matrix=job.matrix,
                config=config,
                report=report,
                minimized=minimized,
                original_length=len(program),
                mutation=job.mutation,
            )
            result["repro"] = repro.to_dict()
            result["divergences"] = list(report.divergences)
        return {"ok": True, "result": result}
    except ReproError as error:
        return failure_payload(
            type(error).__name__,
            str(error),
            transient=False,
            fields=fuzz_job_fields(job),
        )
    except KeyboardInterrupt:
        return failure_payload(
            "KeyboardInterrupt",
            "interrupted mid-run",
            transient=True,
            fields=fuzz_job_fields(job),
        )
    except Exception as error:  # crash isolation: bugs travel back as data
        return failure_payload(
            type(error).__name__,
            str(error) or repr(error),
            transient=True,
            fields=fuzz_job_fields(job),
        )


@dataclass
class Finding:
    """One non-clean verdict, with its repro file (if written)."""

    job: FuzzJob
    kind: str
    divergences: List[str]
    repro_path: Optional[Path] = None

    def summary(self) -> str:
        where = f" -> {self.repro_path}" if self.repro_path else ""
        return f"{self.job.label}: {self.kind}{where}"


@dataclass
class FuzzSummary:
    """Outcome of one campaign."""

    programs: int = 0
    clean: int = 0
    findings: List[Finding] = field(default_factory=list)
    failures: List[FailureRecord] = field(default_factory=list)
    skipped_budget: int = 0
    store_hits: int = 0
    elapsed: float = 0.0
    manifest_path: Optional[Path] = None

    @property
    def ok(self) -> bool:
        return not self.findings and not self.failures

    def render(self) -> str:
        lines = [
            f"fuzz: {self.programs} program(s) in {self.elapsed:.1f}s — "
            f"{self.clean} clean, {len(self.findings)} finding(s), "
            f"{len(self.failures)} infrastructure failure(s)"
            + (
                f", {self.skipped_budget} skipped (time budget)"
                if self.skipped_budget
                else ""
            )
            + (
                f", {self.store_hits} resumed from store"
                if self.store_hits
                else ""
            )
        ]
        for finding in self.findings:
            lines.append(f"  FINDING {finding.summary()}")
            lines.extend(f"    {entry}" for entry in finding.divergences[:6])
        for failure in self.failures:
            lines.append(
                f"  FAILURE {failure.benchmark}: {failure.error_type}: "
                f"{failure.message}"
            )
        if (self.findings or self.failures) and self.manifest_path:
            lines.append(
                f"  replay everything: python -m repro fuzz --replay "
                f"{self.manifest_path}"
            )
        return "\n".join(lines)


class FuzzSession:
    """Fan a fuzzing campaign out over the fault-tolerant job engine.

    Parameters mirror :class:`~repro.harness.parallel.ParallelSession`
    where they overlap; ``repro_dir`` is where repro files and the
    failure manifest land (``None`` keeps findings in memory only).
    """

    def __init__(
        self,
        config: Optional[SystemConfig] = None,
        schemes: Sequence[str] = DEFAULT_FUZZ_SCHEMES,
        matrix: str = "full",
        jobs: Optional[int] = None,
        job_timeout: Optional[float] = None,
        retries: int = 1,
        retry_backoff: float = 0.5,
        mp_context: Optional[str] = None,
        repro_dir: Optional[os.PathLike] = None,
        mutation: Optional[str] = None,
        minimize_findings: bool = True,
        resume: bool = False,
        chaos: Optional[Any] = None,
    ):
        self.config = fuzz_config(config)
        self.schemes = tuple(schemes)
        self.matrix = matrix
        self.jobs = jobs
        self.job_timeout = job_timeout
        self.retries = retries
        self.retry_backoff = retry_backoff
        self.mp_context = mp_context
        self.repro_dir = Path(repro_dir) if repro_dir is not None else None
        self.mutation = mutation
        self.minimize_findings = minimize_findings
        self.resume = resume
        self.chaos = chaos
        # Verdicts persist in a content-addressed store under the repro
        # dir, so an interrupted campaign resumes instead of refuzzing.
        self.store: Optional[ResultStore] = None
        if self.repro_dir is not None:
            self.store = ResultStore(
                self.repro_dir / "store",
                fs=chaos.fs if chaos is not None else None,
                namer=_fuzz_entry_slug,
            )

    # ------------------------------------------------------------------
    # Campaign
    # ------------------------------------------------------------------
    def build_jobs(
        self,
        seeds: Sequence[int],
        profiles: Sequence[FuzzProfile],
    ) -> List[FuzzJob]:
        """One job per seed, profiles assigned round-robin.

        Round-robin (rather than the full seeds × profiles grid) keeps
        ``--seeds N`` meaning "N programs" while still rotating through
        every pressure profile.
        """
        return [
            FuzzJob.build(
                seed,
                profiles[index % len(profiles)],
                self.schemes,
                self.matrix,
                self.config,
                mutation=self.mutation,
                minimize_findings=self.minimize_findings,
            )
            for index, seed in enumerate(seeds)
        ]

    def run(
        self,
        seeds: Sequence[int],
        profiles: Sequence[FuzzProfile],
        time_budget: Optional[float] = None,
    ) -> FuzzSummary:
        return self.run_jobs(self.build_jobs(seeds, profiles), time_budget)

    def run_jobs(
        self,
        jobs: Sequence[FuzzJob],
        time_budget: Optional[float] = None,
    ) -> FuzzSummary:
        """Run prebuilt jobs; honors an optional wall-clock budget.

        The budget is checked between engine batches, so a campaign stops
        *submitting* once the budget is spent — jobs already in flight
        still finish, and every finished verdict is kept.  Batches are
        several pool-loads wide: each batch boundary pays a pool restart
        plus a wait-for-the-slowest barrier, so narrow batches throw away
        real wall-clock (profiles differ ~7× in matrix cost).  With no
        budget there is nothing to check between batches and the whole
        campaign runs as one.
        """
        engine = JobEngine(
            execute_fuzz_job,
            jobs=self.jobs,
            job_timeout=self.job_timeout,
            retries=self.retries,
            retry_backoff=self.retry_backoff,
            mp_context=self.mp_context,
            describe=fuzz_job_fields,
            chaos=self.chaos,
        )
        summary = FuzzSummary()
        started = time.monotonic()
        if time_budget is None:
            batch_size = max(len(jobs), 1)
        else:
            batch_size = max(1, engine.jobs) * 8
        # With --resume, verdicts already in the store replay without
        # re-running the matrix; only genuinely unresolved jobs (and
        # previous *failures*, which are infrastructure problems worth a
        # fresh attempt) reach the pool.
        pending: List[Tuple[FuzzJob, FuzzJob]] = []
        for job in jobs:
            if self.resume and self.store is not None:
                cached = self.store.get(_fuzz_key(job))
                if isinstance(cached, dict) and "kind" in cached:
                    summary.store_hits += 1
                    summary.programs += 1
                    if cached["kind"] == KIND_CLEAN:
                        summary.clean += 1
                    else:
                        summary.findings.append(
                            self._record_finding(job.label, cached)
                        )
                    continue
            pending.append((job, job))
        ledger = self._open_ledger(jobs)
        try:
            while pending:
                if (
                    time_budget is not None
                    and time.monotonic() - started > time_budget
                ):
                    summary.skipped_budget = len(pending)
                    break
                batch, pending = pending[:batch_size], pending[batch_size:]
                engine.run(batch, self._make_store(summary, ledger))
        finally:
            if ledger is not None:
                ledger.close()
            summary.elapsed = time.monotonic() - started
            summary.manifest_path = self.write_manifest(summary)
        return summary

    def _open_ledger(
        self, jobs: Sequence[FuzzJob]
    ) -> Optional[ProgressLedger]:
        """The campaign's progress journal (None without a repro dir)."""
        if self.repro_dir is None:
            return None
        campaign = campaign_id([_fuzz_key(job) for job in jobs])
        try:
            return ProgressLedger(
                self.repro_dir / LEDGER_NAME, campaign, resume=self.resume
            )
        except OSError:
            return None

    def _make_store(
        self,
        summary: FuzzSummary,
        ledger: Optional[ProgressLedger] = None,
    ):
        def store(job: FuzzJob, payload: Dict[str, Any]) -> None:
            summary.programs += 1
            if ledger is not None:
                ledger.record(
                    _fuzz_key(job),
                    payload["ok"],
                    None if payload["ok"] else payload,
                )
            if not payload["ok"]:
                summary.failures.append(
                    FailureRecord.from_payload([job.label], payload)
                )
                return
            result = payload["result"]
            if self.store is not None:
                # Verdicts — clean and findings alike — are worth keeping:
                # a resumed campaign replays them instead of refuzzing.
                self.store.put(_fuzz_key(job), result)
            if result["kind"] == KIND_CLEAN:
                summary.clean += 1
                return
            summary.findings.append(self._record_finding(job.label, result))

        return store

    def _record_finding(self, label: str, result: Dict[str, Any]) -> Finding:
        repro_payload = result.get("repro")
        repro_path: Optional[Path] = None
        finding_job = None
        if repro_payload is not None:
            repro = ReproFile(**{
                key: repro_payload[key]
                for key in ReproFile.__dataclass_fields__
                if key in repro_payload
            })
            finding_job = FuzzJob.build(
                repro.seed,
                FuzzProfile.from_dict(repro.profile),
                repro.schemes,
                repro.matrix,
                config_from_dict(repro.config),
                mutation=repro.mutation,
                minimize_findings=self.minimize_findings,
            )
            if self.repro_dir is not None:
                name = f"repro-{repro.profile.get('name', 'p')}-{repro.seed}.json"
                repro_path = repro.save(self.repro_dir / name)
        if finding_job is None:
            finding_job = FuzzJob(
                seed=-1,
                profile={"name": label},
                schemes=self.schemes,
                matrix=self.matrix,
                config=config_to_dict(self.config),
            )
        return Finding(
            job=finding_job,
            kind=result["kind"],
            divergences=list(result.get("divergences", [])),
            repro_path=repro_path,
        )

    # ------------------------------------------------------------------
    # Manifest
    # ------------------------------------------------------------------
    @property
    def failure_manifest_path(self) -> Optional[Path]:
        if self.repro_dir is None:
            return None
        return self.repro_dir / FAILURE_MANIFEST_NAME

    def write_manifest(self, summary: FuzzSummary) -> Optional[Path]:
        """Record findings *and* infrastructure failures, each entry with
        its full job spec and one replay command."""
        path = self.failure_manifest_path
        if path is None:
            return None
        entries: List[Dict[str, Any]] = []
        for finding in summary.findings:
            replay_target = finding.repro_path or path
            entries.append(
                {
                    "benchmark": finding.job.label,
                    "scheme": ",".join(finding.job.schemes),
                    "error_type": finding.kind,
                    "message": (
                        finding.divergences[0]
                        if finding.divergences
                        else finding.kind
                    ),
                    "attempts": 1,
                    "transient": False,
                    "dump_path": (
                        str(finding.repro_path) if finding.repro_path else None
                    ),
                    "key": [finding.job.label],
                    "spec": finding.job.spec(),
                    "replay": f"python -m repro fuzz --replay {replay_target}",
                }
            )
        for failure in summary.failures:
            record = asdict(failure)
            record["replay"] = f"python -m repro fuzz --replay {path}"
            entries.append(record)
        payload = {"version": CACHE_FORMAT_VERSION, "failures": entries}
        return atomic_write_json(path, payload, indent=2)


def replay_manifest(path: os.PathLike) -> List[Tuple[str, MatrixReport]]:
    """Re-run every fuzz entry of a failure manifest, spec by spec.

    Returns ``(label, report)`` pairs.  Sweep-job entries (``kind:
    "sweep"``) are re-run through the sweep worker and reported by their
    outcome; entries with no spec are skipped with a note.
    """
    from repro.harness.parallel import SweepJob, execute_job

    payload = json.loads(Path(path).read_text())
    results: List[Tuple[str, MatrixReport]] = []
    for entry in payload.get("failures", []):
        spec = entry.get("spec") or {}
        label = entry.get("benchmark", "?")
        if spec.get("kind") == "fuzz":
            job = FuzzJob.from_spec(spec)
            outcome = execute_fuzz_job(job)
            if outcome["ok"]:
                report = MatrixReport(
                    program_name=job.label,
                    kind=outcome["result"]["kind"],
                    divergences=list(outcome["result"]["divergences"]),
                )
            else:
                report = MatrixReport(
                    program_name=job.label,
                    kind="error",
                    divergences=[
                        f"{outcome['error_type']}: {outcome['message']}"
                    ],
                )
            results.append((job.label, report))
        elif spec.get("kind") == "sweep":
            job = SweepJob.from_spec(spec)
            outcome = execute_job(job)
            if outcome["ok"]:
                report = MatrixReport(
                    program_name=f"sweep/{job.benchmark}/{job.scheme}",
                    kind=KIND_CLEAN,
                )
            else:
                report = MatrixReport(
                    program_name=f"sweep/{job.benchmark}/{job.scheme}",
                    kind="error",
                    divergences=[
                        f"{outcome['error_type']}: {outcome['message']}"
                    ],
                )
            results.append((report.program_name, report))
        else:
            results.append(
                (
                    label,
                    MatrixReport(
                        program_name=label,
                        kind="error",
                        divergences=["manifest entry has no replayable spec"],
                    ),
                )
            )
    return results
