"""Seeded random micro-ISA program generator.

``generate_program(seed, profile)`` deterministically expands a
``(profile, seed)`` pair into a :class:`~repro.isa.program.Program` —
the same pair always yields the same program, on any platform and in any
process, which is what makes fuzz failures replayable from a manifest
entry.

Every generated program terminates by construction:

* the only backward branch is the outer loop, bounded by a trip counter
  no body instruction can touch;
* forward branches target slots inside the body (padded with NOPs if
  the body ends early);
* the program always ends with an epilogue that stores the scratch
  registers to an output array (so dead values still become
  architecturally visible) followed by ``halt``.

Register map (the generator's calling convention):

======  =======================================================
r1      data-array base (``DATA_BASE``)
r2–r23  scratch pool: ALU results, load destinations
r24     streaming offset (sequential profiles)
r26/r27 address temporaries for chases and computed accesses
r28     output-array base (``OUT_BASE``)
r29/r30 loop trip counter / trip limit
======  =======================================================
"""

from __future__ import annotations

import random
from typing import List

from repro.fuzz.profiles import DATA_BASE, OUT_BASE, FuzzProfile
from repro.isa.builder import CodeBuilder
from repro.isa.program import Program

SCRATCH = tuple(range(2, 24))
STREAM_PTR = 24
ADDR_TMP = 26
ADDR_TMP2 = 27


def generation_rng(seed: int, profile: FuzzProfile) -> random.Random:
    """The deterministic RNG for one (seed, profile) pair.

    Seeded with a string (never ``hash()``, which is salted per process)
    so generation is reproducible across interpreters and workers.
    """
    return random.Random(f"{profile.name}:{seed}")


def generate_program(seed: int, profile: FuzzProfile) -> Program:
    """Expand ``(seed, profile)`` into a terminating random program."""
    profile.validate()
    rng = generation_rng(seed, profile)
    words = profile.footprint_words
    mask = words - 1  # footprints are powers of two

    b = CodeBuilder()
    # Data image: every footprint word holds a random value, so pointer
    # chases walk real data instead of collapsing onto word zero.
    b.set_array(DATA_BASE, [rng.getrandbits(64) for _ in range(words)])
    b.set_register(1, DATA_BASE)
    b.set_register(STREAM_PTR, 0)
    b.set_register(28, OUT_BASE)
    # Scratch registers start with random (but recorded) values.
    for reg in SCRATCH:
        b.set_register(reg, rng.getrandbits(64))

    b.li(29, 0)
    b.li(30, profile.loop_trips)
    loop_top = b.here

    kinds = profile.kind_weights()
    names = sorted(kinds)
    weights = [kinds[name] for name in names]

    emitted = 0
    skip_until = -1
    while emitted < profile.length:
        kind = rng.choices(names, weights=weights)[0]
        before = b.here
        if kind == "alu":
            _emit_alu(b, rng)
        elif kind == "mul":
            b.mul(_pick(rng), _pick(rng), _pick(rng))
        elif kind == "branch":
            if b.here >= skip_until:
                # Forward skip over the next few body slots; the target
                # is data-dependent on scratch state, so both directions
                # are exercised and mispredictions occur naturally.
                distance = rng.randrange(2, 6)
                skip_until = b.here + 1 + distance
                op = rng.choice([b.beq, b.bne, b.blt, b.bge])
                op(_pick(rng), _pick(rng), skip_until)
            else:
                _emit_alu(b, rng)
        elif kind == "load":
            _emit_load(b, rng, profile, mask)
        elif kind == "store":
            _emit_store_group(b, rng, profile, mask)
        elif kind == "chase":
            _emit_chase(b, rng, profile, mask)
        else:  # load_after_store
            _emit_load_after_store(b, rng, mask)
        emitted += b.here - before
    # A pending forward branch may target slots past the last emitted
    # instruction; pad so it lands inside the body.
    while b.here < skip_until:
        b.nop()

    b.addi(29, 29, 1)
    b.bne(29, 30, loop_top)

    # Epilogue: publish scratch state so every computed value is part of
    # the architectural snapshot the oracle compares.
    for index, reg in enumerate(SCRATCH):
        b.store(reg, 28, disp=8 * index)
    b.store(STREAM_PTR, 28, disp=8 * len(SCRATCH))
    b.halt()
    return b.build(name=f"fuzz-{profile.name}-{seed}")


def _pick(rng: random.Random) -> int:
    return rng.choice(SCRATCH)


def _emit_alu(b: CodeBuilder, rng: random.Random) -> None:
    choice = rng.randrange(6)
    if choice == 0:
        b.li(_pick(rng), rng.getrandbits(64))
    elif choice == 1:
        b.addi(_pick(rng), _pick(rng), rng.randrange(-(1 << 16), 1 << 16))
    elif choice == 2:
        b.add(_pick(rng), _pick(rng), _pick(rng))
    elif choice == 3:
        b.sub(_pick(rng), _pick(rng), _pick(rng))
    elif choice == 4:
        b.xor(_pick(rng), _pick(rng), _pick(rng))
    else:
        b.shri(_pick(rng), _pick(rng), rng.randrange(1, 32))


def _data_address(
    b: CodeBuilder, rng: random.Random, source: int, mask: int
) -> int:
    """Materialize an in-footprint data address from ``source``'s value.

    Returns the register holding the address (``base + 8 × (value & mask)``).
    """
    b.andi(ADDR_TMP, source, mask)
    b.shli(ADDR_TMP, ADDR_TMP, 3)
    b.add(ADDR_TMP, 1, ADDR_TMP)
    return ADDR_TMP


def _emit_load(
    b: CodeBuilder, rng: random.Random, profile: FuzzProfile, mask: int
) -> None:
    if profile.sequential_stride:
        # Streaming access: walk the footprint by a fixed stride.
        b.andi(ADDR_TMP2, STREAM_PTR, mask)
        b.shli(ADDR_TMP2, ADDR_TMP2, 3)
        b.add(ADDR_TMP2, 1, ADDR_TMP2)
        b.load(_pick(rng), ADDR_TMP2)
        b.addi(STREAM_PTR, STREAM_PTR, profile.sequential_stride)
    else:
        address = _data_address(b, rng, _pick(rng), mask)
        b.load(_pick(rng), address)


def _emit_store_group(
    b: CodeBuilder, rng: random.Random, profile: FuzzProfile, mask: int
) -> None:
    address = _data_address(b, rng, _pick(rng), mask)
    b.store(_pick(rng), address)
    # Optional burst: consecutive words from the same base, which queues
    # several stores behind one another (store-buffer saturation).
    for extra in range(profile.store_burst):
        b.store(_pick(rng), address, disp=8 * (extra + 1))


def _emit_chase(
    b: CodeBuilder, rng: random.Random, profile: FuzzProfile, mask: int
) -> None:
    target = _pick(rng)
    source = _pick(rng)
    for _ in range(profile.pointer_chase_depth):
        address = _data_address(b, rng, source, mask)
        b.load(target, address)
        source = target


def _emit_load_after_store(
    b: CodeBuilder, rng: random.Random, mask: int
) -> None:
    address = _data_address(b, rng, _pick(rng), mask)
    b.store(_pick(rng), address)
    b.load(_pick(rng), address)


def profile_seeds(start: int, count: int) -> List[int]:
    """The seed window ``[start, start + count)`` as a list."""
    return list(range(start, start + count))
