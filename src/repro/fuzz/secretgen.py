"""Seeded secret-bearing gadget generator for the static/dynamic differential.

:mod:`repro.fuzz.generator` produces random programs for the
*architectural* differential (every scheme must commit the same state).
This module produces random programs for the *security* differential:
each case declares ``secret_regions`` and attacker-observable lines, so
both the static analyzer (``repro.analysis.specflow``) and the dynamic
noninterference oracle (:func:`repro.oracle.noninterference_check`) can
judge it — and their verdicts can be cross-checked for soundness
(static ``safe`` must imply dynamically clean).

Five templates, chosen by ``seed % 5`` and then parameterized by a
deterministic per-seed RNG:

* ``benign`` — a secret is declared but no instruction can reach it
  (every load address is a constant outside the regions).  Exercises the
  vacuous-taint path: static ``safe`` everywhere, dynamically clean.
* ``arch_transmit`` — the program architecturally indexes a probe array
  with the secret.  Exercises the precheck: static ``leak-possible``
  for every scheme (no speculation scheme defends an architectural
  channel), dynamically leaking everywhere.
* ``mini_spectre`` — :func:`repro.attacks.gadgets.spectre_v1` with
  seed-chosen secret, training length, and out-of-bounds index.
* ``fig4`` — :func:`repro.attacks.gadgets.dom_implicit_channel` with a
  seed-chosen secret pair and 4a/4b flavour.  The builder's tuned
  dynamics (training phases, stride layout) are reused as-is; the seed
  only selects data.
* ``transient_read_only`` — a Spectre window that *reads* the secret
  but never transmits it (the tainted value dies in a register).
  Exercises precision where it matters: NDA/STT/DoM are statically
  ``safe`` despite the transient secret read.  The unprotected baseline
  stays conservatively flagged — the window's unconstrained index load
  is itself a may-secret read feeding a branch — and the dynamic run is
  clean everywhere, which the soundness inclusion permits.

The templates bias toward *safe-but-nontrivial* programs on purpose:
the differential's sharpest check is "static said safe, dynamics must be
clean", so safe cases are where an unsound analyzer gets caught.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Tuple

from repro.attacks.gadgets import (
    ARRAY1_SIZE_WORDS,
    Gadget,
    PROBE_BASE,
    SIZE_ADDR,
    dom_implicit_channel,
    spectre_v1,
)
from repro.attacks.observer import PROBE_LINE_STRIDE
from repro.isa.builder import CodeBuilder

#: Address bases private to generated cases (disjoint from the gadget
#: layout in :mod:`repro.attacks.gadgets` and the fuzz generator's
#: DATA/OUT arrays).
SECRET_BASE = 0x0020_0000
SCRATCH_BASE = 0x0024_0000
OUT_BASE = 0x0028_0000

TEMPLATES = (
    "benign",
    "arch_transmit",
    "mini_spectre",
    "fig4",
    "transient_read_only",
)


@dataclass(frozen=True)
class SecretFuzzCase:
    """One generated security-differential case."""

    name: str
    template: str
    seed: int
    secrets: Tuple[int, int]
    build: Callable[[int], Gadget]


def _case_rng(seed: int) -> random.Random:
    # String-seeded for cross-process determinism (same convention as
    # repro.fuzz.generator.generation_rng).
    return random.Random(f"secretgen:{seed}")


def _probe_lines() -> Tuple[int, ...]:
    return tuple(PROBE_BASE + PROBE_LINE_STRIDE * v for v in range(16))


def _benign(rng: random.Random, name: str) -> Callable[[int], Gadget]:
    """Secret declared, never reachable: all load addresses constant."""
    rounds = rng.randrange(4, 12)
    values = [rng.getrandbits(32) for _ in range(4)]

    def build(secret: int) -> Gadget:
        b = CodeBuilder()
        b.set_memory(SECRET_BASE, secret)
        b.mark_secret(SECRET_BASE)
        for i, value in enumerate(values):
            b.set_memory(SCRATCH_BASE + 8 * i, value)
        b.li(14, 0)
        b.li(15, rounds)
        b.li(10, SCRATCH_BASE)
        b.li(28, OUT_BASE)
        b.label("round")
        b.load(2, 10)
        b.load(3, 10, disp=8)
        b.add(4, 2, 3)
        b.xori(4, 4, 0x5A)
        b.store(4, 28)
        b.addi(14, 14, 1)
        b.blt(14, 15, "round")
        b.halt()
        return Gadget(
            program=b.build(name=name),
            secret_address=SECRET_BASE,
            warm_addresses=(SCRATCH_BASE,),
            observed_addresses=_probe_lines(),
            notes="secret unreachable; must be safe and clean everywhere",
        )

    return build


def _arch_transmit(rng: random.Random, name: str) -> Callable[[int], Gadget]:
    """The program architecturally touches probe[secret * 64]."""
    extra_shift = rng.choice((0, 0, 3))

    def build(secret: int) -> Gadget:
        b = CodeBuilder()
        b.set_memory(SECRET_BASE, secret)
        b.mark_secret(SECRET_BASE)
        b.li(10, SECRET_BASE)
        b.li(11, PROBE_BASE)
        b.load(1, 10)                      # the secret, architecturally
        if extra_shift:
            b.shli(1, 1, extra_shift)
            b.shri(1, 1, extra_shift)
        b.shli(2, 1, 6)                    # one probe line per value
        b.add(3, 11, 2)
        b.load(4, 3)                       # probe[secret * 64]
        b.store(4, 0, disp=OUT_BASE)
        b.halt()
        return Gadget(
            program=b.build(name=name),
            secret_address=SECRET_BASE,
            observed_addresses=_probe_lines(),
            notes="architectural channel; every scheme must flag and leak",
        )

    return build


def _mini_spectre(rng: random.Random, name: str) -> Callable[[int], Gadget]:
    training_rounds = rng.randrange(10, 21)
    oob_index = rng.randrange(ARRAY1_SIZE_WORDS + 1, 97)

    def build(secret: int) -> Gadget:
        gadget = spectre_v1(
            secret_value=secret,
            training_rounds=training_rounds,
            oob_index=oob_index,
        )
        gadget.program.name = name
        return gadget

    return build


def _fig4(rng: random.Random, name: str) -> Callable[[int], Gadget]:
    register_secret = rng.random() < 0.5

    def build(secret: int) -> Gadget:
        gadget = dom_implicit_channel(secret, register_secret=register_secret)
        gadget.program.name = name
        return gadget

    return build


def _transient_read_only(rng: random.Random, name: str) -> Callable[[int], Gadget]:
    """A Spectre window that reads the secret but never transmits it."""
    training_rounds = rng.randrange(8, 17)
    oob_index = rng.randrange(ARRAY1_SIZE_WORDS + 1, 65)

    def build(secret: int) -> Gadget:
        b = CodeBuilder()
        b.set_memory(SIZE_ADDR, ARRAY1_SIZE_WORDS)
        array_base = SCRATCH_BASE
        for i in range(ARRAY1_SIZE_WORDS):
            b.set_memory(array_base + 8 * i, 0)
        secret_address = array_base + 8 * oob_index
        b.set_memory(secret_address, secret)
        b.mark_secret(secret_address)
        idx_base = OUT_BASE + 0x1000
        for round_index in range(training_rounds):
            b.set_memory(idx_base + 8 * round_index, 0)
        b.set_memory(idx_base + 8 * training_rounds, oob_index)
        total_rounds = training_rounds + 1

        b.li(15, total_rounds)
        b.li(14, 0)
        b.li(10, array_base)
        b.li(20, SIZE_ADDR)
        b.label("round")
        b.shli(16, 14, 3)
        b.addi(16, 16, idx_base)
        b.load(1, 16)
        b.load(2, 20)
        b.muli(3, 2, 1)
        for _ in range(14):
            b.muli(3, 3, 1)
        b.bge(1, 3, "skip")
        b.shli(4, 1, 3)
        b.add(5, 10, 4)
        b.load(6, 5)                       # transient secret read ...
        b.xori(7, 6, 1)                    # ... that dies in a register
        b.label("skip")
        b.addi(14, 14, 1)
        b.blt(14, 15, "round")
        b.halt()
        warm = [secret_address, SIZE_ADDR]
        warm.extend(idx_base + 8 * r for r in range(0, total_rounds, 4))
        return Gadget(
            program=b.build(name=name),
            secret_address=secret_address,
            warm_addresses=tuple(warm),
            observed_addresses=_probe_lines(),
            notes="transient read with no transmitter; must be safe & clean",
        )

    return build


def generate_secret_case(seed: int) -> SecretFuzzCase:
    """Deterministically expand ``seed`` into a security-differential case."""
    template = TEMPLATES[seed % len(TEMPLATES)]
    rng = _case_rng(seed)
    name = f"secretgen_{template}_{seed}"
    if template == "benign":
        build = _benign(rng, name)
        secrets = (rng.randrange(1, 1 << 16), rng.randrange(1 << 16, 1 << 20))
    elif template == "arch_transmit":
        build = _arch_transmit(rng, name)
        low = rng.randrange(1, 8)
        secrets = (low, rng.randrange(8, 16))
    elif template == "mini_spectre":
        build = _mini_spectre(rng, name)
        low = rng.randrange(1, 8)
        secrets = (low, rng.randrange(8, 16))
    elif template == "fig4":
        build = _fig4(rng, name)
        even = rng.randrange(0, 8) * 2
        secrets = (even, even + 1)  # the channel carries the low bit
    else:
        build = _transient_read_only(rng, name)
        secrets = (rng.randrange(1, 8), rng.randrange(8, 16))
    return SecretFuzzCase(
        name=name, template=template, seed=seed, secrets=secrets, build=build
    )


__all__ = [
    "SecretFuzzCase",
    "TEMPLATES",
    "generate_secret_case",
]
