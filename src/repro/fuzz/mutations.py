"""Deliberately broken scheme variants for oracle self-tests.

A secure-speculation scheme answers *timing* questions (may this load
issue? is this operand tainted?) — its hooks cannot corrupt dataflow by
construction.  So a realistic "scheme bug" fixture must reach past the
hook interface: each mutation wraps the scheme's :meth:`attach` and
intercepts the core's architectural write path, introducing a
dataflow-visible bug the differential oracle is required to catch.

Mutations are addressed by name (plain strings travel in job specs and
repro files) and are deterministic: the Nth architectural write always
misbehaves, so a mutated run minimizes identically on every replay.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.common.errors import ConfigError
from repro.schemes import make_scheme
from repro.schemes.base import SecureScheme

#: Period of the write counter: every Nth architectural write misbehaves.
#: Small enough that a handful of instructions reproduce the bug (the
#: shrinker target), large enough that most writes are honest.
MUTATION_PERIOD = 3


def _install_commit_bitflip(scheme: SecureScheme) -> None:
    """Every Nth committed register write flips bit 1 of the value."""
    original_attach = scheme.attach

    def attach(core) -> None:
        original_attach(core)
        arch = core.arch
        original_write = arch.write_reg
        counter = {"writes": 0}

        def write_reg(index: int, value: int) -> None:
            counter["writes"] += 1
            if counter["writes"] % MUTATION_PERIOD == 0:
                value ^= 0b10
            original_write(index, value)

        arch.write_reg = write_reg

    scheme.attach = attach  # type: ignore[method-assign]


def _install_dropped_store(scheme: SecureScheme) -> None:
    """Every Nth committed memory write is silently discarded."""
    original_attach = scheme.attach

    def attach(core) -> None:
        original_attach(core)
        arch = core.arch
        original_write = arch.write_mem
        counter = {"writes": 0}

        def write_mem(address: int, value: int) -> None:
            counter["writes"] += 1
            if counter["writes"] % MUTATION_PERIOD == 0:
                return
            original_write(address, value)

        arch.write_mem = write_mem

    scheme.attach = attach  # type: ignore[method-assign]


MUTATIONS: Dict[str, Callable[[SecureScheme], None]] = {
    "commit-bitflip": _install_commit_bitflip,
    "dropped-store": _install_dropped_store,
}


def make_scheme_variant(
    name: str, mutation: Optional[str] = None
) -> SecureScheme:
    """A scheme instance, optionally with a named bug installed."""
    scheme = make_scheme(name)
    if mutation is not None:
        try:
            install = MUTATIONS[mutation]
        except KeyError:
            raise ConfigError(
                f"unknown mutation {mutation!r} (choose from "
                f"{sorted(MUTATIONS)})"
            ) from None
        install(scheme)
    return scheme
