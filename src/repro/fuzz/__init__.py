"""Differential fuzzing: generate, cross-check, minimize, replay.

The empirical counterpart to proof-based speculation safety: run seeded
random programs under the unsafe baseline and every secure scheme (×
idle_skip × guardrails) and demand identical architectural state
everywhere, with the invariant checker and watchdog silent throughout.

Layers (each importable on its own):

* :mod:`repro.fuzz.profiles` — knob-driven shape profiles.
* :mod:`repro.fuzz.generator` — (seed, profile) → terminating program.
* :mod:`repro.fuzz.differential` — the execution matrix and its oracle.
* :mod:`repro.fuzz.mutations` — injected scheme bugs for self-tests.
* :mod:`repro.fuzz.shrink` — delta-debugging minimizer.
* :mod:`repro.fuzz.corpus` — self-contained repro files / regression corpus.
* :mod:`repro.fuzz.session` — parallel campaigns over the job engine.
"""

from repro.fuzz.corpus import ReproFile, corpus_entries
from repro.fuzz.differential import (
    KIND_ARCH,
    KIND_CLEAN,
    KIND_ERROR,
    KIND_REFERENCE_LIMIT,
    KIND_STATS,
    MatrixReport,
    matrix_modes,
    run_matrix,
)
from repro.fuzz.generator import generate_program
from repro.fuzz.mutations import MUTATIONS, make_scheme_variant
from repro.fuzz.profiles import PROFILES, FuzzProfile, get_profile
from repro.fuzz.session import (
    DEFAULT_FUZZ_SCHEMES,
    Finding,
    FuzzJob,
    FuzzSession,
    FuzzSummary,
    execute_fuzz_job,
    replay_manifest,
)
from repro.fuzz.shrink import minimize

__all__ = [
    "DEFAULT_FUZZ_SCHEMES",
    "Finding",
    "FuzzJob",
    "FuzzProfile",
    "FuzzSession",
    "FuzzSummary",
    "KIND_ARCH",
    "KIND_CLEAN",
    "KIND_ERROR",
    "KIND_REFERENCE_LIMIT",
    "KIND_STATS",
    "MUTATIONS",
    "MatrixReport",
    "PROFILES",
    "ReproFile",
    "corpus_entries",
    "execute_fuzz_job",
    "generate_program",
    "get_profile",
    "make_scheme_variant",
    "matrix_modes",
    "minimize",
    "replay_manifest",
    "run_matrix",
]
