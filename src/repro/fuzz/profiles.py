"""Knob-driven shape profiles for the random program generator.

A :class:`FuzzProfile` is a bag of densities and depths describing what
kind of microarchitectural pressure a generated program should apply —
the UStress idea of parameterized stress streams, aimed at the corners
where secure-speculation schemes have historically broken: speculative
shadows (branch density), the load/store queues (load-after-store and
store bursts), delayed resolution (pointer chases), and each level of
the cache hierarchy (footprint targeting).

Profiles are plain data: they serialize into fuzz job specs and repro
files, and a (profile, seed) pair fully determines a program.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict, Mapping, Tuple

from repro.common.errors import ConfigError

#: Data footprint, in 8-byte words, that lands working sets at each level
#: of the *small_config* hierarchy (L1 2 KB, L2 16 KB, L3 64 KB).  A
#: footprint one level up overflows everything below it, so "l3" streams
#: miss L1+L2 and "dram" misses the whole hierarchy.
FOOTPRINT_WORDS: Dict[str, int] = {
    "l1": 128,  # 1 KB: fits L1
    "l2": 1024,  # 8 KB: overflows L1, fits L2
    "l3": 4096,  # 32 KB: overflows L2, fits L3
    "dram": 16384,  # 128 KB: overflows the whole hierarchy
}

#: Where generated programs put their data and output arrays.  Disjoint
#: so output stores never alias the pointer-chase data.
DATA_BASE = 0x100000
OUT_BASE = 0x400000


@dataclass(frozen=True)
class FuzzProfile:
    """One named shape for generated programs.

    Densities are weights, not probabilities: each body slot draws a
    kind proportionally to the densities, so they only need to be
    non-negative (and not all zero).
    """

    name: str
    length: int = 48
    """Instruction slots in the loop body (dynamic length ≈ length × trips)."""
    loop_trips: int = 2
    """How many times the outer loop runs (backward-branch pressure)."""
    alu_density: float = 4.0
    mul_density: float = 1.0
    """Long-latency ALU pressure (MUL keeps shadows open longer)."""
    branch_density: float = 2.0
    """Forward data-dependent branches (speculative shadow pressure)."""
    load_density: float = 3.0
    store_density: float = 1.5
    chase_density: float = 1.0
    """Dependent pointer-chase bursts (serial, delayed resolution)."""
    pointer_chase_depth: int = 3
    """Loads per chase burst, each address-dependent on the previous."""
    load_after_store: float = 1.0
    """Store immediately reread by a load (forwarding/LQ-SQ pressure)."""
    store_burst: int = 0
    """Extra consecutive stores per store slot (store-buffer saturation)."""
    target_level: str = "l1"
    """Which cache level the data footprint is sized to stress."""
    sequential_stride: int = 0
    """> 0 streams loads sequentially by this many words (prefetch-like
    access pattern) instead of drawing random offsets."""

    def validate(self) -> None:
        if self.length < 4:
            raise ConfigError(f"profile {self.name}: length must be >= 4")
        if self.loop_trips < 1:
            raise ConfigError(f"profile {self.name}: loop_trips must be >= 1")
        if self.target_level not in FOOTPRINT_WORDS:
            raise ConfigError(
                f"profile {self.name}: unknown target_level "
                f"{self.target_level!r} (choose from "
                f"{sorted(FOOTPRINT_WORDS)})"
            )
        if self.pointer_chase_depth < 1:
            raise ConfigError(
                f"profile {self.name}: pointer_chase_depth must be >= 1"
            )
        if self.store_burst < 0 or self.sequential_stride < 0:
            raise ConfigError(
                f"profile {self.name}: store_burst/sequential_stride must "
                "be >= 0"
            )
        densities = self.kind_weights()
        if any(weight < 0 for weight in densities.values()):
            raise ConfigError(f"profile {self.name}: densities must be >= 0")
        if sum(densities.values()) <= 0:
            raise ConfigError(f"profile {self.name}: all densities are zero")

    def kind_weights(self) -> Dict[str, float]:
        """Body-slot kinds and their draw weights."""
        return {
            "alu": self.alu_density,
            "mul": self.mul_density,
            "branch": self.branch_density,
            "load": self.load_density,
            "store": self.store_density,
            "chase": self.chase_density,
            "load_after_store": self.load_after_store,
        }

    @property
    def footprint_words(self) -> int:
        return FOOTPRINT_WORDS[self.target_level]

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FuzzProfile":
        unknown = set(payload) - set(cls.__dataclass_fields__)
        if unknown:
            raise ConfigError(
                f"unknown fuzz profile knob(s): {sorted(unknown)}"
            )
        profile = cls(**dict(payload))
        profile.validate()
        return profile


#: The named profile library: one entry per pressure corner.  ``default``
#: mixes everything lightly; the rest each push one axis hard.
PROFILES: Dict[str, FuzzProfile] = {
    profile.name: profile
    for profile in (
        FuzzProfile(name="default"),
        FuzzProfile(
            name="branchy",
            branch_density=6.0,
            alu_density=3.0,
            load_density=2.0,
            loop_trips=3,
        ),
        FuzzProfile(
            name="chase",
            chase_density=4.0,
            pointer_chase_depth=6,
            load_density=1.0,
            branch_density=1.0,
            target_level="l3",
        ),
        FuzzProfile(
            name="store_pressure",
            store_density=5.0,
            load_after_store=4.0,
            store_burst=4,
            load_density=1.0,
            branch_density=1.0,
        ),
        FuzzProfile(
            name="streaming",
            sequential_stride=1,
            load_density=6.0,
            branch_density=0.5,
            chase_density=0.0,
            target_level="dram",
            length=32,
        ),
    )
}


def get_profile(name: str) -> FuzzProfile:
    try:
        return PROFILES[name]
    except KeyError:
        raise ConfigError(
            f"unknown fuzz profile {name!r} (choose from {sorted(PROFILES)})"
        ) from None


def resolve_profiles(names: Tuple[str, ...]) -> Tuple[FuzzProfile, ...]:
    return tuple(get_profile(name) for name in names)
