"""Self-contained repro files and the checked-in regression corpus.

A :class:`ReproFile` is everything needed to re-observe one fuzz finding
with zero additional context: the generator seed and knob profile that
produced the program, the exact system config (plus its fingerprint, so
config drift is detectable), the scheme list and matrix shape, the
mutation (if the finding came from an oracle self-test), the verdict,
and the **minimized** program itself — serialized instruction by
instruction, with a human-readable listing alongside for triage.

Minimized findings get checked into ``tests/fuzz/corpus/`` where pytest
replays them forever: a finding fixed once stays fixed.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro.common.config import (
    SystemConfig,
    config_fingerprint,
    config_from_dict,
    config_to_dict,
)
from repro.common.errors import ConfigError
from repro.common.io import atomic_write_json
from repro.fuzz.differential import MatrixReport, run_matrix
from repro.isa.program import Program

REPRO_FORMAT_VERSION = 1


@dataclass
class ReproFile:
    """One minimized fuzz finding, replayable in isolation."""

    seed: int
    profile: Dict[str, Any]
    schemes: List[str]
    matrix: str
    config: Dict[str, Any]
    fingerprint: str
    kind: str
    divergences: List[str]
    program: Dict[str, Any]
    listing: str
    mutation: Optional[str] = None
    original_instructions: int = 0
    minimized_instructions: int = 0
    version: int = REPRO_FORMAT_VERSION
    extra: Dict[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_finding(
        cls,
        seed: int,
        profile: Dict[str, Any],
        schemes: Sequence[str],
        matrix: str,
        config: SystemConfig,
        report: MatrixReport,
        minimized: Program,
        original_length: int,
        mutation: Optional[str] = None,
    ) -> "ReproFile":
        return cls(
            seed=seed,
            profile=dict(profile),
            schemes=list(schemes),
            matrix=matrix,
            config=config_to_dict(config),
            fingerprint=config_fingerprint(config),
            kind=report.kind,
            divergences=list(report.divergences),
            program=minimized.to_dict(),
            listing=minimized.disassemble(),
            mutation=mutation,
            original_instructions=original_length,
            minimized_instructions=len(minimized),
        )

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": self.version,
            "seed": self.seed,
            "profile": self.profile,
            "schemes": self.schemes,
            "matrix": self.matrix,
            "config": self.config,
            "fingerprint": self.fingerprint,
            "kind": self.kind,
            "divergences": self.divergences,
            "mutation": self.mutation,
            "original_instructions": self.original_instructions,
            "minimized_instructions": self.minimized_instructions,
            "program": self.program,
            "listing": self.listing,
            "extra": self.extra,
        }

    def save(self, path: os.PathLike) -> Path:
        return atomic_write_json(path, self.to_dict(), indent=2)

    @classmethod
    def load(cls, path: os.PathLike) -> "ReproFile":
        source = Path(path)
        try:
            payload = json.loads(source.read_text())
        except (OSError, json.JSONDecodeError) as error:
            raise ConfigError(f"cannot read repro file {source}: {error}")
        if "program" not in payload:
            raise ConfigError(
                f"{source} is not a fuzz repro file (no 'program' entry)"
            )
        fields = {
            key: payload[key]
            for key in cls.__dataclass_fields__
            if key in payload
        }
        return cls(**fields)

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------
    def build_program(self) -> Program:
        return Program.from_dict(self.program)

    def build_config(self) -> SystemConfig:
        return config_from_dict(self.config)

    def replay(self, mutation: Optional[str] = "recorded") -> MatrixReport:
        """Re-run the recorded matrix on the recorded minimized program.

        ``mutation="recorded"`` (default) replays exactly what was
        captured — a mutation-sourced finding re-diverges, proving the
        repro file is faithful.  Pass ``mutation=None`` to replay on the
        *stock* simulator: corpus entries born from mutations must then
        come back clean, which is the regression guarantee the checked-in
        corpus enforces.
        """
        applied = self.mutation if mutation == "recorded" else mutation
        return run_matrix(
            self.build_program(),
            self.schemes,
            config=self.build_config(),
            matrix=self.matrix,
            mutation=applied,
        )

    def config_drifted(self) -> bool:
        """True when the recorded fingerprint no longer matches the
        recorded config (the file was edited inconsistently)."""
        return config_fingerprint(self.build_config()) != self.fingerprint


def corpus_entries(directory: os.PathLike) -> List[Path]:
    """Every repro file in a corpus directory, sorted for determinism."""
    root = Path(directory)
    if not root.is_dir():
        return []
    return sorted(root.glob("*.json"))
