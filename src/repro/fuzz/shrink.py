"""Delta-debugging shrinker: minimize a failing program.

Greedy chunked minimization (ddmin's core loop): try deleting ever
smaller chunks of instructions, keeping any deletion under which the
program *still fails the same way*, until no single instruction can be
removed.  Then shrink the data image and initial registers the same way.

Correctness details that make candidates well-formed:

* deleting instructions renumbers every branch target — targets are
  remapped through a ``bisect_left`` over the kept indices, so a branch
  keeps pointing at the same surviving instruction (or the next one
  after a deleted target);
* the trailing ``halt`` is never deleted: a program that runs off its
  end never sets ``halted`` and would "fail" for an uninteresting
  reason;
* the predicate decides "still fails the same way" (same divergence
  ``kind``), so the shrinker cannot wander from an architectural
  divergence to, say, a reference-interpreter budget blowup.

Everything here is deterministic: the same failing program and predicate
always minimize to the same result.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Callable, Dict, List, Sequence

from repro.common.errors import ConfigError
from repro.isa.instructions import Instruction, Opcode
from repro.isa.program import Program

Predicate = Callable[[Program], bool]
"""True iff the candidate still exhibits the original failure."""


def remap_instructions(
    instructions: Sequence[Instruction], kept: Sequence[int]
) -> List[Instruction]:
    """The instructions at ``kept`` (sorted original indices), with every
    branch target translated into the new numbering.

    A target that was deleted maps to the first surviving instruction at
    or after it; a target past the last kept index maps to the program
    end (an explicit exit, which the builder and interpreter both
    define).
    """
    out: List[Instruction] = []
    for index in kept:
        inst = instructions[index]
        if inst.is_branch:
            new_target = bisect_left(kept, inst.imm)
            if new_target != inst.imm:
                inst = Instruction(
                    inst.opcode,
                    rd=inst.rd,
                    rs1=inst.rs1,
                    rs2=inst.rs2,
                    imm=new_target,
                    label=inst.label,
                )
        out.append(inst)
    return out


def _subprogram(program: Program, kept: Sequence[int]) -> Program:
    return Program(
        remap_instructions(program.instructions, kept),
        initial_memory=program.initial_memory,
        initial_registers=program.initial_registers,
        name=program.name,
    )


def _minimize_instructions(program: Program, predicate: Predicate) -> Program:
    instructions = program.instructions
    # Indices the shrinker may delete; a trailing HALT is pinned.
    kept = list(range(len(instructions)))
    pinned = set()
    if instructions and instructions[-1].opcode is Opcode.HALT:
        pinned.add(len(instructions) - 1)

    chunk = max(1, len(kept) // 2)
    while chunk >= 1:
        index = 0
        while index < len(kept):
            window = [
                i for i in kept[index : index + chunk] if i not in pinned
            ]
            if not window:
                index += chunk
                continue
            candidate_kept = [i for i in kept if i not in set(window)]
            if candidate_kept and predicate(
                _subprogram(program, candidate_kept)
            ):
                kept = candidate_kept
                # Do not advance: the next chunk slid into this position.
            else:
                index += chunk
        chunk //= 2
    return _subprogram(program, kept)


def _minimize_mapping(
    program: Program,
    predicate: Predicate,
    which: str,
) -> Program:
    """Shrink ``initial_memory`` or ``initial_registers`` the same way."""
    mapping: Dict[int, int] = dict(getattr(program, which))
    keys = sorted(mapping)

    def rebuild(kept_keys: Sequence[int]) -> Program:
        trimmed = {key: mapping[key] for key in kept_keys}
        kwargs = {
            "initial_memory": program.initial_memory,
            "initial_registers": program.initial_registers,
            which: trimmed,
        }
        return Program(program.instructions, name=program.name, **kwargs)

    chunk = max(1, len(keys) // 2)
    while chunk >= 1 and keys:
        index = 0
        while index < len(keys):
            candidate_keys = keys[:index] + keys[index + chunk :]
            if predicate(rebuild(candidate_keys)):
                keys = candidate_keys
            else:
                index += chunk
        chunk //= 2
    return rebuild(keys)


def minimize(program: Program, predicate: Predicate) -> Program:
    """Minimize ``program`` while ``predicate`` keeps holding.

    ``predicate(program)`` must be True on entry (the caller observed the
    failure); the result is 1-minimal per pass: deleting any single
    remaining instruction, data word, or register seed makes the failure
    disappear or change kind.
    """
    if not predicate(program):
        raise ConfigError(
            f"{program.name}: predicate does not hold on the original "
            "program; nothing to minimize"
        )
    shrunk = _minimize_instructions(program, predicate)
    shrunk = _minimize_mapping(shrunk, predicate, "initial_memory")
    shrunk = _minimize_mapping(shrunk, predicate, "initial_registers")
    # Instruction deletions may have become possible after the data
    # image shrank (and vice versa); one more pass reaches a fixpoint in
    # practice for the program sizes the generator emits.
    shrunk = _minimize_instructions(shrunk, predicate)
    return shrunk
