"""Specflow policy metadata rule (RPL901).

The static leakage analyzer (:mod:`repro.analysis.specflow`) models each
scheme with a declarative :class:`~repro.analysis.specflow.policies.PolicyModel`
resolved from the scheme's ``specflow_policy`` string.  A scheme class
that forgets to declare one silently inherits its parent's policy — and
a *wrong* inherited policy is exactly how a static analyzer becomes
unsound (it would promise ``safe`` using the defenses of a different
scheme).  This rule makes the declaration a checked contract: every
scheme class must carry its own ``specflow_policy`` (a literal string
naming a known policy key) or an explicit ``specflow_opt_out``
acknowledging it is not modeled.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.registry import ModuleContext, Rule, register

#: Where scheme classes live.  ``repro.attacks.variants`` holds the
#: deliberately-weakened DoM variants used by the leakage evaluation.
SCHEME_SCOPES = ("repro.schemes", "repro.attacks.variants")


def _class_assign(node: ast.ClassDef, attr: str) -> Optional[ast.stmt]:
    """The class-level statement assigning ``attr``, if any."""
    for stmt in node.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id == attr:
                    return stmt
        elif isinstance(stmt, ast.AnnAssign):
            if isinstance(stmt.target, ast.Name) and stmt.target.id == attr:
                return stmt
    return None


def _assigned_value(stmt: ast.stmt) -> Optional[ast.expr]:
    if isinstance(stmt, ast.Assign):
        return stmt.value
    if isinstance(stmt, ast.AnnAssign):
        return stmt.value
    return None


def _is_scheme_class(node: ast.ClassDef) -> bool:
    """A scheme class is one declaring a literal ``name`` string.

    Every policy class in the scheme scopes identifies itself this way
    (it is how ``make_scheme`` and the result store key runs), so it is
    the stable marker — keying on base-class names would miss indirect
    subclasses defined against an aliased import.
    """
    stmt = _class_assign(node, "name")
    if stmt is None:
        return False
    value = _assigned_value(stmt)
    return isinstance(value, ast.Constant) and isinstance(value.value, str)


@register
class SpecflowPolicyDeclaredRule(Rule):
    rule_id = "RPL901"
    name = "specflow-policy-declared"
    rationale = (
        "a scheme class without its own specflow_policy inherits its "
        "parent's leakage model, and a wrong inherited model is how the "
        "static analyzer ends up certifying an undefended scheme as safe; "
        "every scheme must declare a known policy key or explicitly opt "
        "out of static analysis"
    )

    def check(self, ctx: ModuleContext) -> Iterator:
        if not ctx.in_package(*SCHEME_SCOPES):
            return
        from repro.analysis.specflow.policies import POLICY_KEYS

        for node in ctx.tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            if not _is_scheme_class(node):
                continue
            if _class_assign(node, "specflow_opt_out") is not None:
                continue
            policy_stmt = _class_assign(node, "specflow_policy")
            if policy_stmt is None:
                yield self.finding(
                    ctx,
                    node,
                    f"scheme class '{node.name}' declares neither "
                    f"'specflow_policy' nor 'specflow_opt_out'; the static "
                    f"leakage analyzer would silently use an inherited "
                    f"policy (known keys: {', '.join(POLICY_KEYS)})",
                )
                continue
            value = _assigned_value(policy_stmt)
            if not (isinstance(value, ast.Constant) and isinstance(value.value, str)):
                yield self.finding(
                    ctx,
                    policy_stmt,
                    f"scheme class '{node.name}' must assign "
                    f"'specflow_policy' a literal string so the policy is "
                    f"auditable without executing the module",
                )
                continue
            if value.value not in POLICY_KEYS:
                yield self.finding(
                    ctx,
                    policy_stmt,
                    f"scheme class '{node.name}' declares unknown specflow "
                    f"policy {value.value!r}; known keys: "
                    f"{', '.join(POLICY_KEYS)}",
                )
