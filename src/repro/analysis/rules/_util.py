"""Shared AST helpers for reprolint rules."""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def terminal_name(node: ast.AST) -> Optional[str]:
    """The last component of a Name/Attribute chain (``a.b.c`` → ``c``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def walk_runtime(tree: ast.AST) -> Iterator[ast.AST]:
    """Like ``ast.walk`` but skipping ``if TYPE_CHECKING:`` bodies.

    Type-only imports never execute, so import-graph rules must not count
    them (they are the sanctioned way to annotate across layers).
    """
    stack: List[ast.AST] = [tree]
    while stack:
        node = stack.pop()
        if isinstance(node, ast.If) and _is_type_checking_test(node.test):
            stack.extend(node.orelse)
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _is_type_checking_test(test: ast.AST) -> bool:
    name = dotted_name(test)
    return name in ("TYPE_CHECKING", "typing.TYPE_CHECKING", "t.TYPE_CHECKING")


def imported_modules(tree: ast.AST, module: str) -> List[Tuple[str, ast.AST]]:
    """Every runtime-imported module as a dotted name, with its AST node.

    ``from X import y`` contributes ``X`` (and ``X.y`` when ``y`` is
    plausibly a submodule is not distinguishable statically, so the
    coarser ``X`` prefix is what layering contracts match on).  Relative
    imports are resolved against ``module``.
    """
    out: List[Tuple[str, ast.AST]] = []
    for node in walk_runtime(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                out.append((alias.name, node))
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                package_parts = module.split(".")
                # level 1 = current package: drop only the module's own
                # last component; each extra level drops one package.
                keep = len(package_parts) - node.level
                if keep < 0:
                    keep = 0
                prefix = ".".join(package_parts[:keep])
                base = f"{prefix}.{base}" if base and prefix else (prefix or base)
            if base:
                out.append((base, node))
    return out


def function_defs(tree: ast.Module) -> List[ast.FunctionDef]:
    """Module-level function definitions (sync and async)."""
    return [
        node
        for node in tree.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]


def module_level_names(tree: ast.Module) -> Set[str]:
    """Names bound at module scope (defs, classes, imports, assignments)."""
    names: Set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(node.name)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                names.add((alias.asname or alias.name).split(".")[0])
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                for element in ast.walk(target):
                    if isinstance(element, ast.Name):
                        names.add(element.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            names.add(node.target.id)
    return names


def is_dataclass_def(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if dotted_name(target) in ("dataclass", "dataclasses.dataclass"):
            return True
    return False


def dataclass_field_names(node: ast.ClassDef) -> List[str]:
    """Annotated (non-ClassVar) field names of a dataclass body."""
    fields: List[str] = []
    for statement in node.body:
        if not isinstance(statement, ast.AnnAssign):
            continue
        if not isinstance(statement.target, ast.Name):
            continue
        annotation = ast.unparse(statement.annotation)
        if "ClassVar" in annotation:
            continue
        fields.append(statement.target.id)
    return fields


def string_elements(node: ast.AST) -> Optional[Set[str]]:
    """The string constants of a set/list/tuple display or a
    frozenset/set/tuple/list call over one; None when not statically a
    collection of string literals."""
    if isinstance(node, ast.Call):
        callee = dotted_name(node.func)
        if callee in ("frozenset", "set", "tuple", "list") and len(node.args) == 1:
            return string_elements(node.args[0])
        if callee in ("frozenset", "set", "tuple", "list") and not node.args:
            return set()
        return None
    if isinstance(node, (ast.Set, ast.List, ast.Tuple)):
        out: Set[str] = set()
        for element in node.elts:
            if isinstance(element, ast.Constant) and isinstance(element.value, str):
                out.add(element.value)
            else:
                return None
        return out
    return None
