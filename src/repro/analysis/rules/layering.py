"""Import-layering rule (RPL401).

The simulator's layers are a dependency *tower*, not a web:

* ``repro.schemes`` are policy strategy objects; they may see the
  pipeline only through the :mod:`repro.schemes.base` interface so each
  scheme stays a reviewable statement of its paper's policy rather than
  reaching into core internals.
* ``repro.memory`` models the hierarchy below the core and must not
  import the pipeline above it (drivers that run a core against memory
  live in the harness).
* ``repro.guardrails`` *observes* the simulator; the simulated machine
  must never import its own observers (the core reaches guardrails only
  through the :mod:`repro.pipeline.hooks` inversion point, wired by the
  top-level package).

``if TYPE_CHECKING:`` imports are exempt — they never execute, and are
the sanctioned way to annotate across layers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

from repro.analysis.registry import ModuleContext, Rule, register
from repro.analysis.rules._util import imported_modules


@dataclass(frozen=True)
class LayerContract:
    """Modules under ``scope`` must not import ``forbidden``."""

    scope: str
    forbidden: str
    exempt: Tuple[str, ...] = ()
    why: str = ""


CONTRACTS: Tuple[LayerContract, ...] = (
    LayerContract(
        scope="repro.schemes",
        forbidden="repro.pipeline",
        exempt=("repro.schemes.base",),
        why="schemes reach the pipeline only through schemes.base, which "
        "re-exports the uop vocabulary they need",
    ),
    LayerContract(
        scope="repro.memory",
        forbidden="repro.pipeline",
        why="the memory hierarchy sits below the core; code that drives a "
        "core against memory belongs in the harness",
    ),
    LayerContract(
        scope="repro.schemes",
        forbidden="repro.analysis",
        why="schemes declare their specflow policy as a plain string "
        "(specflow_policy) precisely so the policy layer never depends on "
        "the analyzer; the analyzer resolves the string on its side",
    ),
    *(
        LayerContract(
            scope=scope,
            forbidden="repro.guardrails",
            why="the simulated machine must not import its own observers; "
            "guardrails attach through repro.pipeline.hooks",
        )
        for scope in (
            "repro.pipeline",
            "repro.memory",
            "repro.schemes",
            "repro.predictors",
            "repro.doppelganger",
            "repro.isa",
        )
    ),
)


def _in_scope(module: str, prefix: str) -> bool:
    return module == prefix or module.startswith(prefix + ".")


@register
class LayeringRule(Rule):
    rule_id = "RPL401"
    name = "layering"
    rationale = (
        "upward or sideways imports couple layers that must stay "
        "independently testable and refactorable, and are how import "
        "cycles start; each layer contract names the sanctioned path"
    )

    def check(self, ctx: ModuleContext) -> Iterator:
        for contract in CONTRACTS:
            if not _in_scope(ctx.module, contract.scope):
                continue
            if any(_in_scope(ctx.module, e) for e in contract.exempt):
                continue
            for imported, node in imported_modules(ctx.tree, ctx.module):
                if _in_scope(imported, contract.forbidden):
                    yield self.finding(
                        ctx,
                        node,
                        f"{contract.scope} module imports '{imported}' "
                        f"(forbidden layer {contract.forbidden}): "
                        f"{contract.why}",
                    )
