"""Fingerprint-completeness rule (RPL201).

PR 1's worst bug was a stale-memo: the sweep cache keyed runs by a config
fingerprint that silently omitted fields, so changing those knobs
returned cached results from a *different* experiment.  The fingerprint
now serializes the whole config via ``asdict`` and drops fields only
through explicit ``payload.pop("<field>", ...)`` calls, each of which
must be sanctioned by the module-level ``FINGERPRINT_EXCLUDED_FIELDS``
constant.  This rule statically enforces that three-way agreement:

* every popped field is on the exclusion list (deleting a list entry
  while the pop remains fires — the exclusion must stay deliberate);
* every exclusion-list entry corresponds to a pop (a stale entry would
  claim a field is excluded when it actually keys the cache);
* every exclusion-list entry names a real field of the root config
  dataclass (renames can't leave ghosts behind);
* the fingerprint's payload provably covers every field, i.e. it comes
  from ``asdict``/``config_to_dict`` — a hand-built dict cannot be
  verified field-by-field and is rejected outright.

The rule fires on any module that defines ``config_fingerprint`` (which
is what lets fixture tests exercise it without the real config module).
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set

from repro.analysis.registry import ModuleContext, Rule, register
from repro.analysis.rules._util import (
    dataclass_field_names,
    dotted_name,
    is_dataclass_def,
    string_elements,
)

EXCLUSION_CONSTANT = "FINGERPRINT_EXCLUDED_FIELDS"
FINGERPRINT_FUNCTION = "config_fingerprint"
ROOT_CONFIG_CLASS = "SystemConfig"
_SERIALIZERS = ("asdict", "dataclasses.asdict", "config_to_dict")


@register
class FingerprintCompletenessRule(Rule):
    rule_id = "RPL201"
    name = "fingerprint-completeness"
    rationale = (
        "a config field missing from the cache fingerprint makes two "
        "different experiments share a cache entry (the PR-1 stale-memo "
        "bug); every dropped field must be a deliberate, listed exclusion"
    )

    def check(self, ctx: ModuleContext) -> Iterator:
        fingerprint = _find_function(ctx.tree, FINGERPRINT_FUNCTION)
        if fingerprint is None:
            return

        excluded = _find_exclusion_constant(ctx.tree)
        if excluded is None:
            yield self.finding(
                ctx,
                fingerprint,
                f"{FINGERPRINT_FUNCTION} exists but no statically-readable "
                f"{EXCLUSION_CONSTANT} constant of string literals is "
                f"defined alongside it",
            )
            return

        payload_var = _payload_variable(fingerprint)
        if payload_var is None:
            yield self.finding(
                ctx,
                fingerprint,
                f"{FINGERPRINT_FUNCTION} does not build its payload via "
                f"asdict/config_to_dict, so field coverage cannot be "
                f"statically verified",
            )
            return

        pops = _literal_pops(fingerprint, payload_var)
        for node, name in pops:
            if name is None:
                yield self.finding(
                    ctx,
                    node,
                    f"{FINGERPRINT_FUNCTION} drops a payload field with a "
                    f"non-literal key; exclusions must be string literals "
                    f"sanctioned by {EXCLUSION_CONSTANT}",
                )
        popped = {name for _, name in pops if name is not None}

        for node, name in pops:
            if name is not None and name not in excluded:
                yield self.finding(
                    ctx,
                    node,
                    f"field '{name}' is dropped from the fingerprint but is "
                    f"not on {EXCLUSION_CONSTANT} — either stop dropping it "
                    f"or add it to the exclusion list with a rationale",
                )
        for name in sorted(excluded - popped):
            yield self.finding(
                ctx,
                fingerprint,
                f"{EXCLUSION_CONSTANT} lists '{name}' but "
                f"{FINGERPRINT_FUNCTION} never drops it — the field is "
                f"actually fingerprinted; remove the stale entry",
            )

        root_fields = _root_config_fields(ctx.tree)
        if root_fields is not None:
            for name in sorted(excluded - set(root_fields)):
                yield self.finding(
                    ctx,
                    fingerprint,
                    f"{EXCLUSION_CONSTANT} lists '{name}' which is not a "
                    f"field of {ROOT_CONFIG_CLASS}",
                )


def _find_function(tree: ast.Module, name: str) -> Optional[ast.FunctionDef]:
    for node in tree.body:
        if isinstance(node, ast.FunctionDef) and node.name == name:
            return node
    return None


def _find_exclusion_constant(tree: ast.Module) -> Optional[Set[str]]:
    for node in tree.body:
        if isinstance(node, ast.Assign):
            targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
            if EXCLUSION_CONSTANT in targets:
                return string_elements(node.value)
        elif (
            isinstance(node, ast.AnnAssign)
            and isinstance(node.target, ast.Name)
            and node.target.id == EXCLUSION_CONSTANT
            and node.value is not None
        ):
            return string_elements(node.value)
    return None


def _payload_variable(fn: ast.FunctionDef) -> Optional[str]:
    """The local assigned from asdict/config_to_dict, if any."""
    for node in ast.walk(fn):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            callee = dotted_name(node.value.func)
            if callee in _SERIALIZERS:
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        return target.id
    return None


def _literal_pops(fn: ast.FunctionDef, payload_var: str) -> List:
    """Every ``payload.pop(<key>, ...)`` as (node, literal-or-None)."""
    out = []
    for node in ast.walk(fn):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not (
            isinstance(func, ast.Attribute)
            and func.attr in ("pop", "__delitem__")
            and isinstance(func.value, ast.Name)
            and func.value.id == payload_var
        ):
            continue
        if node.args and isinstance(node.args[0], ast.Constant) and isinstance(
            node.args[0].value, str
        ):
            out.append((node, node.args[0].value))
        else:
            out.append((node, None))
    return out


def _root_config_fields(tree: ast.Module) -> Optional[List[str]]:
    for node in tree.body:
        if (
            isinstance(node, ast.ClassDef)
            and node.name == ROOT_CONFIG_CLASS
            and is_dataclass_def(node)
        ):
            return dataclass_field_names(node)
    return None
