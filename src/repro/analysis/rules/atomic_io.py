"""Atomic-persistence rule (RPL801).

The harness stack survives worker crashes, kill -9, and disk-full by
construction — but only if every artifact it persists goes through a
temp-file + ``os.replace`` rename.  A plain ``open(path, "w")`` +
``json.dump`` (or ``path.write_text(json.dumps(...))``) can be torn
mid-write by a crash or ENOSPC, leaving a half-written JSON file that
the next reader sees as garbage.  The result store quarantines torn
*cache entries*, but manifests, repro files, baselines, and reports have
no checksum envelope; for those, atomicity at write time is the only
defense.

The rule is scoped to the packages that persist campaign state
(``repro.harness``, ``repro.guardrails``, ``repro.fuzz``) and is
satisfied by an atomic rename anywhere in the same function scope —
``os.replace(tmp, path)`` or the one-argument ``Path.replace(target)``
form.  ``str.replace(old, new)`` takes two arguments and does not
count.  The sanctioned helpers live in :mod:`repro.common.io`.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Tuple

from repro.analysis.registry import ModuleContext, Rule, register
from repro.analysis.rules._util import dotted_name

#: Packages whose JSON artifacts must survive a crash mid-write.
PERSISTENT_PACKAGES: Tuple[str, ...] = (
    "repro.harness",
    "repro.guardrails",
    "repro.fuzz",
)


def _scope_nodes(scope: ast.AST) -> Iterator[ast.AST]:
    """Nodes belonging to ``scope`` itself, not to nested function scopes."""
    stack = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            stack.extend(ast.iter_child_nodes(node))


def _scopes(tree: ast.Module) -> List[ast.AST]:
    """Module scope plus every (possibly nested) function scope."""
    out: List[ast.AST] = [tree]
    out.extend(
        node
        for node in ast.walk(tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    )
    return out


def _is_json_dump(call: ast.Call) -> bool:
    return (
        isinstance(call.func, ast.Attribute)
        and call.func.attr == "dump"
        and dotted_name(call.func) == "json.dump"
    )


def _is_write_text_of_dumps(call: ast.Call) -> bool:
    if not (
        isinstance(call.func, ast.Attribute)
        and call.func.attr == "write_text"
        and call.args
    ):
        return False
    for node in ast.walk(call.args[0]):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "dumps"
            and dotted_name(node.func) == "json.dumps"
        ):
            return True
    return False


def _is_atomic_rename(call: ast.Call) -> bool:
    """``os.replace(tmp, target)`` or one-argument ``Path.replace(target)``.

    ``str.replace(old, new)`` is a two-argument method call on a
    non-``os`` receiver and deliberately does not qualify.
    """
    if not (
        isinstance(call.func, ast.Attribute) and call.func.attr == "replace"
    ):
        return False
    if dotted_name(call.func) == "os.replace":
        return True
    return len(call.args) == 1 and not call.keywords


@register
class AtomicJsonWriteRule(Rule):
    rule_id = "RPL801"
    name = "non-atomic-json-write"
    rationale = (
        "a plain open+json.dump (or write_text(json.dumps(...))) can be "
        "torn by a crash or disk-full mid-write, leaving corrupt campaign "
        "state for the next reader; write a temp file and os.replace() it "
        "into place (repro.common.io.atomic_write_json)"
    )

    def check(self, ctx: ModuleContext) -> Iterator:
        if not ctx.in_package(*PERSISTENT_PACKAGES):
            return
        for scope in _scopes(ctx.tree):
            writes: List[Tuple[ast.Call, str]] = []
            atomic = False
            for node in _scope_nodes(scope):
                if not isinstance(node, ast.Call):
                    continue
                if _is_json_dump(node):
                    writes.append((node, "json.dump to an open file"))
                elif _is_write_text_of_dumps(node):
                    writes.append((node, "write_text(json.dumps(...))"))
                elif _is_atomic_rename(node):
                    atomic = True
            if atomic:
                continue
            for call, kind in writes:
                yield self.finding(
                    ctx,
                    call,
                    f"{kind} without a temp-file + os.replace rename can "
                    f"be torn by a crash mid-write; use "
                    f"repro.common.io.atomic_write_json",
                )
