"""Determinism rules (RPL101/RPL102/RPL103).

The result cache keys runs purely by (benchmark, scheme, windows, config
fingerprint) and the parallel sweep promises bit-identical results for
``jobs=1`` and ``jobs=N`` — both rest on the simulator being a pure
function of its inputs.  Nondeterminism inside the simulated machine
(wall-clock reads, unseeded randomness, iteration order that depends on
hashing or allocation addresses) silently breaks that contract: cached
numbers stop being reproducible without any test failing.

These rules apply only to the simulated-machine packages
(:data:`SIMULATOR_SCOPE`); the harness may time things and workloads may
use seeded randomness to *build* programs.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Set

from repro.analysis.registry import ModuleContext, Rule, register
from repro.analysis.rules._util import dotted_name

#: Packages whose code executes inside the simulated machine.
SIMULATOR_SCOPE = (
    "repro.pipeline",
    "repro.memory",
    "repro.schemes",
    "repro.predictors",
    "repro.doppelganger",
)

#: Modules whose mere presence in simulator code is suspect.
NONDETERMINISTIC_MODULES = {"random", "time", "secrets", "uuid"}

#: (module, attribute) calls that are always nondeterministic.  The
#: ``random.Random`` *constructor* is exempt: a seeded instance is
#: deterministic by construction (replacement policies use one).
_EXEMPT_CALLS = {("random", "Random")}


@register
class NondeterministicCallRule(Rule):
    rule_id = "RPL101"
    name = "nondeterministic-call"
    rationale = (
        "unseeded randomness or wall-clock reads in simulator code make "
        "results differ run-to-run, poisoning the sweep result cache and "
        "the jobs=1 == jobs=N bit-identity guarantee"
    )

    def check(self, ctx: ModuleContext) -> Iterator:
        if not ctx.in_package(*SIMULATOR_SCOPE):
            return
        # First pass: aliases, so `import time as _t; _t.time()` is still
        # resolved to the real module on the second pass.
        aliases: Dict[str, str] = {}
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root in NONDETERMINISTIC_MODULES:
                        aliases[alias.asname or root] = root
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root in NONDETERMINISTIC_MODULES:
                        yield self.finding(
                            ctx,
                            node,
                            f"import of nondeterministic module '{root}' in "
                            f"simulator code (seeded random.Random instances "
                            f"are allowed — suppress or baseline with a "
                            f"justification)",
                        )
            elif isinstance(node, ast.ImportFrom):
                root = (node.module or "").split(".")[0]
                if root in NONDETERMINISTIC_MODULES:
                    yield self.finding(
                        ctx,
                        node,
                        f"import from nondeterministic module '{root}' in "
                        f"simulator code",
                    )
            elif isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name is None or "." not in name:
                    continue
                head, attr = name.split(".", 1)
                module = aliases.get(head, head)
                if (
                    module in NONDETERMINISTIC_MODULES
                    and (module, attr) not in _EXEMPT_CALLS
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"call to nondeterministic '{module}.{attr}()' in "
                        f"simulator code breaks run-to-run reproducibility",
                    )


def _is_set_display(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        return dotted_name(node.func) in ("set", "frozenset") and True
    return False


def _annotation_is_set(annotation: ast.AST) -> bool:
    text = ast.unparse(annotation)
    head = text.split("[", 1)[0].strip()
    return head.split(".")[-1] in ("Set", "FrozenSet", "set", "frozenset")


class _SetSymbols(ast.NodeVisitor):
    """Collects names (``x``) and self-attributes (``self.x``) that are
    bound to set values or annotated as sets anywhere in the module."""

    def __init__(self) -> None:
        self.names: Set[str] = set()

    def _record_target(self, target: ast.AST) -> None:
        if isinstance(target, ast.Name):
            self.names.add(target.id)
        elif isinstance(target, ast.Attribute) and isinstance(
            target.value, ast.Name
        ) and target.value.id == "self":
            self.names.add(f"self.{target.attr}")

    def visit_Assign(self, node: ast.Assign) -> None:
        if _is_set_display(node.value):
            for target in node.targets:
                self._record_target(target)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if _annotation_is_set(node.annotation) or (
            node.value is not None and _is_set_display(node.value)
        ):
            self._record_target(node.target)
        self.generic_visit(node)


@register
class SetIterationRule(Rule):
    rule_id = "RPL102"
    name = "set-iteration"
    rationale = (
        "iterating a set in simulator code visits elements in hash order, "
        "which for str/object elements varies between interpreter "
        "invocations — wrap the iteration in sorted() or use an "
        "insertion-ordered structure"
    )

    def check(self, ctx: ModuleContext) -> Iterator:
        if not ctx.in_package(*SIMULATOR_SCOPE):
            return
        symbols = _SetSymbols()
        symbols.visit(ctx.tree)

        def names_set(expr: ast.AST) -> bool:
            if _is_set_display(expr):
                return True
            if isinstance(expr, ast.Name):
                return expr.id in symbols.names
            if isinstance(expr, ast.Attribute) and isinstance(
                expr.value, ast.Name
            ) and expr.value.id == "self":
                return f"self.{expr.attr}" in symbols.names
            return False

        for node in ast.walk(ctx.tree):
            iters = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            elif isinstance(node, ast.Call) and dotted_name(node.func) in (
                "list",
                "tuple",
            ):
                iters.extend(node.args[:1])
            for expr in iters:
                # sorted(...) fixes the order; anything through it is fine.
                if isinstance(expr, ast.Call) and dotted_name(expr.func) == "sorted":
                    continue
                if names_set(expr):
                    yield self.finding(
                        ctx,
                        expr,
                        "iteration over a bare set has hash-dependent order; "
                        "sort it (sorted(...)) or keep an ordered structure",
                    )


@register
class IdOrderingRule(Rule):
    rule_id = "RPL103"
    name = "id-ordering"
    rationale = (
        "id() is an allocation address: ordering, keying, or hashing on "
        "it differs between runs and between jobs=1 and jobs=N workers"
    )

    def check(self, ctx: ModuleContext) -> Iterator:
        if not ctx.in_package(*SIMULATOR_SCOPE):
            return
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "id"
            ):
                yield self.finding(
                    ctx,
                    node,
                    "id() in simulator code is allocation-order dependent; "
                    "key on seq numbers or another deterministic identity",
                )
            elif isinstance(node, ast.keyword) and node.arg == "key":
                if isinstance(node.value, ast.Name) and node.value.id == "id":
                    yield self.finding(
                        ctx,
                        node.value,
                        "sorting with key=id orders by allocation address",
                    )
