"""Worker-safety rules (RPL501/RPL502).

The parallel sweep pickles callables by qualified name into a
``ProcessPoolExecutor``.  A lambda, nested function, or bound method
submitted to the pool fails only *at runtime*, and only on spawn-based
platforms — exactly the kind of works-on-my-machine breakage a fleet CI
catches late.  And a worker entry point that mutates module-level state
silently diverges between ``jobs=1`` (shared interpreter) and ``jobs=N``
(per-process copies), the other half of the bit-identity guarantee.

Both rules activate only in modules that use ``ProcessPoolExecutor``;
thread pools have neither constraint.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set

from repro.analysis.registry import ModuleContext, Rule, register
from repro.analysis.rules._util import dotted_name, module_level_names

#: Method names that mutate their receiver in place.
_MUTATORS = {
    "append",
    "add",
    "update",
    "pop",
    "popleft",
    "remove",
    "discard",
    "extend",
    "insert",
    "clear",
    "setdefault",
    "appendleft",
}


def _uses_process_pool(tree: ast.Module) -> bool:
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom):
            if any(a.name == "ProcessPoolExecutor" for a in node.names):
                return True
        elif isinstance(node, ast.Attribute):
            if node.attr == "ProcessPoolExecutor":
                return True
    return False


def _submit_calls(tree: ast.Module) -> List[ast.Call]:
    return [
        node
        for node in ast.walk(tree)
        if isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "submit"
    ]


def _nested_defs(tree: ast.Module) -> Set[str]:
    """Names of functions defined anywhere *below* module level."""
    nested: Set[str] = set()
    for top in ast.walk(tree):
        if not isinstance(top, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        for node in ast.walk(top):
            if node is top:
                continue
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                nested.add(node.name)
    return nested


@register
class PicklableSubmitRule(Rule):
    rule_id = "RPL501"
    name = "unpicklable-submit"
    rationale = (
        "ProcessPoolExecutor pickles submitted callables by qualified "
        "name; lambdas, nested functions, and bound methods break at "
        "runtime (and only on spawn platforms) — submit a module-level "
        "function"
    )

    def check(self, ctx: ModuleContext) -> Iterator:
        if not _uses_process_pool(ctx.tree):
            return
        top_level = module_level_names(ctx.tree)
        nested = _nested_defs(ctx.tree)
        for call in _submit_calls(ctx.tree):
            if not call.args:
                continue
            target = call.args[0]
            if isinstance(target, ast.Lambda):
                yield self.finding(
                    ctx,
                    target,
                    "lambda submitted to a process pool is not picklable; "
                    "use a module-level function",
                )
            elif isinstance(target, ast.Attribute):
                yield self.finding(
                    ctx,
                    target,
                    f"'{dotted_name(target) or target.attr}' submitted to a "
                    f"process pool looks like a bound method or nested "
                    f"attribute; submit a module-level function",
                )
            elif isinstance(target, ast.Name):
                if target.id in nested and target.id not in top_level:
                    yield self.finding(
                        ctx,
                        target,
                        f"'{target.id}' is defined inside a function; "
                        f"process-pool workers must be module-level "
                        f"(picklable by qualified name)",
                    )


@register
class WorkerGlobalMutationRule(Rule):
    rule_id = "RPL502"
    name = "worker-global-mutation"
    rationale = (
        "a worker entry point that mutates module-level state behaves "
        "differently inline (jobs=1, shared interpreter) and pooled "
        "(jobs=N, per-process copies), silently breaking the "
        "bit-identity guarantee between the two"
    )

    def check(self, ctx: ModuleContext) -> Iterator:
        if not _uses_process_pool(ctx.tree):
            return
        worker_names = self._worker_entry_points(ctx.tree)
        if not worker_names:
            return
        module_funcs: Dict[str, ast.FunctionDef] = {
            node.name: node
            for node in ctx.tree.body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        module_vars = self._module_variables(ctx.tree)
        for name in sorted(worker_names):
            fn = module_funcs.get(name)
            if fn is None:
                continue
            yield from self._check_worker(ctx, fn, module_vars)

    @staticmethod
    def _worker_entry_points(tree: ast.Module) -> Set[str]:
        names: Set[str] = set()
        for call in _submit_calls(tree):
            if call.args and isinstance(call.args[0], ast.Name):
                names.add(call.args[0].id)
        return names

    @staticmethod
    def _module_variables(tree: ast.Module) -> Set[str]:
        """Module-level *data* bindings (not functions/classes/imports)."""
        out: Set[str] = set()
        for node in tree.body:
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        out.add(target.id)
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                out.add(node.target.id)
        return out

    def _check_worker(
        self, ctx: ModuleContext, fn: ast.FunctionDef, module_vars: Set[str]
    ) -> Iterator:
        local_shadows: Set[str] = {arg.arg for arg in fn.args.args}
        for node in ast.walk(fn):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        local_shadows.add(target.id)
        for node in ast.walk(fn):
            if isinstance(node, ast.Global):
                yield self.finding(
                    ctx,
                    node,
                    f"worker '{fn.name}' declares global "
                    f"{', '.join(node.names)}; workers must not mutate "
                    f"module-level state",
                )
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    root = self._root_name(target)
                    if (
                        root is not None
                        and root in module_vars
                        and root not in local_shadows
                        and not isinstance(target, ast.Name)
                    ):
                        yield self.finding(
                            ctx,
                            node,
                            f"worker '{fn.name}' mutates module-level "
                            f"'{root}'",
                        )
            elif isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                receiver = node.func.value
                if (
                    isinstance(receiver, ast.Name)
                    and node.func.attr in _MUTATORS
                    and receiver.id in module_vars
                    and receiver.id not in local_shadows
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"worker '{fn.name}' calls mutating "
                        f"'{receiver.id}.{node.func.attr}()' on "
                        f"module-level state",
                    )

    @staticmethod
    def _root_name(target: ast.AST) -> Optional[str]:
        while isinstance(target, (ast.Attribute, ast.Subscript)):
            target = target.value
        if isinstance(target, ast.Name):
            return target.id
        return None
