"""Typed-errors rule (RPL301).

PR 2's fault-tolerant sweep classifies worker failures as *deterministic*
(a :class:`~repro.common.errors.ReproError` — retrying is pointless, the
simulator is a pure function) or *transient* (anything else — retry with
backoff).  A simulator bug surfacing as a bare ``ValueError`` is
therefore retried as if it were a flaky environment problem, wasting a
retry budget and mislabelling the failure manifest.  Every ``raise``
under ``src/repro/`` must raise a ``ReproError`` subclass so the
classification stays sound.

Resolution is conservative: only *provable* violations fire — raising a
builtin exception by name.  Re-raises (``raise``), raising variables, and
names this rule cannot resolve are skipped rather than guessed at.
"""

from __future__ import annotations

import ast
import builtins
from typing import Iterator, Optional, Set

from repro.analysis.registry import ModuleContext, Rule, register
from repro.analysis.rules._util import dotted_name, terminal_name

#: Builtin exception names (anything raisable from builtins).
BUILTIN_EXCEPTIONS: Set[str] = {
    name
    for name in dir(builtins)
    if isinstance(getattr(builtins, name), type)
    and issubclass(getattr(builtins, name), BaseException)
}


def _known_repro_errors() -> Set[str]:
    """Names of every ReproError subclass in the live error module."""
    from repro.common import errors as errors_module

    known = set()
    for name in dir(errors_module):
        obj = getattr(errors_module, name)
        if isinstance(obj, type) and issubclass(obj, errors_module.ReproError):
            known.add(name)
    return known


def _local_error_classes(tree: ast.Module, known: Set[str]) -> Set[str]:
    """Classes in this module deriving (transitively) from a known error."""
    local = set(known)
    changed = True
    while changed:
        changed = False
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef) or node.name in local:
                continue
            for base in node.bases:
                base_name = terminal_name(base)
                if base_name in local:
                    local.add(node.name)
                    changed = True
                    break
    return local


@register
class TypedRaiseRule(Rule):
    rule_id = "RPL301"
    name = "untyped-raise"
    rationale = (
        "raising a builtin exception from simulator code defeats the "
        "deterministic-vs-transient failure classification of the "
        "parallel sweep's retry logic (the PR-2 bug class); raise a "
        "ReproError subclass from repro.common.errors instead"
    )

    def check(self, ctx: ModuleContext) -> Iterator:
        known = _local_error_classes(ctx.tree, _known_repro_errors())
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            name = self._raised_class_name(node.exc)
            if name is None:
                continue
            if name in known:
                continue
            if name in BUILTIN_EXCEPTIONS:
                yield self.finding(
                    ctx,
                    node,
                    f"raise of builtin '{name}' — raise a ReproError "
                    f"subclass so sweep retry classification stays typed",
                )

    @staticmethod
    def _raised_class_name(exc: ast.AST) -> Optional[str]:
        """The class name being raised, when statically resolvable.

        ``raise X(...)`` and ``raise X`` resolve to ``X``;
        ``raise errors.X(...)`` resolves to ``X``.  Anything else —
        variables holding exception instances, calls returning
        exceptions — is unresolvable and skipped.
        """
        target = exc.func if isinstance(exc, ast.Call) else exc
        name = dotted_name(target)
        if name is None:
            return None
        leaf = name.split(".")[-1]
        # Heuristic: class names are CapWords; `raise error` is a variable.
        if not leaf[:1].isupper():
            return None
        return leaf
