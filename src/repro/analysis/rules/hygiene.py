"""Hygiene rules (RPL601/RPL602).

RPL601 (mutable default arguments) is the classic Python trap with a
simulator-specific sting: a default ``[]`` on a config or harness helper
is shared across *every* run in a sweep, so the first run's state leaks
into the second — another way to get silently-wrong cached numbers.

RPL602 (unregistered stat counters) guards the flat-attribute design of
:class:`repro.common.stats.SimStats`: counters are plain attributes for
speed, so ``stats.l1_hitz += 1`` (a typo) raises ``AttributeError`` only
with luck — an *assignment* typo creates a brand-new attribute, the real
counter stays 0, and the figure built from it is quietly wrong.  Every
``<...>.stats.<name>`` mutation must name a declared SimStats field.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set

from repro.analysis.registry import ModuleContext, Rule, register
from repro.analysis.rules._util import (
    dataclass_field_names,
    dotted_name,
    is_dataclass_def,
    terminal_name,
)

_MUTABLE_CALLS = {"list", "dict", "set", "bytearray", "defaultdict", "deque"}


@register
class MutableDefaultRule(Rule):
    rule_id = "RPL601"
    name = "mutable-default-argument"
    rationale = (
        "a mutable default is created once and shared by every call; in "
        "sweep helpers that silently carries state from one run into the "
        "next — use None and create the value inside the function"
    )

    def check(self, ctx: ModuleContext) -> Iterator:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            defaults = [*node.args.defaults, *node.args.kw_defaults]
            for default in defaults:
                if default is None:
                    continue
                if self._is_mutable(default):
                    label = getattr(node, "name", "<lambda>")
                    yield self.finding(
                        ctx,
                        default,
                        f"mutable default argument in '{label}' is shared "
                        f"across calls; default to None and build it inside",
                    )

    @staticmethod
    def _is_mutable(node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            callee = dotted_name(node.func)
            return callee is not None and callee.split(".")[-1] in _MUTABLE_CALLS
        return False


def _sim_stats_fields(ctx: ModuleContext) -> Optional[Set[str]]:
    """Declared SimStats counter names.

    A module that defines its own ``SimStats`` dataclass (fixtures, the
    stats module itself) is read statically; otherwise the live class is
    the source of truth.
    """
    for node in ctx.tree.body:
        if (
            isinstance(node, ast.ClassDef)
            and node.name == "SimStats"
            and is_dataclass_def(node)
        ):
            return set(dataclass_field_names(node))
    try:
        import dataclasses

        from repro.common.stats import SimStats
    except ImportError:  # pragma: no cover - only outside a repro checkout
        return None
    return {field.name for field in dataclasses.fields(SimStats)}


@register
class UnregisteredStatRule(Rule):
    rule_id = "RPL602"
    name = "unregistered-stat-counter"
    rationale = (
        "SimStats counters are plain attributes; mutating a name that is "
        "not a declared field creates a new attribute instead of "
        "counting, so the real counter silently stays 0"
    )

    def check(self, ctx: ModuleContext) -> Iterator:
        fields = _sim_stats_fields(ctx)
        if fields is None:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.Assign, ast.AugAssign)):
                continue
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                counter = self._stats_counter(target)
                if counter is not None and counter not in fields:
                    yield self.finding(
                        ctx,
                        target,
                        f"'{counter}' is not a declared SimStats field; "
                        f"register the counter in repro.common.stats or "
                        f"fix the typo",
                    )

    @staticmethod
    def _stats_counter(target: ast.AST) -> Optional[str]:
        """``X`` when the target is ``<chain ending in .stats>.X``."""
        if not isinstance(target, ast.Attribute):
            return None
        receiver = target.value
        if terminal_name(receiver) == "stats":
            return target.attr
        return None
