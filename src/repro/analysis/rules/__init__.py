"""Rule modules; importing this package populates the rule registry."""

from repro.analysis.rules import (  # noqa: F401  (imported for side effects)
    atomic_io,
    determinism,
    fingerprint,
    hot_path,
    hygiene,
    layering,
    policy_meta,
    typed_errors,
    worker_safety,
)
