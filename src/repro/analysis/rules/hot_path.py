"""Hot-path discipline (RPL701).

The profile-driven optimization pass (``repro profile``, ``docs/
internals.md`` §Performance) marks the simulator's busiest functions
with a ``# repro: hot`` comment on (or directly above) the ``def`` line.
Those functions run millions of times per bench sweep, so two cheap
idioms elsewhere become first-order costs there:

* **Per-call container allocations** — a dict/set display or a
  list/set/dict comprehension builds a fresh container on every call.
  On a hot path the container is almost always loop-invariant (a
  dispatch table, a constant set) and belongs at module or instance
  scope, or is better expressed as an explicit loop over a preallocated
  structure.
* **Repeated ``self.x.y`` chains** — each dotted lookup is a live
  attribute load in CPython; reading the *same* chain twice in one call
  pays twice.  Hoist it to a local (``mshrs = self.mshrs``) once and
  reuse it.

The chain check keys on the **full** dotted path: ``self.l1.
line_address`` once plus ``self.l1.access`` once is clean (different
chains), while two reads of ``self.hierarchy.mshrs`` in one call fire.
Only ``self``-rooted read chains of depth >= 2 count — single-attribute
reads (``self.rob``) are the baseline idiom, and writes must go through
the chain by definition.

The marker is an opt-in contract, not a heuristic: unmarked functions
are never checked, so the rule costs nothing outside the audited hot
set.  ``# repro: noqa[RPL701]`` suppresses individual findings where a
per-call allocation is semantically required.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List

from repro.analysis.registry import ModuleContext, Rule, register
from repro.analysis.rules._util import dotted_name

_HOT_MARKER = re.compile(r"#\s*repro:\s*hot\b")

_ALLOCATION_NODES = {
    ast.Dict: "dict display",
    ast.Set: "set display",
    ast.ListComp: "list comprehension",
    ast.SetComp: "set comprehension",
    ast.DictComp: "dict comprehension",
}

_SCOPE_NODES = (
    ast.FunctionDef,
    ast.AsyncFunctionDef,
    ast.Lambda,
    ast.ClassDef,
)


def _is_hot(func: ast.AST, lines: List[str]) -> bool:
    """Is ``func`` marked ``# repro: hot`` on or directly above its def?"""
    lineno = getattr(func, "lineno", 0)
    for candidate in (lineno, lineno - 1):
        index = candidate - 1
        if 0 <= index < len(lines) and _HOT_MARKER.search(lines[index]):
            return True
    return False


def _own_nodes(func: ast.AST) -> Iterator[ast.AST]:
    """Walk ``func``'s body without descending into nested scopes.

    Code inside a nested def/lambda/class runs per *its* invocation, not
    per call of the hot function, so it is outside this rule's contract.
    The parent is tracked so chain detection can identify *outermost*
    attribute nodes (``self.a.b`` must not also count its inner
    ``self.a``).
    """
    stack: List[ast.AST] = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, _SCOPE_NODES):
            continue
        for child in ast.iter_child_nodes(node):
            child._rpl701_parent = node  # type: ignore[attr-defined]
            stack.append(child)


@register
class HotPathRule(Rule):
    rule_id = "RPL701"
    name = "hot-path-discipline"
    rationale = (
        "functions marked '# repro: hot' run millions of times per "
        "sweep; per-call dict/set/comprehension allocations and repeated "
        "self.x.y attribute chains there are first-order simulator "
        "throughput costs — hoist them out of the call"
    )

    def check(self, ctx: ModuleContext) -> Iterator:
        lines = ctx.lines
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not _is_hot(node, lines):
                continue
            yield from self._check_function(ctx, node)

    def _check_function(self, ctx: ModuleContext, func: ast.AST) -> Iterator:
        name = getattr(func, "name", "<function>")
        chains: Dict[str, List[ast.Attribute]] = {}
        for node in _own_nodes(func):
            label = _ALLOCATION_NODES.get(type(node))
            if label is not None:
                yield self.finding(
                    ctx,
                    node,
                    f"{label} allocated on every call of hot function "
                    f"'{name}'; hoist it to module/instance scope or "
                    f"restructure the loop",
                )
                continue
            if not isinstance(node, ast.Attribute):
                continue
            if not isinstance(node.ctx, ast.Load):
                continue
            parent = getattr(node, "_rpl701_parent", None)
            if isinstance(parent, ast.Attribute):
                continue  # inner segment of a longer chain
            chain = dotted_name(node)
            if chain is None or not chain.startswith("self."):
                continue
            if chain.count(".") < 2:  # self.x — baseline idiom
                continue
            chains.setdefault(chain, []).append(node)
        for chain, nodes in chains.items():
            if len(nodes) < 2:
                continue
            nodes.sort(key=lambda n: (n.lineno, n.col_offset))
            yield self.finding(
                ctx,
                nodes[1],
                f"attribute chain '{chain}' read {len(nodes)} times in hot "
                f"function '{name}'; hoist it to a local once",
            )
