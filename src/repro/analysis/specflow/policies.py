"""Declarative models of what each speculation scheme blocks.

A :class:`PolicyModel` reduces a scheme to the five facts that decide
whether a statically discovered transmitter can actually leak:

* ``blocks_spec_taint`` — NDA-P's value lock / STT's taint gates: a
  transmitter whose secret was acquired *inside the same speculation
  window* never executes with that data (the gate holds until the window
  resolves, and a mispredicted window squashes the transmitter).  Data
  acquired **before** the window (``pre`` facts) is explicitly outside
  these schemes' threat model — that is Figure 4b.
* ``invisible_speculation`` — the DoM family: speculative loads are
  L1-probes and speculative misses are delayed, so *explicit* transient
  transmitters (secret-dependent load/store addresses) leave no trace.
* ``inorder_branches`` — DoM+AP's §4.6 rule: branches resolve only once
  non-speculative, closing the resolution-order implicit channel.
* ``ap_observable`` — the doppelganger engine issues (visible) accesses
  for predicted addresses, so transient *control flow* becomes
  observable through which doppelgangers appear — the Figure 4 channel.
  Without it, DoM's invisible speculation hides branch direction too.
* ``explicit_reissue_leak`` — the §5.3 violation: a mispredicted
  doppelganger's real (secret-dependent-address) load re-issues while
  still speculative, re-opening the explicit channel under DoM.

The mapping is deliberately conservative where the dynamic oracle is
racy: a policy may classify a transmitter as leaking that the simulator
never wins the race to observe.  The differential harness only requires
the sound inclusion (static ``leak-possible`` ⊇ dynamic leak).

Schemes name their policy with a plain string class attribute
(``specflow_policy``) rather than importing this module — the schemes
package must stay independent of the analysis layer (reprolint RPL401);
rule RPL901 enforces that every scheme declares the attribute.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.common.errors import ConfigError
from repro.analysis.specflow.model import KIND_SPEC, TaintFact, Transmitter

TRANSMIT_LOAD = "load"
TRANSMIT_STORE = "store"
TRANSMIT_BRANCH = "branch"


@dataclass(frozen=True)
class PolicyModel:
    """What one scheme configuration blocks (see module docstring)."""

    name: str
    blocks_spec_taint: bool = False
    invisible_speculation: bool = False
    inorder_branches: bool = False
    ap_observable: bool = False
    explicit_reissue_leak: bool = False


#: Policy keys a scheme may put in ``specflow_policy``.
POLICY_KEYS = (
    "unsafe",
    "nda",
    "stt",
    "dom",
    "dom+vp",
    "dom-insecure-branches",
    "dom-insecure-reissue",
)

#: The scheme labels the CLI / differential analyze by default: every
#: registry scheme with and without doppelgangers, plus the two
#: deliberately weakened variants (always run with doppelgangers — the
#: rule each one removes only matters under address prediction).
STANDARD_SCHEME_LABELS = (
    "unsafe",
    "nda",
    "stt",
    "dom",
    "dom+vp",
    "unsafe+ap",
    "nda+ap",
    "stt+ap",
    "dom+ap",
    "dom-insecure-branches+ap",
    "dom-insecure-reissue+ap",
)


def _build(key: str, ap: bool) -> PolicyModel:
    name = key + ("+ap" if ap else "")
    if key == "unsafe":
        return PolicyModel(name, ap_observable=ap)
    if key in ("nda", "stt"):
        return PolicyModel(name, blocks_spec_taint=True, ap_observable=ap)
    if key == "dom":
        return PolicyModel(
            name,
            invisible_speculation=True,
            inorder_branches=ap,
            ap_observable=ap,
        )
    if key == "dom+vp":
        # DoMValuePrediction force-disables address prediction (the point
        # is a clean VP-vs-AP comparison), so no doppelganger channel and
        # no need for the in-order branch rule.
        return PolicyModel("dom+vp", invisible_speculation=True)
    if key == "dom-insecure-branches":
        return PolicyModel(
            name,
            invisible_speculation=True,
            inorder_branches=False,
            ap_observable=ap,
        )
    if key == "dom-insecure-reissue":
        return PolicyModel(
            name,
            invisible_speculation=True,
            inorder_branches=ap,
            ap_observable=ap,
            explicit_reissue_leak=ap,
        )
    raise ConfigError(
        f"unknown specflow policy {key!r}; expected one of {sorted(POLICY_KEYS)}"
    )


def policy_for(scheme) -> PolicyModel:
    """The :class:`PolicyModel` for a scheme.

    Accepts either a scheme *instance* (anything with ``specflow_policy``
    and ``address_prediction`` attributes — every
    :class:`~repro.schemes.base.SecureScheme`) or a *label* string like
    ``"dom+ap"`` / ``"dom-insecure-branches+ap"``.
    """
    if isinstance(scheme, str):
        key = scheme.lower().strip()
        ap = False
        if key.endswith("+ap"):
            key = key[: -len("+ap")]
            ap = True
        return _build(key, ap)
    opt_out = getattr(scheme, "specflow_opt_out", None)
    if opt_out:
        raise ConfigError(
            f"scheme {getattr(scheme, 'name', scheme)!r} opted out of "
            f"specflow analysis: {opt_out}"
        )
    key = getattr(scheme, "specflow_policy", None)
    if not isinstance(key, str):
        raise ConfigError(
            f"scheme {getattr(scheme, 'name', scheme)!r} declares no "
            f"specflow_policy string (and no specflow_opt_out)"
        )
    return _build(key, bool(getattr(scheme, "address_prediction", False)))


def surviving_facts(
    policy: PolicyModel, transmitter: Transmitter
) -> Tuple[TaintFact, ...]:
    """The taint facts with which ``transmitter`` still executes-and-is-
    observable under ``policy``; empty means the scheme blocks it."""
    if transmitter.kind == TRANSMIT_BRANCH:
        if policy.inorder_branches:
            # §4.6: the branch resolves only once non-speculative, at
            # which point a misprediction squashes before any
            # secret-dependent steering becomes visible.
            return ()
        if policy.invisible_speculation and not policy.ap_observable:
            # No doppelgangers: transient control flow only steers
            # probe-hits/delayed-misses, which leave no trace.
            return ()
    else:
        if policy.invisible_speculation and not policy.explicit_reissue_leak:
            # Speculative accesses are invisible probes / delayed misses;
            # the secret-dependent address never reaches the hierarchy.
            return ()
    facts = transmitter.facts
    if policy.blocks_spec_taint:
        facts = tuple(fact for fact in facts if fact.kind != KIND_SPEC)
    return facts


def block_note(policy: PolicyModel, transmitter: Transmitter) -> str:
    """One line of *why* the surviving facts leak under ``policy`` —
    attached to leak findings so a reader can audit the claim."""
    if transmitter.kind == TRANSMIT_BRANCH:
        if policy.explicit_reissue_leak or policy.ap_observable:
            return (
                "transient branch resolution steers which doppelganger "
                "accesses appear (Figure 4 implicit channel)"
            )
        return "transient branch steers observable cache fills"
    if policy.explicit_reissue_leak:
        return (
            "mispredicted doppelganger re-issues its real "
            "secret-dependent access while speculative (missing §5.3 rule)"
        )
    return "secret-dependent address reaches the memory hierarchy"


__all__ = [
    "POLICY_KEYS",
    "PolicyModel",
    "STANDARD_SCHEME_LABELS",
    "TRANSMIT_BRANCH",
    "TRANSMIT_LOAD",
    "TRANSMIT_STORE",
    "block_note",
    "policy_for",
    "surviving_facts",
]
