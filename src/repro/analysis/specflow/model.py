"""Verdict vocabulary and report shapes for the specflow analyzer."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

VERDICT_LEAK = "leak-possible"
"""Some transmitter of secret-derived data survives the scheme's gates."""

VERDICT_SAFE = "safe"
"""No transmitter survives; soundness requires the dynamic run be clean."""

VERDICT_UNKNOWN = "unknown"
"""The analyzer ran out of budget; no claim either way (the escape hatch
that keeps ``safe`` a real promise)."""

#: Taint-fact kinds: how the secret was acquired relative to a window.
KIND_ARCH = "arch"
"""Acquired architecturally (global pass): a must-read of a secret region
or a concretely witnessed secret access."""
KIND_PRE = "pre"
"""Pre-acquired relative to a window: the fact already held when the
window-opening branch entered the pipeline — NDA/STT do *not* protect
these (their gates only cover speculatively acquired data)."""
KIND_SPEC = "spec"
"""Speculatively acquired inside the window: the source load itself runs
in the shadow, so taint-gating schemes squash the transmitter."""


@dataclass(frozen=True)
class TaintFact:
    """One way secret data reaches a value: source load + acquisition kind."""

    source_pc: int
    kind: str
    path: Tuple[int, ...] = ()
    """Def-use chain (pc sequence) from the source toward the consumer;
    best-effort (capped, loop-deduplicated) but always starts at
    ``source_pc``."""


@dataclass(frozen=True)
class Transmitter:
    """An instruction that turns tainted data into observable behaviour."""

    pc: int
    kind: str
    """``load`` / ``store`` (tainted address — explicit channel) or
    ``branch`` (tainted predicate — resolution-based implicit channel)."""
    window_pc: int
    """The conditional branch whose speculation window contains ``pc``."""
    facts: Tuple[TaintFact, ...]


@dataclass
class LeakFinding:
    """One concrete instruction-level leak path for one scheme."""

    transmitter_pc: int
    transmitter_kind: str
    transmitter_text: str
    window_pc: int
    window_text: str
    facts: List[TaintFact] = field(default_factory=list)
    note: str = ""

    def render(self) -> List[str]:
        lines = [
            f"{self.transmitter_kind} transmitter @pc{self.transmitter_pc}: "
            f"{self.transmitter_text}"
        ]
        if self.window_pc >= 0:
            lines.append(
                f"  in speculation window of branch @pc{self.window_pc}: "
                f"{self.window_text}"
            )
        for fact in self.facts:
            how = {
                KIND_ARCH: "architectural secret read",
                KIND_PRE: "secret acquired before the window",
                KIND_SPEC: "secret acquired speculatively in the window",
            }.get(fact.kind, fact.kind)
            chain = " -> ".join(f"pc{pc}" for pc in fact.path) or f"pc{fact.source_pc}"
            lines.append(f"  source load @pc{fact.source_pc} ({how}) via {chain}")
        if self.note:
            lines.append(f"  note: {self.note}")
        return lines

    def to_dict(self) -> Dict[str, Any]:
        return {
            "transmitter_pc": self.transmitter_pc,
            "transmitter_kind": self.transmitter_kind,
            "transmitter_text": self.transmitter_text,
            "window_pc": self.window_pc,
            "window_text": self.window_text,
            "facts": [
                {
                    "source_pc": fact.source_pc,
                    "kind": fact.kind,
                    "path": list(fact.path),
                }
                for fact in self.facts
            ],
            "note": self.note,
        }


@dataclass
class SchemeVerdict:
    """specflow's claim for one (program, scheme) pair."""

    scheme: str
    policy: str
    verdict: str
    leaks: List[LeakFinding] = field(default_factory=list)
    reason: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "scheme": self.scheme,
            "policy": self.policy,
            "verdict": self.verdict,
            "reason": self.reason,
            "leaks": [leak.to_dict() for leak in self.leaks],
        }


@dataclass
class ProgramReport:
    """Full static analysis of one program across the requested schemes."""

    program_name: str
    secret_regions: Tuple[Tuple[int, int], ...]
    verdicts: Dict[str, SchemeVerdict]
    windows: int = 0
    transmitters: int = 0
    arch_channel: Optional[str] = None
    """Set when the two-image interpretation diverged architecturally —
    every scheme then gets ``leak-possible`` (no speculation scheme
    protects an architectural channel)."""
    unknown_reason: Optional[str] = None

    def verdict(self, scheme: str) -> str:
        return self.verdicts[scheme].verdict

    def to_dict(self) -> Dict[str, Any]:
        return {
            "program": self.program_name,
            "secret_regions": [list(region) for region in self.secret_regions],
            "windows": self.windows,
            "transmitters": self.transmitters,
            "arch_channel": self.arch_channel,
            "unknown_reason": self.unknown_reason,
            "verdicts": {
                scheme: verdict.to_dict()
                for scheme, verdict in sorted(self.verdicts.items())
            },
        }
