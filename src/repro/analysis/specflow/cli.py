"""The ``repro specflow`` subcommand implementation.

Kept separate from :mod:`repro.cli` so the top-level parser stays cheap
to import (mirrors :mod:`repro.analysis.cli` for ``repro lint``).

Exit codes (same contract as ``repro lint``): 0 — every analyzed cell
agrees (statically and, unless ``--static-only``, with the dynamic
oracle and the pinned corpus expectations); 1 — disagreements; 2 —
usage error (unknown gadget or scheme name).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.common.errors import ConfigError, SpecflowUsageError

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


def add_specflow_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach ``repro specflow``'s arguments to a subcommand parser."""
    parser.add_argument(
        "--gadget", action="append", default=None, metavar="NAME",
        help="corpus gadget to analyze (repeatable; default: the whole "
             "attack corpus; see --list-gadgets)",
    )
    parser.add_argument(
        "--schemes", default=None,
        help="comma-separated scheme labels (default: the full corpus "
             "matrix, e.g. unsafe,nda,...,dom+ap,dom-insecure-branches+ap)",
    )
    parser.add_argument(
        "--fuzz-seeds", type=int, default=10, metavar="N",
        help="generated secret-gadget cases to cross-check (default 10; "
             "0 disables the fuzz portion)",
    )
    parser.add_argument(
        "--seed-start", type=int, default=0, metavar="S",
        help="first fuzz seed (cases use seeds S..S+N-1)",
    )
    parser.add_argument(
        "--static-only", action="store_true",
        help="skip every simulator run: report static verdicts and check "
             "only the pinned static expectations",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (json is the CI artifact form)",
    )
    parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="additionally write the JSON report to PATH (written on "
             "failure too — the CI disagreement artifact)",
    )
    parser.add_argument(
        "--list-gadgets", action="store_true",
        help="print the corpus gadget names and exit",
    )


def _parse_schemes(raw: Optional[str], known: List[str]) -> Optional[List[str]]:
    if raw is None:
        return None
    labels = [label.strip() for label in raw.split(",") if label.strip()]
    if not labels:
        raise SpecflowUsageError("--schemes given but empty")
    for label in labels:
        if label not in known:
            raise SpecflowUsageError(
                f"unknown scheme label {label!r}; expected one of {known}"
            )
    return labels


def run_specflow(args: argparse.Namespace) -> int:
    """Execute ``repro specflow``; returns the process exit code."""
    from repro.attacks.corpus import CORPUS_BY_NAME, CORPUS_SCHEME_LABELS
    from repro.analysis.specflow.differential import run_differential

    try:
        if args.list_gadgets:
            for name in sorted(CORPUS_BY_NAME):
                print(name)
            return EXIT_CLEAN
        gadgets = args.gadget
        if gadgets is not None:
            for name in gadgets:
                if name not in CORPUS_BY_NAME:
                    raise SpecflowUsageError(
                        f"unknown corpus gadget {name!r}; expected one of "
                        f"{sorted(CORPUS_BY_NAME)}"
                    )
        schemes = _parse_schemes(args.schemes, list(CORPUS_SCHEME_LABELS))
        if args.fuzz_seeds < 0:
            raise SpecflowUsageError("--fuzz-seeds must be >= 0")
        report = run_differential(
            fuzz_seeds=args.fuzz_seeds,
            seed_start=args.seed_start,
            schemes=schemes,
            gadgets=gadgets,
            static_only=args.static_only,
        )
    except SpecflowUsageError as error:
        print(f"usage error: {error}", file=sys.stderr)
        return EXIT_USAGE
    except ConfigError as error:
        print(f"usage error: {error}", file=sys.stderr)
        return EXIT_USAGE

    payload = report.to_dict()
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
    if args.format == "json":
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        _render_text(report)
    return EXIT_CLEAN if report.ok else EXIT_FINDINGS


def _render_text(report) -> None:
    from repro.analysis.specflow.model import VERDICT_LEAK

    for program_report in report.static_reports:
        regions = ", ".join(
            f"[{start:#x},{end:#x})" for start, end in program_report.secret_regions
        )
        print(
            f"{program_report.program_name}: "
            f"windows={program_report.windows} "
            f"transmitters={program_report.transmitters} "
            f"secret={regions or '(none)'}"
        )
        for label, verdict in sorted(program_report.verdicts.items()):
            print(f"  {label:28s} {verdict.verdict:13s} {verdict.reason}")
            if verdict.verdict == VERDICT_LEAK:
                for leak in verdict.leaks[:1]:
                    for line in leak.render():
                        print(f"      {line}")
    total = report.corpus_cells + report.fuzz_cells
    print(
        f"\n{total} cell(s) checked "
        f"({report.corpus_cells} corpus, {report.fuzz_cells} fuzz), "
        f"{report.unknown_cells} unknown, "
        f"{len(report.disagreements)} disagreement(s)"
    )
    for problem in report.disagreements:
        print(f"  {problem.render()}")


__all__ = [
    "EXIT_CLEAN",
    "EXIT_FINDINGS",
    "EXIT_USAGE",
    "add_specflow_arguments",
    "run_specflow",
]
