"""Static-vs-dynamic differential: the soundness harness for specflow.

A static analyzer that is wrong is worse than none, so specflow's
verdicts are continuously cross-examined against the dynamic
noninterference oracle over two program populations:

* the **attack corpus** (:mod:`repro.attacks.corpus`), where every
  (gadget, scheme) cell additionally has a *pinned* expected verdict on
  both sides — any drift in either judge fails loudly;
* **fuzz-generated secret gadgets** (:mod:`repro.fuzz.secretgen`),
  where no expectations exist and only the soundness inclusion is
  enforced.

The inclusion both populations must satisfy:

    static ``safe``  ⇒  dynamically clean
    (equivalently: dynamic leak ⇒ static ``leak-possible``)

``unknown`` satisfies it vacuously (it claims nothing) and is counted so
a lazy analyzer that answers ``unknown`` everywhere is visible.  The
reverse direction is *not* required — the static judge is allowed to be
conservative (flag a cell whose dynamic race happens to be lost); on the
corpus those conservative cells are pinned explicitly, with notes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.attacks.corpus import (
    ATTACK_CORPUS,
    CORPUS_SCHEME_LABELS,
    CorpusEntry,
    DYNAMIC_CLEAN,
    DYNAMIC_LEAK,
    corpus_entry,
    scheme_factory,
)
from repro.common.config import SystemConfig
from repro.fuzz.secretgen import generate_secret_case
from repro.oracle import attack_config, noninterference_check, snapshots_equal
from repro.analysis.specflow.analyzer import analyze_program
from repro.analysis.specflow.model import (
    ProgramReport,
    VERDICT_LEAK,
    VERDICT_SAFE,
    VERDICT_UNKNOWN,
)

KIND_UNSOUND = "static-safe-dynamic-leak"
"""The fatal kind: the analyzer promised safety and the simulator leaked."""
KIND_STATIC_MISMATCH = "static-expectation-mismatch"
"""A corpus cell's static verdict drifted from the pinned expectation."""
KIND_DYNAMIC_MISMATCH = "dynamic-expectation-mismatch"
"""A corpus cell's dynamic verdict drifted from the pinned expectation."""


@dataclass
class Disagreement:
    """One (program, scheme) cell where the judges (or the pins) fell out."""

    program: str
    scheme: str
    kind: str
    static_verdict: str
    dynamic_verdict: str = ""
    expected: str = ""
    detail: str = ""

    def render(self) -> str:
        parts = [
            f"{self.kind}: {self.program} x {self.scheme}: "
            f"static={self.static_verdict}"
        ]
        if self.dynamic_verdict:
            parts.append(f"dynamic={self.dynamic_verdict}")
        if self.expected:
            parts.append(f"expected={self.expected}")
        line = " ".join(parts)
        if self.detail:
            line += f" ({self.detail})"
        return line

    def to_dict(self) -> Dict[str, Any]:
        return {
            "program": self.program,
            "scheme": self.scheme,
            "kind": self.kind,
            "static_verdict": self.static_verdict,
            "dynamic_verdict": self.dynamic_verdict,
            "expected": self.expected,
            "detail": self.detail,
        }


@dataclass
class DifferentialReport:
    """Outcome of one differential run (corpus and/or fuzz)."""

    corpus_cells: int = 0
    fuzz_cells: int = 0
    fuzz_seeds: Tuple[int, ...] = ()
    unknown_cells: int = 0
    disagreements: List[Disagreement] = field(default_factory=list)
    static_reports: List[ProgramReport] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.disagreements

    def to_dict(self) -> Dict[str, Any]:
        return {
            "ok": self.ok,
            "corpus_cells": self.corpus_cells,
            "fuzz_cells": self.fuzz_cells,
            "fuzz_seeds": list(self.fuzz_seeds),
            "unknown_cells": self.unknown_cells,
            "disagreements": [d.to_dict() for d in self.disagreements],
            "programs": [report.to_dict() for report in self.static_reports],
        }


def dynamic_verdict(
    build,
    label: str,
    secrets: Sequence[int],
    config: Optional[SystemConfig] = None,
) -> str:
    """Run the noninterference oracle for one (gadget, scheme) cell."""
    snapshots = noninterference_check(
        build, scheme_factory(label), secrets, config or attack_config()
    )
    return DYNAMIC_CLEAN if snapshots_equal(snapshots) else DYNAMIC_LEAK


def _statically_safe(verdict: str) -> bool:
    return verdict == VERDICT_SAFE


def check_entry(
    entry: CorpusEntry,
    schemes: Sequence[str],
    static_only: bool = False,
    config: Optional[SystemConfig] = None,
) -> Tuple[ProgramReport, int, List[Disagreement]]:
    """Judge one corpus entry; returns (static report, unknown-cell
    count, disagreements)."""
    config = config or attack_config()
    program = entry.build(entry.secrets[0]).program
    report = analyze_program(program, schemes)
    problems: List[Disagreement] = []
    unknown = 0
    for label in schemes:
        static = report.verdict(label)
        if static == VERDICT_UNKNOWN:
            unknown += 1
        expected_static = entry.expected_static.get(label)
        if expected_static is not None and static != expected_static:
            problems.append(
                Disagreement(
                    program=entry.name,
                    scheme=label,
                    kind=KIND_STATIC_MISMATCH,
                    static_verdict=static,
                    expected=expected_static,
                    detail=report.verdicts[label].reason,
                )
            )
        if static_only:
            continue
        dynamic = dynamic_verdict(entry.build, label, entry.secrets, config)
        expected_dynamic = entry.expected_dynamic.get(label)
        if expected_dynamic is not None and dynamic != expected_dynamic:
            problems.append(
                Disagreement(
                    program=entry.name,
                    scheme=label,
                    kind=KIND_DYNAMIC_MISMATCH,
                    static_verdict=static,
                    dynamic_verdict=dynamic,
                    expected=expected_dynamic,
                )
            )
        if _statically_safe(static) and dynamic == DYNAMIC_LEAK:
            problems.append(
                Disagreement(
                    program=entry.name,
                    scheme=label,
                    kind=KIND_UNSOUND,
                    static_verdict=static,
                    dynamic_verdict=dynamic,
                    detail="the analyzer promised safety; the simulator "
                    "produced secret-distinguishable observable state",
                )
            )
    return report, unknown, problems


def check_fuzz_seed(
    seed: int,
    schemes: Sequence[str],
    config: Optional[SystemConfig] = None,
) -> Tuple[ProgramReport, int, List[Disagreement]]:
    """Judge one generated case: soundness inclusion only (no pins)."""
    config = config or attack_config()
    case = generate_secret_case(seed)
    program = case.build(case.secrets[0]).program
    report = analyze_program(program, schemes)
    problems: List[Disagreement] = []
    unknown = 0
    for label in schemes:
        static = report.verdict(label)
        if static == VERDICT_UNKNOWN:
            unknown += 1
            continue
        if static == VERDICT_LEAK:
            # Conservative direction; nothing to refute dynamically.
            continue
        dynamic = dynamic_verdict(case.build, label, case.secrets, config)
        if dynamic == DYNAMIC_LEAK:
            problems.append(
                Disagreement(
                    program=case.name,
                    scheme=label,
                    kind=KIND_UNSOUND,
                    static_verdict=static,
                    dynamic_verdict=dynamic,
                    detail=f"template={case.template} seed={seed} "
                    f"secrets={case.secrets}",
                )
            )
    return report, unknown, problems


def run_differential(
    fuzz_seeds: int = 10,
    seed_start: int = 0,
    schemes: Optional[Sequence[str]] = None,
    gadgets: Optional[Sequence[str]] = None,
    static_only: bool = False,
    config: Optional[SystemConfig] = None,
) -> DifferentialReport:
    """The full differential: corpus (pinned) + ``fuzz_seeds`` generated
    cases (soundness-only).  ``gadgets`` restricts the corpus portion;
    ``static_only`` skips every simulator run (corpus static pins still
    checked)."""
    labels = list(schemes) if schemes is not None else list(CORPUS_SCHEME_LABELS)
    config = config or attack_config()
    report = DifferentialReport()
    entries = (
        [corpus_entry(name) for name in gadgets]
        if gadgets is not None
        else list(ATTACK_CORPUS)
    )
    for entry in entries:
        static_report, unknown, problems = check_entry(
            entry, labels, static_only=static_only, config=config
        )
        report.corpus_cells += len(labels)
        report.unknown_cells += unknown
        report.disagreements.extend(problems)
        report.static_reports.append(static_report)
    seeds = tuple(range(seed_start, seed_start + max(0, fuzz_seeds)))
    if not static_only:
        for seed in seeds:
            static_report, unknown, problems = check_fuzz_seed(
                seed, labels, config=config
            )
            report.fuzz_cells += len(labels)
            report.unknown_cells += unknown
            report.disagreements.extend(problems)
            report.static_reports.append(static_report)
        report.fuzz_seeds = seeds
    return report


__all__ = [
    "Disagreement",
    "DifferentialReport",
    "KIND_DYNAMIC_MISMATCH",
    "KIND_STATIC_MISMATCH",
    "KIND_UNSOUND",
    "check_entry",
    "check_fuzz_seed",
    "dynamic_verdict",
    "run_differential",
]
