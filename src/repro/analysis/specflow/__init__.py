"""specflow: static speculative-leakage analysis over micro-ISA programs.

The dynamic side of this repository can only *observe* a leak: run a
gadget under the simulator, vary the secret, compare attacker-visible
state.  specflow predicts the same verdicts statically:

1. :mod:`~repro.analysis.specflow.cfg` builds a control-flow graph and
   derives **speculation windows** — for each conditional branch, the set
   of instructions that can execute transiently in its shadow;
2. :mod:`~repro.analysis.specflow.dataflow` runs a forward taint
   dataflow seeded from the program's declared ``secret_regions``
   (lattice per value: public / secret / speculatively-secret), through
   registers, load addresses, store values and memory;
3. :mod:`~repro.analysis.specflow.policies` describes, declaratively,
   what each scheme blocks (NDA/STT's taint gates, DoM's invisible
   speculation, DoM+AP's in-order branches), and classifies the
   discovered transmitters into per-scheme verdicts: ``leak-possible``,
   ``safe``, or ``unknown``.

The verdicts are *sound by construction against the dynamic oracle*:
:mod:`~repro.analysis.specflow.differential` runs both judges over the
attack corpus and fuzz-generated gadgets and requires static
``leak-possible`` ⊇ dynamic observed-leak and static ``safe`` ⇒
dynamically clean (``unknown`` is the explicit escape hatch).
"""

from repro.analysis.specflow.analyzer import analyze_program
from repro.analysis.specflow.model import (
    VERDICT_LEAK,
    VERDICT_SAFE,
    VERDICT_UNKNOWN,
    LeakFinding,
    ProgramReport,
    SchemeVerdict,
)
from repro.analysis.specflow.policies import PolicyModel, policy_for

__all__ = [
    "LeakFinding",
    "PolicyModel",
    "ProgramReport",
    "SchemeVerdict",
    "VERDICT_LEAK",
    "VERDICT_SAFE",
    "VERDICT_UNKNOWN",
    "analyze_program",
    "policy_for",
]
