"""The specflow entry point: program -> per-scheme leakage verdicts.

Pipeline (see the package docstring for the rationale):

1. **Vacuity** — a program with no declared ``secret_regions`` has
   nothing to leak; every scheme is ``safe`` by definition.
2. **Architectural precheck** — interpret the program twice with the
   secret words set to two different values (via
   :func:`repro.oracle.apply_secret`) and compare the in-order memory
   and branch traces.  A divergence is an *architectural* channel: no
   speculation scheme defends it, so every scheme gets ``leak-possible``
   immediately.  The traces also yield **witnesses**: load pcs that
   concretely touched a secret word, which seed the taint flow even when
   their address is not statically constant.
3. **Architectural taint pass** — a whole-program dataflow whose only
   sources are *must* secret reads (constant address inside a region, or
   a witnessed pc).  Deliberately **not** may-reads: treating every
   unknown-address load as a potential secret read here would taint
   attacker-controlled values like Spectre's index and drown the
   analysis in false paths.
4. **Window passes** — per conditional branch, re-run the flow inside
   its speculation window: the architectural state at the branch enters
   re-keyed as ``pre`` facts (data the window did not acquire — what
   NDA/STT leave unprotected), and in-window loads that *may* read a
   secret (unknown address, constant in-region address, witnessed pc)
   add ``spec`` facts (data whose acquiring load squashes with the
   window — what NDA/STT gate).
5. **Classification** — every instruction in a window whose
   address/predicate operand carries taint is a candidate transmitter;
   :mod:`~repro.analysis.specflow.policies` decides per scheme which
   survive, and any survivor makes that scheme ``leak-possible`` with a
   rendered instruction-level leak path.

Budget exhaustion (interpreter or dataflow) yields ``unknown`` for every
scheme — the explicit escape hatch that keeps ``safe`` a real claim.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.common.errors import ExecutionError, SpecflowBudgetError
from repro.isa.instructions import KIND_CBRANCH, KIND_LOAD, KIND_STORE
from repro.isa.program import InterpreterResult, Program
from repro.oracle import apply_secret
from repro.analysis.specflow.cfg import speculation_windows, successors
from repro.analysis.specflow.dataflow import (
    AbsState,
    DEFAULT_BUDGET,
    operand_taint,
    rekey_state,
    run_dataflow,
)
from repro.analysis.specflow.model import (
    KIND_ARCH,
    KIND_PRE,
    KIND_SPEC,
    LeakFinding,
    ProgramReport,
    SchemeVerdict,
    TaintFact,
    Transmitter,
    VERDICT_LEAK,
    VERDICT_SAFE,
    VERDICT_UNKNOWN,
)
from repro.analysis.specflow.policies import (
    STANDARD_SCHEME_LABELS,
    TRANSMIT_BRANCH,
    TRANSMIT_LOAD,
    TRANSMIT_STORE,
    block_note,
    policy_for,
    surviving_facts,
)

#: Secret values the architectural precheck interprets under.  Any two
#: distinct values work — the precheck asks whether traces *can* differ,
#: and taint analysis covers value-specific corner cases conservatively.
_PRECHECK_SECRETS = (1, 2)

#: In-order interpretation budget for the precheck.  The corpus gadgets
#: execute a few thousand instructions; fuzz programs are generated with
#: bounded trip counts.  Exhaustion means ``unknown``, never a wrong
#: verdict.
DEFAULT_INTERP_BUDGET = 200_000

#: Leak findings listed per scheme verdict (the count in ``reason`` is
#: exact; the listing is capped so JSON reports stay readable).
_MAX_FINDINGS = 8


def _arch_divergence(
    low: InterpreterResult, high: InterpreterResult
) -> Optional[Tuple[str, int]]:
    """Describe the first secret-dependent architectural difference, if
    any, as ``(description, pc_or_-1)``."""
    if low.halted != high.halted:
        return ("architectural halt state depends on the secret", -1)
    assert low.mem_trace is not None and high.mem_trace is not None
    for index, (a, b) in enumerate(zip(low.mem_trace, high.mem_trace)):
        if a != b:
            return (
                f"architectural memory access #{index} depends on the secret "
                f"(pc{a[0]} [{a[1]:#x}] vs pc{b[0]} [{b[1]:#x}])",
                a[0],
            )
    if len(low.mem_trace) != len(high.mem_trace):
        index = min(len(low.mem_trace), len(high.mem_trace))
        longer = low.mem_trace if len(low.mem_trace) > index else high.mem_trace
        return (
            f"architectural memory access #{index} exists only for one "
            f"secret (pc{longer[index][0]} [{longer[index][1]:#x}])",
            longer[index][0],
        )
    if low.branch_trace != high.branch_trace:
        for index, (a, b) in enumerate(zip(low.branch_trace, high.branch_trace)):
            if a != b:
                return (
                    f"architectural branch outcome #{index} depends on the "
                    f"secret",
                    -1,
                )
        return ("architectural branch count depends on the secret", -1)
    return None


def _transmit_kind(kind_code: int) -> str:
    if kind_code == KIND_LOAD:
        return TRANSMIT_LOAD
    if kind_code == KIND_STORE:
        return TRANSMIT_STORE
    return TRANSMIT_BRANCH


def _scheme_labels(schemes: Optional[Iterable]) -> List:
    if schemes is None:
        return list(STANDARD_SCHEME_LABELS)
    return list(schemes)


def _all_verdict(
    program: Program,
    schemes: Optional[Iterable],
    verdict: str,
    reason: str,
    leak_note: str = "",
    leak_pc: int = -1,
    arch_channel: Optional[str] = None,
    unknown_reason: Optional[str] = None,
    windows: int = 0,
) -> ProgramReport:
    """A report giving every requested scheme the same verdict."""
    verdicts: Dict[str, SchemeVerdict] = {}
    for spec in _scheme_labels(schemes):
        policy = policy_for(spec)
        label = spec if isinstance(spec, str) else policy.name
        leaks: List[LeakFinding] = []
        if verdict == VERDICT_LEAK:
            text = (
                program.instructions[leak_pc].disassemble()
                if 0 <= leak_pc < len(program.instructions)
                else "(whole program)"
            )
            leaks = [
                LeakFinding(
                    transmitter_pc=leak_pc,
                    transmitter_kind="architectural",
                    transmitter_text=text,
                    window_pc=-1,
                    window_text="",
                    facts=[],
                    note=leak_note,
                )
            ]
        verdicts[label] = SchemeVerdict(
            scheme=label,
            policy=policy.name,
            verdict=verdict,
            leaks=leaks,
            reason=reason,
        )
    return ProgramReport(
        program_name=program.name,
        secret_regions=program.secret_regions,
        verdicts=verdicts,
        windows=windows,
        transmitters=0,
        arch_channel=arch_channel,
        unknown_reason=unknown_reason,
    )


def collect_transmitters(
    program: Program,
    witnesses: frozenset,
    budget: int = DEFAULT_BUDGET,
) -> Tuple[List[Transmitter], int]:
    """Run the architectural pass and every window pass; returns
    ``(transmitters, window_count)``.  Raises
    :class:`SpecflowBudgetError` when the shared budget runs out."""
    secret_words = frozenset(program.secret_words())

    def arch_source(pc: int, addr: Optional[int]) -> Optional[str]:
        if (addr is not None and addr in secret_words) or pc in witnesses:
            return KIND_ARCH
        return None

    def window_source(pc: int, addr: Optional[int]) -> Optional[str]:
        if addr is None or addr in secret_words or pc in witnesses:
            return KIND_SPEC
        return None

    global_in, spent = run_dataflow(
        program, {0: AbsState.entry(program)}, arch_source, budget=budget
    )
    remaining = budget - spent
    windows = speculation_windows(program)
    succ_table = successors(program)
    transmitters: List[Transmitter] = []
    for branch_pc in sorted(windows):
        entry = global_in.get(branch_pc)
        if entry is None:
            continue  # the branch is unreachable; its shadow cannot open
        seed = rekey_state(entry, KIND_PRE)
        entries = {succ: seed for succ in succ_table[branch_pc]}
        if not entries:
            continue
        window = windows[branch_pc]
        window_in, spent = run_dataflow(
            program, entries, window_source, allowed=window, budget=remaining
        )
        remaining -= spent
        for pc in sorted(window):
            kind_code = program.instructions[pc].kind
            if kind_code not in (KIND_LOAD, KIND_STORE, KIND_CBRANCH):
                continue
            state = window_in.get(pc)
            if state is None:
                continue
            taint = operand_taint(state, pc, program)
            if not taint:
                continue
            facts = tuple(
                TaintFact(source_pc=src, kind=kind, path=path)
                for (kind, src), path in sorted(taint.items())
            )
            transmitters.append(
                Transmitter(
                    pc=pc,
                    kind=_transmit_kind(kind_code),
                    window_pc=branch_pc,
                    facts=facts,
                )
            )
    return transmitters, len(windows)


def analyze_program(
    program: Program,
    schemes: Optional[Sequence[Union[str, object]]] = None,
    budget: int = DEFAULT_BUDGET,
    interp_budget: int = DEFAULT_INTERP_BUDGET,
) -> ProgramReport:
    """Statically judge ``program`` under each scheme (see module doc).

    ``schemes`` takes labels (``"dom+ap"``) and/or scheme instances;
    defaults to :data:`STANDARD_SCHEME_LABELS`.
    """
    if not program.secret_regions:
        return _all_verdict(
            program,
            schemes,
            VERDICT_SAFE,
            "no declared secret regions: nothing to leak (vacuously safe)",
            windows=len(speculation_windows(program)),
        )

    # -- architectural precheck + witnesses ----------------------------
    try:
        low = apply_secret(program, _PRECHECK_SECRETS[0]).interpret(
            max_instructions=interp_budget, trace_mem=True
        )
        high = apply_secret(program, _PRECHECK_SECRETS[1]).interpret(
            max_instructions=interp_budget, trace_mem=True
        )
    except ExecutionError as error:
        return _all_verdict(
            program,
            schemes,
            VERDICT_UNKNOWN,
            f"reference interpretation failed: {error}",
            unknown_reason=str(error),
        )
    divergence = _arch_divergence(low, high)
    if divergence is not None:
        description, pc = divergence
        return _all_verdict(
            program,
            schemes,
            VERDICT_LEAK,
            "architectural channel: the secret changes committed behaviour "
            "with no speculation involved, which no speculation scheme "
            "defends",
            leak_note=description,
            leak_pc=pc,
            arch_channel=description,
            windows=len(speculation_windows(program)),
        )
    secret_words = frozenset(program.secret_words())
    witnesses = frozenset(
        pc
        for trace in (low.mem_trace or (), high.mem_trace or ())
        for (pc, addr, is_store) in trace
        if not is_store and addr in secret_words
    )

    # -- taint passes ---------------------------------------------------
    try:
        transmitters, window_count = collect_transmitters(
            program, witnesses, budget=budget
        )
    except SpecflowBudgetError as error:
        return _all_verdict(
            program,
            schemes,
            VERDICT_UNKNOWN,
            f"analysis budget exhausted: {error}",
            unknown_reason=str(error),
        )

    # -- per-scheme classification --------------------------------------
    verdicts: Dict[str, SchemeVerdict] = {}
    for spec in _scheme_labels(schemes):
        policy = policy_for(spec)
        label = spec if isinstance(spec, str) else policy.name
        leaks: List[LeakFinding] = []
        seen_pcs = set()
        surviving = 0
        for transmitter in transmitters:
            facts = surviving_facts(policy, transmitter)
            if not facts:
                continue
            surviving += 1
            if transmitter.pc in seen_pcs:
                continue  # one finding per transmitter site is enough
            seen_pcs.add(transmitter.pc)
            if len(leaks) < _MAX_FINDINGS:
                leaks.append(
                    LeakFinding(
                        transmitter_pc=transmitter.pc,
                        transmitter_kind=transmitter.kind,
                        transmitter_text=program.instructions[
                            transmitter.pc
                        ].disassemble(),
                        window_pc=transmitter.window_pc,
                        window_text=program.instructions[
                            transmitter.window_pc
                        ].disassemble(),
                        facts=list(facts),
                        note=block_note(policy, transmitter),
                    )
                )
        if leaks:
            verdict = SchemeVerdict(
                scheme=label,
                policy=policy.name,
                verdict=VERDICT_LEAK,
                leaks=leaks,
                reason=(
                    f"{len(seen_pcs)} transmitter site(s) survive "
                    f"{policy.name}'s restrictions"
                ),
            )
        else:
            verdict = SchemeVerdict(
                scheme=label,
                policy=policy.name,
                verdict=VERDICT_SAFE,
                leaks=[],
                reason=(
                    f"all {len(transmitters)} candidate transmitter(s) are "
                    f"blocked by {policy.name}"
                    if transmitters
                    else "no tainted transmitter in any speculation window"
                ),
            )
        verdicts[label] = verdict
    return ProgramReport(
        program_name=program.name,
        secret_regions=program.secret_regions,
        verdicts=verdicts,
        windows=window_count,
        transmitters=len(transmitters),
        arch_channel=None,
        unknown_reason=None,
    )


__all__ = [
    "DEFAULT_INTERP_BUDGET",
    "analyze_program",
    "collect_transmitters",
]
