"""Forward taint dataflow over a micro-ISA program.

Two instantiations of one worklist engine:

* the **architectural pass** runs over the whole program and tracks
  where certainly-architectural secret reads flow (sources: loads whose
  constant address falls in a declared secret region, plus loads the
  concrete two-image interpretation *witnessed* touching a secret —
  see :mod:`~repro.analysis.specflow.analyzer`);
* a **window pass** per conditional branch re-runs the flow restricted
  to that branch's speculation window, seeded with the architectural
  state at the branch (facts re-keyed ``pre`` — data the shadow did not
  acquire, which NDA/STT do *not* protect) and additionally treating
  unknown-address loads inside the window as speculative secret sources
  (``spec`` — under misspeculation an unconstrained address may alias
  the secret; this is exactly Spectre v1's bounds-check bypass).

The value domain per register is ``int`` (known constant) or ``None``
(unknown); the taint domain is a set of :class:`TaintFact` keys with a
best-effort def-use path attached.  Joins are key-unions (first path
wins), so the abstraction is a finite lattice and the fixpoint
terminates; an explicit budget guards the quadratic window passes.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, FrozenSet, List, Optional, Tuple

from repro.common.errors import SpecflowBudgetError
from repro.isa.instructions import (
    KIND_ALU,
    KIND_CBRANCH,
    KIND_HALT,
    KIND_JMP,
    KIND_LOAD,
    KIND_NOP,
    KIND_STORE,
    WORD_MASK,
)
from repro.isa.program import WORD_SIZE, Program
from repro.analysis.specflow.model import KIND_ARCH, KIND_PRE, KIND_SPEC

#: A taint is {(kind, source_pc): def-use path}; paths never influence
#: convergence (joins keep the first path seen for a key).
Taint = Dict[Tuple[str, int], Tuple[int, ...]]

#: Source predicate: (pc, const_word_address_or_None) -> fact kind or None.
SourceFn = Callable[[int, Optional[int]], Optional[str]]

_WORD_ALIGN = ~(WORD_SIZE - 1) & WORD_MASK
_PATH_CAP = 12


def initial_image(program: Program) -> Dict[int, int]:
    """``initial_memory`` normalized the way the interpreter sees it:
    word-aligned addresses, 64-bit-masked values."""
    return {
        (addr & _WORD_ALIGN): value & WORD_MASK
        for addr, value in program.initial_memory.items()
    }

#: Worklist budget: pc-visits across one dataflow run.  Far above anything
#: a real gadget needs (they fix in a few hundred visits) while bounding
#: adversarial fuzz inputs.
DEFAULT_BUDGET = 250_000


class AbsState:
    """Abstract machine state at one program point."""

    __slots__ = ("regs", "mem_over", "mem_taint", "heap_taint", "clobbered")

    def __init__(
        self,
        regs: List[Tuple[Optional[int], Taint]],
        mem_over: Dict[int, Optional[int]],
        mem_taint: Dict[int, Taint],
        heap_taint: Taint,
        clobbered: bool,
    ):
        self.regs = regs
        self.mem_over = mem_over
        self.mem_taint = mem_taint
        self.heap_taint = heap_taint
        self.clobbered = clobbered

    @classmethod
    def entry(cls, program: Program) -> "AbsState":
        regs: List[Tuple[Optional[int], Taint]] = [(0, {})] * 32
        for reg, value in program.initial_registers.items():
            if reg != 0:
                regs[reg] = (value & WORD_MASK, {})
        return cls(regs, {}, {}, {}, False)

    def copy(self) -> "AbsState":
        return AbsState(
            list(self.regs),
            dict(self.mem_over),
            {addr: dict(taint) for addr, taint in self.mem_taint.items()},
            dict(self.heap_taint),
            self.clobbered,
        )

    # -- register access ------------------------------------------------
    def read_reg(self, index: Optional[int]) -> Tuple[Optional[int], Taint]:
        if index is None or index == 0:
            return (0, {})
        return self.regs[index]

    def write_reg(self, index: Optional[int], value: Optional[int], taint: Taint) -> None:
        if index is not None and index != 0:
            self.regs[index] = (value, taint)

    # -- memory access --------------------------------------------------
    def read_mem_value(self, addr: int, initial: Dict[int, int]) -> Optional[int]:
        if addr in self.mem_over:
            return self.mem_over[addr]
        if self.clobbered:
            return None
        return initial.get(addr, 0)

    def signature(self) -> Tuple:
        """Path-free view used for convergence detection."""
        return (
            tuple((value, frozenset(taint)) for value, taint in self.regs),
            frozenset(self.mem_over.items()),
            frozenset(
                (addr, frozenset(taint)) for addr, taint in self.mem_taint.items()
            ),
            frozenset(self.heap_taint),
            self.clobbered,
        )


def merge_taint(a: Taint, b: Taint) -> Taint:
    """Key union; an existing key keeps its (first-found) path."""
    if not b:
        return dict(a)
    if not a:
        return dict(b)
    out = dict(b)
    out.update(a)
    return out


def _extend(taint: Taint, pc: int) -> Taint:
    """Record ``pc`` on each fact's def-use path (capped, no duplicates)."""
    out: Taint = {}
    for key, path in taint.items():
        if len(path) < _PATH_CAP and (not path or path[-1] != pc) and pc not in path:
            out[key] = path + (pc,)
        else:
            out[key] = path
    return out


def join(a: Optional[AbsState], b: AbsState) -> Tuple[AbsState, bool]:
    """Least upper bound; returns (state, changed-vs-a)."""
    if a is None:
        return b.copy(), True
    regs: List[Tuple[Optional[int], Taint]] = []
    for (va, ta), (vb, tb) in zip(a.regs, b.regs):
        value = va if va == vb else None
        regs.append((value, merge_taint(ta, tb)))
    clobbered = a.clobbered or b.clobbered
    mem_over: Dict[int, Optional[int]] = {}
    if not clobbered:
        # Overlay entries fall back to the shared initial image, so the
        # join only needs explicit entries where either side has one.
        for addr in set(a.mem_over) | set(b.mem_over):
            va2 = a.mem_over.get(addr, _SENTINEL)
            vb2 = b.mem_over.get(addr, _SENTINEL)
            mem_over[addr] = va2 if va2 == vb2 else None
    else:
        for addr in set(a.mem_over) & set(b.mem_over):
            va3, vb3 = a.mem_over[addr], b.mem_over[addr]
            mem_over[addr] = va3 if va3 == vb3 else None
    mem_taint: Dict[int, Taint] = {
        addr: dict(taint) for addr, taint in a.mem_taint.items()
    }
    for addr, taint in b.mem_taint.items():
        mem_taint[addr] = merge_taint(mem_taint.get(addr, {}), taint)
    joined = AbsState(
        regs, mem_over, mem_taint, merge_taint(a.heap_taint, b.heap_taint), clobbered
    )
    return joined, joined.signature() != a.signature()


class _Sentinel:
    pass


_SENTINEL = _Sentinel()


def transfer(
    program: Program,
    pc: int,
    state: AbsState,
    source_fn: SourceFn,
    initial: Optional[Dict[int, int]] = None,
) -> Tuple[AbsState, Tuple[int, ...]]:
    """Abstractly execute the instruction at ``pc``; returns (out, succs)."""
    if initial is None:
        initial = initial_image(program)
    inst = program.instructions[pc]
    kind = inst.kind
    length = len(program.instructions)
    fallthrough = (pc + 1,) if pc + 1 < length else ()
    if kind == KIND_HALT:
        return state, ()
    if kind == KIND_NOP:
        return state, fallthrough
    if kind == KIND_JMP:
        return state, (inst.imm,) if inst.imm < length else ()
    if kind == KIND_CBRANCH:
        succ = tuple(
            s for s in (inst.imm, pc + 1) if s < length
        )
        return state, succ

    out = state.copy()
    if kind == KIND_ALU:
        a_val, a_taint = state.read_reg(inst.rs1) if inst.rs1 is not None else (0, {})
        if inst.rs2 is None:
            b_val: Optional[int] = inst.imm
            b_taint: Taint = {}
        else:
            b_val, b_taint = state.read_reg(inst.rs2)
        value = None
        if a_val is not None and b_val is not None:
            value = inst.alu_fn(a_val & WORD_MASK, b_val & WORD_MASK) & WORD_MASK
        taint = merge_taint(a_taint, b_taint)
        out.write_reg(inst.rd, value, _extend(taint, pc) if taint else taint)
        return out, fallthrough

    base_val, base_taint = state.read_reg(inst.rs1)
    addr = None
    if base_val is not None:
        addr = ((base_val + inst.imm) & WORD_MASK) & _WORD_ALIGN

    if kind == KIND_LOAD:
        taint = dict(base_taint)
        if addr is not None:
            value = state.read_mem_value(addr, initial)
            taint = merge_taint(taint, state.mem_taint.get(addr, {}))
        else:
            # Unknown address: may read any tainted memory word.
            value = None
            for mem_taint in state.mem_taint.values():
                taint = merge_taint(taint, mem_taint)
        taint = merge_taint(taint, state.heap_taint)
        taint = _extend(taint, pc) if taint else taint
        source_kind = source_fn(pc, addr)
        if source_kind is not None:
            taint = merge_taint(taint, {(source_kind, pc): (pc,)})
            value = None
        out.write_reg(inst.rd, value, taint)
        return out, fallthrough

    # STORE
    data_val, data_taint = state.read_reg(inst.rs2)
    if addr is not None:
        # Strong update: this store definitely writes this word.
        out.mem_over[addr] = data_val
        out.mem_taint[addr] = _extend(data_taint, pc) if data_taint else {}
        if not out.mem_taint[addr]:
            out.mem_taint.pop(addr, None)
    else:
        # May write anywhere: values become unknown, existing memory
        # taint survives (may not have been overwritten), the stored
        # taint can surface at any later load.
        out.mem_over = {}
        out.clobbered = True
        if data_taint:
            out.heap_taint = merge_taint(
                out.heap_taint, _extend(data_taint, pc)
            )
    return out, fallthrough


def run_dataflow(
    program: Program,
    entries: Dict[int, AbsState],
    source_fn: SourceFn,
    allowed: Optional[FrozenSet[int]] = None,
    budget: int = DEFAULT_BUDGET,
) -> Tuple[Dict[int, AbsState], int]:
    """Worklist fixpoint; returns (IN-state per pc, budget spent).

    ``entries`` seeds the IN states; ``allowed`` (when given) restricts
    propagation to a speculation window.  Raises
    :class:`SpecflowBudgetError` when the budget runs out.
    """
    initial = initial_image(program)
    in_states: Dict[int, AbsState] = {}
    work = deque()
    for pc, state in entries.items():
        joined, _ = join(in_states.get(pc), state)
        in_states[pc] = joined
        work.append(pc)
    spent = 0
    queued = set(entries)
    while work:
        pc = work.popleft()
        queued.discard(pc)
        spent += 1
        if spent > budget:
            raise SpecflowBudgetError(
                f"{program.name}: dataflow exceeded {budget} pc-visits"
            )
        out_state, succs = transfer(program, pc, in_states[pc], source_fn, initial)
        for succ in succs:
            if allowed is not None and succ not in allowed:
                continue
            joined, changed = join(in_states.get(succ), out_state)
            if changed:
                in_states[succ] = joined
                if succ not in queued:
                    queued.add(succ)
                    work.append(succ)
    return in_states, spent


def rekey(taint: Taint, kind: str) -> Taint:
    """Re-key every fact to ``kind`` (e.g. ``arch`` -> ``pre`` at a
    window entry), merging paths first-wins on collision."""
    out: Taint = {}
    for (_, src), path in taint.items():
        out.setdefault((kind, src), path)
    return out


def rekey_state(state: AbsState, kind: str) -> AbsState:
    regs = [(value, rekey(taint, kind)) for value, taint in state.regs]
    mem_taint = {addr: rekey(taint, kind) for addr, taint in state.mem_taint.items()}
    return AbsState(
        regs,
        dict(state.mem_over),
        mem_taint,
        rekey(state.heap_taint, kind),
        state.clobbered,
    )


def operand_taint(state: AbsState, pc: int, program: Program) -> Taint:
    """Taint relevant to an instruction acting as a transmitter.

    Loads/stores transmit through their *address* operand; conditional
    branches through their predicate operands.  Stored *data* is not a
    transmitter (it only becomes observable through a later load, which
    the memory-taint propagation already models).
    """
    inst = program.instructions[pc]
    if inst.kind in (KIND_LOAD, KIND_STORE):
        return state.read_reg(inst.rs1)[1]
    if inst.kind == KIND_CBRANCH:
        return merge_taint(state.read_reg(inst.rs1)[1], state.read_reg(inst.rs2)[1])
    return {}


__all__ = [
    "AbsState",
    "DEFAULT_BUDGET",
    "KIND_ARCH",
    "KIND_PRE",
    "KIND_SPEC",
    "SourceFn",
    "Taint",
    "initial_image",
    "join",
    "merge_taint",
    "operand_taint",
    "rekey",
    "rekey_state",
    "run_dataflow",
    "transfer",
]
