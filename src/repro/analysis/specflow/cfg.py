"""Control-flow graph and speculation windows over a static program.

The CFG is per-instruction (programs are small; basic blocks would buy
nothing but bookkeeping).  A **speculation window** is the static
over-approximation of a conditional branch's shadow: every pc reachable
from *either* successor.  Reachability deliberately crosses loop back
edges — a shadow really can span them (the branch at the bottom of a
loop shadows the next iteration until it resolves) — which is the
conservative direction: a too-large window can only add transmitters,
never hide one.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Tuple

from repro.isa.instructions import KIND_CBRANCH, KIND_HALT, KIND_JMP
from repro.isa.program import Program


def successors(program: Program) -> List[Tuple[int, ...]]:
    """Per-pc successor tuple.  Falling off the end is an exit (the
    interpreter defines pc == len as a clean stop), so such edges are
    simply absent."""
    length = len(program.instructions)
    table: List[Tuple[int, ...]] = []
    for pc, inst in enumerate(program.instructions):
        kind = inst.kind
        if kind == KIND_HALT:
            table.append(())
        elif kind == KIND_JMP:
            table.append((inst.imm,) if inst.imm < length else ())
        elif kind == KIND_CBRANCH:
            succ = []
            if inst.imm < length:
                succ.append(inst.imm)
            if pc + 1 < length:
                succ.append(pc + 1)
            table.append(tuple(succ))
        else:
            table.append((pc + 1,) if pc + 1 < length else ())
    return table


def reachable(succ: List[Tuple[int, ...]], *starts: int) -> FrozenSet[int]:
    """Every pc reachable from the given start pcs (inclusive)."""
    seen = set()
    stack = [pc for pc in starts if 0 <= pc < len(succ)]
    while stack:
        pc = stack.pop()
        if pc in seen:
            continue
        seen.add(pc)
        stack.extend(s for s in succ[pc] if s not in seen)
    return frozenset(seen)


def speculation_windows(program: Program) -> Dict[int, FrozenSet[int]]:
    """``{branch_pc: window}`` for every conditional branch.

    The window unions reachability from both successors because the
    transient path is whichever successor the predictor *wrongly* chose —
    statically, either one.
    """
    succ = successors(program)
    windows: Dict[int, FrozenSet[int]] = {}
    for pc, inst in enumerate(program.instructions):
        if inst.kind == KIND_CBRANCH:
            windows[pc] = reachable(succ, *succ[pc])
    return windows
