"""Inline suppression comments: ``# repro: noqa[RULE-ID]``.

A finding is suppressed when the physical line it is reported on carries
a marker naming its rule id (``# repro: noqa[RPL101]``, several ids
separated by commas) or a blanket marker (``# repro: noqa``).  Blanket
markers are for migration shims only — prefer naming the rule so a new
violation on the same line still fires.
"""

from __future__ import annotations

import re
from typing import Dict, FrozenSet, List, Optional

_NOQA = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<ids>[A-Za-z0-9_\-, ]+)\])?", re.IGNORECASE
)

#: Marker value meaning "every rule is suppressed on this line".
ALL_RULES: FrozenSet[str] = frozenset({"*"})


def suppressions_for_source(lines: List[str]) -> Dict[int, FrozenSet[str]]:
    """Map 1-based line numbers to the rule ids suppressed on that line."""
    table: Dict[int, FrozenSet[str]] = {}
    for number, line in enumerate(lines, start=1):
        ids = suppressed_ids(line)
        if ids is not None:
            table[number] = ids
    return table


def suppressed_ids(line: str) -> Optional[FrozenSet[str]]:
    """The rule ids a single source line suppresses, if any."""
    match = _NOQA.search(line)
    if match is None:
        return None
    ids = match.group("ids")
    if ids is None:
        return ALL_RULES
    return frozenset(part.strip().upper() for part in ids.split(",") if part.strip())


def is_suppressed(
    table: Dict[int, FrozenSet[str]], line: int, rule_id: str
) -> bool:
    ids = table.get(line)
    if ids is None:
        return False
    return ids is ALL_RULES or "*" in ids or rule_id.upper() in ids
