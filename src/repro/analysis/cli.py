"""The ``repro lint`` subcommand implementation.

Kept separate from :mod:`repro.cli` so the top-level parser stays cheap
to import and the lint machinery loads only when asked for.

Exit codes: 0 clean (after baseline + suppressions), 1 findings,
2 usage error (unknown rule id, missing path, unreadable baseline).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.common.errors import LintError, LintUsageError

#: Exit codes (also documented in ``repro lint --help``).
EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach ``repro lint``'s arguments to a subcommand parser."""
    parser.add_argument(
        "paths", nargs="*",
        help="files/directories to lint (default: the installed repro "
             "package)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (json is the CI artifact form)",
    )
    parser.add_argument(
        "--baseline", default=None,
        help="baseline JSON of grandfathered findings (default: the "
             "packaged src/repro/analysis/baseline.json)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore every baseline (report grandfathered findings too)",
    )
    parser.add_argument(
        "--select", default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore", default=None,
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline from the current findings (existing "
             "justifications are kept; new entries get a TODO marker)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )


def run_lint(args: argparse.Namespace) -> int:
    """Execute ``repro lint``; returns the process exit code."""
    from repro.analysis.baseline import (
        PACKAGED_BASELINE,
        Baseline,
        write_baseline,
    )
    from repro.analysis.engine import LintRunner
    from repro.analysis.registry import all_rules
    from repro.analysis.reporters import render_json, render_text

    try:
        if args.list_rules:
            for rule_id, rule in sorted(all_rules().items()):
                print(f"{rule_id}  {rule.name}")
                print(f"    {rule.rationale}")
            return EXIT_CLEAN

        paths = args.paths or [_default_target()]
        baseline = _load_baseline(args, Baseline, PACKAGED_BASELINE)
        runner = LintRunner(
            select=_split_ids(args.select),
            ignore=_split_ids(args.ignore),
            baseline=baseline,
        )
        report = runner.run(paths)

        if args.update_baseline:
            target = Path(args.baseline) if args.baseline else PACKAGED_BASELINE
            count = write_baseline(target, report.all_findings(), baseline)
            print(f"baseline rewritten: {count} entr(y/ies) -> {target}")
            return EXIT_CLEAN

        output = render_json(report) if args.format == "json" else render_text(report)
        print(output)
        return report.exit_code
    except LintUsageError as error:
        print(f"usage error: {error}", file=sys.stderr)
        return EXIT_USAGE
    except LintError as error:
        print(f"lint error: {error}", file=sys.stderr)
        return EXIT_USAGE


def _default_target() -> str:
    import repro

    return str(Path(repro.__file__).resolve().parent)


def _load_baseline(args, baseline_cls, packaged: Path):
    if args.no_baseline:
        return baseline_cls()
    if args.baseline is not None:
        path = Path(args.baseline)
        if not path.exists():
            if args.update_baseline:
                return baseline_cls(source=str(path))
            raise LintUsageError(f"baseline file not found: {path}")
        return baseline_cls.load(path)
    if packaged.exists():
        return baseline_cls.load(packaged)
    return baseline_cls()


def _split_ids(raw: Optional[str]) -> List[str]:
    if not raw:
        return []
    return [part.strip().upper() for part in raw.split(",") if part.strip()]
