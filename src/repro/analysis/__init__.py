"""reprolint — AST-based static analysis enforcing simulator invariants.

The last two PRs caught serious bugs only at runtime: a stale
config-fingerprint memo that poisoned the sweep cache, a rename-map leak
found by the invariant checker, untyped exceptions that broke retry
classification.  Each of those bug classes is *statically* detectable,
and this package moves them from dynamic guardrails to review-time
guarantees:

==========  ==========================================================
``RPL101``  nondeterministic call/import in simulator code
``RPL102``  iteration over a bare set in simulator code
``RPL103``  ``id()`` (allocation-order) identity in simulator code
``RPL201``  config field dropped from the cache fingerprint without an
            explicit exclusion-list entry
``RPL301``  ``raise`` of a builtin exception instead of a ReproError
``RPL401``  layering violation (schemes→pipeline not via schemes.base,
            memory→pipeline, simulator core→guardrails)
``RPL501``  unpicklable callable submitted to a process pool
``RPL502``  process-pool worker mutating module-level state
``RPL601``  mutable default argument
``RPL602``  mutation of an undeclared SimStats counter
==========  ==========================================================

Run it as ``repro lint [paths]``; findings are suppressed inline with
``# repro: noqa[RULE-ID]`` or grandfathered (with a justification) in
the packaged ``baseline.json``.  See ``docs/internals.md`` for the full
rule catalogue and how to add a rule.
"""

from repro.analysis.baseline import Baseline, BaselineEntry, PACKAGED_BASELINE
from repro.analysis.engine import LintReport, LintRunner
from repro.analysis.finding import Finding
from repro.analysis.registry import ModuleContext, Rule, all_rules, register
from repro.analysis.reporters import render_json, render_text

__all__ = [
    "Baseline",
    "BaselineEntry",
    "Finding",
    "LintReport",
    "LintRunner",
    "ModuleContext",
    "PACKAGED_BASELINE",
    "Rule",
    "all_rules",
    "register",
    "render_json",
    "render_text",
]
