"""Rule interface and registry.

A rule is a stateless object that inspects one parsed module at a time
and yields :class:`~repro.analysis.finding.Finding` objects.  Rules
register themselves with the :func:`register` decorator at import time;
:mod:`repro.analysis.rules` imports every rule module so that loading the
package populates the registry.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import ClassVar, Dict, Iterable, Iterator, List, Tuple, Type

from repro.common.errors import LintError, LintUsageError


@dataclass
class ModuleContext:
    """Everything a rule may look at for one source file."""

    path: Path
    display_path: str
    module: str
    tree: ast.Module
    source: str
    lines: List[str] = field(default_factory=list)

    @classmethod
    def parse(cls, path: Path, display_path: str) -> "ModuleContext":
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as error:
            raise LintError(f"cannot read {path}: {error}") from error
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as error:
            raise LintError(
                f"{display_path}:{error.lineno or 0}: syntax error: {error.msg}"
            ) from error
        return cls(
            path=path,
            display_path=display_path,
            module=module_name_for_path(path),
            tree=tree,
            source=source,
            lines=source.splitlines(),
        )

    def in_package(self, *prefixes: str) -> bool:
        """Is this module inside any of the given dotted packages?"""
        for prefix in prefixes:
            if self.module == prefix or self.module.startswith(prefix + "."):
                return True
        return False


def module_name_for_path(path: Path) -> str:
    """Best-effort dotted module name for ``path``.

    Everything from the *last* path component named ``repro`` onward is
    used, so both the installed tree (``src/repro/memory/cache.py``) and
    test fixtures laid out as ``fixtures/<case>/repro/...`` resolve to
    ``repro.*`` names.  Files outside any ``repro`` tree fall back to
    their stem.
    """
    parts = list(path.resolve().parts)
    anchor = None
    for index, part in enumerate(parts):
        if part == "repro":
            anchor = index
    if anchor is None:
        return path.stem
    dotted = list(parts[anchor:])
    dotted[-1] = Path(dotted[-1]).stem
    if dotted[-1] == "__init__":
        dotted.pop()
    return ".".join(dotted)


class Rule:
    """Base class for reprolint rules.

    Subclasses set the class attributes and implement :meth:`check`.
    ``rationale`` names the runtime bug class the rule prevents; it is
    surfaced by ``repro lint --list-rules`` and the docs.
    """

    rule_id: ClassVar[str] = ""
    name: ClassVar[str] = ""
    rationale: ClassVar[str] = ""

    def check(self, ctx: ModuleContext) -> Iterator:
        raise NotImplementedError  # repro: noqa[RPL301] - abstract method idiom

    def finding(self, ctx: ModuleContext, node: ast.AST, message: str):
        from repro.analysis.finding import Finding

        return Finding(
            rule=self.rule_id,
            path=ctx.display_path,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


_REGISTRY: Dict[str, Rule] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule (by ``rule_id``) to the registry."""
    if not rule_cls.rule_id:
        raise LintError(f"rule {rule_cls.__name__} has no rule_id")
    if rule_cls.rule_id in _REGISTRY:
        raise LintError(f"duplicate rule id {rule_cls.rule_id}")
    _REGISTRY[rule_cls.rule_id] = rule_cls()
    return rule_cls


def all_rules() -> Dict[str, Rule]:
    """The registry, populated by importing :mod:`repro.analysis.rules`."""
    import repro.analysis.rules  # noqa: F401  (registers on import)

    return dict(_REGISTRY)


def resolve_rules(
    select: Iterable[str] = (), ignore: Iterable[str] = ()
) -> Tuple[Rule, ...]:
    """The active rule set after ``--select`` / ``--ignore`` filtering.

    Unknown rule ids are a usage error (exit code 2 at the CLI) so a typo
    in CI configuration fails loudly instead of silently linting nothing.
    """
    rules = all_rules()
    selected = list(select) or sorted(rules)
    unknown = [rid for rid in [*selected, *ignore] if rid not in rules]
    if unknown:
        raise LintUsageError(
            f"unknown rule id(s): {', '.join(sorted(set(unknown)))}; "
            f"known: {', '.join(sorted(rules))}"
        )
    ignored = set(ignore)
    return tuple(rules[rid] for rid in selected if rid not in ignored)
