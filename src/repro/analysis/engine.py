"""The lint engine: file collection, rule dispatch, suppression, baseline.

One :class:`LintRunner` run walks every ``*.py`` file under the given
paths, parses each once, hands the module to every active rule, then
filters the collected findings through inline ``# repro: noqa[...]``
markers and the baseline.  The result is a :class:`LintReport` whose
``ok`` property is the CI gate.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.analysis.baseline import Baseline, BaselineEntry
from repro.analysis.finding import Finding
from repro.analysis.registry import ModuleContext, Rule, resolve_rules
from repro.analysis.suppressions import is_suppressed, suppressions_for_source
from repro.common.errors import LintUsageError


@dataclass
class LintReport:
    """Outcome of one lint run."""

    findings: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    stale_baseline: List[BaselineEntry] = field(default_factory=list)
    files_scanned: int = 0
    rules_run: Tuple[str, ...] = ()
    baseline_source: str = "<none>"

    @property
    def ok(self) -> bool:
        """Clean iff no *active* finding survived noqa + baseline."""
        return not self.findings

    @property
    def exit_code(self) -> int:
        return 0 if self.ok else 1

    def all_findings(self) -> List[Finding]:
        """Active + baselined findings (what ``--update-baseline`` writes)."""
        return sorted([*self.findings, *self.baselined], key=Finding.sort_key)


class LintRunner:
    """Configured lint pass: rules × paths → :class:`LintReport`."""

    def __init__(
        self,
        select: Iterable[str] = (),
        ignore: Iterable[str] = (),
        baseline: Optional[Baseline] = None,
    ):
        self.rules: Tuple[Rule, ...] = resolve_rules(select, ignore)
        self.baseline = baseline if baseline is not None else Baseline()

    def run(self, paths: Sequence[os.PathLike]) -> LintReport:
        report = LintReport(
            rules_run=tuple(rule.rule_id for rule in self.rules),
            baseline_source=self.baseline.source,
        )
        raw: List[Finding] = []
        suppressed: List[Finding] = []
        for path, display in collect_files(paths):
            ctx = ModuleContext.parse(path, display)
            report.files_scanned += 1
            noqa = suppressions_for_source(ctx.lines)
            for rule in self.rules:
                for finding in rule.check(ctx):
                    if is_suppressed(noqa, finding.line, finding.rule):
                        suppressed.append(finding)
                    else:
                        raw.append(finding)
        active, baselined, stale = self.baseline.partition(
            sorted(raw, key=Finding.sort_key)
        )
        report.findings = active
        report.baselined = baselined
        report.suppressed = sorted(suppressed, key=Finding.sort_key)
        report.stale_baseline = stale
        return report


def collect_files(paths: Sequence[os.PathLike]) -> List[Tuple[Path, str]]:
    """Expand files/directories into (path, display_path) pairs.

    Directories are walked recursively for ``*.py`` (skipping
    ``__pycache__``); the display path keeps whatever form the caller
    passed, so messages stay short and clickable from the invocation
    directory.  A missing path is a usage error.
    """
    out: List[Tuple[Path, str]] = []
    for raw in paths:
        root = Path(raw)
        if root.is_file():
            out.append((root, str(raw)))
        elif root.is_dir():
            for file in sorted(root.rglob("*.py")):
                if "__pycache__" in file.parts:
                    continue
                out.append((file, str(file)))
        else:
            raise LintUsageError(f"no such file or directory: {raw}")
    return out
