"""The unit of reprolint output: one finding at one source location."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict


@dataclass(frozen=True)
class Finding:
    """One rule violation, pinned to a file/line/column.

    ``path`` is stored as given to the engine (normally relative to the
    invocation directory); baseline matching uses a *suffix* comparison on
    the POSIX form so a baseline written at the repo root still matches
    when the tree is linted from elsewhere.
    """

    rule: str
    path: str
    line: int
    col: int
    message: str

    @property
    def posix_path(self) -> str:
        return self.path.replace("\\", "/")

    def sort_key(self) -> tuple:
        return (self.posix_path, self.line, self.col, self.rule)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "path": self.posix_path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"
