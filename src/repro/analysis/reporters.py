"""Text and JSON renderings of a :class:`~repro.analysis.engine.LintReport`."""

from __future__ import annotations

import json

from repro.analysis.engine import LintReport


def render_text(report: LintReport) -> str:
    """Human-readable report: one line per finding plus a summary."""
    lines = [finding.render() for finding in report.findings]
    if report.stale_baseline:
        lines.append("")
        lines.append("stale baseline entries (fixed or moved — remove them):")
        for entry in report.stale_baseline:
            lines.append(f"  {entry.rule} {entry.path}: {entry.message}")
    lines.append("")
    verdict = "clean" if report.ok else f"{len(report.findings)} finding(s)"
    lines.append(
        f"reprolint: {verdict} — {report.files_scanned} file(s), "
        f"{len(report.rules_run)} rule(s), {len(report.baselined)} baselined, "
        f"{len(report.suppressed)} suppressed inline"
    )
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    """Machine-readable report (the CI artifact on failure)."""
    payload = {
        "version": 1,
        "ok": report.ok,
        "files_scanned": report.files_scanned,
        "rules_run": list(report.rules_run),
        "baseline": report.baseline_source,
        "findings": [finding.to_dict() for finding in report.findings],
        "baselined": [finding.to_dict() for finding in report.baselined],
        "suppressed": [finding.to_dict() for finding in report.suppressed],
        "stale_baseline": [
            {"rule": entry.rule, "path": entry.path, "message": entry.message}
            for entry in report.stale_baseline
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
