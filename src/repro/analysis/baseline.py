"""The checked-in baseline of grandfathered findings.

The baseline lets the linter ship with a clean exit on a tree that still
carries *deliberate* violations: each entry names the rule, the file, the
exact message, and a one-line human justification for keeping it.  A
finding that matches an entry is reported as *baselined* and does not
fail the run; an entry that matches nothing is reported as *stale* so
baselines shrink over time instead of fossilizing.

Matching ignores line numbers on purpose — unrelated edits move code —
and compares the file by POSIX-path suffix so the baseline written at the
repo root (``repro/memory/replacement.py``) matches however the tree is
mounted or linted.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.analysis.finding import Finding
from repro.common.errors import LintError
from repro.common.io import atomic_write_text

BASELINE_VERSION = 1

#: The baseline that ships inside the package (used by default so
#: ``repro lint`` works from any directory, installed or in-tree).
PACKAGED_BASELINE = Path(__file__).resolve().parent / "baseline.json"


@dataclass(frozen=True)
class BaselineEntry:
    """One grandfathered finding and why it is being kept."""

    rule: str
    path: str
    message: str
    justification: str = ""

    def matches(self, finding: Finding) -> bool:
        return (
            finding.rule == self.rule
            and finding.message == self.message
            and _suffix_match(finding.posix_path, self.path)
        )


def _suffix_match(full: str, suffix: str) -> bool:
    if full == suffix:
        return True
    return full.endswith("/" + suffix)


@dataclass
class Baseline:
    """A loaded baseline file plus per-run match bookkeeping."""

    entries: List[BaselineEntry] = field(default_factory=list)
    source: str = "<empty>"

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except OSError as error:
            raise LintError(f"cannot read baseline {path}: {error}") from error
        except json.JSONDecodeError as error:
            raise LintError(f"baseline {path} is not valid JSON: {error}") from error
        raw_entries = payload.get("entries", [])
        entries = []
        for raw in raw_entries:
            try:
                entries.append(
                    BaselineEntry(
                        rule=raw["rule"],
                        path=raw["path"],
                        message=raw["message"],
                        justification=raw.get("justification", ""),
                    )
                )
            except (TypeError, KeyError) as error:
                raise LintError(
                    f"baseline {path}: malformed entry {raw!r}"
                ) from error
        return cls(entries=entries, source=str(path))

    def partition(
        self, findings: Sequence[Finding]
    ) -> Tuple[List[Finding], List[Finding], List[BaselineEntry]]:
        """Split findings into (active, baselined); also return stale entries."""
        active: List[Finding] = []
        baselined: List[Finding] = []
        hits: Dict[BaselineEntry, int] = {entry: 0 for entry in self.entries}
        for finding in findings:
            matched = None
            for entry in self.entries:
                if entry.matches(finding):
                    matched = entry
                    break
            if matched is None:
                active.append(finding)
            else:
                hits[matched] += 1
                baselined.append(finding)
        stale = [entry for entry, count in hits.items() if count == 0]
        return active, baselined, stale


def write_baseline(
    path: Path,
    findings: Iterable[Finding],
    previous: Baseline,
) -> int:
    """Write ``findings`` as the new baseline, keeping old justifications.

    New entries get a ``TODO: justify`` placeholder so a review can spot
    them; returns the number of entries written.
    """
    carried = {
        (entry.rule, entry.path, entry.message): entry.justification
        for entry in previous.entries
    }
    entries = []
    seen = set()
    for finding in sorted(findings, key=Finding.sort_key):
        rel = _baseline_path(finding.posix_path)
        key = (finding.rule, rel, finding.message)
        if key in seen:
            continue
        seen.add(key)
        entries.append(
            {
                "rule": finding.rule,
                "path": rel,
                "message": finding.message,
                "justification": carried.get(key, "TODO: justify"),
            }
        )
    payload = {"version": BASELINE_VERSION, "entries": entries}
    atomic_write_text(path, json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return len(entries)


def _baseline_path(posix_path: str) -> str:
    """Store paths from the last ``repro/`` component so baselines are
    invocation-directory independent."""
    marker = "repro/"
    index = posix_path.rfind(marker)
    # Guard against a path *ending* in repro/ (a directory, not a file).
    if index >= 0 and len(posix_path) > index + len(marker):
        return posix_path[index:]
    return posix_path
