"""Doppelganger Loads: safe address prediction for delayed loads."""

from repro.doppelganger.engine import DoppelgangerEngine

__all__ = ["DoppelgangerEngine"]
