"""The Doppelganger Load engine (paper §4 and §5).

A doppelganger is the address-predicted stand-in of a load:

1. **Predict** — at dispatch, every load's PC queries the stride table in
   address-prediction mode.  Because the table is trained only at commit,
   several in-flight instances of the same PC would all receive the same
   prediction; the engine therefore ages the prediction by one stride per
   outstanding older instance of the PC, which is still a pure function of
   committed history plus (secret-independent) fetch counts.
2. **Issue** — doppelgangers fill memory-port slots left over by real
   loads (non-predicted accesses are always prioritized, §5 item D).  The
   access is an ordinary memory access: *no memory hierarchy changes*.
3. **Preload** — the returned value is parked in the load's destination
   register but never propagated.
4. **Verify** — when the real address resolves, it is compared against the
   prediction.  Match: the preloaded value is released per the underlying
   scheme's rule.  Mismatch: the preload is discarded (no squash — nothing
   consumed it) and the real load issues under the scheme's normal rules.
5. **Forwarding / invalidations** — an older store whose resolved address
   matches overrides the preloaded value transparently (§4.4);
   LQ-snooping invalidations are noted and applied at release (§4.5).

Release rules per scheme (enforced here + by ``value_readable``):

* NDA-P: value completes at verification, but NDA's lock keeps it
  unreadable until the load is non-speculative.
* STT: value completes at verification and propagates immediately,
  tainted exactly as a normal STT load output would be.
* DoM: a doppelganger that hit in the L1 completes at verification (same
  visibility as a DoM speculative hit); one that missed completes only
  when the load is non-speculative (same instant the plain DoM load would
  have returned) — ``dl_miss_release_at_nonspec``.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Dict

from repro.pipeline.uop import MicroOp

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.pipeline.core import Core


class DoppelgangerEngine:
    """Per-core doppelganger state machine."""

    def __init__(self, core: "Core"):
        self.core = core
        self.stats = core.stats
        # Hoisted collaborators: neither is ever rebound on a live core,
        # so the per-dispatch/per-issue paths skip the core indirection.
        self.stride = core.stride
        self.hierarchy = core.hierarchy
        # In-flight predicted instances per PC, used to age predictions
        # across overlapping loop iterations.
        self._outstanding: Dict[int, int] = {}
        # Predicted loads awaiting a spare port, oldest first.
        self._candidates: deque = deque()

    # ------------------------------------------------------------------
    # Dispatch: predict the current instance's address
    # ------------------------------------------------------------------
    def on_dispatch(self, load: MicroOp) -> None:
        table = self.stride
        entry = table.entry_for(load.pc)
        if entry is None or entry.confidence < table.config.confidence_threshold:
            return
        pending = self._outstanding.get(load.pc, 0)
        if table.config.multi_instance_aging:
            # Extension (see PredictorConfig.multi_instance_aging): age
            # the prediction by one stride per older in-flight instance.
            steps = pending + 1
        else:
            # Paper-baseline predictor: the current instance is predicted
            # as last committed address + stride.  With several instances
            # of the PC in flight, the younger ones receive stale
            # predictions and verify as wrong — part of why the paper's
            # simple predictor has modest coverage/accuracy.
            steps = 1
        predicted = (entry.last_address + entry.stride * steps) & ((1 << 64) - 1)
        table.predictions_made += 1
        load.dl_predicted_address = predicted
        self._outstanding[load.pc] = pending + 1
        self.stats.dl_predictions += 1
        self._candidates.append(load)

    def _retire_instance(self, load: MicroOp) -> None:
        """Drop the outstanding-instance count when an instance leaves."""
        if load.dl_predicted_address is None:
            return
        pending = self._outstanding.get(load.pc, 0)
        if pending > 1:
            self._outstanding[load.pc] = pending - 1
        else:
            self._outstanding.pop(load.pc, None)

    # ------------------------------------------------------------------
    # Spare-port issue
    # ------------------------------------------------------------------
    def has_candidates(self) -> bool:
        return bool(self._candidates)

    def issue_spare(self, ports: int, now: int) -> int:
        """Issue doppelganger accesses into leftover load ports.

        Candidates are processed oldest-first and leave the queue once
        issued, verified, or squashed.  Returns the number of ports still
        unused (for the prefetcher).
        """
        candidates = self._candidates
        if ports <= 0 or not candidates:
            return ports
        hierarchy = self.hierarchy
        while ports > 0 and candidates:
            load = candidates[0]
            if (
                load.squashed
                or load.executed
                or load.dl_issued
                or load.dl_verified
                or load.address_ready
                or not load.has_doppelganger
            ):
                candidates.popleft()
                continue
            result = hierarchy.access(load.dl_predicted_address, now)
            ports -= 1
            if result.retry:
                break  # MSHRs exhausted; retry the same load next cycle
            candidates.popleft()
            load.dl_issued = True
            load.dl_completion_cycle = now + result.latency
            load.dl_l1_hit = result.l1_hit
            self.stats.dl_issued += 1
        return ports

    # ------------------------------------------------------------------
    # Verification (the real address just resolved)
    # ------------------------------------------------------------------
    def on_address_resolved(self, load: MicroOp, now: int) -> None:
        if load.dl_predicted_address is None or load.dl_verified:
            return
        load.dl_verified = True
        if not load.dl_issued:
            # Never got a spare port: the prediction lapses; the load
            # proceeds as a plain load under the scheme.
            load.dl_cancelled = True
            return
        if load.dl_predicted_address == load.address:
            load.dl_correct = True
            self.stats.dl_correct += 1
            self._schedule_release(load, now)
        else:
            load.dl_correct = False
            self.stats.dl_wrong += 1
            # The preloaded value is discarded before the load re-issues;
            # the shared physical register is reused (paper §5.1).  The
            # real access is issued by the core's LQ scheduler under the
            # scheme's rules (DoM: only when non-speculative).

    def _schedule_release(self, load: MicroOp, now: int) -> None:
        scheme = self.core.scheme
        if scheme.dl_miss_release_at_nonspec and not load.dl_l1_hit:
            # DoM: a doppelganger miss behaves like a DoM miss — the value
            # becomes visible only at the load's visibility point.
            self.core.defer_until_nonspec(load)
        else:
            self.core.schedule_dl_release(load, max(load.dl_completion_cycle, now + 1))

    # ------------------------------------------------------------------
    # Retirement bookkeeping
    # ------------------------------------------------------------------
    def on_commit(self, load: MicroOp) -> None:
        self._retire_instance(load)
        if not load.dl_issued:
            return
        self.stats.dl_covered_commits += 1
        if load.dl_correct:
            self.stats.dl_correct_commits += 1

    def on_squash(self, load: MicroOp) -> None:
        self._retire_instance(load)
        if load.dl_issued and not load.committed:
            # The access happened; only the (secret-independent) predicted
            # address became visible — safe per §4.2.
            self.stats.dl_squashed += 1

    # ------------------------------------------------------------------
    # Guardrails / diagnostics
    # ------------------------------------------------------------------
    def outstanding_instances(self) -> int:
        """Total in-flight predicted instances across every load PC.

        Invariant (checked by the guardrails): this equals the number of
        ROB-resident loads carrying a prediction — :meth:`on_dispatch`
        increments per prediction, :meth:`on_commit`/:meth:`on_squash`
        decrement exactly once per predicted instance leaving the window.
        An imbalance means an instance leaked (its PC would receive
        ever-aging predictions) or was double-retired.
        """
        return sum(self._outstanding.values())

    def pending_candidates(self) -> int:
        """Predicted loads still queued for a spare port (lazy-cleaned)."""
        return len(self._candidates)

    def validate(self, rob) -> list:
        """Verify-or-replay accounting sweep; returns violation strings."""
        problems = []
        predicted_in_rob = 0
        for uop in rob:
            if not uop.is_load or uop.dl_predicted_address is None:
                continue
            predicted_in_rob += 1
            if uop.dl_used and not uop.dl_correct:
                problems.append(
                    f"load seq={uop.seq} pc={uop.pc} consumed its preload "
                    f"without a verified-correct prediction"
                )
            if (
                uop.completed
                and uop.dl_verified
                and not uop.dl_correct
                and not uop.dl_cancelled
                and not uop.executed
                and not uop.vp_active
            ):
                problems.append(
                    f"load seq={uop.seq} pc={uop.pc} completed after a "
                    f"mispredicted doppelganger without replaying the real "
                    f"access (dropped replay)"
                )
        tracked = self.outstanding_instances()
        if tracked != predicted_in_rob:
            problems.append(
                f"doppelganger instance accounting imbalance: engine tracks "
                f"{tracked} in-flight predicted instances, ROB holds "
                f"{predicted_in_rob}"
            )
        return problems

    # ------------------------------------------------------------------
    # Invalidations (memory consistency, §4.5)
    # ------------------------------------------------------------------
    def on_invalidation(self, load: MicroOp, line: int) -> bool:
        """Note an invalidation matching the predicted address in the LQ.

        The doppelganger itself is never squashed; the note takes effect
        when the preloaded value would propagate.  Returns True when the
        LQ entry matched.
        """
        if (
            load.dl_predicted_address is None
            or load.dl_cancelled
            or not load.dl_issued
            or load.dl_used
        ):
            return False
        if self.hierarchy.line_address(load.dl_predicted_address) != line:
            return False
        load.dl_invalidated = True
        return True
