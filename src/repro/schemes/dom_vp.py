"""Delay-on-Miss with value prediction (DoM+VP) — the paper's foil.

The original DoM paper [40] proposed covering delayed misses with *value
prediction*: a delayed load's destination register receives a predicted
value that propagates speculatively; when the real load finally returns
(at the visibility point, as in plain DoM), the value is validated and a
mismatch squashes the load's dependents.

Our paper argues (§2.3, §8) this is inferior to Doppelganger Loads:
values are harder to predict than addresses, and a wrong value costs a
squash while a wrong address costs nothing.  This scheme exists so the
repository can *run* that comparison (``bench_extension_value_prediction``)
rather than assert it.

Security: the value predictor is commit-trained (same argument as the
address predictor), and validation happens against the non-speculatively
re-issued load's data, so no new channel opens relative to plain DoM with
respect to its memory-hierarchy threat model.
"""

from __future__ import annotations

from repro.schemes.dom import DelayOnMiss


class DoMValuePrediction(DelayOnMiss):
    """DoM whose delayed misses speculate on a predicted *value*.

    The mechanism lives in the core (probe-miss prediction, completion
    validation, dependent squash); this subclass only switches it on and
    keeps the plain-DoM behaviour everywhere else.  Address prediction is
    force-disabled: the point is a clean VP-vs-AP comparison.
    """

    name = "dom+vp"
    specflow_policy = "dom+vp"
    uses_value_prediction = True

    def __init__(self, address_prediction: bool = False):
        super().__init__(address_prediction=False)

    def describe(self) -> str:
        return self.name

    def check_invariants(self, core) -> list:
        """Plain-DoM checks plus the VP gate: a speculatively propagated
        value prediction exists only on a *delayed miss* (anything else
        would predict values DoM never needed to hide), and a predicted
        value may never become architectural before validation (the
        commit gate keeps vp-active loads at the ROB head)."""
        problems = super().check_invariants(core)
        for load in core.lq:
            if load.squashed or not load.vp_active:
                continue
            if not load.dom_delayed:
                problems.append(
                    f"load seq={load.seq} pc={load.pc} is value-predicted "
                    f"but was never a delayed miss"
                )
            if load.committed:
                problems.append(
                    f"load seq={load.seq} pc={load.pc} committed with an "
                    f"unvalidated value prediction"
                )
        return problems
