"""Delay-on-Miss (DoM), Sakalis et al. [40].

DoM hides speculation in the memory hierarchy instead of blocking value
flow: speculative loads issue to the L1 as non-mutating probes.  A probe
that hits completes normally (its replacement update is applied
retroactively at commit); a probe that misses is *delayed* — no L2/L3/DRAM
traffic, no fill — and the load re-issues a full access once it is
non-speculative.  Values propagate freely, which also protects secrets
already in registers (DoM's threat model is the memory hierarchy only).

With address prediction (paper §4.6/§5.3) two additional rules close the
implicit channels that doppelganger misses would otherwise open:

* branches resolve in order (only once non-speculative), and
* the real load of a *mispredicted* doppelganger issues only once the load
  is non-speculative.

Both are expressed here as block keys; the doppelganger release rule
(hit → release at verification, miss → release at non-speculative) is
selected by ``dl_miss_release_at_nonspec`` and enforced by the engine.
"""

from __future__ import annotations

from repro.schemes.base import READY, MicroOp, SecureScheme


class DelayOnMiss(SecureScheme):
    """Figure 1(d): speculative L1 hits proceed, speculative misses wait."""

    name = "dom"
    specflow_policy = "dom"
    dl_miss_release_at_nonspec = True
    gates_loads = True
    uses_probe = True
    needs_shadows = True

    def __init__(self, address_prediction: bool = False):
        super().__init__(address_prediction=address_prediction)
        # branch_block_seq gates only under the in-order-resolution rule,
        # which exists solely to close the doppelganger implicit channel.
        self.gates_branches = address_prediction

    def load_is_probe(self, load: MicroOp) -> bool:
        return self.shadows.is_speculative(load.seq)

    def load_block_seq(self, load: MicroOp) -> int:
        # A delayed (probe-missed) load waits for its visibility point.
        if load.dom_delayed and self.shadows.is_speculative(load.seq):
            return load.seq
        # The real load of a mispredicted doppelganger is delayed until
        # non-speculative (paper §5.3) — issuing it earlier would let the
        # doppelganger implicit channel leak through the miss timing.
        if (
            self.address_prediction
            and load.dl_verified
            and not load.dl_correct
            and not load.dl_cancelled
            and self.shadows.is_speculative(load.seq)
        ):
            return load.seq
        return READY

    def branch_block_seq(self, branch: MicroOp, operand_taint: int) -> int:
        if not self.address_prediction:
            return READY
        # In-order branch resolution: only once the branch itself is no
        # longer covered by an older shadow (paper §4.6).
        if self.shadows.is_speculative(branch.seq):
            return branch.seq
        return READY

    def check_invariants(self, core) -> list:
        """Delayed-miss discipline: a delayed load leaves no trace and
        completes only through a real (replayed) access.

        * no replacement-state update is ever queued for a load that is
          still delayed (the retroactive ``touch`` belongs to probe hits
          alone — updating it for a delayed miss is exactly the side
          channel DoM exists to close);
        * a delayed load that has not performed its access holds no value;
        * a completed load must have executed an access, forwarded, or be
          a validated value prediction — anything else is a dropped
          replay, which silently commits stale data.
        """
        problems = []
        for load in core.lq:
            if load.squashed:
                continue
            if load.dom_delayed and not load.executed:
                if load.dom_touch_pending:
                    problems.append(
                        f"delayed load seq={load.seq} pc={load.pc} has a "
                        f"pending L1 replacement update (DoM must not touch "
                        f"replacement state for delayed loads)"
                    )
                if load.result is not None and not load.vp_active:
                    problems.append(
                        f"delayed load seq={load.seq} pc={load.pc} bound a "
                        f"value without performing its access"
                    )
            if load.completed and not load.executed and not load.vp_active:
                problems.append(
                    f"load seq={load.seq} pc={load.pc} completed without a "
                    f"memory access, forward, or doppelganger release "
                    f"(dropped replay)"
                )
        return problems
