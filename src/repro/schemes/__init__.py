"""Secure speculation schemes: unsafe baseline, NDA-P, STT, and DoM."""

from __future__ import annotations

from typing import Dict, Type

from repro.common.errors import ConfigError
from repro.schemes.base import SecureScheme
from repro.schemes.dom import DelayOnMiss
from repro.schemes.dom_vp import DoMValuePrediction
from repro.schemes.nda import NDAPermissive
from repro.schemes.stt import STT
from repro.schemes.unsafe import UnsafeBaseline

SCHEME_CLASSES: Dict[str, Type[SecureScheme]] = {
    "unsafe": UnsafeBaseline,
    "nda": NDAPermissive,
    "stt": STT,
    "dom": DelayOnMiss,
    "dom+vp": DoMValuePrediction,
}

SCHEME_NAMES = tuple(SCHEME_CLASSES)


def make_scheme(name: str, address_prediction: bool = False) -> SecureScheme:
    """Build a scheme by name (``unsafe``, ``nda``, ``stt``, ``dom``,
    ``dom+vp``).

    Accepts a trailing ``+ap`` suffix as shorthand for
    ``address_prediction=True``, e.g. ``make_scheme("dom+ap")``.
    """
    key = name.lower().strip()
    if key.endswith("+ap"):
        key = key[: -len("+ap")]
        address_prediction = True
    if key not in SCHEME_CLASSES:
        raise ConfigError(
            f"unknown scheme {name!r}; expected one of {sorted(SCHEME_CLASSES)}"
        )
    return SCHEME_CLASSES[key](address_prediction=address_prediction)


__all__ = [
    "DelayOnMiss",
    "DoMValuePrediction",
    "NDAPermissive",
    "SCHEME_CLASSES",
    "SCHEME_NAMES",
    "STT",
    "SecureScheme",
    "UnsafeBaseline",
    "make_scheme",
]
