"""The scheme interface: how a secure speculation policy plugs into the core.

A :class:`SecureScheme` is a strategy object the pipeline consults at the
decision points the paper's schemes differ on.  All of the paper's
restrictions share one structure: *wait until the shadow frontier reaches
some sequence number* — NDA-P's propagation lock waits for the producing
load to become non-speculative, STT's transmitter delays wait for a taint
root's visibility point, DoM's delayed misses and in-order branch
resolution wait for the instruction's own visibility point.  The hooks
therefore return a **block key**: :data:`READY` (−1) when the action may
proceed now, otherwise the sequence number the shadow frontier must reach
first.  The core parks the instruction on a frontier-ordered wait queue
and wakes it exactly when that happens — O(1) per query, no per-cycle
polling.

Hooks:

* :meth:`value_block_seq` — may a dependent consume a completed
  producer's result? (NDA-P: not until the producer load is
  non-speculative.)
* :meth:`load_block_seq` — may this address-resolved load access the
  memory hierarchy? (STT: not while the address is tainted; DoM: a
  delayed miss or mispredicted doppelganger waits for non-speculation.)
* :meth:`load_is_probe` — is the access an L1-only non-mutating probe
  (DoM while speculative)?
* :meth:`branch_block_seq` / :meth:`store_block_seq` — may this branch
  resolve / this store address become visible? (STT: tainted predicates
  and addresses wait; DoM+AP: branches resolve in order.)
* :meth:`load_result_taint` — STT's output tainting.

Schemes never mutate pipeline structures; they only answer questions,
keeping each scheme a reviewable statement of its paper's policy.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

# This module is the schemes package's single sanctioned window onto the
# pipeline (reprolint RPL401): concrete schemes import pipeline types
# from here, never from repro.pipeline directly, so the full surface a
# policy can touch stays visible in one place.
from repro.pipeline.uop import UNTAINTED, MicroOp

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.pipeline.core import Core

__all__ = ["MicroOp", "READY", "SecureScheme", "UNTAINTED"]

READY = -1
"""Block key meaning "no restriction — proceed now"."""


class SecureScheme:
    """Unsafe baseline behaviour; secure schemes override the hooks."""

    #: Short identifier used by the harness and result labels.
    name = "unsafe"
    #: Which declarative policy model the static leakage analyzer
    #: (``repro.analysis.specflow``) uses for this scheme.  A plain string
    #: key — never an object — so schemes stay import-independent of the
    #: analysis layer (reprolint RPL401); RPL901 enforces that every
    #: scheme class declares one (or an explicit ``specflow_opt_out``).
    specflow_policy = "unsafe"
    #: True when the doppelganger engine should run on this scheme.
    address_prediction = False
    #: DoM releases doppelganger values that missed in the L1 only once the
    #: load is non-speculative (paper §5.3); other schemes release at
    #: verification (subject to the value lock).
    dl_miss_release_at_nonspec = False
    #: Whether the scheme computes taints (only STT pays the cost).
    uses_taint = False
    #: DoM+VP: delayed misses speculate on a predicted value, validated
    #: (and squashed on mismatch) when the real load returns.
    uses_value_prediction = False

    # ------------------------------------------------------------------
    # Fast-path capability flags.  The core hoists these at construction
    # and skips a hook call site entirely when the scheme declares the
    # hook is the base no-op — the flag MUST be True whenever the
    # corresponding hook is overridden (the hooks may have stat side
    # effects, e.g. NDA's delayed_propagations, STT's
    # delayed_transmitters, so a wrongly-False flag changes SimStats,
    # not just timing).
    # ------------------------------------------------------------------
    #: value_block_seq is overridden (NDA's value lock).
    gates_values = False
    #: load_block_seq is overridden (STT transmitters, DoM delayed misses).
    gates_loads = False
    #: store_block_seq is overridden (STT tainted store addresses).
    gates_stores = False
    #: branch_block_seq is overridden (STT tainted predicates, DoM+AP
    #: in-order resolution).  May be refined per instance in __init__.
    gates_branches = False
    #: load_is_probe is overridden (DoM's L1 probe discipline).
    uses_probe = False
    #: The scheme reads the shadow frontier; the core may skip shadow
    #: tracking entirely when this is False (unsafe baseline) and no
    #: consumer of the tracker (guardrails, doppelganger engine) exists.
    needs_shadows = False

    def __init__(self, address_prediction: bool = False):
        self.address_prediction = address_prediction
        self.core: Optional["Core"] = None

    def attach(self, core: "Core") -> None:
        """Bind to a core; called once by the core's constructor."""
        self.core = core
        self.shadows = core.shadows

    # ------------------------------------------------------------------
    # Value propagation
    # ------------------------------------------------------------------
    def value_block_seq(self, producer: MicroOp) -> int:
        """Frontier seq required before dependents may read ``producer``'s
        completed result; READY when propagation is unrestricted."""
        return READY

    # ------------------------------------------------------------------
    # Loads
    # ------------------------------------------------------------------
    def load_block_seq(self, load: MicroOp) -> int:
        """Frontier seq required before this load may access memory."""
        return READY

    def load_is_probe(self, load: MicroOp) -> bool:
        """Should this load's access be a non-mutating L1 probe (DoM)?"""
        return False

    # ------------------------------------------------------------------
    # Branches and stores
    # ------------------------------------------------------------------
    def branch_block_seq(self, branch: MicroOp, operand_taint: int) -> int:
        """Frontier seq required before this branch may execute/resolve."""
        return READY

    def store_block_seq(self, store: MicroOp, operand_taint: int) -> int:
        """Frontier seq required before this store's address may become
        architecturally visible."""
        return READY

    # ------------------------------------------------------------------
    # Taint (STT only)
    # ------------------------------------------------------------------
    def is_tainted(self, taint: int) -> bool:
        return False

    def load_result_taint(self, load: MicroOp) -> int:
        """Taint of a load's output at the moment its value binds."""
        return UNTAINTED

    # ------------------------------------------------------------------
    # Guardrails
    # ------------------------------------------------------------------
    def check_invariants(self, core: "Core") -> list:
        """Scheme-specific invariant sweep; returns violation strings.

        Called by the guardrail checker (``--guardrails cheap|full``) so
        each scheme can assert the machine-state properties its security
        argument rests on (NDA's value lock, STT's taint monotonicity,
        DoM's delayed-miss discipline).  The base scheme has no
        restrictions, hence nothing to violate.
        """
        return []

    def describe(self) -> str:
        suffix = "+AP" if self.address_prediction else ""
        return f"{self.name}{suffix}"
