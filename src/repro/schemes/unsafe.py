"""The unsafe baseline: a conventional out-of-order core.

No restriction on speculation — speculatively loaded values propagate to
any dependent, including transmitters.  This is the processor Spectre
attacks work on, and the IPC baseline every figure normalizes against.
"""

from __future__ import annotations

from repro.schemes.base import SecureScheme


class UnsafeBaseline(SecureScheme):
    """Figure 1(a): forwards speculatively loaded values unconditionally."""

    name = "unsafe"
    specflow_policy = "unsafe"
