"""Speculative Taint Tracking (STT), Yu et al. [54].

STT taints the output of every speculatively issued load and propagates
taints through dependent instructions.  Tainted values *do* propagate —
dependent arithmetic executes normally (ILP is preserved) — but
*transmitters* are delayed while any operand is tainted:

* explicit channels: loads whose address operand is tainted may not issue;
* resolution-based implicit channels: branches whose predicate is tainted
  may not resolve; store-to-load forwarding is blocked by delaying the
  resolution of tainted store addresses;
* prediction-based implicit channels: predictors are trained only at
  commit (enforced core-wide, see ``repro.predictors``).

A value untaints when its root load reaches the *visibility point* —
becomes non-speculative.  We represent a taint as the maximum sequence
number over the speculative root loads a value is derived from; this is
exact (not conservative) because the shadow frontier is monotone in
sequence numbers: if the youngest root is non-speculative, so is every
older root.  A blocked transmitter therefore simply waits for the frontier
to reach its taint root, which is exactly the block-key contract of
:class:`~repro.schemes.base.SecureScheme`.
"""

from __future__ import annotations

from repro.schemes.base import READY, UNTAINTED, MicroOp, SecureScheme


class STT(SecureScheme):
    """Figure 1(c): propagates tainted data to non-transmitters, delays
    transmitters until their operands untaint."""

    name = "stt"
    specflow_policy = "stt"
    uses_taint = True
    gates_loads = True
    gates_stores = True
    gates_branches = True
    needs_shadows = True

    def is_tainted(self, taint: int) -> bool:
        """A taint root is cleared once it is non-speculative."""
        return taint != UNTAINTED and self.shadows.is_speculative(taint)

    def load_block_seq(self, load: MicroOp) -> int:
        # load.taint holds the address-operand taint until the access
        # issues (the core then replaces it with the output taint).
        if self.is_tainted(load.taint):
            self.core.stats.delayed_transmitters += 1
            return load.taint
        return READY

    def branch_block_seq(self, branch: MicroOp, operand_taint: int) -> int:
        if self.is_tainted(operand_taint):
            self.core.stats.delayed_transmitters += 1
            return operand_taint
        return READY

    def store_block_seq(self, store: MicroOp, operand_taint: int) -> int:
        if self.is_tainted(operand_taint):
            self.core.stats.delayed_transmitters += 1
            return operand_taint
        return READY

    def load_result_taint(self, load: MicroOp) -> int:
        """Speculatively issued loads produce tainted outputs rooted at
        themselves; non-speculative loads produce clean outputs."""
        if self.shadows.is_speculative(load.seq):
            return load.seq
        return UNTAINTED

    def check_invariants(self, core) -> list:
        """Taint soundness: a value's taint is never cleared (or lowered)
        while any source it derives from is still speculative.

        Producer taints are final by the time a consumer issues (set at
        execute/value-bind, before the completion event), and ALU taints
        are the max over producer taints, so an issued ALU op whose
        in-flight producer carries a live speculative taint root must
        itself carry a taint at least that young.  Loads and branches are
        excluded: a load's field is reused (address taint at issue, output
        taint at bind) and branches never record their operand taint, so a
        cross-check against producers is not meaningful for either.
        """
        problems = []
        shadows = self.shadows
        for uop in core.rob:
            if uop.squashed:
                continue
            taint = uop.taint
            if taint != UNTAINTED and not 0 <= taint <= uop.seq:
                problems.append(
                    f"uop seq={uop.seq} pc={uop.pc} carries impossible "
                    f"taint root {taint} (must lie in [0, seq])"
                )
            if uop.is_load or uop.is_store or uop.is_branch or uop.issue_cycle < 0:
                continue
            for producer in (uop.src1_uop, uop.src2_uop):
                if producer is None or not producer.in_flight:
                    continue
                ptaint = producer.taint
                if ptaint == UNTAINTED or not shadows.is_speculative(ptaint):
                    continue
                if taint == UNTAINTED or taint < ptaint:
                    problems.append(
                        f"uop seq={uop.seq} pc={uop.pc} taint="
                        f"{'clean' if taint == UNTAINTED else taint} dropped "
                        f"the live speculative taint root {ptaint} of "
                        f"producer seq={producer.seq} (taint cleared while "
                        f"source speculative)"
                    )
        return problems
