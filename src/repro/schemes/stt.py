"""Speculative Taint Tracking (STT), Yu et al. [54].

STT taints the output of every speculatively issued load and propagates
taints through dependent instructions.  Tainted values *do* propagate —
dependent arithmetic executes normally (ILP is preserved) — but
*transmitters* are delayed while any operand is tainted:

* explicit channels: loads whose address operand is tainted may not issue;
* resolution-based implicit channels: branches whose predicate is tainted
  may not resolve; store-to-load forwarding is blocked by delaying the
  resolution of tainted store addresses;
* prediction-based implicit channels: predictors are trained only at
  commit (enforced core-wide, see ``repro.predictors``).

A value untaints when its root load reaches the *visibility point* —
becomes non-speculative.  We represent a taint as the maximum sequence
number over the speculative root loads a value is derived from; this is
exact (not conservative) because the shadow frontier is monotone in
sequence numbers: if the youngest root is non-speculative, so is every
older root.  A blocked transmitter therefore simply waits for the frontier
to reach its taint root, which is exactly the block-key contract of
:class:`~repro.schemes.base.SecureScheme`.
"""

from __future__ import annotations

from repro.pipeline.uop import UNTAINTED, MicroOp
from repro.schemes.base import READY, SecureScheme


class STT(SecureScheme):
    """Figure 1(c): propagates tainted data to non-transmitters, delays
    transmitters until their operands untaint."""

    name = "stt"
    uses_taint = True

    def is_tainted(self, taint: int) -> bool:
        """A taint root is cleared once it is non-speculative."""
        return taint != UNTAINTED and self.shadows.is_speculative(taint)

    def load_block_seq(self, load: MicroOp) -> int:
        # load.taint holds the address-operand taint until the access
        # issues (the core then replaces it with the output taint).
        if self.is_tainted(load.taint):
            self.core.stats.delayed_transmitters += 1
            return load.taint
        return READY

    def branch_block_seq(self, branch: MicroOp, operand_taint: int) -> int:
        if self.is_tainted(operand_taint):
            self.core.stats.delayed_transmitters += 1
            return operand_taint
        return READY

    def store_block_seq(self, store: MicroOp, operand_taint: int) -> int:
        if self.is_tainted(operand_taint):
            self.core.stats.delayed_transmitters += 1
            return operand_taint
        return READY

    def load_result_taint(self, load: MicroOp) -> int:
        """Speculatively issued loads produce tainted outputs rooted at
        themselves; non-speculative loads produce clean outputs."""
        if self.shadows.is_speculative(load.seq):
            return load.seq
        return UNTAINTED
