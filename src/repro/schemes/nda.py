"""NDA with permissive propagation (NDA-P), Weisse et al. [49].

Speculative loads are allowed to *issue* and *complete* as normal — the
memory hierarchy sees them — but their results are locked: no dependent
instruction may consume a speculatively loaded value until the load is
non-speculative (bound to become architecturally visible).  This blocks
every transmitter of a speculatively acquired secret at the source, at the
cost of delaying all dependents (no dependent ILP, no dependent MLP).

The lock is :meth:`value_block_seq`: a completed load's result stays
unreadable until the shadow frontier reaches the load itself.
"""

from __future__ import annotations

from repro.schemes.base import READY, MicroOp, SecureScheme


class NDAPermissive(SecureScheme):
    """Figure 1(b): performs speculative loads, never forwards their data
    while speculative."""

    name = "nda"
    specflow_policy = "nda"
    gates_values = True
    needs_shadows = True

    def value_block_seq(self, producer: MicroOp) -> int:
        if not producer.is_load:
            return READY
        if self.shadows.is_nonspeculative(producer.seq):
            return READY
        self.core.stats.delayed_propagations += 1
        return producer.seq

    def check_invariants(self, core) -> list:
        """The lock must hold: nothing consumes a speculative load's value.

        Sound without issue-time state because the shadow frontier is
        monotone — a load that was non-speculative when its dependent
        issued can never become speculative again.  So any *issued*
        dependent whose in-flight load producer is speculative *now* must
        have bypassed the lock.
        """
        problems = []
        shadows = self.shadows
        for uop in core.rob:
            if uop.squashed:
                continue
            issued = uop.issue_cycle >= 0
            # Issue gates on src1 always, src2 only for ALU/branch ops;
            # store data binds separately and is checked below.
            producers = [uop.src1_uop]
            if not uop.is_load and not uop.is_store:
                producers.append(uop.src2_uop)
            if issued:
                for producer in producers:
                    if (
                        producer is not None
                        and producer.is_load
                        and producer.in_flight
                        and not producer.squashed
                        and shadows.is_speculative(producer.seq)
                    ):
                        problems.append(
                            f"uop seq={uop.seq} pc={uop.pc} issued while its "
                            f"load producer seq={producer.seq} is still "
                            f"speculative (NDA value lock bypassed)"
                        )
            if uop.is_store and uop.store_data_ready:
                producer = uop.src2_uop
                if (
                    producer is not None
                    and producer.is_load
                    and producer.in_flight
                    and not producer.squashed
                    and shadows.is_speculative(producer.seq)
                ):
                    problems.append(
                        f"store seq={uop.seq} pc={uop.pc} bound data from "
                        f"speculative load seq={producer.seq} (NDA value "
                        f"lock bypassed)"
                    )
        return problems
