"""NDA with permissive propagation (NDA-P), Weisse et al. [49].

Speculative loads are allowed to *issue* and *complete* as normal — the
memory hierarchy sees them — but their results are locked: no dependent
instruction may consume a speculatively loaded value until the load is
non-speculative (bound to become architecturally visible).  This blocks
every transmitter of a speculatively acquired secret at the source, at the
cost of delaying all dependents (no dependent ILP, no dependent MLP).

The lock is :meth:`value_block_seq`: a completed load's result stays
unreadable until the shadow frontier reaches the load itself.
"""

from __future__ import annotations

from repro.pipeline.uop import MicroOp
from repro.schemes.base import READY, SecureScheme


class NDAPermissive(SecureScheme):
    """Figure 1(b): performs speculative loads, never forwards their data
    while speculative."""

    name = "nda"

    def value_block_seq(self, producer: MicroOp) -> int:
        if not producer.is_load:
            return READY
        if self.shadows.is_nonspeculative(producer.seq):
            return READY
        self.core.stats.delayed_propagations += 1
        return producer.seq
