"""Miss Status Holding Registers.

MSHRs bound the number of distinct outstanding cache-line misses and are
what physically limits memory-level parallelism — the resource the secure
schemes under-use and Doppelganger Loads recover.  Requests to a line that
is already outstanding coalesce into the existing entry.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Dict, List, Optional, Tuple

from repro.common.errors import ConfigError, StructuralHazardError


class MSHRFile:
    """Tracks outstanding misses as ``line -> completion cycle``."""

    def __init__(self, entries: int):
        if entries < 1:
            raise ConfigError("MSHR file needs at least one entry")
        self.entries = entries
        self._outstanding: Dict[int, int] = {}
        # Min-heap of (completion, line) mirroring _outstanding, so expiry
        # pops only the entries that are actually due instead of scanning
        # the whole dict on every access (the common case is "nothing to
        # expire").  Heap entries go stale when an allocation shortens a
        # line's completion or an entry is removed; _expire tolerates this
        # by discarding any popped pair that no longer matches the dict.
        self._ready_heap: List[Tuple[int, int]] = []

    def _expire(self, cycle: int) -> None:
        heap = self._ready_heap
        outstanding = self._outstanding
        while heap and heap[0][0] <= cycle:
            ready, line = heappop(heap)
            if outstanding.get(line) == ready:
                del outstanding[line]

    def outstanding_completion(self, line: int, cycle: int) -> Optional[int]:
        """If ``line`` has a miss in flight, its completion cycle."""
        self._expire(cycle)
        return self._outstanding.get(line)

    def can_allocate(self, cycle: int) -> bool:
        """Is a free entry available this cycle?"""
        self._expire(cycle)
        return len(self._outstanding) < self.entries

    def next_free(self, cycle: int) -> Optional[int]:
        """Earliest future cycle at which an entry will be free.

        ``None`` when an entry is free *now*.  The idle-skip scheduler uses
        this as the wake time for MSHR-starved loads: the file only drains
        through completions, so the earliest completion is exactly the
        first cycle a blocked allocation can succeed.
        """
        self._expire(cycle)
        if len(self._outstanding) < self.entries:
            return None
        return min(self._outstanding.values())

    def allocate(self, line: int, completion: int, cycle: int) -> None:
        """Reserve an entry until ``completion``.

        Callers must check :meth:`can_allocate` (or be coalescing) first.
        """
        self._expire(cycle)
        if line not in self._outstanding and len(self._outstanding) >= self.entries:
            raise StructuralHazardError("MSHR allocation without a free entry")
        existing = self._outstanding.get(line)
        if existing is None or completion < existing:
            self._outstanding[line] = completion
            heappush(self._ready_heap, (completion, line))

    def in_flight(self, cycle: int) -> int:
        """Number of outstanding misses at ``cycle``."""
        self._expire(cycle)
        return len(self._outstanding)

    def outstanding_lines(self) -> Dict[int, int]:
        """Raw ``line -> completion cycle`` view, *without* expiry.

        Guardrails and crash dumps want the unfiltered state: lazy expiry
        means entries whose completion has passed may legitimately linger
        until the next access, but nothing should ever sit past capacity
        or absurdly far in the future.
        """
        return dict(self._outstanding)

    def validate(self, cycle: int, max_latency: Optional[int] = None) -> list:
        """Invariant sweep: returns violation strings (empty when sound).

        Checks (after applying lazy expiry, so stale-but-unexpired entries
        are not false positives):

        * occupancy never exceeds the register count;
        * no *orphaned* miss — an entry whose completion lies further in
          the future than the worst-case memory latency can never have
          come from a real allocation and would pin an MSHR forever.
        """
        self._expire(cycle)
        problems = []
        if len(self._outstanding) > self.entries:
            problems.append(
                f"MSHR occupancy {len(self._outstanding)} exceeds capacity "
                f"{self.entries}"
            )
        if max_latency is not None:
            horizon = cycle + max_latency
            for line, ready in self._outstanding.items():
                if ready > horizon:
                    problems.append(
                        f"orphaned MSHR for line {line:#x}: completion "
                        f"{ready} is beyond the worst-case horizon {horizon} "
                        f"(cycle {cycle} + max latency {max_latency})"
                    )
        return problems

    def reset(self) -> None:
        self._outstanding.clear()
        self._ready_heap.clear()
