"""Replacement policies for set-associative caches.

Policies are stateless strategy objects: the cache supplies the per-way
metadata (last-touch stamp and fill stamp) and the policy picks a victim.
``DelayedLRU`` semantics for DoM (replacement updates deferred until a
speculative hit commits) are implemented in the cache/core layer by simply
not calling ``touch`` until commit; no special policy is required.
"""

from __future__ import annotations

import random
from typing import List, Protocol, Sequence

from repro.common.errors import ConfigError


class ReplacementPolicy(Protocol):
    """Chooses a victim way given per-way metadata."""

    def victim(self, touch_stamps: Sequence[int], fill_stamps: Sequence[int]) -> int:
        """Return the index of the way to evict (all ways are valid)."""
        ...


class LRUPolicy:
    """Evict the least-recently-touched way (the paper's default)."""

    def victim(self, touch_stamps: Sequence[int], fill_stamps: Sequence[int]) -> int:
        best_way = 0
        best_stamp = touch_stamps[0]
        for way in range(1, len(touch_stamps)):
            if touch_stamps[way] < best_stamp:
                best_stamp = touch_stamps[way]
                best_way = way
        return best_way


class FIFOPolicy:
    """Evict the oldest-filled way regardless of touches."""

    def victim(self, touch_stamps: Sequence[int], fill_stamps: Sequence[int]) -> int:
        best_way = 0
        best_stamp = fill_stamps[0]
        for way in range(1, len(fill_stamps)):
            if fill_stamps[way] < best_stamp:
                best_stamp = fill_stamps[way]
                best_way = way
        return best_way


class RandomPolicy:
    """Evict a uniformly random way (seeded for reproducibility)."""

    def __init__(self, seed: int = 0):
        self._rng = random.Random(seed)

    def victim(self, touch_stamps: Sequence[int], fill_stamps: Sequence[int]) -> int:
        return self._rng.randrange(len(touch_stamps))


def make_policy(name: str, seed: int = 0) -> ReplacementPolicy:
    """Factory used by configuration code and ablation benches."""
    policies = {
        "lru": LRUPolicy,
        "fifo": FIFOPolicy,
    }
    lowered = name.lower()
    if lowered == "random":
        return RandomPolicy(seed)
    if lowered not in policies:
        raise ConfigError(f"unknown replacement policy {name!r}")
    return policies[lowered]()
