"""The memory hierarchy: caches, replacement, MSHRs, and DRAM timing."""

from repro.memory.cache import CacheLevel
from repro.memory.hierarchy import DRAM_LEVEL, AccessResult, MemoryHierarchy
from repro.memory.mshr import MSHRFile
from repro.memory.replacement import (
    FIFOPolicy,
    LRUPolicy,
    RandomPolicy,
    ReplacementPolicy,
    make_policy,
)

__all__ = [
    "AccessResult",
    "CacheLevel",
    "DRAM_LEVEL",
    "FIFOPolicy",
    "LRUPolicy",
    "MSHRFile",
    "MemoryHierarchy",
    "RandomPolicy",
    "ReplacementPolicy",
    "make_policy",
]
