"""A set-associative cache level with pluggable replacement.

The cache stores only tags and replacement metadata — data values live in
the functional memory image (``repro.isa.program.ArchState``); the timing
model only needs hit/miss decisions.

Two kinds of read exist because of Delay-on-Miss:

* :meth:`lookup` — a *non-mutating probe*: reports hit/miss without touching
  replacement state.  DoM issues speculative loads this way so that a
  squashed speculative hit leaves no observable trace (the replacement
  update is applied retroactively at commit via :meth:`touch`).
* :meth:`access` — a demand access: touches on hit, returns miss otherwise.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.common.config import CacheConfig
from repro.memory.replacement import LRUPolicy, ReplacementPolicy


class CacheLevel:
    """One level of the hierarchy (tags + replacement metadata only)."""

    def __init__(self, config: CacheConfig, policy: Optional[ReplacementPolicy] = None):
        self.config = config
        self.policy: ReplacementPolicy = policy if policy is not None else LRUPolicy()
        self.num_sets = config.num_sets
        self.ways = config.ways
        # Per-set: mapping from line address -> way, plus per-way metadata.
        self._map: List[Dict[int, int]] = [dict() for _ in range(self.num_sets)]
        self._lines: List[List[Optional[int]]] = [
            [None] * self.ways for _ in range(self.num_sets)
        ]
        self._touch: List[List[int]] = [[0] * self.ways for _ in range(self.num_sets)]
        self._fill: List[List[int]] = [[0] * self.ways for _ in range(self.num_sets)]
        self._dirty: List[List[bool]] = [
            [False] * self.ways for _ in range(self.num_sets)
        ]
        self._line_shift = config.line_size.bit_length() - 1

    # ------------------------------------------------------------------
    # Address helpers
    # ------------------------------------------------------------------
    def line_address(self, address: int) -> int:
        """The line-aligned address containing ``address``."""
        return address >> self._line_shift

    def set_index(self, line: int) -> int:
        return line % self.num_sets

    # ------------------------------------------------------------------
    # Probes and accesses
    # ------------------------------------------------------------------
    def lookup(self, line: int) -> bool:
        """Non-mutating hit test (DoM probe)."""
        return line in self._map[self.set_index(line)]

    def access(self, line: int, cycle: int, is_write: bool = False) -> bool:
        """Demand access: on hit, update replacement (and dirty); else miss."""
        index = self.set_index(line)
        way = self._map[index].get(line)
        if way is None:
            return False
        self._touch[index][way] = cycle
        if is_write:
            self._dirty[index][way] = True
        return True

    def touch(self, line: int, cycle: int) -> bool:
        """Retroactive replacement update (DoM commit of a speculative hit).

        Returns False when the line is no longer resident (it may have been
        evicted between the speculative probe and commit), in which case
        there is nothing to update.
        """
        index = self.set_index(line)
        way = self._map[index].get(line)
        if way is None:
            return False
        self._touch[index][way] = cycle
        return True

    def fill(self, line: int, cycle: int, is_write: bool = False) -> Optional[Tuple[int, bool]]:
        """Insert ``line``; returns ``(evicted_line, was_dirty)`` if any.

        Filling a line that is already resident just refreshes its stamps.
        """
        index = self.set_index(line)
        existing = self._map[index].get(line)
        if existing is not None:
            self._touch[index][existing] = cycle
            self._fill[index][existing] = cycle
            if is_write:
                self._dirty[index][existing] = True
            return None
        # Prefer an invalid way before invoking the policy.
        lines = self._lines[index]
        victim_way = None
        for way in range(self.ways):
            if lines[way] is None:
                victim_way = way
                break
        evicted: Optional[Tuple[int, bool]] = None
        if victim_way is None:
            victim_way = self.policy.victim(self._touch[index], self._fill[index])
            victim_line = lines[victim_way]
            assert victim_line is not None
            evicted = (victim_line, self._dirty[index][victim_way])
            del self._map[index][victim_line]
        lines[victim_way] = line
        self._map[index][line] = victim_way
        self._touch[index][victim_way] = cycle
        self._fill[index][victim_way] = cycle
        self._dirty[index][victim_way] = is_write
        return evicted

    def invalidate(self, line: int) -> bool:
        """Remove a line (coherence invalidation); True if it was present."""
        index = self.set_index(line)
        way = self._map[index].pop(line, None)
        if way is None:
            return False
        self._lines[index][way] = None
        self._dirty[index][way] = False
        return True

    # ------------------------------------------------------------------
    # Introspection (tests, attack observer)
    # ------------------------------------------------------------------
    def resident_lines(self) -> List[int]:
        """All line addresses currently cached (order unspecified)."""
        lines: List[int] = []
        for per_set in self._map:
            lines.extend(per_set.keys())
        return lines

    def occupancy(self) -> int:
        return sum(len(per_set) for per_set in self._map)

    def flush(self) -> None:
        """Empty the cache (attack setup: flush the probe array)."""
        for index in range(self.num_sets):
            self._map[index].clear()
            for way in range(self.ways):
                self._lines[index][way] = None
                self._dirty[index][way] = False
