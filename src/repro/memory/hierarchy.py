"""The three-level memory hierarchy of Table 1.

Functional-timing model: an access immediately computes its completion time
from the level it hits in and updates tag state, while the L1 MSHR file
keeps the line "in flight" so overlapping requests coalesce and MLP is
bounded by the number of MSHRs.  Latencies are roundtrip-from-core per the
paper: L1 5, L2 15, L3 40, DRAM ``l3 + dram_latency`` cycles.

Crucially for the reproduction, *nothing here knows about speculation*:
Doppelganger accesses behave exactly like any other access (paper §5.1,
"no modifications are needed to the memory hierarchy").  The only
DoM-specific affordance is the non-mutating :meth:`probe` plus the
retroactive :meth:`touch`, both of which the paper's DoM baseline requires.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.common.config import MemoryConfig
from repro.common.stats import SimStats
from repro.memory.cache import CacheLevel
from repro.memory.mshr import MSHRFile
from repro.memory.replacement import ReplacementPolicy

DRAM_LEVEL = 4
"""Pseudo-level number reported for accesses served by main memory."""


@dataclass(frozen=True)
class AccessResult:
    """Outcome of a hierarchy access."""

    latency: int
    """Cycles from issue until the data is back at the core."""
    level: int
    """1/2/3 for cache hits, 4 for DRAM, 0 for retry/coalesced."""
    l1_hit: bool
    retry: bool = False
    """True when no MSHR was available; the requester must re-issue."""
    coalesced: bool = False
    """True when the request merged into an outstanding miss."""


class MemoryHierarchy:
    """L1D + private L2 + shared L3 + DRAM, with L1 MSHRs."""

    def __init__(
        self,
        config: MemoryConfig,
        stats: Optional[SimStats] = None,
        l1_policy: Optional[ReplacementPolicy] = None,
    ):
        self.config = config
        self.stats = stats if stats is not None else SimStats()
        self.l1 = CacheLevel(config.l1, l1_policy)
        self.l2 = CacheLevel(config.l2)
        self.l3 = CacheLevel(config.l3)
        self.mshrs = MSHRFile(config.l1.mshrs)
        self._levels: List[CacheLevel] = [self.l1, self.l2, self.l3]
        self._watched: dict = {}
        # AccessResult is frozen, so every fixed-latency outcome can be a
        # preallocated singleton — the hot access path then allocates only
        # for coalesced hits, whose latency varies per request.
        dram_latency = config.l3.latency + config.dram_latency
        self._hit_l1 = AccessResult(config.l1.latency, 1, True)
        self._miss_l2 = AccessResult(config.l2.latency, 2, False)
        self._miss_l3 = AccessResult(config.l3.latency, 3, False)
        self._miss_dram = AccessResult(dram_latency, DRAM_LEVEL, False)
        self._retry = AccessResult(0, 0, False, retry=True)

    # ------------------------------------------------------------------
    # Address helpers
    # ------------------------------------------------------------------
    def line_address(self, address: int) -> int:
        return self.l1.line_address(address)

    # ------------------------------------------------------------------
    # Demand / doppelganger / prefetch accesses
    # ------------------------------------------------------------------
    # repro: hot
    def access(self, address: int, cycle: int, is_write: bool = False) -> AccessResult:
        """A full access: may miss all the way to DRAM and fills on the way.

        Returns ``retry=True`` without side effects (beyond the stall
        counter) when the L1 MSHRs are exhausted.
        """
        stats = self.stats
        mshrs = self.mshrs
        line = self.l1.line_address(address)
        if self._watched and line in self._watched:
            self._watched[line] += 1
        inflight = mshrs.outstanding_completion(line, cycle)
        stats.l1_accesses += 1
        if inflight is not None:
            # Coalesce with the outstanding miss for this line.
            stats.l1_misses += 1
            return AccessResult(
                latency=max(inflight - cycle, 1),
                level=0,
                l1_hit=False,
                coalesced=True,
            )
        if self.l1.access(line, cycle, is_write):
            stats.l1_hits += 1
            return self._hit_l1
        stats.l1_misses += 1
        if not mshrs.can_allocate(cycle):
            stats.mshr_stalls += 1
            return self._retry

        stats.l2_accesses += 1
        if self.l2.access(line, cycle):
            stats.l2_hits += 1
            result = self._miss_l2
        else:
            stats.l3_accesses += 1
            if self.l3.access(line, cycle):
                stats.l3_hits += 1
                result = self._miss_l3
            else:
                stats.dram_accesses += 1
                result = self._miss_dram
                self._fill(self.l3, line, cycle)
            self._fill(self.l2, line, cycle)
        mshrs.allocate(line, cycle + result.latency, cycle)
        self._fill(self.l1, line, cycle, is_write=is_write)
        return result

    def _fill(self, level: CacheLevel, line: int, cycle: int, is_write: bool = False) -> None:
        evicted = level.fill(line, cycle, is_write=is_write)
        if evicted is None:
            return
        victim_line, was_dirty = evicted
        if not was_dirty:
            return
        self.stats.writebacks += 1
        # Propagate dirtiness down without timing cost.
        if level is self.l1:
            self.l2.access(victim_line, cycle, is_write=True) or self.l2.fill(
                victim_line, cycle, is_write=True
            )
        elif level is self.l2:
            self.l3.access(victim_line, cycle, is_write=True) or self.l3.fill(
                victim_line, cycle, is_write=True
            )

    # ------------------------------------------------------------------
    # Delay-on-Miss support
    # ------------------------------------------------------------------
    def probe(self, address: int, cycle: int) -> bool:
        """DoM speculative access: hit test with no state change.

        Counts as an L1 access (the request did reach the L1) but neither
        updates replacement state nor propagates to L2 — a speculative miss
        under DoM is simply delayed.
        """
        line = self.line_address(address)
        self.stats.l1_accesses += 1
        if self.mshrs.outstanding_completion(line, cycle) is not None:
            self.stats.l1_misses += 1
            return False
        if self.l1.lookup(line):
            self.stats.l1_hits += 1
            return True
        self.stats.l1_misses += 1
        return False

    def touch(self, address: int, cycle: int) -> bool:
        """Retroactive L1 replacement update for a committed DoM hit."""
        return self.l1.touch(self.line_address(address), cycle)

    # ------------------------------------------------------------------
    # Coherence / observation
    # ------------------------------------------------------------------
    def invalidate(self, address: int) -> bool:
        """Invalidate a line in every level (external coherence event)."""
        line = self.line_address(address)
        hit = False
        for level in self._levels:
            hit = level.invalidate(line) or hit
        return hit

    def watch(self, addresses: List[int]) -> None:
        """Start counting demand/doppelganger/prefetch accesses to the
        lines containing ``addresses``.

        Models the attacker's finest-grained cache view: every access to
        a line perturbs its replacement state, which an attacker can
        detect by eviction probing even when the line's *residency* does
        not change.  DoM L1 probes are deliberately not counted — DoM's
        whole design makes them state-transparent.
        """
        for address in addresses:
            self._watched.setdefault(self.line_address(address), 0)

    def watched_counts(self) -> dict:
        """Access counts per watched line address."""
        return dict(self._watched)

    def residency(self, address: int) -> Optional[int]:
        """The innermost level holding ``address``'s line, or None.

        Non-mutating; used by the attack observer and tests.
        """
        line = self.line_address(address)
        for number, level in enumerate(self._levels, start=1):
            if level.lookup(line):
                return number
        return None

    def is_cached(self, address: int) -> bool:
        return self.residency(address) is not None

    def flush_all(self) -> None:
        for level in self._levels:
            level.flush()
        self.mshrs.reset()

    # ------------------------------------------------------------------
    # Guardrails / diagnostics
    # ------------------------------------------------------------------
    @property
    def max_latency(self) -> int:
        """Worst-case cycles for any single access (L3 miss to DRAM)."""
        return self.config.l3.latency + self.config.dram_latency

    def validate(self, cycle: int) -> List[str]:
        """MSHR invariant sweep (see :meth:`MSHRFile.validate`)."""
        return self.mshrs.validate(cycle, max_latency=self.max_latency)

    def snapshot(self, cycle: int) -> dict:
        """Structured state for crash dumps: MSHR occupancy and in-flight
        lines (completion-sorted, truncated to the first 16)."""
        outstanding = self.mshrs.outstanding_lines()
        lines = sorted(outstanding.items(), key=lambda item: item[1])
        return {
            "mshr_capacity": self.mshrs.entries,
            "mshr_in_flight": len(outstanding),
            "mshr_lines": [
                {"line": hex(line), "completes_at": ready}
                for line, ready in lines[:16]
            ],
            "mshr_stalls": self.stats.mshr_stalls,
        }

    def warm(self, addresses: List[int], cycle: int = 0) -> None:
        """Pre-fill lines into every level (test/attack setup)."""
        for address in addresses:
            line = self.line_address(address)
            for level in self._levels:
                level.fill(line, cycle)
