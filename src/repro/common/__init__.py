"""Shared infrastructure: configuration, statistics, and errors."""

from repro.common.config import (
    CACHE_LINE_SIZE,
    BranchPredictorConfig,
    CacheConfig,
    CoreConfig,
    MemoryConfig,
    PredictorConfig,
    SystemConfig,
    default_config,
    small_config,
)
from repro.common.errors import (
    AssemblyError,
    ConfigError,
    ExecutionError,
    ReproError,
    SimulationLimitError,
    StructuralHazardError,
)
from repro.common.stats import RunResult, SimStats, geomean, normalized

__all__ = [
    "CACHE_LINE_SIZE",
    "AssemblyError",
    "BranchPredictorConfig",
    "CacheConfig",
    "ConfigError",
    "CoreConfig",
    "ExecutionError",
    "MemoryConfig",
    "PredictorConfig",
    "ReproError",
    "RunResult",
    "SimStats",
    "SimulationLimitError",
    "StructuralHazardError",
    "SystemConfig",
    "default_config",
    "geomean",
    "normalized",
    "small_config",
]
