"""Shared infrastructure: configuration, statistics, and errors."""

from repro.common.config import (
    CACHE_LINE_SIZE,
    BranchPredictorConfig,
    CacheConfig,
    CoreConfig,
    MemoryConfig,
    PredictorConfig,
    SystemConfig,
    config_fingerprint,
    config_from_dict,
    config_to_dict,
    default_config,
    small_config,
)
from repro.common.errors import (
    AssemblyError,
    ConfigError,
    EmptyMeasurementError,
    ExecutionError,
    ReproError,
    SimulationLimitError,
    StatisticsError,
    StructuralHazardError,
)
from repro.common.stats import RunResult, SimStats, geomean, normalized

__all__ = [
    "CACHE_LINE_SIZE",
    "AssemblyError",
    "BranchPredictorConfig",
    "CacheConfig",
    "ConfigError",
    "CoreConfig",
    "EmptyMeasurementError",
    "ExecutionError",
    "MemoryConfig",
    "PredictorConfig",
    "ReproError",
    "RunResult",
    "SimStats",
    "SimulationLimitError",
    "StatisticsError",
    "StructuralHazardError",
    "SystemConfig",
    "config_fingerprint",
    "config_from_dict",
    "config_to_dict",
    "default_config",
    "geomean",
    "normalized",
    "small_config",
]
