"""Atomic file-write helpers shared by every layer that persists JSON.

A process can die at any byte — kill -9, OOM, a full disk — and a plain
``open(path, "w")`` + ``write`` leaves a truncated file behind for the
next reader to choke on.  Every artifact the harness persists (cache
entries, failure manifests, crash dumps, repro files, bench baselines)
goes through the same discipline instead:

1. write the full contents to a *uniquely named* temp file next to the
   destination (same filesystem, so the rename cannot cross devices;
   unique name, so concurrent writers never clobber each other's temp),
2. flush + fsync so the bytes are durable before the name is,
3. ``os.replace`` the temp onto the destination — atomic on POSIX, so a
   reader sees either the complete old file or the complete new file,
   never a torn one.

reprolint rule RPL801 flags JSON writes in ``harness/``, ``guardrails/``
and ``fuzz/`` that bypass this path.
"""

from __future__ import annotations

import itertools
import json
import os
from pathlib import Path
from typing import Any, Optional, Union

PathLike = Union[str, "os.PathLike[str]"]

#: Distinguishes this process's temp files from concurrent writers'
#: (pid) and from its own earlier writes to the same path (counter).
_tmp_counter = itertools.count()


def atomic_write_text(path: PathLike, text: str) -> Path:
    """Atomically replace ``path`` with ``text``; returns the path.

    The parent directory is created if missing.  On any failure the temp
    file is removed so aborted writes leave no litter behind.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    tmp = target.with_name(
        f"{target.name}.tmp-{os.getpid()}-{next(_tmp_counter)}"
    )
    try:
        with open(tmp, "w") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, target)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return target


def atomic_write_json(
    path: PathLike,
    payload: Any,
    indent: Optional[int] = None,
    sort_keys: bool = True,
) -> Path:
    """Atomically write ``payload`` as JSON to ``path``; returns the path."""
    return atomic_write_text(
        path, json.dumps(payload, indent=indent, sort_keys=sort_keys)
    )
