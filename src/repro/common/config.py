"""System configuration dataclasses.

The defaults reproduce Table 1 of the paper (an IceLake-like core):

==============================  =======================================
Decode width                    5 instructions
Issue / Commit width            8 instructions
Instruction queue               160 entries
Reorder buffer                  352 entries
Load queue                      128 entries
Store queue/buffer              72 entries
Address predictor/prefetcher    1024 entries, 8-way (full PC tags)
L1 D cache                      48 KiB, 12 ways, 5-cycle roundtrip, 16 MSHRs
Private L2 cache                2 MiB, 8 ways, 15-cycle roundtrip
Shared L3 cache                 16 MiB, 16 ways, 40-cycle roundtrip
Memory access time              13.5 ns (~50 cycles at the modelled clock)
==============================  =======================================

All knobs that the evaluation sweeps or ablates are explicit fields so a
single frozen ``SystemConfig`` fully describes an experiment.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, replace
from typing import Any, Dict, Mapping

from repro.common.errors import ConfigError

CACHE_LINE_SIZE = 64
"""Cache line size in bytes, shared by every level of the hierarchy."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigError(message)


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and latency of a single cache level."""

    name: str
    size_bytes: int
    ways: int
    latency: int
    mshrs: int = 16
    line_size: int = CACHE_LINE_SIZE

    def __post_init__(self) -> None:
        _require(self.size_bytes > 0, f"{self.name}: size must be positive")
        _require(self.ways > 0, f"{self.name}: ways must be positive")
        _require(self.latency >= 1, f"{self.name}: latency must be >= 1")
        _require(self.mshrs >= 1, f"{self.name}: mshrs must be >= 1")
        _require(
            self.size_bytes % (self.ways * self.line_size) == 0,
            f"{self.name}: size must be a multiple of ways * line size",
        )

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.ways * self.line_size)


@dataclass(frozen=True)
class MemoryConfig:
    """The three-level hierarchy plus DRAM of Table 1."""

    l1: CacheConfig = field(
        default_factory=lambda: CacheConfig("L1D", 48 * 1024, 12, latency=5, mshrs=16)
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig("L2", 2 * 1024 * 1024, 8, latency=15)
    )
    l3: CacheConfig = field(
        default_factory=lambda: CacheConfig("L3", 16 * 1024 * 1024, 16, latency=40)
    )
    dram_latency: int = 50
    """DRAM access latency in core cycles (13.5 ns at the modelled clock)."""

    def __post_init__(self) -> None:
        _require(self.dram_latency >= 1, "dram_latency must be >= 1")
        sizes = (self.l1.size_bytes, self.l2.size_bytes, self.l3.size_bytes)
        _require(
            sizes[0] <= sizes[1] <= sizes[2],
            "cache levels must be monotonically non-decreasing in size",
        )


@dataclass(frozen=True)
class CoreConfig:
    """Out-of-order core parameters (Table 1, Processor section)."""

    decode_width: int = 5
    issue_width: int = 8
    commit_width: int = 8
    iq_entries: int = 160
    rob_entries: int = 352
    lq_entries: int = 128
    sq_entries: int = 72
    load_ports: int = 3
    """Cache access slots per cycle shared by loads/doppelgangers/prefetches."""
    store_ports: int = 2
    alu_latency: int = 1
    mul_latency: int = 3
    branch_resolution_delay: int = 12
    """Minimum cycles from a branch's *dispatch* to its resolution (shadow
    cleared, squash on mispredict) — the pipeline-depth floor of the
    fetch→execute→redirect path.  This keeps control shadows open long
    enough for the secure schemes' restrictions to bite, as in the
    paper's gem5 model."""
    branch_resolve_latency: int = 4
    """Cycles from a branch's issue (operands ready) to its resolution —
    the execute-to-redirect tail paid even by branches whose operands
    arrive long after fetch (e.g. predicates fed by cache misses)."""
    mispredict_penalty: int = 6
    """Front-end refill cycles after a squash-and-redirect."""

    def __post_init__(self) -> None:
        for name in (
            "decode_width",
            "issue_width",
            "commit_width",
            "iq_entries",
            "rob_entries",
            "lq_entries",
            "sq_entries",
            "load_ports",
            "store_ports",
            "alu_latency",
            "mul_latency",
        ):
            _require(getattr(self, name) >= 1, f"{name} must be >= 1")
        _require(self.mispredict_penalty >= 0, "mispredict_penalty must be >= 0")
        _require(
            self.branch_resolution_delay >= 0,
            "branch_resolution_delay must be >= 0",
        )
        _require(
            self.branch_resolve_latency >= 1,
            "branch_resolve_latency must be >= 1",
        )
        _require(
            self.rob_entries >= self.lq_entries,
            "ROB must be at least as large as the load queue",
        )


@dataclass(frozen=True)
class BranchPredictorConfig:
    """A gshare direction predictor with a direct-mapped BTB."""

    history_bits: int = 12
    table_entries: int = 4096
    btb_entries: int = 4096

    def __post_init__(self) -> None:
        _require(0 <= self.history_bits <= 24, "history_bits out of range")
        _require(
            self.table_entries > 0 and self.table_entries & (self.table_entries - 1) == 0,
            "table_entries must be a power of two",
        )
        _require(
            self.btb_entries > 0 and self.btb_entries & (self.btb_entries - 1) == 0,
            "btb_entries must be a power of two",
        )


@dataclass(frozen=True)
class PredictorConfig:
    """The shared stride prefetcher / address predictor (paper Section 5.1).

    The same 1024-entry, 8-way, full-PC-tagged structure serves both as a
    conventional stride prefetcher (predicting *future* instances of a load)
    and, when ``address_prediction`` is enabled on the scheme, as the
    Doppelganger address predictor (predicting the *current* instance).
    """

    entries: int = 1024
    ways: int = 8
    kind: str = "stride"
    """Table flavour: "stride" (the paper's baseline, a repurposed PC
    stride prefetcher) or "two_delta" (the 'better predictor' future-work
    extension: the predicting stride changes only when a new delta is
    observed twice, surviving isolated irregular accesses)."""
    confidence_threshold: int = 2
    """Minimum stride-stability counter before a prediction is produced."""
    max_confidence: int = 7
    prefetch_degree: int = 2
    prefetch_distance: int = 4
    train_on_execute: bool = False
    """INSECURE ablation knob: train the stride table at address
    generation (observing wrong-path/speculative addresses) instead of at
    commit.  Exists only so the ablation benches can quantify what the
    commit-only security requirement costs; never enable it otherwise."""
    multi_instance_aging: bool = True
    """Advance the predicted address by one stride per outstanding
    in-flight instance of the same load PC, so overlapping loop
    iterations each receive a distinct prediction.  The paper says the
    predictor "predicts the address of the current instance of the load
    based on its history" (§5.1); with several instances of one PC in
    flight this per-instance aging is the only reading that reproduces
    the paper's ~90% accuracy (Figure 7) — a commit-trained entry would
    otherwise hand every in-flight instance the same stale address.  The
    count of in-flight instances is fetch-stream information, independent
    of speculative *data*, so the security argument is unchanged.  Set to
    False to measure the naive single-prediction variant (ablation)."""

    def __post_init__(self) -> None:
        _require(self.entries >= 1, "entries must be >= 1")
        _require(self.ways >= 1, "ways must be >= 1")
        _require(self.entries % self.ways == 0, "entries must be divisible by ways")
        _require(
            0 <= self.confidence_threshold <= self.max_confidence,
            "confidence_threshold must lie within [0, max_confidence]",
        )
        _require(self.prefetch_degree >= 0, "prefetch_degree must be >= 0")
        _require(self.prefetch_distance >= 1, "prefetch_distance must be >= 1")
        _require(
            self.kind in ("stride", "two_delta"),
            f"unknown predictor kind {self.kind!r}",
        )

    @property
    def num_sets(self) -> int:
        return self.entries // self.ways


GUARDRAIL_LEVELS = ("off", "cheap", "full")
"""Invariant-checker cadences: disabled / every ``check_interval`` cycles /
every cycle."""


@dataclass(frozen=True)
class GuardrailConfig:
    """Microarchitectural guardrails: invariant checker + watchdog.

    Guardrails are pure observers — they never change what the simulator
    computes, only whether a corrupted machine state or a wedged pipeline
    fails loudly (typed error + crash dump) instead of silently skewing
    IPC.  Because results are identical at every level, this sub-config is
    deliberately *excluded* from :func:`config_fingerprint`, so cached
    results are shared between ``--guardrails off`` and ``full`` runs.
    """

    level: str = "off"
    """Invariant-check cadence: "off", "cheap" (every ``check_interval``
    cycles), or "full" (every cycle)."""
    check_interval: int = 1024
    """Cycles between invariant sweeps at level "cheap".  The cadence is
    cycle-accurate under idle skipping: a clock jump spends the whole jump
    against the countdown, and since machine state cannot change mid-jump
    at most one sweep runs per step."""
    watchdog_window: int = 200_000
    """Steps (scheduler iterations) without a commit before the watchdog
    classifies the core as deadlocked/livelocked.  Steps, not cycles: an
    idle-skip jump over a long miss must never read as starvation, and in
    a genuine wedge the clock advances one cycle per step so both
    countings trip at the same point.  Must dwarf the worst-case memory
    latency so even a non-skipping loop never mistakes one long-latency
    miss chain for a wedge (clamped at core construction against the
    memory config)."""
    dump_dir: str | None = None
    """Directory for crash dumps (watchdog + invariant failures); ``None``
    attaches the dump text to the raised error only."""

    def __post_init__(self) -> None:
        _require(
            self.level in GUARDRAIL_LEVELS,
            f"guardrails level must be one of {GUARDRAIL_LEVELS}, got {self.level!r}",
        )
        _require(self.check_interval >= 1, "check_interval must be >= 1")
        _require(self.watchdog_window >= 1, "watchdog_window must be >= 1")

    @property
    def effective_interval(self) -> int:
        """Cycles between invariant sweeps; 0 means checking is off."""
        if self.level == "off":
            return 0
        return 1 if self.level == "full" else self.check_interval


@dataclass(frozen=True)
class SystemConfig:
    """A complete, immutable description of one simulated system."""

    core: CoreConfig = field(default_factory=CoreConfig)
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    branch: BranchPredictorConfig = field(default_factory=BranchPredictorConfig)
    predictor: PredictorConfig = field(default_factory=PredictorConfig)
    prefetch_enabled: bool = True
    max_cycles: int = 50_000_000
    """Hard simulation budget; exceeding it raises SimulationLimitError."""
    guardrails: GuardrailConfig = field(default_factory=GuardrailConfig)

    def __post_init__(self) -> None:
        _require(self.max_cycles >= 1, "max_cycles must be >= 1")

    def with_overrides(self, **overrides: Any) -> "SystemConfig":
        """Return a copy with top-level fields replaced.

        Nested fields can be replaced by passing fully-built sub-configs,
        e.g. ``cfg.with_overrides(core=replace(cfg.core, rob_entries=64))``.
        """
        return replace(self, **overrides)

    def fingerprint(self) -> str:
        """A stable hex digest of every knob in this configuration.

        Two configs fingerprint equal iff every field (including nested
        sub-configs) is equal, so the digest is a safe cache key: any
        change to any knob — and nothing else — invalidates cached runs.
        """
        return config_fingerprint(self)


def config_to_dict(config: SystemConfig) -> Dict[str, Any]:
    """Flatten a :class:`SystemConfig` to plain JSON-able data."""
    return asdict(config)


def config_from_dict(data: Mapping[str, Any]) -> SystemConfig:
    """Rebuild a :class:`SystemConfig` from :func:`config_to_dict` output.

    The round trip is exact (``config_from_dict(config_to_dict(c)) == c``),
    which worker processes and the on-disk result cache rely on.
    """
    memory = data["memory"]
    return SystemConfig(
        core=CoreConfig(**data["core"]),
        memory=MemoryConfig(
            l1=CacheConfig(**memory["l1"]),
            l2=CacheConfig(**memory["l2"]),
            l3=CacheConfig(**memory["l3"]),
            dram_latency=memory["dram_latency"],
        ),
        branch=BranchPredictorConfig(**data["branch"]),
        predictor=PredictorConfig(**data["predictor"]),
        prefetch_enabled=data["prefetch_enabled"],
        max_cycles=data["max_cycles"],
        # Absent in payloads written before guardrails existed.
        guardrails=GuardrailConfig(**data.get("guardrails", {})),
    )


FINGERPRINT_EXCLUDED_FIELDS = frozenset({"guardrails"})
"""Top-level :class:`SystemConfig` fields deliberately left out of
:func:`config_fingerprint`.

Every entry here must correspond to an explicit ``payload.pop("<field>",
None)`` in :func:`config_fingerprint` and vice versa — the reprolint
fingerprint-completeness rule (RPL201) enforces that agreement statically,
so a field can neither be dropped from the cache key by accident (the
PR-1 stale-memo bug) nor claimed excluded while it still keys the cache.

* ``guardrails`` — pure observers: invariant checks and the watchdog
  never change simulated behaviour, so runs at every ``--guardrails``
  level (and any dump directory) share cache entries.
"""


def config_fingerprint(config: SystemConfig) -> str:
    """SHA-256 over the canonical (sorted-key JSON) form of ``config``.

    The payload is the full ``asdict`` serialization; the only fields
    removed are the ones sanctioned by
    :data:`FINGERPRINT_EXCLUDED_FIELDS` (see there for rationale).
    """
    payload = config_to_dict(config)
    payload.pop("guardrails", None)  # sanctioned by FINGERPRINT_EXCLUDED_FIELDS
    canonical = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def default_config() -> SystemConfig:
    """The Table 1 configuration used throughout the evaluation."""
    return SystemConfig()


def small_config(max_cycles: int = 2_000_000) -> SystemConfig:
    """A scaled-down configuration for fast unit tests.

    Keeps every mechanism active (shadows, MSHRs, port contention) but with
    small structures so tests exercise capacity limits quickly.
    """
    return SystemConfig(
        core=CoreConfig(
            decode_width=2,
            issue_width=4,
            commit_width=4,
            iq_entries=16,
            rob_entries=32,
            lq_entries=16,
            sq_entries=16,
            load_ports=2,
            store_ports=1,
        ),
        memory=MemoryConfig(
            l1=CacheConfig("L1D", 2 * 1024, 2, latency=2, mshrs=4),
            l2=CacheConfig("L2", 16 * 1024, 4, latency=8),
            l3=CacheConfig("L3", 64 * 1024, 8, latency=20),
            dram_latency=40,
        ),
        predictor=PredictorConfig(entries=64, ways=4),
        max_cycles=max_cycles,
    )
