"""Exception hierarchy for the repro package.

Every error raised by the simulator derives from :class:`ReproError` so that
callers can catch simulator problems without masking unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigError(ReproError):
    """An invalid or inconsistent configuration value."""


class AssemblyError(ReproError):
    """A program could not be assembled (bad mnemonic, operand, or label)."""

    def __init__(self, message: str, line: int | None = None):
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class ExecutionError(ReproError):
    """The simulated program performed an illegal operation."""


class SimulationLimitError(ReproError):
    """The simulation exceeded its cycle or instruction budget.

    Usually indicates a deadlocked pipeline (a bug) or a runaway program
    (an infinite loop in the workload).
    """


class StructuralHazardError(ReproError):
    """An internal structure (ROB, LQ, SQ, IQ) was used inconsistently."""


class StatisticsError(ReproError, ValueError):
    """An aggregate metric was asked of unusable inputs (empty sequence,
    non-positive geomean operand, zero baseline).

    Subclasses :class:`ValueError` so long-standing callers that guard
    with ``except ValueError`` keep working.
    """


class EmptyMeasurementError(ReproError):
    """A run produced no usable measurement window.

    Raised when a benchmark commits nothing inside its measurement window
    — typically because the program halted during warmup ("program
    shorter than warmup window") — or when a baseline with zero IPC would
    poison every normalization.  Carries the offending pair so sweeps can
    skip-and-report instead of dying.
    """

    def __init__(self, message: str, benchmark: str | None = None,
                 scheme: str | None = None):
        self.benchmark = benchmark
        self.scheme = scheme
        if benchmark is not None or scheme is not None:
            message = f"({benchmark}, {scheme}): {message}"
        super().__init__(message)
