"""Exception hierarchy for the repro package.

Every error raised by the simulator derives from :class:`ReproError` so that
callers can catch simulator problems without masking unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigError(ReproError, ValueError):
    """An invalid or inconsistent configuration value.

    Subclasses :class:`ValueError` so long-standing callers that guard
    bad-argument paths with ``except ValueError`` keep working (the same
    compatibility contract as :class:`StatisticsError`).
    """


class AssemblyError(ReproError):
    """A program could not be assembled (bad mnemonic, operand, or label)."""

    def __init__(self, message: str, line: int | None = None):
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class ExecutionError(ReproError):
    """The simulated program performed an illegal operation."""


class SimulationLimitError(ReproError):
    """The simulation exceeded its cycle or instruction budget.

    Usually indicates a deadlocked pipeline (a bug) or a runaway program
    (an infinite loop in the workload).
    """


class StructuralHazardError(ReproError):
    """An internal structure (ROB, LQ, SQ, IQ) was used inconsistently."""


class InvariantViolationError(StructuralHazardError):
    """A microarchitectural invariant check failed (guardrails).

    Carries the invariant class that fired, the individual violation
    messages, and a structured machine-state snapshot taken at the moment
    of the failure so the broken state can be diagnosed without a rerun.
    """

    def __init__(
        self,
        message: str,
        invariant: str = "unknown",
        violations: "list[str] | None" = None,
        snapshot: "dict | None" = None,
        dump_path: "str | None" = None,
    ):
        self.invariant = invariant
        self.violations = violations if violations is not None else [message]
        self.snapshot = snapshot if snapshot is not None else {}
        self.dump_path = dump_path
        super().__init__(message)


class DeadlockError(SimulationLimitError):
    """The watchdog declared the pipeline wedged.

    ``kind`` distinguishes a *deadlock* (no commit and nothing in flight
    that could make progress) from a *livelock* (issue/replay activity
    that never retires).  Carries the machine-state snapshot and, when a
    dump directory is configured, the path of the written crash dump.
    """

    def __init__(
        self,
        message: str,
        kind: str = "deadlock",
        snapshot: "dict | None" = None,
        dump_path: "str | None" = None,
        dump: "str | None" = None,
    ):
        self.kind = kind
        self.snapshot = snapshot if snapshot is not None else {}
        self.dump_path = dump_path
        self.dump = dump
        super().__init__(message)


class JobTimeoutError(ReproError):
    """A sweep worker exceeded its per-job wall-clock budget."""


class WorkerCrashError(ReproError):
    """A sweep worker process died (crash/kill) before returning a result."""


class ChaosError(ReproError):
    """The chaos differential check could not complete or failed.

    Raised when a sweep under an injected fault plan cannot converge to
    the fault-free result (non-identical stats, un-quarantined corrupt
    entries, or a campaign that never finishes within its resume budget).
    """


class LintError(ReproError):
    """reprolint could not analyze a target (unreadable file, broken
    baseline, syntax error in the tree under analysis)."""


class SpecflowBudgetError(ReproError):
    """The static leakage analyzer exceeded its work budget.

    specflow's speculation-window passes are quadratic in the worst case;
    rather than stall, the analyzer aborts and reports ``unknown`` — the
    verdict that makes no soundness claim — for every scheme.
    """


class SpecflowUsageError(ReproError):
    """``repro specflow`` was invoked incorrectly (unknown gadget or
    scheme name).  The CLI maps this to exit code 2, mirroring
    ``repro lint``'s misuse / findings / clean distinction."""


class LintUsageError(LintError):
    """reprolint was invoked incorrectly (unknown rule id, missing path).

    The CLI maps this to exit code 2, distinguishing misuse from
    findings (exit 1) and a clean pass (exit 0).
    """


class StatisticsError(ReproError, ValueError):
    """An aggregate metric was asked of unusable inputs (empty sequence,
    non-positive geomean operand, zero baseline).

    Subclasses :class:`ValueError` so long-standing callers that guard
    with ``except ValueError`` keep working.
    """


class EmptyMeasurementError(ReproError):
    """A run produced no usable measurement window.

    Raised when a benchmark commits nothing inside its measurement window
    — typically because the program halted during warmup ("program
    shorter than warmup window") — or when a baseline with zero IPC would
    poison every normalization.  Carries the offending pair so sweeps can
    skip-and-report instead of dying.
    """

    def __init__(self, message: str, benchmark: str | None = None,
                 scheme: str | None = None):
        self.benchmark = benchmark
        self.scheme = scheme
        if benchmark is not None or scheme is not None:
            message = f"({benchmark}, {scheme}): {message}"
        super().__init__(message)
