"""Exception hierarchy for the repro package.

Every error raised by the simulator derives from :class:`ReproError` so that
callers can catch simulator problems without masking unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigError(ReproError):
    """An invalid or inconsistent configuration value."""


class AssemblyError(ReproError):
    """A program could not be assembled (bad mnemonic, operand, or label)."""

    def __init__(self, message: str, line: int | None = None):
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class ExecutionError(ReproError):
    """The simulated program performed an illegal operation."""


class SimulationLimitError(ReproError):
    """The simulation exceeded its cycle or instruction budget.

    Usually indicates a deadlocked pipeline (a bug) or a runaway program
    (an infinite loop in the workload).
    """


class StructuralHazardError(ReproError):
    """An internal structure (ROB, LQ, SQ, IQ) was used inconsistently."""
