"""Statistics collection for simulation runs.

:class:`SimStats` is a flat bag of named counters with a few derived
metrics (IPC, predictor coverage/accuracy).  Counters are plain attributes
rather than a dict so hot simulator paths pay only an attribute increment.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, fields
from typing import Any, Dict, Iterable, Mapping

from repro.common.errors import StatisticsError


@dataclass
class SimStats:
    """Counters collected over one simulation run."""

    cycles: int = 0
    committed_instructions: int = 0
    committed_loads: int = 0
    committed_stores: int = 0
    committed_branches: int = 0

    fetched_instructions: int = 0
    squashed_instructions: int = 0
    branch_mispredictions: int = 0

    # Memory hierarchy traffic (demand + doppelganger + prefetch).
    l1_accesses: int = 0
    l1_hits: int = 0
    l1_misses: int = 0
    l2_accesses: int = 0
    l2_hits: int = 0
    l3_accesses: int = 0
    l3_hits: int = 0
    dram_accesses: int = 0
    mshr_stalls: int = 0
    writebacks: int = 0

    # Scheme behaviour.
    delayed_propagations: int = 0     # NDA-P: completions held back
    delayed_transmitters: int = 0     # STT: tainted transmitters held back
    dom_delayed_misses: int = 0       # DoM: speculative L1 misses delayed
    dom_reissued_loads: int = 0

    # Doppelganger engine.
    dl_predictions: int = 0           # predictor produced an address
    dl_issued: int = 0                # doppelganger accesses sent to memory
    dl_correct: int = 0               # verified: predicted == resolved
    dl_wrong: int = 0                 # verified: predicted != resolved
    dl_squashed: int = 0              # doppelganger issued, load squashed
    dl_covered_commits: int = 0       # committed loads with an issued doppelganger
    dl_correct_commits: int = 0       # committed loads whose doppelganger matched
    dl_forwarded: int = 0             # preload overridden by store forwarding
    dl_released_early: int = 0        # value released before plain-scheme time

    # Value prediction (DoM+VP extension).
    vp_predictions: int = 0
    vp_correct: int = 0
    vp_wrong: int = 0
    vp_squashes: int = 0

    # Prefetcher.
    prefetches_issued: int = 0
    prefetch_fills: int = 0

    # Store handling.
    store_to_load_forwards: int = 0
    lq_invalidation_matches: int = 0

    def merge(self, other: "SimStats") -> None:
        """Accumulate another run's counters into this one (for sweeps)."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    def add(self, **deltas: int) -> None:
        """Batch-increment counters: ``stats.add(l1_hits=3, cycles=10)``.

        Hot loops accumulate counts in locals and flush once per phase via
        this helper instead of touching attributes per event; a typo'd
        counter name raises immediately rather than creating a silent
        orphan attribute.
        """
        for name, delta in deltas.items():
            current = getattr(self, name, None)
            if current is None:
                raise StatisticsError(f"unknown SimStats counter {name!r}")
            setattr(self, name, current + delta)

    # ------------------------------------------------------------------
    # Derived metrics
    # ------------------------------------------------------------------
    @property
    def ipc(self) -> float:
        """Committed instructions per cycle."""
        if self.cycles == 0:
            return 0.0
        return self.committed_instructions / self.cycles

    @property
    def l1_miss_rate(self) -> float:
        if self.l1_accesses == 0:
            return 0.0
        return self.l1_misses / self.l1_accesses

    @property
    def coverage(self) -> float:
        """Fraction of committed loads that had a doppelganger issued."""
        if self.committed_loads == 0:
            return 0.0
        return self.dl_covered_commits / self.committed_loads

    @property
    def accuracy(self) -> float:
        """Fraction of covered committed loads whose prediction was correct."""
        if self.dl_covered_commits == 0:
            return 0.0
        return self.dl_correct_commits / self.dl_covered_commits

    def as_dict(self) -> Dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: Mapping[str, int]) -> "SimStats":
        """Rebuild a :class:`SimStats` from :meth:`as_dict` output.

        Unknown keys are ignored (forward compatibility: a cache written
        by a newer build with extra counters still loads); missing keys
        keep their zero defaults.
        """
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})

    def summary(self) -> str:
        """A short human-readable digest used by examples and the CLI."""
        lines = [
            f"cycles={self.cycles}  instructions={self.committed_instructions}"
            f"  IPC={self.ipc:.3f}",
            f"loads={self.committed_loads}  stores={self.committed_stores}"
            f"  branches={self.committed_branches}"
            f"  mispredicts={self.branch_mispredictions}",
            f"L1 acc/hit={self.l1_accesses}/{self.l1_hits}"
            f"  L2 acc={self.l2_accesses}  L3 acc={self.l3_accesses}"
            f"  DRAM={self.dram_accesses}",
        ]
        if self.dl_issued:
            lines.append(
                f"doppelganger issued={self.dl_issued}"
                f"  coverage={self.coverage:.1%}  accuracy={self.accuracy:.1%}"
            )
        return "\n".join(lines)


def geomean(values: Iterable[float]) -> float:
    """Geometric mean of strictly positive values.

    Used for the GMEAN columns in Figures 1, 6, 7, and 8.
    """
    vals = list(values)
    if not vals:
        raise StatisticsError("geomean of an empty sequence")
    if any(v <= 0 for v in vals):
        raise StatisticsError("geomean requires strictly positive values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def normalized(value: float, baseline: float) -> float:
    """``value / baseline``, the normalization used by every figure."""
    if baseline == 0:
        raise StatisticsError("cannot normalize against a zero baseline")
    return value / baseline


@dataclass
class RunResult:
    """A simulation outcome paired with the labels that produced it."""

    benchmark: str
    scheme: str
    stats: SimStats
    metadata: Mapping[str, object] = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        return self.stats.ipc

    def to_dict(self) -> Dict[str, Any]:
        """A plain-data form that survives JSON and pickling boundaries
        (worker processes, the on-disk result cache)."""
        return {
            "benchmark": self.benchmark,
            "scheme": self.scheme,
            "stats": self.stats.as_dict(),
            "metadata": dict(self.metadata),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunResult":
        return cls(
            benchmark=data["benchmark"],
            scheme=data["scheme"],
            stats=SimStats.from_dict(data["stats"]),
            metadata=dict(data.get("metadata", {})),
        )
