"""Command-line interface: ``python -m repro <subcommand>``.

Subcommands:

* ``list`` — available benchmarks and schemes.
* ``run`` — simulate one benchmark under one scheme and print statistics.
* ``sweep`` — run a (benchmark × scheme) grid over a worker pool, with an
  optional persistent on-disk result cache (``--jobs`` / ``--cache-dir``).
* ``figures`` — regenerate the paper's figures (Figure 1/6/7/8 + ablation).
* ``bench`` — perf baseline: time the event-driven scheduler against the
  per-cycle reference loop on the figure6 sweep, verify bit-identical
  stats, and write/compare ``BENCH_figure6.json``.
* ``attack`` — run the Spectre v1 gadget against every configuration.
* ``trace`` — run with the pipeline tracer and print an instruction
  timeline (Konata-style, in text).
* ``doctor`` — run a smoke program under every scheme with guardrails at
  ``full`` and print pass/fail per invariant class.
* ``chaos`` — differential resilience check: run a small sweep under a
  seeded fault plan (crashes, hangs, torn writes, disk-full, interrupts)
  and require results bit-identical to a fault-free run with every
  injected corruption quarantined.
* ``specflow`` — static speculative-leakage analysis over the attack
  corpus and fuzz-generated secret gadgets, cross-checked against the
  dynamic noninterference oracle (static ``safe`` must be dynamically
  clean).

``run`` and ``sweep`` accept ``--guardrails {off,cheap,full}`` to arm the
microarchitectural invariant checker (``--dump-dir`` adds crash dumps);
``sweep`` adds ``--job-timeout`` / ``--retries`` for fault-tolerant
pools.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.common.errors import ReproError
from repro.schemes import SCHEME_NAMES, make_scheme

#: Default grid for ``sweep`` (the Figure 6/8 schemes, duplicated here so
#: parsing ``--help`` doesn't import the simulator).
FIGURE_SCHEMES_DEFAULT = ("nda", "nda+ap", "stt", "stt+ap", "dom", "dom+ap")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Doppelganger Loads (ISCA 2023) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list benchmarks and schemes")

    run = sub.add_parser("run", help="simulate one benchmark under one scheme")
    run.add_argument("benchmark")
    run.add_argument("--scheme", default="unsafe")
    run.add_argument("--warmup", type=int, default=4000)
    run.add_argument("--measure", type=int, default=16000)
    run.add_argument(
        "--baseline", action="store_true",
        help="also run the unsafe baseline and print normalized IPC",
    )
    _add_guardrail_args(run)

    sweep = sub.add_parser(
        "sweep", help="run a (benchmark × scheme) grid over a worker pool"
    )
    sweep.add_argument(
        "--benchmarks", default="all",
        help="comma-separated names, or a suite (all/spec2006/spec2017)",
    )
    sweep.add_argument(
        "--schemes", default="unsafe," + ",".join(FIGURE_SCHEMES_DEFAULT),
        help="comma-separated scheme names",
    )
    sweep.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes (default: one per CPU; 1 = run inline)",
    )
    sweep.add_argument(
        "--cache-dir", default=None,
        help="persistent result cache directory (reruns become cache hits)",
    )
    sweep.add_argument("--warmup", type=int, default=4000)
    sweep.add_argument("--measure", type=int, default=16000)
    sweep.add_argument(
        "--csv", default=None, help="also write raw counters as CSV here"
    )
    sweep.add_argument(
        "--skip-errors", action="store_true",
        help="report pairs with empty measurement windows instead of aborting",
    )
    sweep.add_argument(
        "--job-timeout", type=float, default=None,
        help="per-job wall-clock budget in seconds (hung workers are "
             "killed, the job retried, then recorded in the failure "
             "manifest; default: wait forever)",
    )
    sweep.add_argument(
        "--retries", type=int, default=1,
        help="retry attempts for transient worker failures "
             "(timeout/crash; default: 1)",
    )
    sweep.add_argument(
        "--resume", action="store_true",
        help="adopt the cache directory's progress ledger from an "
             "interrupted run of the same grid: resolved results load "
             "from the store, recorded deterministic failures replay, "
             "only unresolved pairs re-run (requires --cache-dir)",
    )
    _add_guardrail_args(sweep)

    figures = sub.add_parser("figures", help="regenerate the paper's figures")
    figures.add_argument("--fast", action="store_true")
    figures.add_argument("--warmup", type=int, default=None)
    figures.add_argument("--measure", type=int, default=None)
    figures.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes for the shared sweep (default: one per CPU)",
    )
    figures.add_argument(
        "--cache-dir", default=None,
        help="persistent result cache directory shared across invocations",
    )

    bench = sub.add_parser(
        "bench",
        help="time the event-driven core against the per-cycle reference "
             "loop on the figure6 sweep, verifying bit-identical stats",
    )
    bench.add_argument(
        "--quick", action="store_true",
        help="CI-sized cut of the grid instead of the full figure6 sweep",
    )
    bench.add_argument(
        "--output", default=None,
        help=f"write/merge the JSON baseline here (default "
             f"{'BENCH_figure6.json'} when not comparing)",
    )
    bench.add_argument(
        "--compare", default=None, metavar="BASELINE",
        help="compare against a checked-in baseline instead of writing; "
             "prints warnings on sim-IPS regressions",
    )
    bench.add_argument(
        "--threshold", type=float, default=None,
        help="regression threshold as a fraction of aggregate sim-IPS "
             "(default 0.20; per-pair bar is twice this)",
    )
    bench.add_argument(
        "--samples", type=int, default=None,
        help="timing samples per (pair, mode); the recorded wall is the "
             "best (default 3)",
    )
    bench.add_argument(
        "--fail-on-regression", action="store_true",
        help="with --compare: exit 1 when any regression warning fires "
             "(the CI perf gate)",
    )

    prof = sub.add_parser(
        "profile",
        help="profile the simulator over the bench grid: per-stage wall "
             "shares (default) or cProfile (--cprofile)",
    )
    prof.add_argument(
        "--quick", action="store_true",
        help="CI-sized cut of the grid instead of the full figure6 sweep",
    )
    prof.add_argument(
        "--cprofile", action="store_true",
        help="deterministic cProfile view instead of stage accounting",
    )
    prof.add_argument(
        "--top", type=int, default=25,
        help="rows to keep in the cProfile view (default 25)",
    )
    prof.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write the full report as JSON here",
    )

    attack = sub.add_parser("attack", help="run Spectre v1 against every scheme")
    attack.add_argument("--secret", type=int, default=7)

    trace = sub.add_parser("trace", help="trace a window of the pipeline")
    trace.add_argument("benchmark")
    trace.add_argument("--scheme", default="dom+ap")
    trace.add_argument("--instructions", type=int, default=300)
    trace.add_argument("--window", type=int, default=40)

    doctor = sub.add_parser(
        "doctor",
        help="static lint preflight, then smoke-run every scheme with "
             "full guardrails; report per invariant class",
    )
    doctor.add_argument(
        "--schemes", default=None,
        help="comma-separated scheme names (default: every variant)",
    )
    doctor.add_argument("--instructions", type=int, default=4000)
    doctor.add_argument(
        "--no-lint", action="store_true",
        help="skip the reprolint static preflight",
    )
    doctor.add_argument(
        "--no-fuzz", action="store_true",
        help="skip the differential fuzz smoke (a few seeds × 2 schemes)",
    )
    doctor.add_argument(
        "--no-chaos", action="store_true",
        help="skip the chaos smoke (a tiny sweep under injected faults)",
    )
    doctor.add_argument(
        "--no-specflow", action="store_true",
        help="skip the specflow smoke (static-vs-dynamic differential "
             "over a corpus cut)",
    )

    chaos = sub.add_parser(
        "chaos",
        help="sweep-under-faults differential: seeded crashes, hangs, "
             "torn/corrupt cache writes, disk-full, and a mid-wave "
             "interrupt must leave results bit-identical to a fault-free "
             "run, with every corruption quarantined (exit 0/1)",
    )
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument(
        "--benchmarks", default="hmmer,mcf",
        help="comma-separated benchmark names (default: hmmer,mcf)",
    )
    chaos.add_argument(
        "--schemes", default="unsafe,dom+ap",
        help="comma-separated scheme names (default: unsafe,dom+ap)",
    )
    chaos.add_argument("--warmup", type=int, default=300)
    chaos.add_argument("--measure", type=int, default=900)
    chaos.add_argument(
        "--jobs", type=int, default=2,
        help="worker processes for the sweeps under test (default: 2)",
    )
    chaos.add_argument(
        "--job-timeout", type=float, default=10.0,
        help="per-job budget for the chaotic sweep — bounds how long an "
             "injected hang can stall a wave (default: 10s)",
    )
    chaos.add_argument(
        "--retries", type=int, default=2,
        help="transient-failure retries for the chaotic sweep (default: 2)",
    )
    chaos.add_argument(
        "--work-dir", default=None,
        help="keep the reference and chaos caches here (default: a temp "
             "dir, removed on success, kept and named on failure)",
    )

    fuzz = sub.add_parser(
        "fuzz",
        help="differential fuzzing: run seeded random programs under every "
             "scheme × idle_skip × guardrails and demand identical "
             "architectural state (exit 0 clean, 1 findings)",
    )
    fuzz.add_argument(
        "--seeds", type=int, default=50,
        help="how many seeds to run (default: 50)",
    )
    fuzz.add_argument(
        "--seed-start", type=int, default=0,
        help="first seed of the window (default: 0)",
    )
    fuzz.add_argument(
        "--profiles", default=None,
        help="comma-separated profile names, assigned round-robin over the "
             "seed window (default: every named profile)",
    )
    fuzz.add_argument(
        "--schemes", default=None,
        help="comma-separated scheme names (default: unsafe + every secure "
             "scheme)",
    )
    fuzz.add_argument(
        "--matrix", choices=("full", "schemes"), default="full",
        help="execution matrix per program: 'full' crosses schemes × "
             "idle_skip × guardrails; 'schemes' is one cell per scheme",
    )
    fuzz.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes (default: one per CPU; 1 = run inline)",
    )
    fuzz.add_argument(
        "--job-timeout", type=float, default=None,
        help="per-program wall-clock budget in seconds (default: wait "
             "forever)",
    )
    fuzz.add_argument(
        "--retries", type=int, default=1,
        help="retry attempts for transient worker failures (default: 1)",
    )
    fuzz.add_argument(
        "--time-budget", type=float, default=None,
        help="stop submitting new programs after this many seconds",
    )
    fuzz.add_argument(
        "--repro-dir", default="fuzz-repros",
        help="directory for minimized repro files and the failure manifest "
             "(default: fuzz-repros)",
    )
    fuzz.add_argument(
        "--no-minimize", action="store_true",
        help="record findings without delta-debugging them first",
    )
    fuzz.add_argument(
        "--mutation", default=None,
        help="run with a named scheme bug injected (oracle self-test); "
             "findings are then expected",
    )
    fuzz.add_argument(
        "--selftest", action="store_true",
        help="end-to-end check: inject a mutation, require the oracle to "
             "catch it and the shrinker to minimize it to <= 10 "
             "instructions (exit 0 on success)",
    )
    fuzz.add_argument(
        "--replay", default=None, metavar="PATH",
        help="re-run a repro file or every entry of a failure manifest "
             "instead of fuzzing (exit 1 if anything still diverges)",
    )
    fuzz.add_argument(
        "--resume", action="store_true",
        help="replay verdicts already in the repro dir's store instead of "
             "re-running them — an interrupted campaign continues where "
             "it stopped",
    )

    lint = sub.add_parser(
        "lint",
        help="reprolint: static analysis of simulator invariants "
             "(exit 0 clean, 1 findings, 2 usage error)",
    )
    from repro.analysis.cli import add_lint_arguments

    add_lint_arguments(lint)

    specflow = sub.add_parser(
        "specflow",
        help="static speculative-leakage analysis cross-checked against "
             "the dynamic noninterference oracle over the attack corpus "
             "and fuzz-generated gadgets (exit 0 agree, 1 disagreements, "
             "2 usage error)",
    )
    from repro.analysis.specflow.cli import add_specflow_arguments

    add_specflow_arguments(specflow)
    return parser


def _add_guardrail_args(command: argparse.ArgumentParser) -> None:
    command.add_argument(
        "--guardrails", choices=("off", "cheap", "full"), default="off",
        help="microarchitectural invariant checker cadence: off (default), "
             "cheap (every-N cycles), full (every cycle)",
    )
    command.add_argument(
        "--dump-dir", default=None,
        help="directory for crash dumps on invariant/watchdog failures",
    )


def _guardrail_config(args: argparse.Namespace):
    """The session config with the requested guardrail level applied."""
    from repro.common.config import GuardrailConfig, default_config

    return default_config().with_overrides(
        guardrails=GuardrailConfig(level=args.guardrails, dump_dir=args.dump_dir)
    )


def _cmd_list() -> int:
    from repro.workloads.profiles import ALL_PROFILES

    print("schemes:")
    for name in SCHEME_NAMES:
        print(f"  {name}" + ("       (+ap variant available)" if name != "dom+vp" else ""))
    print("\nbenchmarks (suite, kernel):")
    for profile in ALL_PROFILES:
        print(f"  {profile.name:<14} {profile.suite:<9} {profile.kernel}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.harness.runner import run_benchmark

    config = _guardrail_config(args)
    result = run_benchmark(
        args.benchmark, args.scheme, config,
        warmup=args.warmup, measure=args.measure,
    )
    print(f"{args.benchmark} under {args.scheme}:")
    print(result.stats.summary())
    if args.baseline and args.scheme != "unsafe":
        base = run_benchmark(
            args.benchmark, "unsafe", config,
            warmup=args.warmup, measure=args.measure,
        )
        print(f"normalized IPC vs unsafe: {result.ipc / base.ipc:.3f}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.harness.parallel import ParallelSession
    from repro.workloads.profiles import PROFILES_BY_NAME, benchmark_names

    if args.benchmarks in ("all", "spec2006", "spec2017"):
        benchmarks = benchmark_names(args.benchmarks)
    else:
        benchmarks = tuple(name.strip() for name in args.benchmarks.split(","))
        for name in benchmarks:
            if name not in PROFILES_BY_NAME:
                print(f"error: unknown benchmark {name!r}", file=sys.stderr)
                return 1
    schemes = tuple(name.strip() for name in args.schemes.split(","))

    if args.resume and args.cache_dir is None:
        print("error: --resume requires --cache-dir (the ledger lives "
              "there)", file=sys.stderr)
        return 1
    session = ParallelSession(
        config=_guardrail_config(args),
        warmup=args.warmup,
        measure=args.measure,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        job_timeout=args.job_timeout,
        retries=args.retries,
        resume=args.resume,
    )
    results = session.sweep(benchmarks, schemes, skip_errors=args.skip_errors)
    print(f"{'benchmark':<14}{'scheme':<11}{'IPC':>8}{'instructions':>14}{'cycles':>10}")
    for result in results:
        print(
            f"{result.benchmark:<14}{result.scheme:<11}{result.ipc:>8.3f}"
            f"{result.stats.committed_instructions:>14}{result.stats.cycles:>10}"
        )
    for skip in session.skipped:
        print(f"skipped ({skip.benchmark}, {skip.scheme}): "
              f"{skip.error_type}: {skip.message}")
    manifest = session.failure_manifest_path
    if session.skipped and manifest is not None and manifest.exists():
        print(f"failure manifest: {manifest}")
    counters = session.counters()
    print(
        f"\n{len(results)} results with {args.jobs or 'auto'} jobs: "
        f"{counters['simulated']} simulated, {counters['disk_hits']} from disk "
        f"cache, {counters['memo_hits']} memoized, {counters['skipped']} skipped"
        + (
            f", {counters['ledger_hits']} replayed from ledger"
            if counters["ledger_hits"]
            else ""
        )
    )
    store = session.store_counters()
    if store.get("quarantined"):
        print(
            f"note: {store['quarantined']} corrupt cache entr"
            f"{'y' if store['quarantined'] == 1 else 'ies'} quarantined "
            f"under {session.store.quarantine_dir} and recomputed"
        )
    if store.get("degraded"):
        print(
            "warning: persistent disk errors — results for this run were "
            "kept in memory, not the cache directory"
        )
    if args.csv:
        from repro.harness.export import sweep_to_csv

        with open(args.csv, "w") as handle:
            handle.write(sweep_to_csv(results))
        print(f"raw counters written to {args.csv}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.harness.perfbench import (
        DEFAULT_BASELINE,
        DEFAULT_REGRESSION_THRESHOLD,
        DEFAULT_SAMPLES,
        compare_baselines,
        load_baseline,
        run_bench,
        write_baseline,
    )

    profile = "quick" if args.quick else "full"
    samples = DEFAULT_SAMPLES if args.samples is None else args.samples
    print(f"benchmarking the {profile} profile (event-driven vs per-cycle "
          f"reference loop; stats verified bit-identical per pair; "
          f"best of {samples} samples)")
    print(f"{'benchmark':<14}{'scheme':<9}{'sim-IPS':>10}{'speedup':>9}"
          f"{'cyc/step':>10}")
    fragment = run_bench(profile, progress=print, samples=samples)
    totals = fragment["totals"]
    print(
        f"\n{totals['pairs']} pairs: {totals['sim_ips']:.0f} aggregate "
        f"sim-IPS, {totals['speedup']:.2f}x vs reference loop, "
        f"{totals['cycles_per_step']:.1f} cycles/step "
        f"({totals['wall_event']:.1f}s vs {totals['wall_reference']:.1f}s)"
    )
    if args.compare is not None:
        threshold = (
            DEFAULT_REGRESSION_THRESHOLD
            if args.threshold is None else args.threshold
        )
        warnings = compare_baselines(
            fragment, load_baseline(args.compare), threshold
        )
        for warning in warnings:
            print(f"warning: {warning}")
        if not warnings:
            print(f"no regressions beyond {threshold:.0%} vs {args.compare}")
        if args.output is not None:
            write_baseline(args.output, fragment)
            print(f"baseline written to {args.output}")
        if warnings and args.fail_on_regression:
            return 1
        return 0
    output = args.output if args.output is not None else DEFAULT_BASELINE
    write_baseline(output, fragment)
    print(f"baseline written to {output}")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.harness.profiling import (
        profile_cprofile,
        profile_stages,
        render_stage_report,
        write_report,
    )

    profile = "quick" if args.quick else "full"
    if args.cprofile:
        report = profile_cprofile(profile, top=args.top)
        print(report["text"], end="")
    else:
        report = profile_stages(profile)
        print(render_stage_report(report))
    if args.json is not None:
        write_report(args.json, report)
        print(f"profile report written to {args.json}")
    return 0


def _cmd_attack(args: argparse.Namespace) -> int:
    from repro.attacks import run_attack, spectre_v1

    gadget = spectre_v1(secret_value=args.secret)
    print(f"Spectre v1, secret = {args.secret}")
    leaked_anywhere = False
    for scheme in ("unsafe", "unsafe+ap", "nda", "nda+ap", "stt", "stt+ap",
                   "dom", "dom+ap"):
        outcome = run_attack(gadget, scheme)
        verdict = "LEAKED" if outcome.leaked else "safe"
        leaked_anywhere |= outcome.leaked
        print(f"  {scheme:<10} {verdict:<8} inferred={outcome.inferred}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.pipeline.core import Core
    from repro.trace import PipelineTracer
    from repro.workloads.profiles import build_workload

    core = Core(build_workload(args.benchmark), make_scheme(args.scheme))
    tracer = PipelineTracer()
    core.tracer = tracer
    core.run(max_instructions=args.instructions)
    print(tracer.render_summary())
    print()
    first = max(0, len(tracer.records()) - args.window)
    print(tracer.render_timeline(first=first, count=args.window))
    return 0


def _cmd_doctor(args: argparse.Namespace) -> int:
    from repro.guardrails import DOCTOR_SCHEMES, run_doctor

    if args.schemes is None:
        schemes = DOCTOR_SCHEMES
    else:
        schemes = tuple(name.strip() for name in args.schemes.split(","))
    report = run_doctor(
        schemes=schemes,
        instructions=args.instructions,
        lint_preflight=not args.no_lint,
        fuzz_smoke=not args.no_fuzz,
        chaos_smoke=not args.no_chaos,
        specflow_smoke=not args.no_specflow,
    )
    print(report.render())
    return 0 if report.ok else 1


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.harness.chaos import run_chaos_check

    benchmarks = tuple(
        name.strip() for name in args.benchmarks.split(",") if name.strip()
    )
    schemes = tuple(
        name.strip() for name in args.schemes.split(",") if name.strip()
    )
    report = run_chaos_check(
        seed=args.seed,
        benchmarks=benchmarks,
        schemes=schemes,
        warmup=args.warmup,
        measure=args.measure,
        jobs=args.jobs,
        job_timeout=args.job_timeout,
        retries=args.retries,
        work_dir=args.work_dir,
    )
    print(report.render())
    return 0 if report.ok else 1


def _fuzz_schemes(spec: Optional[str]) -> tuple:
    from repro.fuzz import DEFAULT_FUZZ_SCHEMES

    if spec is None:
        return tuple(DEFAULT_FUZZ_SCHEMES)
    return tuple(name.strip() for name in spec.split(",") if name.strip())


def _fuzz_profiles(spec: Optional[str]) -> tuple:
    from repro.fuzz import PROFILES
    from repro.fuzz.profiles import resolve_profiles

    if spec is None:
        return tuple(PROFILES.values())
    return resolve_profiles(
        tuple(name.strip() for name in spec.split(",") if name.strip())
    )


def _cmd_fuzz_replay(path: str) -> int:
    """Replay a repro file or a failure manifest; exit 1 on divergence."""
    import json as _json

    from repro.fuzz import KIND_CLEAN, ReproFile, replay_manifest

    payload = None
    try:
        payload = _json.loads(open(path).read())
    except (OSError, ValueError) as error:
        print(f"error: cannot read {path}: {error}", file=sys.stderr)
        return 1
    if isinstance(payload, dict) and "program" in payload:
        repro = ReproFile.load(path)
        if repro.config_drifted():
            print(f"warning: {path}: config edited after fingerprinting")
        report = repro.replay()
        print(f"{path}: {report.summary()}")
        if repro.mutation is not None:
            # A mutation-sourced repro is *supposed* to diverge when the
            # recorded bug is re-injected; the stock simulator must be
            # clean.  Check both so the file proves what it claims.
            stock = repro.replay(mutation=None)
            print(f"{path} (stock simulator): {stock.summary()}")
            faithful = report.kind == repro.kind and stock.clean
            return 0 if faithful else 1
        return 0 if report.clean else 1
    reports = replay_manifest(path)
    if not reports:
        print(f"{path}: no replayable entries")
        return 0
    worst = 0
    for label, report in reports:
        print(f"{label}: {report.summary()}")
        if report.kind != KIND_CLEAN:
            worst = 1
    return worst


def _cmd_fuzz_selftest(args: argparse.Namespace) -> int:
    """Prove the oracle + shrinker end to end with an injected bug."""
    from repro.fuzz import MUTATIONS, FuzzSession

    mutation = args.mutation or next(iter(sorted(MUTATIONS)))
    session = FuzzSession(
        schemes=_fuzz_schemes(args.schemes),
        matrix=args.matrix,
        jobs=args.jobs,
        job_timeout=args.job_timeout,
        retries=args.retries,
        repro_dir=args.repro_dir,
        mutation=mutation,
        minimize_findings=True,
    )
    seeds = list(range(args.seed_start, args.seed_start + max(args.seeds, 1)))
    summary = session.run(seeds, _fuzz_profiles(args.profiles),
                          time_budget=args.time_budget)
    print(summary.render())
    if not summary.findings:
        print(
            f"selftest FAILED: mutation {mutation!r} produced no findings "
            f"over {len(seeds)} seed(s)",
            file=sys.stderr,
        )
        return 1
    from repro.fuzz import ReproFile

    small_enough = False
    for finding in summary.findings:
        if finding.repro_path is None:
            continue
        repro = ReproFile.load(finding.repro_path)
        print(
            f"selftest: {finding.job.label} minimized "
            f"{repro.original_instructions} -> "
            f"{repro.minimized_instructions} instruction(s)"
        )
        small_enough |= repro.minimized_instructions <= 10
    if not small_enough:
        print(
            "selftest FAILED: no finding minimized to <= 10 instructions",
            file=sys.stderr,
        )
        return 1
    print(f"selftest OK: oracle caught {mutation!r} and shrank the repro")
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    if args.replay is not None:
        return _cmd_fuzz_replay(args.replay)
    if args.selftest:
        return _cmd_fuzz_selftest(args)
    from repro.fuzz import FuzzSession

    session = FuzzSession(
        schemes=_fuzz_schemes(args.schemes),
        matrix=args.matrix,
        jobs=args.jobs,
        job_timeout=args.job_timeout,
        retries=args.retries,
        repro_dir=args.repro_dir,
        mutation=args.mutation,
        minimize_findings=not args.no_minimize,
        resume=args.resume,
    )
    seeds = list(range(args.seed_start, args.seed_start + args.seeds))
    summary = session.run(seeds, _fuzz_profiles(args.profiles),
                          time_budget=args.time_budget)
    print(summary.render())
    if args.mutation is not None:
        # With an injected bug, findings are the expected outcome.
        return 0 if summary.findings and not summary.failures else 1
    return 0 if summary.ok else 1


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis.cli import run_lint

    return run_lint(args)


def _cmd_specflow(args: argparse.Namespace) -> int:
    from repro.analysis.specflow.cli import run_specflow

    return run_specflow(args)


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list()
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "sweep":
            return _cmd_sweep(args)
        if args.command == "figures":
            # Reuse the full-evaluation example so there is exactly one
            # implementation of the report.
            import importlib.util
            from pathlib import Path

            script = Path(__file__).resolve().parents[2] / "examples" / "full_evaluation.py"
            if not script.exists():
                print(
                    "error: examples/full_evaluation.py not found (run from "
                    "a source checkout)",
                    file=sys.stderr,
                )
                return 1
            spec = importlib.util.spec_from_file_location("full_evaluation", script)
            module = importlib.util.module_from_spec(spec)
            spec.loader.exec_module(module)  # type: ignore[union-attr]
            forwarded: List[str] = []
            if args.fast:
                forwarded.append("--fast")
            if args.warmup is not None:
                forwarded.extend(["--warmup", str(args.warmup)])
            if args.measure is not None:
                forwarded.extend(["--measure", str(args.measure)])
            if args.jobs is not None:
                forwarded.extend(["--jobs", str(args.jobs)])
            if args.cache_dir is not None:
                forwarded.extend(["--cache-dir", str(args.cache_dir)])
            return module.main(forwarded)
        if args.command == "bench":
            return _cmd_bench(args)
        if args.command == "profile":
            return _cmd_profile(args)
        if args.command == "attack":
            return _cmd_attack(args)
        if args.command == "trace":
            return _cmd_trace(args)
        if args.command == "doctor":
            return _cmd_doctor(args)
        if args.command == "chaos":
            return _cmd_chaos(args)
        if args.command == "fuzz":
            return _cmd_fuzz(args)
        if args.command == "lint":
            # Lint handles its own errors: findings are exit 1, misuse
            # (LintUsageError) exit 2 — distinct from ReproError below.
            return _cmd_lint(args)
        if args.command == "specflow":
            # Same contract as lint: disagreements exit 1, misuse exit 2.
            return _cmd_specflow(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    return 0  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
