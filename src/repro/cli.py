"""Command-line interface: ``python -m repro <subcommand>``.

Subcommands:

* ``list`` — available benchmarks and schemes.
* ``run`` — simulate one benchmark under one scheme and print statistics.
* ``figures`` — regenerate the paper's figures (Figure 1/6/7/8 + ablation).
* ``attack`` — run the Spectre v1 gadget against every configuration.
* ``trace`` — run with the pipeline tracer and print an instruction
  timeline (Konata-style, in text).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.common.errors import ReproError
from repro.schemes import SCHEME_NAMES, make_scheme


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Doppelganger Loads (ISCA 2023) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list benchmarks and schemes")

    run = sub.add_parser("run", help="simulate one benchmark under one scheme")
    run.add_argument("benchmark")
    run.add_argument("--scheme", default="unsafe")
    run.add_argument("--warmup", type=int, default=4000)
    run.add_argument("--measure", type=int, default=16000)
    run.add_argument(
        "--baseline", action="store_true",
        help="also run the unsafe baseline and print normalized IPC",
    )

    figures = sub.add_parser("figures", help="regenerate the paper's figures")
    figures.add_argument("--fast", action="store_true")
    figures.add_argument("--warmup", type=int, default=None)
    figures.add_argument("--measure", type=int, default=None)

    attack = sub.add_parser("attack", help="run Spectre v1 against every scheme")
    attack.add_argument("--secret", type=int, default=7)

    trace = sub.add_parser("trace", help="trace a window of the pipeline")
    trace.add_argument("benchmark")
    trace.add_argument("--scheme", default="dom+ap")
    trace.add_argument("--instructions", type=int, default=300)
    trace.add_argument("--window", type=int, default=40)
    return parser


def _cmd_list() -> int:
    from repro.workloads.profiles import ALL_PROFILES

    print("schemes:")
    for name in SCHEME_NAMES:
        print(f"  {name}" + ("       (+ap variant available)" if name != "dom+vp" else ""))
    print("\nbenchmarks (suite, kernel):")
    for profile in ALL_PROFILES:
        print(f"  {profile.name:<14} {profile.suite:<9} {profile.kernel}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.harness.runner import run_benchmark

    result = run_benchmark(
        args.benchmark, args.scheme, warmup=args.warmup, measure=args.measure
    )
    print(f"{args.benchmark} under {args.scheme}:")
    print(result.stats.summary())
    if args.baseline and args.scheme != "unsafe":
        base = run_benchmark(
            args.benchmark, "unsafe", warmup=args.warmup, measure=args.measure
        )
        print(f"normalized IPC vs unsafe: {result.ipc / base.ipc:.3f}")
    return 0


def _cmd_attack(args: argparse.Namespace) -> int:
    from repro.attacks import run_attack, spectre_v1

    gadget = spectre_v1(secret_value=args.secret)
    print(f"Spectre v1, secret = {args.secret}")
    leaked_anywhere = False
    for scheme in ("unsafe", "unsafe+ap", "nda", "nda+ap", "stt", "stt+ap",
                   "dom", "dom+ap"):
        outcome = run_attack(gadget, scheme)
        verdict = "LEAKED" if outcome.leaked else "safe"
        leaked_anywhere |= outcome.leaked
        print(f"  {scheme:<10} {verdict:<8} inferred={outcome.inferred}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.pipeline.core import Core
    from repro.trace import PipelineTracer
    from repro.workloads.profiles import build_workload

    core = Core(build_workload(args.benchmark), make_scheme(args.scheme))
    tracer = PipelineTracer()
    core.tracer = tracer
    core.run(max_instructions=args.instructions)
    print(tracer.render_summary())
    print()
    first = max(0, len(tracer.records()) - args.window)
    print(tracer.render_timeline(first=first, count=args.window))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list()
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "figures":
            # Reuse the full-evaluation example so there is exactly one
            # implementation of the report.
            import importlib.util
            from pathlib import Path

            script = Path(__file__).resolve().parents[2] / "examples" / "full_evaluation.py"
            if not script.exists():
                print(
                    "error: examples/full_evaluation.py not found (run from "
                    "a source checkout)",
                    file=sys.stderr,
                )
                return 1
            spec = importlib.util.spec_from_file_location("full_evaluation", script)
            module = importlib.util.module_from_spec(spec)
            spec.loader.exec_module(module)  # type: ignore[union-attr]
            forwarded: List[str] = []
            if args.fast:
                forwarded.append("--fast")
            if args.warmup is not None:
                forwarded.extend(["--warmup", str(args.warmup)])
            if args.measure is not None:
                forwarded.extend(["--measure", str(args.measure)])
            return module.main(forwarded)
        if args.command == "attack":
            return _cmd_attack(args)
        if args.command == "trace":
            return _cmd_trace(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    return 0  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
