"""Synthetic workloads standing in for SPEC CPU2006/2017."""

from repro.workloads.kernels import (
    KERNELS,
    branchy_kernel,
    build_kernel,
    gather_kernel,
    hash_probe_kernel,
    pointer_chase_kernel,
    stencil_kernel,
    stream_kernel,
)
from repro.workloads.profiles import (
    ALL_PROFILES,
    PROFILES_BY_NAME,
    SPEC2006_PROFILES,
    SPEC2017_PROFILES,
    WorkloadSpec,
    benchmark_names,
    build_workload,
    get_profile,
)

__all__ = [
    "ALL_PROFILES",
    "KERNELS",
    "PROFILES_BY_NAME",
    "SPEC2006_PROFILES",
    "SPEC2017_PROFILES",
    "WorkloadSpec",
    "benchmark_names",
    "branchy_kernel",
    "build_kernel",
    "build_workload",
    "gather_kernel",
    "get_profile",
    "hash_probe_kernel",
    "pointer_chase_kernel",
    "stencil_kernel",
    "stream_kernel",
]
