"""SPEC CPU2006/2017 stand-in profiles.

The paper evaluates SPEC CPU2006 and CPU2017 simpoints; those binaries and
inputs cannot ship here, so each benchmark the paper reports is replaced by
a synthetic profile whose *qualitative* memory and control behaviour matches
what the paper says about it (see DESIGN.md, substitution notes):

* ``libquantum`` — long strided streams over an L3-sized set: the paper's
  standout (address prediction recovers nearly everything).
* ``mcf`` / ``mcf_s`` — shuffled pointer chasing: the paper's lowest
  coverage (9%), limited AP gain.
* ``xalancbmk_s`` — probe addresses that look regular but break constantly:
  the paper's lowest accuracy (~60%), with a DoM+AP slowdown from L1
  flooding.
* ``omnetpp_s`` — partially-sequential pointer chase: slight AP slowdown
  via cache pollution.
* ``hmmer`` — multi-lane strided streams: the paper's highest coverage.
* ``exchange2_s`` — tiny-footprint branchy compute: low scheme overhead,
  ~80% accuracy.
* ... and so on; each spec records the paper's qualitative expectation in
  ``expectation`` so EXPERIMENTS.md can be cross-checked mechanically.

Absolute IPCs do not transfer from the authors' gem5/SPEC setup; the
reproduction targets the *shape* of Figures 6–8 (who wins, roughly by how
much, where AP hurts instead of helping).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Mapping, Tuple

from repro.common.errors import ConfigError
from repro.isa.program import Program
from repro.workloads.kernels import build_kernel

_MANY = 1 << 22
"""Effectively-unbounded trip count; runs are cut by instruction budget."""


@dataclass(frozen=True)
class WorkloadSpec:
    """One benchmark stand-in: a kernel plus its parameters."""

    name: str
    suite: str  # "spec2006" or "spec2017"
    kernel: str
    params: Mapping[str, object]
    expectation: str = ""
    """The paper's qualitative statement this profile is tuned to echo."""

    def build(self) -> Program:
        params = dict(self.params)
        params.setdefault("iterations", _MANY)
        params.setdefault("name", self.name)
        return build_kernel(self.kernel, **params)


def _spec(
    name: str,
    suite: str,
    kernel: str,
    expectation: str = "",
    **params: object,
) -> WorkloadSpec:
    return WorkloadSpec(
        name=name,
        suite=suite,
        kernel=kernel,
        params=params,
        expectation=expectation,
    )


SPEC2006_PROFILES: Tuple[WorkloadSpec, ...] = (
    _spec(
        "bzip2", "spec2006", "gather",
        expectation="considerable AP speedup; more L1 accesses, no L2 increase",
        index_words=1 << 13, data_words=1 << 16, index_regularity=0.9,
        compute_per_load=2, odd_fraction=0.05, branch_block=True,
        check_period=4, seed=101,
    ),
    _spec(
        "gcc", "spec2006", "gather",
        expectation="considerable AP speedup for all schemes",
        index_words=1 << 13, data_words=1 << 15, index_regularity=0.85,
        compute_per_load=2, odd_fraction=0.05, branch_block=True,
        check_period=4, seed=102,
    ),
    _spec(
        "mcf", "spec2006", "pointer_chase",
        expectation="lowest coverage (~9%); limited AP improvement",
        nodes=1 << 16, sequential_fraction=0.10, payload_loads=1,
        compute_per_load=2, odd_fraction=0.1, dependent_check=True, seed=103,
    ),
    _spec(
        "gobmk", "spec2006", "branchy",
        expectation="branchy; modest scheme overhead and AP gain",
        footprint_words=1 << 13, odd_fraction=0.45, compute_depth=6, seed=104,
    ),
    _spec(
        "hmmer", "spec2006", "stream",
        expectation="highest coverage (~49% in the paper)",
        footprint_words=1 << 15, stride_words=1, lanes=3,
        compute_per_load=2, odd_fraction=0.05, dependent_check=True,
        check_period=2, seed=105,
    ),
    _spec(
        "sjeng", "spec2006", "branchy",
        expectation="minor AP speedup",
        footprint_words=1 << 13, odd_fraction=0.5, compute_depth=8, seed=106,
    ),
    _spec(
        "libquantum", "spec2006", "stream",
        expectation="standout: recovers 77-88% of baseline performance",
        footprint_words=1 << 19, stride_words=1, lanes=2,
        compute_per_load=1, odd_fraction=0.02, dependent_check=True, seed=107,
    ),
    _spec(
        "h264ref", "spec2006", "stencil",
        expectation="moderate overheads, moderate AP gain",
        footprint_words=1 << 13, points=4, compute_per_point=3, seed=108,
    ),
    _spec(
        "omnetpp", "spec2006", "pointer_chase",
        expectation="pointer-heavy; modest gain, some pollution",
        nodes=1 << 15, sequential_fraction=0.55, payload_loads=1,
        compute_per_load=2, odd_fraction=0.1, dependent_check=True, seed=109,
    ),
    _spec(
        "astar", "spec2006", "gather",
        expectation=">35% correctly predicted loads yet only minor gain",
        index_words=1 << 12, data_words=1 << 13, index_regularity=0.75,
        compute_per_load=5, odd_fraction=0.05, branch_block=False, seed=110,
    ),
    _spec(
        "xalancbmk", "spec2006", "hash_probe",
        expectation="irregular probes; weak prediction",
        table_words=1 << 15, key_words=1 << 12, broken_stride_period=4,
        odd_fraction=0.1, seed=111,
    ),
    _spec(
        "gromacs", "spec2006", "stencil",
        expectation="minor AP speedup",
        footprint_words=1 << 12, points=3, compute_per_point=4, seed=112,
    ),
    _spec(
        "GemsFDTD", "spec2006", "stencil",
        expectation="DoM notably slower than NDA-P/STT; AP adds MLP",
        footprint_words=1 << 18, points=4, compute_per_point=2,
        stride_words=8, odd_fraction=0.03, dependent_check=True,
        check_period=2, seed=113,
    ),
    _spec(
        "lbm", "spec2006", "stream",
        expectation="streaming; DoM hurt without AP",
        footprint_words=1 << 18, stride_words=2, lanes=3,
        compute_per_load=2, odd_fraction=0.02, dependent_check=True,
        check_period=2, seed=114,
    ),
    _spec(
        "milc", "spec2006", "stencil",
        expectation="lattice QCD: large strided footprint, DoM-sensitive",
        footprint_words=1 << 17, points=4, compute_per_point=3,
        stride_words=4, odd_fraction=0.02, dependent_check=True,
        check_period=4, seed=115,
    ),
    _spec(
        "namd", "spec2006", "stencil",
        expectation="compute-dense molecular dynamics; low overhead",
        footprint_words=1 << 13, points=3, compute_per_point=5, seed=116,
    ),
    _spec(
        "soplex", "spec2006", "gather",
        expectation="sparse LP solver: indexed accesses, moderate AP gain",
        index_words=1 << 13, data_words=1 << 15, index_regularity=0.7,
        compute_per_load=3, odd_fraction=0.08, branch_block=True,
        check_period=8, seed=117,
    ),
    _spec(
        "sphinx3", "spec2006", "gather",
        expectation="speech decoding: regular gathers, decent AP gain",
        index_words=1 << 12, data_words=1 << 14, index_regularity=0.85,
        compute_per_load=3, odd_fraction=0.06, branch_block=True,
        check_period=8, seed=118,
    ),
    _spec(
        "zeusmp", "spec2006", "stream",
        expectation="CFD streams; mild DoM pain, AP recovers",
        footprint_words=1 << 16, stride_words=2, lanes=2,
        compute_per_load=3, odd_fraction=0.03, dependent_check=True,
        check_period=4, seed=119,
    ),
)


SPEC2017_PROFILES: Tuple[WorkloadSpec, ...] = (
    _spec(
        "perlbench_s", "spec2017", "hash_probe",
        expectation="low default overhead, small AP gain",
        table_words=1 << 13, key_words=1 << 12, broken_stride_period=0,
        odd_fraction=0.1, seed=201,
    ),
    _spec(
        "gcc_s", "spec2017", "gather",
        expectation="moderate AP gain",
        index_words=1 << 13, data_words=1 << 14, index_regularity=0.8,
        compute_per_load=3, odd_fraction=0.05, branch_block=True,
        check_period=4, seed=202,
    ),
    _spec(
        "mcf_s", "spec2017", "pointer_chase",
        expectation="low coverage pointer chasing",
        nodes=1 << 16, sequential_fraction=0.15, payload_loads=1,
        compute_per_load=2, odd_fraction=0.1, dependent_check=True, seed=203,
    ),
    _spec(
        "lbm_s", "spec2017", "stream",
        expectation="streaming; AP recovers DoM misses",
        footprint_words=1 << 17, stride_words=1, lanes=2,
        compute_per_load=3, odd_fraction=0.02, dependent_check=True,
        check_period=2, seed=204,
    ),
    _spec(
        "omnetpp_s", "spec2017", "pointer_chase",
        expectation="slight AP slowdown (~10% more L2 accesses)",
        nodes=1 << 16, sequential_fraction=0.5, payload_loads=1,
        compute_per_load=2, odd_fraction=0.1, dependent_check=True, seed=205,
    ),
    _spec(
        "xalancbmk_s", "spec2017", "hash_probe",
        expectation="lowest accuracy (~60%); DoM+AP slowdown from L1 flood",
        table_words=1 << 16, key_words=1 << 12, broken_stride_period=4,
        odd_fraction=0.12, seed=206,
    ),
    _spec(
        "x264_s", "spec2017", "stencil",
        expectation="low overhead",
        footprint_words=1 << 12, points=4, compute_per_point=4, seed=207,
    ),
    _spec(
        "deepsjeng_s", "spec2017", "branchy",
        expectation="branchy; low AP sensitivity",
        footprint_words=1 << 12, odd_fraction=0.48, compute_depth=7, seed=208,
    ),
    _spec(
        "leela_s", "spec2017", "branchy",
        expectation="low overhead",
        footprint_words=1 << 13, odd_fraction=0.4, compute_depth=6, seed=209,
    ),
    _spec(
        "exchange2_s", "spec2017", "branchy",
        expectation="compute-bound; ~80% accuracy; near-zero overhead",
        footprint_words=1 << 10, odd_fraction=0.35, compute_depth=10, seed=210,
    ),
    _spec(
        "xz_s", "spec2017", "gather",
        expectation="moderate irregularity",
        index_words=1 << 13, data_words=1 << 16, index_regularity=0.6,
        compute_per_load=2, odd_fraction=0.08, branch_block=False, seed=211,
    ),
    _spec(
        "wrf_s", "spec2017", "stencil",
        expectation="minor AP speedup",
        footprint_words=1 << 14, points=3, compute_per_point=3,
        stride_words=2, odd_fraction=0.05, dependent_check=True,
        check_period=4, seed=212,
    ),
    _spec(
        "nab_s", "spec2017", "stencil",
        expectation="molecular dynamics; low overhead, small AP gain",
        footprint_words=1 << 13, points=4, compute_per_point=4, seed=213,
    ),
    _spec(
        "fotonik3d_s", "spec2017", "stream",
        expectation="FDTD streams; DoM pain, strong AP recovery",
        footprint_words=1 << 17, stride_words=2, lanes=3,
        compute_per_load=2, odd_fraction=0.02, dependent_check=True,
        check_period=2, seed=214,
    ),
    _spec(
        "roms_s", "spec2017", "stencil",
        expectation="ocean model streams; moderate DoM sensitivity",
        footprint_words=1 << 16, points=3, compute_per_point=3,
        stride_words=4, odd_fraction=0.03, dependent_check=True,
        check_period=4, seed=215,
    ),
    _spec(
        "cactuBSSN_s", "spec2017", "stencil",
        expectation="relativity stencil; compute-dense, low overhead",
        footprint_words=1 << 14, points=4, compute_per_point=5, seed=216,
    ),
    _spec(
        "imagick_s", "spec2017", "stream",
        expectation="image kernels; L2-resident, mild overheads",
        footprint_words=1 << 14, stride_words=1, lanes=2,
        compute_per_load=4, odd_fraction=0.04, dependent_check=True,
        check_period=8, seed=217,
    ),
    _spec(
        "cam4_s", "spec2017", "scatter",
        expectation="scatter/read-back mix: store-address shadows",
        index_words=1 << 12, table_words=1 << 13, index_regularity=0.6,
        compute_per_store=2, readback=False, seed=218,
    ),
)


ALL_PROFILES: Tuple[WorkloadSpec, ...] = SPEC2006_PROFILES + SPEC2017_PROFILES

PROFILES_BY_NAME: Dict[str, WorkloadSpec] = {p.name: p for p in ALL_PROFILES}


def get_profile(name: str) -> WorkloadSpec:
    if name not in PROFILES_BY_NAME:
        raise ConfigError(
            f"unknown benchmark {name!r}; expected one of {sorted(PROFILES_BY_NAME)}"
        )
    return PROFILES_BY_NAME[name]


def build_workload(name: str) -> Program:
    """Build the synthetic program standing in for SPEC benchmark ``name``."""
    return get_profile(name).build()


def benchmark_names(suite: str = "all") -> Tuple[str, ...]:
    """Benchmark names for ``"spec2006"``, ``"spec2017"``, or ``"all"``."""
    if suite == "all":
        return tuple(p.name for p in ALL_PROFILES)
    if suite == "spec2006":
        return tuple(p.name for p in SPEC2006_PROFILES)
    if suite == "spec2017":
        return tuple(p.name for p in SPEC2017_PROFILES)
    raise ConfigError(f"unknown suite {suite!r}")
