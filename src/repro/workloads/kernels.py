"""Workload kernels: parameterized program generators.

Each kernel emits a micro-ISA loop exercising a distinct memory/control
behaviour; :mod:`repro.workloads.profiles` composes them into stand-ins
for the SPEC benchmarks the paper evaluates.  The knobs map directly to
the microarchitectural behaviours that drive the paper's results:

* ``stride`` / ``index_regularity`` / ``layout`` — how predictable load
  addresses are (address predictor coverage & accuracy, Figure 7);
* ``footprint_words`` — which cache level the working set lives in
  (how much MLP is at stake, and how much DoM loses on L1 misses);
* ``branch_entropy`` — branch misprediction rate (how long control
  shadows last, i.e. how long loads stay speculative);
* ``compute_per_load`` — ALU work per load (how much ILP hides memory
  latency, separating STT from NDA-P);
* ``chain`` — dependent-load chains (the loads secure schemes delay and
  Doppelganger Loads stand in for).

Register conventions inside kernels: r1 = trip-count, r2 = i, r3 = live
accumulator, r10..r15 = array bases, r16..r25 = scratch.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.common.errors import ConfigError
from repro.isa.builder import CodeBuilder
from repro.isa.program import Program

# Array base addresses, far apart so working sets never alias.
INDEX_BASE = 0x0010_0000
DATA_BASE = 0x0080_0000
STREAM_BASE = 0x0100_0000
STORE_BASE = 0x0180_0000
LIST_BASE = 0x0200_0000
EXTRA_BASE = 0x0280_0000


def _require_pow2(value: int, what: str) -> None:
    if value <= 0 or value & (value - 1):
        raise ConfigError(f"{what} must be a positive power of two, got {value}")


def _fill_random_words(
    builder: CodeBuilder, base: int, count: int, rng: random.Random, odd_fraction: float
) -> None:
    """Fill ``count`` words with values whose low bit is 1 with probability
    ``odd_fraction`` (controls data-dependent branch entropy)."""
    for i in range(count):
        value = rng.randrange(1 << 16) << 1
        if rng.random() < odd_fraction:
            value |= 1
        builder.set_memory(base + 8 * i, value)


_CHECK_COUNTER = [0]


def _emit_dependent_check(builder: CodeBuilder, value_reg: int, check_period: int) -> None:
    """Emit a branch whose predicate is a loaded value.

    The branch is usually well-predicted (workloads keep the odd fraction
    low) but its *resolution* must wait for the load — the pattern that
    keeps shadows open across misses and is ubiquitous in real code
    (libquantum tests a bit of every loaded word).  ``check_period`` gates
    the check with an induction-based branch so only every K-th iteration
    pays the resolution chain (K a power of two).
    """
    _CHECK_COUNTER[0] += 1
    tag = _CHECK_COUNTER[0]
    skip = f"nocheck_{tag}"
    done = f"even_{tag}"
    if check_period > 1:
        if check_period & (check_period - 1):
            raise ConfigError("check_period must be a power of two")
        builder.andi(27, 2, check_period - 1)
        builder.bne(27, 0, skip)
    builder.andi(26, value_reg, 1)
    builder.beq(26, 0, done)
    builder.addi(3, 3, 13)
    builder.label(done)
    if check_period > 1:
        builder.label(skip)


def stream_kernel(
    iterations: int = 1 << 20,
    footprint_words: int = 1 << 16,
    stride_words: int = 1,
    lanes: int = 2,
    compute_per_load: int = 1,
    odd_fraction: float = 0.0,
    dependent_check: bool = False,
    check_period: int = 1,
    seed: int = 0,
    name: str = "stream",
) -> Program:
    """Sequential/strided streaming reads (libquantum/lbm-like).

    ``lanes`` independent strided streams are read each iteration; all
    addresses are perfectly stride-predictable, so the address predictor
    achieves near-total coverage and accuracy.

    ``dependent_check`` adds the pattern that makes streaming hostile to
    secure speculation (and is ubiquitous in real code — libquantum's hot
    loop tests a bit of every loaded word): a branch whose *predicate*
    is the loaded value.  The branch is almost always correctly predicted
    (``odd_fraction`` small), but it cannot *resolve* until the load
    returns, so every load miss keeps younger instructions speculative —
    DoM then delays their misses, serializing what the unsafe baseline
    overlaps.
    """
    _require_pow2(footprint_words, "footprint_words")
    rng = random.Random(seed)
    builder = CodeBuilder()
    _fill_random_words(builder, STREAM_BASE, footprint_words, rng, odd_fraction)
    mask = footprint_words * 8 - 1

    builder.li(1, iterations)
    builder.li(2, 0)
    builder.li(3, 0)
    builder.li(10, STREAM_BASE)
    builder.label("loop")
    builder.muli(16, 2, stride_words * 8 * lanes)
    builder.andi(16, 16, mask & ~7)
    for lane in range(lanes):
        builder.add(17, 10, 16)
        builder.load(18 + lane, 17, disp=lane * stride_words * 8)
        for _ in range(compute_per_load):
            builder.add(3, 3, 18 + lane)
    if dependent_check:
        _emit_dependent_check(builder, value_reg=18, check_period=check_period)
    builder.addi(2, 2, 1)
    builder.blt(2, 1, "loop")
    builder.store(3, 0, disp=8)
    builder.halt()
    return builder.build(name=name)


def gather_kernel(
    iterations: int = 1 << 20,
    index_words: int = 1 << 14,
    data_words: int = 1 << 16,
    index_regularity: float = 1.0,
    compute_per_load: int = 1,
    odd_fraction: float = 0.0,
    branch_block: bool = False,
    check_period: int = 1,
    seed: int = 0,
    name: str = "gather",
) -> Program:
    """Indexed gather ``A[B[i]]`` — the canonical dependent load.

    ``index_regularity`` is the fraction of B entries that continue a
    regular (strided) walk of A; the rest point at random words.  A
    regular gather makes the *dependent* load stride-predictable — the
    case Doppelganger Loads convert from serialized to parallel — while
    a random gather defeats the predictor (mcf-like, low coverage).
    """
    _require_pow2(index_words, "index_words")
    _require_pow2(data_words, "data_words")
    rng = random.Random(seed)
    builder = CodeBuilder()
    regular_step = 0
    for i in range(index_words):
        if rng.random() < index_regularity:
            offset = (regular_step * 8) % (data_words * 8)
            regular_step += 1
        else:
            offset = rng.randrange(data_words) * 8
        builder.set_memory(INDEX_BASE + 8 * i, offset)
    _fill_random_words(builder, DATA_BASE, data_words, rng, odd_fraction)
    index_mask = index_words * 8 - 1

    builder.li(1, iterations)
    builder.li(2, 0)
    builder.li(3, 0)
    builder.li(10, INDEX_BASE)
    builder.li(11, DATA_BASE)
    builder.label("loop")
    builder.shli(16, 2, 3)
    builder.andi(16, 16, index_mask & ~7)
    builder.add(17, 10, 16)
    builder.load(18, 17)              # B[i]
    builder.add(19, 11, 18)
    builder.load(20, 19)              # A[B[i]] — dependent load
    for _ in range(compute_per_load):
        builder.add(3, 3, 20)
    if branch_block:
        _emit_dependent_check(builder, value_reg=20, check_period=check_period)
    builder.addi(2, 2, 1)
    builder.blt(2, 1, "loop")
    builder.store(3, 0, disp=8)
    builder.halt()
    return builder.build(name=name)


def pointer_chase_kernel(
    iterations: int = 1 << 20,
    nodes: int = 1 << 14,
    sequential_fraction: float = 0.0,
    payload_loads: int = 1,
    compute_per_load: int = 2,
    odd_fraction: float = 0.0,
    dependent_check: bool = False,
    check_period: int = 1,
    seed: int = 0,
    name: str = "pointer_chase",
) -> Program:
    """Linked-list traversal (mcf/omnetpp-like): strictly serial
    dependent loads.

    ``sequential_fraction`` of the nodes link to their neighbour in
    allocation order (addresses become stride-like and predictable, as
    happens with bump allocators); the rest follow a random permutation
    cycle (unpredictable, coverage-killing).
    """
    _require_pow2(nodes, "nodes")
    rng = random.Random(seed)
    builder = CodeBuilder()
    # Build one cycle visiting every node.  The traversal order starts as
    # allocation order (fully stride-predictable); a (1 - p) fraction of
    # the positions is then shuffled among themselves, which breaks the
    # stride at exactly those hops while keeping a single covering cycle.
    sequence = list(range(nodes))
    shuffled_count = round((1.0 - sequential_fraction) * nodes)
    if shuffled_count > 1:
        positions = rng.sample(range(nodes), shuffled_count)
        values = [sequence[p] for p in positions]
        rng.shuffle(values)
        for position, value in zip(positions, values):
            sequence[position] = value
    node_stride = 16  # next pointer + payload word
    for position, current in enumerate(sequence):
        successor = sequence[(position + 1) % nodes]
        address = LIST_BASE + node_stride * current
        builder.set_memory(address, LIST_BASE + node_stride * successor)
        value = rng.randrange(1 << 16) << 1
        if rng.random() < odd_fraction:
            value |= 1
        builder.set_memory(address + 8, value)

    builder.li(1, iterations)
    builder.li(2, 0)
    builder.li(3, 0)
    builder.li(12, LIST_BASE)
    builder.label("loop")
    builder.load(16, 12, disp=8)      # payload
    for _ in range(compute_per_load):
        builder.add(3, 3, 16)
    for extra in range(payload_loads - 1):
        builder.load(17, 12, disp=8)
        builder.add(3, 3, 17)
    if dependent_check:
        # Node-value comparison (mcf's cost checks): a mostly-predictable
        # branch whose resolution waits for the payload load.
        _emit_dependent_check(builder, value_reg=16, check_period=check_period)
    builder.load(12, 12)              # next pointer — serial dependent load
    builder.addi(2, 2, 1)
    builder.blt(2, 1, "loop")
    builder.store(3, 0, disp=8)
    builder.halt()
    return builder.build(name=name)


def branchy_kernel(
    iterations: int = 1 << 20,
    footprint_words: int = 1 << 12,
    odd_fraction: float = 0.5,
    compute_depth: int = 6,
    seed: int = 0,
    name: str = "branchy",
) -> Program:
    """Control-heavy integer work (sjeng/gobmk/exchange2-like).

    A data-dependent branch per loop iteration with ``odd_fraction``
    taken probability drives the misprediction rate; most work is ALU.
    """
    _require_pow2(footprint_words, "footprint_words")
    rng = random.Random(seed)
    builder = CodeBuilder()
    _fill_random_words(builder, DATA_BASE, footprint_words, rng, odd_fraction)
    mask = footprint_words * 8 - 1

    builder.li(1, iterations)
    builder.li(2, 0)
    builder.li(3, 0)
    builder.li(11, DATA_BASE)
    builder.li(4, 2654435761)
    builder.label("loop")
    builder.shli(16, 2, 3)
    builder.andi(16, 16, mask & ~7)
    builder.add(17, 11, 16)
    builder.load(18, 17)
    builder.andi(19, 18, 1)
    builder.beq(19, 0, "even")
    for _ in range(compute_depth):
        builder.mul(3, 3, 4)
        builder.xor(3, 3, 18)
    builder.jmp("join")
    builder.label("even")
    for _ in range(compute_depth):
        builder.add(3, 3, 18)
        builder.shri(20, 3, 7)
        builder.xor(3, 3, 20)
    builder.label("join")
    builder.addi(2, 2, 1)
    builder.blt(2, 1, "loop")
    builder.store(3, 0, disp=8)
    builder.halt()
    return builder.build(name=name)


def stencil_kernel(
    iterations: int = 1 << 20,
    footprint_words: int = 1 << 17,
    points: int = 3,
    compute_per_point: int = 2,
    stride_words: int = 1,
    odd_fraction: float = 0.0,
    dependent_check: bool = False,
    check_period: int = 1,
    seed: int = 0,
    name: str = "stencil",
) -> Program:
    """Multi-stream stencil with stores (GemsFDTD/wrf/milc-like).

    ``points`` strided input streams plus an output store per iteration;
    all addresses are stride-predictable but the footprint typically
    exceeds the L1/L2, making DoM's delayed misses expensive.
    ``dependent_check`` adds a (predictable) branch on a loaded value —
    see :func:`stream_kernel`.
    """
    _require_pow2(footprint_words, "footprint_words")
    rng = random.Random(seed)
    builder = CodeBuilder()
    _fill_random_words(builder, STREAM_BASE, footprint_words, rng, odd_fraction)
    mask = footprint_words * 8 - 1

    builder.li(1, iterations)
    builder.li(2, 0)
    builder.li(3, 0)
    builder.li(10, STREAM_BASE)
    builder.li(13, STORE_BASE)
    builder.label("loop")
    builder.muli(16, 2, stride_words * 8)
    builder.andi(16, 16, mask & ~7)
    builder.add(17, 10, 16)
    for point in range(points):
        builder.load(18 + point, 17, disp=point * 64)
        for _ in range(compute_per_point):
            builder.add(3, 3, 18 + point)
    if dependent_check:
        _emit_dependent_check(builder, value_reg=18, check_period=check_period)
    builder.add(21, 13, 16)
    builder.store(3, 21)
    builder.addi(2, 2, 1)
    builder.blt(2, 1, "loop")
    builder.store(3, 0, disp=8)
    builder.halt()
    return builder.build(name=name)


def hash_probe_kernel(
    iterations: int = 1 << 20,
    table_words: int = 1 << 16,
    key_words: int = 1 << 12,
    broken_stride_period: int = 0,
    odd_fraction: float = 0.3,
    value_branch: bool = False,
    seed: int = 0,
    name: str = "hash_probe",
) -> Program:
    """Hash-table probing (xalancbmk/perlbench-like).

    Keys are read sequentially; each key hashes (multiplicatively) into a
    table probe — an address that *looks* locally regular to a stride
    predictor but breaks constantly, producing high prediction confidence
    with low accuracy when ``broken_stride_period`` > 0 (keys arranged so
    probes stride for a few accesses, then jump).
    """
    _require_pow2(table_words, "table_words")
    _require_pow2(key_words, "key_words")
    rng = random.Random(seed)
    builder = CodeBuilder()
    table_mask = table_words * 8 - 1
    # Key array: either random keys, or keys crafted so that consecutive
    # probe addresses stride for `period` accesses then break.
    probe = 0
    for i in range(key_words):
        if broken_stride_period:
            if i % broken_stride_period == broken_stride_period - 1:
                probe = rng.randrange(table_words)
            else:
                probe = (probe + 1) % table_words
            key = probe * 8
        else:
            key = rng.randrange(table_words) * 8
        builder.set_memory(INDEX_BASE + 8 * i, key)
    _fill_random_words(builder, DATA_BASE, table_words, rng, odd_fraction)
    key_mask = key_words * 8 - 1

    builder.li(1, iterations)
    builder.li(2, 0)
    builder.li(3, 0)
    builder.li(10, INDEX_BASE)
    builder.li(11, DATA_BASE)
    builder.label("loop")
    builder.shli(16, 2, 3)
    builder.andi(16, 16, key_mask & ~7)
    builder.add(17, 10, 16)
    builder.load(18, 17)              # key / precomputed probe offset
    builder.andi(19, 18, table_mask & ~7)
    builder.add(20, 11, 19)
    builder.load(21, 20)              # table probe — dependent load
    if value_branch:
        builder.andi(22, 21, 1)
        builder.beq(22, 0, "miss")
        builder.add(3, 3, 21)
        builder.label("miss")
    else:
        builder.add(3, 3, 21)
    builder.addi(2, 2, 1)
    builder.blt(2, 1, "loop")
    builder.store(3, 0, disp=8)
    builder.halt()
    return builder.build(name=name)


def scatter_kernel(
    iterations: int = 1 << 20,
    index_words: int = 1 << 12,
    table_words: int = 1 << 14,
    index_regularity: float = 0.7,
    compute_per_store: int = 2,
    readback: bool = True,
    seed: int = 0,
    name: str = "scatter",
) -> Program:
    """Indexed scatter ``A[B[i]] = f(i)`` — the store-address shadow.

    A store whose address depends on a loaded index resolves late, casting
    an M-shadow (unresolved store address) over every younger instruction:
    younger loads may alias it, so the shadow tracker must keep them
    speculative.  This is the second shadow source the paper's schemes
    track (§5: "unresolved store addresses") and the one the other
    kernels barely exercise.  It also produces memory-order violations
    when a younger load reads a just-scattered word.
    """
    _require_pow2(index_words, "index_words")
    _require_pow2(table_words, "table_words")
    rng = random.Random(seed)
    builder = CodeBuilder()
    regular_step = 0
    for i in range(index_words):
        if rng.random() < index_regularity:
            offset = (regular_step * 8) % (table_words * 8)
            regular_step += 1
        else:
            offset = rng.randrange(table_words) * 8
        builder.set_memory(INDEX_BASE + 8 * i, offset)
    _fill_random_words(builder, DATA_BASE, table_words, rng, 0.0)
    index_mask = index_words * 8 - 1

    builder.li(1, iterations)
    builder.li(2, 0)
    builder.li(3, 0)
    builder.li(10, INDEX_BASE)
    builder.li(11, DATA_BASE)
    builder.label("loop")
    builder.shli(16, 2, 3)
    builder.andi(16, 16, index_mask & ~7)
    builder.add(17, 10, 16)
    builder.load(18, 17)              # B[i] — the store's address source
    builder.add(19, 11, 18)
    for _ in range(compute_per_store):
        builder.add(3, 3, 2)
    builder.store(3, 19)              # A[B[i]] = acc — late-resolving address
    if readback:
        builder.load(20, 19)          # read-back: forwarding / violation prey
        builder.add(3, 3, 20)
    builder.addi(2, 2, 1)
    builder.blt(2, 1, "loop")
    builder.store(3, 0, disp=8)
    builder.halt()
    return builder.build(name=name)


KERNELS = {
    "stream": stream_kernel,
    "gather": gather_kernel,
    "pointer_chase": pointer_chase_kernel,
    "branchy": branchy_kernel,
    "stencil": stencil_kernel,
    "hash_probe": hash_probe_kernel,
    "scatter": scatter_kernel,
}


def build_kernel(kind: str, **params: object) -> Program:
    """Build a kernel by name with keyword parameters."""
    if kind not in KERNELS:
        raise ConfigError(f"unknown kernel {kind!r}; expected one of {sorted(KERNELS)}")
    return KERNELS[kind](**params)  # type: ignore[arg-type]
