"""A stride-based load *value* predictor (for the DoM+VP comparison).

The original Delay-on-Miss paper [40] coupled its delayed misses with
value prediction; our paper's §2.3/§8 argue this was the wrong tool —
values are less regular than addresses, and mispredicted values must be
squashed after validation, unlike doppelganger mispredictions which cost
nothing.  This module provides the predictor needed to run that
comparison (see ``repro.schemes.dom_vp`` and the extension bench).

Same structure as the stride address table: PC-indexed, full-PC-tagged,
commit-trained (value predictors must also never observe speculative
data — the same security argument applies).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.common.config import PredictorConfig

_MASK64 = (1 << 64) - 1


@dataclass
class ValueEntry:
    """One table entry: full PC tag plus last value and value stride."""

    pc: int
    last_value: int
    stride: int = 0
    confidence: int = 0
    last_used: int = 0


class ValuePredictor:
    """Set-associative last-value/stride value predictor."""

    def __init__(self, config: PredictorConfig):
        self.config = config
        self.num_sets = config.num_sets
        self.ways = config.ways
        self._sets: List[List[Optional[ValueEntry]]] = [
            [None] * self.ways for _ in range(self.num_sets)
        ]
        self._clock = 0
        self.trainings = 0
        self.predictions_made = 0

    def _set_for(self, pc: int) -> List[Optional[ValueEntry]]:
        return self._sets[pc % self.num_sets]

    def _find(self, pc: int) -> Optional[ValueEntry]:
        for entry in self._set_for(pc):
            if entry is not None and entry.pc == pc:
                return entry
        return None

    def train_commit(self, pc: int, value: int) -> None:
        """Observe a committed load's (pc, value) pair — commit only."""
        self._clock += 1
        self.trainings += 1
        entry = self._find(pc)
        if entry is None:
            self._allocate(pc, value)
            return
        entry.last_used = self._clock
        observed = (value - entry.last_value) & _MASK64
        if observed == entry.stride:
            if entry.confidence < self.config.max_confidence:
                entry.confidence += 1
        else:
            if entry.confidence > 0:
                entry.confidence -= 1
            else:
                entry.stride = observed
        entry.last_value = value

    def _allocate(self, pc: int, value: int) -> None:
        ways = self._set_for(pc)
        victim = None
        for index, entry in enumerate(ways):
            if entry is None:
                victim = index
                break
        if victim is None:
            victim = min(range(self.ways), key=lambda i: ways[i].last_used)
        ways[victim] = ValueEntry(pc=pc, last_value=value, last_used=self._clock)

    def predict_current(self, pc: int) -> Optional[int]:
        """Predicted value of the current instance, or None."""
        entry = self._find(pc)
        if entry is None or entry.confidence < self.config.confidence_threshold:
            return None
        self.predictions_made += 1
        return (entry.last_value + entry.stride) & _MASK64

    def entry_for(self, pc: int) -> Optional[ValueEntry]:
        return self._find(pc)
