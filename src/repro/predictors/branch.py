"""Branch direction prediction: gshare with a global history register.

The core snapshots the history register into each branch micro-op at fetch
and restores it on a squash, so wrong-path history never corrupts the
predictor permanently.  Counter training happens only at commit — this
matches the secure schemes' requirement that speculative (potentially
tainted) outcomes never reach a predictor (STT, paper §2.2), and we apply
it uniformly to every scheme for comparability.
"""

from __future__ import annotations

from typing import List

from repro.common.config import BranchPredictorConfig


class GShareBranchPredictor:
    """gshare: PC xor global-history indexes a table of 2-bit counters."""

    def __init__(self, config: BranchPredictorConfig):
        self.config = config
        self._mask = config.table_entries - 1
        self._history_mask = (1 << config.history_bits) - 1
        self._counters: List[int] = [1] * config.table_entries  # weakly not-taken
        self.history = 0
        self.predictions = 0
        self.mispredictions = 0

    def _index(self, pc: int, history: int) -> int:
        return (pc ^ history) & self._mask

    def predict(self, pc: int) -> bool:
        """Predict the direction of the branch at ``pc`` and speculatively
        update the history register (the caller snapshots/restores it)."""
        taken = self._counters[self._index(pc, self.history)] >= 2
        self.predictions += 1
        self.history = ((self.history << 1) | int(taken)) & self._history_mask
        return taken

    def snapshot_history(self) -> int:
        return self.history

    def restore_history(self, snapshot: int, actual_taken: bool) -> None:
        """Roll history back to the snapshot and append the real outcome."""
        self.history = ((snapshot << 1) | int(actual_taken)) & self._history_mask

    def train(self, pc: int, taken: bool, history_at_predict: int) -> None:
        """Commit-time training with the history that indexed the prediction."""
        index = self._index(pc, history_at_predict)
        counter = self._counters[index]
        if taken:
            if counter < 3:
                self._counters[index] = counter + 1
        else:
            if counter > 0:
                self._counters[index] = counter - 1

    def record_mispredict(self) -> None:
        self.mispredictions += 1

    @property
    def accuracy(self) -> float:
        if self.predictions == 0:
            return 0.0
        return 1.0 - self.mispredictions / self.predictions
