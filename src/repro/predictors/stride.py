"""The shared PC-based stride structure (paper §5.1).

One 1024-entry, 8-way, *full-PC-tagged* table serves two modes:

* **Prefetching mode** — given the resolved address of the current load
  instance, predict *future* instances (``addr + k * stride``) and prefetch
  them.  Present in every evaluated scheme, secure or not.
* **Address-prediction mode** — predict the address of the *current*
  instance of a load from its history (``last_addr + stride``), producing
  the Doppelganger address at dispatch, long before the load's operands
  are ready.

Security invariant: the table is trained **only at commit** with
architecturally-performed (non-speculative) load addresses.  The table
itself cannot enforce who calls :meth:`train_commit`; the core does, and
``tests/doppelganger`` assert that squashed loads never train it.  Full PC
tags prevent the aliasing channel mentioned in §5.1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.common.config import PredictorConfig


@dataclass
class StrideEntry:
    """One table entry: full PC tag plus stride state."""

    pc: int
    last_address: int
    stride: int = 0
    confidence: int = 0
    last_used: int = 0


class StrideTable:
    """Set-associative stride table with LRU replacement within a set."""

    def __init__(self, config: PredictorConfig):
        self.config = config
        self.num_sets = config.num_sets
        self.ways = config.ways
        self._sets: List[List[Optional[StrideEntry]]] = [
            [None] * self.ways for _ in range(self.num_sets)
        ]
        # Exact pc -> entry index over the live entries.  Full-PC tags
        # make lookups unambiguous, so the set-associative structure only
        # matters for *capacity and replacement*; the dict gives O(1)
        # lookup on the hot predict/train paths while _allocate keeps the
        # two views in sync.
        self._index: Dict[int, StrideEntry] = {}
        self._clock = 0
        self.trainings = 0
        self.predictions_made = 0

    def _set_for(self, pc: int) -> List[Optional[StrideEntry]]:
        return self._sets[pc % self.num_sets]

    def _find(self, pc: int) -> Optional[StrideEntry]:
        return self._index.get(pc)

    # ------------------------------------------------------------------
    # Training (commit only!)
    # ------------------------------------------------------------------
    def train_commit(self, pc: int, address: int) -> None:
        """Observe a committed load's (pc, address) pair.

        Classic stride training: a repeated stride raises confidence, a
        broken stride decays it, and a stride that has fully decayed is
        replaced by the newly observed one.
        """
        self._clock += 1
        self.trainings += 1
        entry = self._find(pc)
        if entry is None:
            self._allocate(pc, address)
            return
        entry.last_used = self._clock
        observed = address - entry.last_address
        if observed == entry.stride:
            if entry.confidence < self.config.max_confidence:
                entry.confidence += 1
        else:
            if entry.confidence > 0:
                entry.confidence -= 1
            else:
                entry.stride = observed
        entry.last_address = address

    def _allocate(self, pc: int, address: int) -> None:
        ways = self._set_for(pc)
        victim = None
        for index, entry in enumerate(ways):
            if entry is None:
                victim = index
                break
        if victim is None:
            victim = min(range(self.ways), key=lambda i: ways[i].last_used)
        evicted = ways[victim]
        if evicted is not None:
            del self._index[evicted.pc]
        entry = StrideEntry(pc=pc, last_address=address, last_used=self._clock)
        ways[victim] = entry
        self._index[pc] = entry

    # ------------------------------------------------------------------
    # Address-prediction mode (Doppelganger Loads)
    # ------------------------------------------------------------------
    def predict_current(self, pc: int) -> Optional[int]:
        """Predict the address of the *current* instance of the load at
        ``pc``, or None when confidence is below threshold / PC unknown."""
        entry = self._find(pc)
        if entry is None or entry.confidence < self.config.confidence_threshold:
            return None
        self.predictions_made += 1
        return (entry.last_address + entry.stride) & ((1 << 64) - 1)

    # ------------------------------------------------------------------
    # Prefetching mode (conventional stride prefetcher)
    # ------------------------------------------------------------------
    def prefetch_candidates(self, pc: int, resolved_address: int) -> List[int]:
        """Future-instance addresses to prefetch after a demand access."""
        entry = self._find(pc)
        if (
            entry is None
            or entry.stride == 0
            or entry.confidence < self.config.confidence_threshold
        ):
            return []
        start = self.config.prefetch_distance
        return [
            (resolved_address + k * entry.stride) & ((1 << 64) - 1)
            for k in range(start, start + self.config.prefetch_degree)
        ]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def entry_for(self, pc: int) -> Optional[StrideEntry]:
        """The live entry for ``pc`` (tests and debugging)."""
        return self._find(pc)

    def occupancy(self) -> int:
        return sum(
            1 for ways in self._sets for entry in ways if entry is not None
        )


@dataclass
class TwoDeltaEntry(StrideEntry):
    """Adds the *unconfirmed* last delta of the two-delta scheme."""

    pending_stride: int = 0


class TwoDeltaStrideTable(StrideTable):
    """A two-delta stride predictor (the paper's 'better predictor'
    future work, §5.1/§9).

    Classic two-delta training: the *predicting* stride only changes when
    the same new delta is observed twice in a row, so a single irregular
    access (a pointer-chase break, a hash-probe jump) does not derail an
    otherwise stable stream.  Still trained exclusively at commit; the
    security argument is unchanged.
    """

    def train_commit(self, pc: int, address: int) -> None:
        self._clock += 1
        self.trainings += 1
        entry = self._find(pc)
        if entry is None:
            self._allocate(pc, address)
            return
        entry.last_used = self._clock
        observed = address - entry.last_address
        if observed == entry.stride:
            if entry.confidence < self.config.max_confidence:
                entry.confidence += 1
        elif observed == entry.pending_stride:
            # The same new delta twice in a row: adopt it.
            entry.stride = observed
            entry.confidence = max(entry.confidence - 1, 1)
        else:
            if entry.confidence > 0:
                entry.confidence -= 1
        # pending_stride always tracks the most recent delta (the "first
        # delta" of the classic two-delta scheme).
        entry.pending_stride = observed
        entry.last_address = address

    def _allocate(self, pc: int, address: int) -> None:
        ways = self._set_for(pc)
        victim = None
        for index, entry in enumerate(ways):
            if entry is None:
                victim = index
                break
        if victim is None:
            victim = min(range(self.ways), key=lambda i: ways[i].last_used)
        evicted = ways[victim]
        if evicted is not None:
            del self._index[evicted.pc]
        entry = TwoDeltaEntry(
            pc=pc, last_address=address, last_used=self._clock
        )
        ways[victim] = entry
        self._index[pc] = entry


def make_stride_table(config: PredictorConfig) -> StrideTable:
    """Build the address-prediction table selected by the configuration."""
    if config.kind == "two_delta":
        return TwoDeltaStrideTable(config)
    return StrideTable(config)
