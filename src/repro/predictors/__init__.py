"""Predictors: branch direction and the shared stride table."""

from repro.predictors.branch import GShareBranchPredictor
from repro.predictors.stride import (
    StrideEntry,
    StrideTable,
    TwoDeltaEntry,
    TwoDeltaStrideTable,
    make_stride_table,
)
from repro.predictors.value import ValueEntry, ValuePredictor

__all__ = [
    "GShareBranchPredictor",
    "StrideEntry",
    "StrideTable",
    "TwoDeltaEntry",
    "TwoDeltaStrideTable",
    "ValueEntry",
    "ValuePredictor",
    "make_stride_table",
]
