"""Pipeline tracing and rendering utilities."""

from repro.trace.tracer import PipelineTracer, TraceRecord

__all__ = ["PipelineTracer", "TraceRecord"]
