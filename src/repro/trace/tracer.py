"""Cycle-level pipeline tracing.

Attach a :class:`PipelineTracer` to a core (``core.tracer = tracer``) and
it records every micro-op's lifecycle — dispatch, issue, completion,
commit or squash — into a bounded ring buffer, then renders Konata-style
per-instruction timelines or a flat event log.  Used for debugging the
simulator, for teaching (watching NDA hold a value back, or a
doppelganger release early), and by the ``trace`` CLI subcommand.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional

from repro.common.errors import ConfigError
from repro.pipeline.uop import MicroOp


@dataclass
class TraceRecord:
    """Lifecycle timestamps of one dynamic instruction."""

    seq: int
    pc: int
    text: str
    is_load: bool
    dispatch_cycle: int = -1
    issue_cycle: int = -1
    complete_cycle: int = -1
    commit_cycle: int = -1
    squash_cycle: int = -1
    dl_predicted: bool = False
    dl_correct: bool = False

    @property
    def fate(self) -> str:
        if self.commit_cycle >= 0:
            return "committed"
        if self.squash_cycle >= 0:
            return "squashed"
        return "in-flight"

    def lifetime(self) -> Optional[int]:
        """Dispatch-to-retire duration, when the instruction retired."""
        end = self.commit_cycle if self.commit_cycle >= 0 else self.squash_cycle
        if end < 0 or self.dispatch_cycle < 0:
            return None
        return end - self.dispatch_cycle


class PipelineTracer:
    """Bounded-capacity recorder of micro-op lifecycles."""

    def __init__(self, capacity: int = 10_000):
        if capacity < 1:
            raise ConfigError("capacity must be positive")
        self.capacity = capacity
        self._records: "OrderedDict[int, TraceRecord]" = OrderedDict()
        self.dropped = 0

    # ------------------------------------------------------------------
    # Hooks called by the core
    # ------------------------------------------------------------------
    def on_dispatch(self, uop: MicroOp, cycle: int) -> None:
        record = TraceRecord(
            seq=uop.seq,
            pc=uop.pc,
            text=uop.inst.disassemble(),
            is_load=uop.inst.is_load,
            dispatch_cycle=cycle,
        )
        self._records[uop.seq] = record
        if len(self._records) > self.capacity:
            self._records.popitem(last=False)
            self.dropped += 1

    def _get(self, uop: MicroOp) -> Optional[TraceRecord]:
        return self._records.get(uop.seq)

    def on_issue(self, uop: MicroOp, cycle: int) -> None:
        record = self._get(uop)
        if record is not None:
            record.issue_cycle = cycle

    def on_complete(self, uop: MicroOp, cycle: int) -> None:
        record = self._get(uop)
        if record is not None:
            record.complete_cycle = cycle
            if uop.inst.is_load:
                record.dl_predicted = uop.dl_issued
                record.dl_correct = uop.dl_correct

    def on_commit(self, uop: MicroOp, cycle: int) -> None:
        record = self._get(uop)
        if record is not None:
            record.commit_cycle = cycle

    def on_squash(self, uop: MicroOp, cycle: int) -> None:
        record = self._get(uop)
        if record is not None:
            record.squash_cycle = cycle

    # ------------------------------------------------------------------
    # Queries and rendering
    # ------------------------------------------------------------------
    def records(self) -> List[TraceRecord]:
        """All retained records in dispatch order."""
        return list(self._records.values())

    def committed(self) -> List[TraceRecord]:
        return [r for r in self._records.values() if r.fate == "committed"]

    def squashed(self) -> List[TraceRecord]:
        return [r for r in self._records.values() if r.fate == "squashed"]

    def loads(self) -> List[TraceRecord]:
        return [r for r in self._records.values() if r.is_load]

    def render_timeline(
        self, first: int = 0, count: int = 40, width: int = 64
    ) -> str:
        """A per-instruction timeline chart.

        ``D`` dispatch, ``I`` issue, ``C`` complete, ``R`` retire (commit),
        ``X`` squash; dashes span the in-flight interval.
        """
        rows = self.records()[first : first + count]
        if not rows:
            return "(no trace records)"
        start = min(r.dispatch_cycle for r in rows)
        lines = [f"cycles from {start}; D=dispatch I=issue C=complete R=commit X=squash"]
        for record in rows:
            marks = {}

            def put(cycle: int, char: str) -> None:
                if cycle >= 0:
                    column = cycle - start
                    if 0 <= column < width:
                        marks[column] = char

            put(record.dispatch_cycle, "D")
            put(record.issue_cycle, "I")
            put(record.complete_cycle, "C")
            put(record.commit_cycle, "R")
            put(record.squash_cycle, "X")
            end_cycle = max(
                record.commit_cycle, record.squash_cycle, record.complete_cycle,
                record.issue_cycle, record.dispatch_cycle,
            )
            span_end = min(end_cycle - start, width - 1)
            chars = []
            for column in range(width):
                if column in marks:
                    chars.append(marks[column])
                elif record.dispatch_cycle - start < column <= span_end:
                    chars.append("-")
                else:
                    chars.append(" ")
            tag = "*" if record.dl_predicted else " "
            lines.append(
                f"{record.seq:>6} {record.text[:26]:<26}{tag}|{''.join(chars)}|"
            )
        if self.dropped:
            lines.append(f"({self.dropped} older records dropped)")
        return "\n".join(lines)

    def render_summary(self) -> str:
        """Aggregate digest of the retained window."""
        records = self.records()
        committed = self.committed()
        squashed = self.squashed()
        lines = [
            f"traced: {len(records)} uops "
            f"({len(committed)} committed, {len(squashed)} squashed, "
            f"{self.dropped} dropped)",
        ]
        lifetimes = [r.lifetime() for r in committed if r.lifetime() is not None]
        if lifetimes:
            lines.append(
                f"commit latency: min={min(lifetimes)} "
                f"avg={sum(lifetimes) / len(lifetimes):.1f} max={max(lifetimes)}"
            )
        predicted = [r for r in self.loads() if r.dl_predicted]
        if predicted:
            correct = sum(1 for r in predicted if r.dl_correct)
            lines.append(
                f"doppelganger loads in window: {len(predicted)} "
                f"({correct} verified correct)"
            )
        return "\n".join(lines)
