"""The out-of-order core.

An execution-driven model: instructions are really executed — including
wrong-path (transient) instructions, which are later squashed — so both the
performance effects (MLP/ILP limits of the secure schemes) and the security
arguments of the paper can be observed directly.

The implementation is event-driven rather than scan-driven: instructions
park on exactly the event that will un-block them, so per-cycle cost is
proportional to *activity*, not window size:

* **operand wakeup** — a consumer with unready sources registers on its
  producers and is pushed into the ready heap when the last one becomes
  readable (scoreboard style);
* **frontier waits** — every scheme restriction in the paper reduces to
  "wait until the shadow frontier reaches sequence number K" (NDA-P's
  propagation lock, STT's transmitter delays, DoM's delayed misses,
  DoM+AP's in-order branch resolution, the DoM doppelganger release).
  Blocked instructions sit in a frontier-ordered heap and wake exactly
  when the frontier passes their key;
* **timed events** — ALU/memory completions, address generation, branch
  resolution, and doppelganger releases fire from a time-ordered heap;
* **idle skipping** — when nothing can issue, dispatch, or commit, the
  clock jumps to the next timed event (memory-bound phases cost ~0).

Cycle phases (oldest pipeline stage first): writeback → frontier wakeups →
commit → issue → memory ports (real loads, then doppelgangers, then
prefetches) → dispatch/fetch.
"""

from __future__ import annotations

import gc
import heapq
from collections import deque
from heapq import heappop, heappush
from typing import Deque, Dict, List, Optional, Tuple

from repro.common.config import SystemConfig, default_config
from repro.common.errors import SimulationLimitError
from repro.common.stats import SimStats
from repro.doppelganger.engine import DoppelgangerEngine
from repro.isa.instructions import (
    KIND_ALU,
    KIND_CBRANCH,
    KIND_HALT,
    KIND_JMP,
    KIND_LOAD,
    KIND_NOP,
    KIND_STORE,
)
from repro.isa.program import Program
from repro.memory.hierarchy import MemoryHierarchy
from repro.pipeline.decode import decode_program
from repro.pipeline.hooks import build_guardrails
from repro.pipeline.shadows import ShadowTracker
from repro.pipeline.uop import NO_FORWARD, UNTAINTED, MicroOp, UopState
from repro.predictors.branch import GShareBranchPredictor
from repro.predictors.stride import make_stride_table
from repro.schemes.base import READY, SecureScheme

# Timed-event kinds.
_EV_ALU = 0
_EV_BRANCH = 1
_EV_AGU_LOAD = 2
_EV_AGU_STORE = 3
_EV_MEM = 4
_EV_DL = 5
_EV_VP_VALIDATE = 6

# Frontier-waiter reasons.
_W_UNLOCK = 0   # a completed-but-locked producer becomes readable
_W_REREADY = 1  # a gate-blocked IQ entry goes back to the ready heap
_W_MEM = 2      # a gate-blocked load goes back to the memory queue
_W_DL = 3       # a DoM doppelganger miss releases at its visibility point
_W_BRANCH = 4   # a branch with a deferred resolution (STT taint, DoM+AP
                # in-order rule) resolves once the frontier reaches its key

# Producer-waiter kinds.
_K_ISSUE = 0
_K_STORE_DATA = 1

_FORWARD_LATENCY = 2
"""Cycles for a store-buffer forward to deliver data."""

# Plain-int UopState values (see repro.pipeline.uop.STATE_*): hot paths
# compare against literals; 2=COMPLETED, 3=COMMITTED, 4=SQUASHED.


class Core:
    """One out-of-order core running one program under one scheme."""

    def __init__(
        self,
        program: Program,
        scheme: SecureScheme,
        config: Optional[SystemConfig] = None,
        stats: Optional[SimStats] = None,
        hierarchy: Optional[MemoryHierarchy] = None,
        idle_skip: bool = True,
    ):
        self.program = program
        self._idle_skip = idle_skip
        self.config = config if config is not None else default_config()
        self.stats = stats if stats is not None else SimStats()
        self.arch = program.initial_state()
        self.hierarchy = (
            hierarchy
            if hierarchy is not None
            else MemoryHierarchy(self.config.memory, self.stats)
        )
        self.hierarchy.stats = self.stats
        self.bpred = GShareBranchPredictor(self.config.branch)
        self.stride = make_stride_table(self.config.predictor)
        self.shadows = ShadowTracker()
        self.scheme = scheme
        scheme.attach(self)
        self.engine: Optional[DoppelgangerEngine] = (
            DoppelgangerEngine(self) if scheme.address_prediction else None
        )
        if scheme.uses_value_prediction:
            from repro.predictors.value import ValuePredictor

            self.value_pred: Optional["ValuePredictor"] = ValuePredictor(
                self.config.predictor
            )
        else:
            self.value_pred = None

        self.rob: Deque[MicroOp] = deque()
        self.lq: Deque[MicroOp] = deque()
        self.sq: Deque[MicroOp] = deque()
        self.rename: Dict[int, MicroOp] = {}
        self.iq_count = 0

        self._ready: List[Tuple[int, MicroOp]] = []
        self._mem_queue: List[Tuple[int, MicroOp]] = []
        # Loads bounced by a structural hazard, split by what wakes them:
        # MSHR exhaustion retries only once an entry frees (the wake time is
        # computable from the MSHR file), while a forward-blocked load waits
        # on its store's data — a same-step producer event.
        self._mem_retry: List[MicroOp] = []
        self._forward_retry: List[MicroOp] = []
        # Calendar queue of timed events: cycle -> [(kind, uop), ...] in
        # schedule order, plus a min-heap holding each live bucket's cycle
        # once.  Scheduling is a dict probe + list append instead of a
        # heap sift; same-cycle events drain in insertion order, exactly
        # the ordering the old (when, counter, kind, uop) heap's counter
        # tie-break produced.  Handlers only ever schedule into the
        # future (latency >= 1), so a bucket never grows while draining.
        self._events: Dict[int, List[Tuple[int, MicroOp]]] = {}
        self._event_cycles: List[int] = []
        self._event_counter = 0
        self._frontier_waiters: List[Tuple[int, int, int, MicroOp]] = []
        self._prefetch_queue: Deque[int] = deque()

        # Word-granular LSQ indexes: word address -> address-resolved,
        # uncommitted entries (AGU-completion order).  Forwarding,
        # violation checks, and value binding consult these instead of
        # scanning the whole queue; squashed entries are dropped lazily.
        self._sq_index: Dict[int, List[MicroOp]] = {}
        self._lq_index: Dict[int, List[MicroOp]] = {}

        self.tracer = None
        self.cycle = 0
        self.next_seq = 0
        self.fetch_pc = 0
        self.fetch_stalled_until = 0
        self.fetch_halted = False
        self.halted = False
        self._last_commit_cycle = 0
        # Step bookkeeping: the watchdog counts *steps* since the last
        # commit (cycle deltas would misread an idle-skip jump over a long
        # miss as starvation), and run() needs the cycle of the last step
        # actually executed to report a budget-break cycle count that does
        # not depend on how far the trailing jump overshot.
        self._step_count = 0
        self._last_commit_step = 0
        self._last_step_cycle = 0

        # Hot-path config, hoisted once: step() and its phases run millions
        # of times and the frozen-dataclass attribute chain is measurable.
        core_cfg = self.config.core
        self._decode_width = core_cfg.decode_width
        self._issue_width = core_cfg.issue_width
        self._commit_width = core_cfg.commit_width
        self._load_ports = core_cfg.load_ports
        self._store_ports = core_cfg.store_ports
        self._rob_entries = core_cfg.rob_entries
        self._iq_entries = core_cfg.iq_entries
        self._lq_entries = core_cfg.lq_entries
        self._sq_entries = core_cfg.sq_entries
        self._alu_latency = core_cfg.alu_latency
        self._mul_latency = core_cfg.mul_latency
        self._branch_resolve_latency = core_cfg.branch_resolve_latency
        self._branch_resolution_delay = core_cfg.branch_resolution_delay
        self._mispredict_penalty = core_cfg.mispredict_penalty
        self._l1_latency = self.config.memory.l1.latency
        self._prefetch_enabled = self.config.prefetch_enabled
        self._train_on_execute = self.config.predictor.train_on_execute

        # Scheme fast-path flags, hoisted: a False flag means the hook is
        # the base no-op and the call site is skipped entirely.
        self._gates_values = scheme.gates_values
        self._gates_loads = scheme.gates_loads
        self._gates_stores = scheme.gates_stores
        self._gates_branches = scheme.gates_branches
        self._uses_probe = scheme.uses_probe
        self._uses_taint = scheme.uses_taint

        # Per-program decode table, shared across cores/windows/runs via
        # the process-local cache in repro.pipeline.decode.
        self._decoded = decode_program(program, self.config)
        self._dec_entries = self._decoded.entries
        self._dec_len = self._decoded.length

        # Writeback dispatch table, indexed by _EV_* kind.
        self._ev_handlers = (
            self._complete,                  # _EV_ALU
            self._resolve_branch,            # _EV_BRANCH
            self._finish_load_agu,           # _EV_AGU_LOAD
            self._finish_store_agu,          # _EV_AGU_STORE
            self._complete,                  # _EV_MEM
            self._release_doppelganger,      # _EV_DL
            self._validate_value_prediction, # _EV_VP_VALIDATE
        )

        # Guardrails are attached through the provider registry
        # (repro.pipeline.hooks) so the core never imports the observer
        # package.  The watchdog is always armed when a provider is
        # registered (one compare per run iteration); the invariant
        # checker exists only when enabled so --guardrails off costs a
        # single attribute test per cycle.
        interval = self.config.guardrails.effective_interval
        self.invariant_checker, self.watchdog = build_guardrails(self)
        self._check_interval = interval
        self._check_countdown = interval

        # The unsafe baseline never consults the shadow frontier, so the
        # tracker bookkeeping (caster add/resolve/squash) can be skipped
        # wholesale — unless something else reads it: the invariant
        # checker cross-validates the tracker against the ROB, and the
        # doppelganger engine's release rule waits on the frontier.
        self._track_shadows = (
            scheme.needs_shadows
            or scheme.address_prediction
            or self.invariant_checker is not None
        )

    # ==================================================================
    # Public API
    # ==================================================================
    def run(self, max_instructions: Optional[int] = None) -> SimStats:
        """Simulate until the program halts (or the budget is reached).

        In event-driven mode the per-step scheduling logic of
        :meth:`step` is inlined here with the hot structures bound to
        locals — a step is executed millions of times and the repeated
        ``self.X`` lookups are a measurable fraction of total wall time.
        The inlined body and :meth:`step` must stay semantically
        identical; the reference loop (``idle_skip=False``) and the
        differential suites pin that equivalence.
        """
        limit = self.config.max_cycles
        watchdog = self.watchdog
        window = watchdog.window if watchdog is not None else 0
        stats = self.stats
        # Suspend the cyclic GC for the duration of the loop: a run
        # allocates one MicroOp (plus event tuples) per fetched
        # instruction, which drives generation-0 collections at a rate
        # that costs several percent of wall time.  The uop graph does
        # contain cycles (producer.waiters <-> consumer.src1_uop), so
        # collection is re-enabled afterwards and the deferred work
        # happens at the normal thresholds outside the hot loop.
        # Purely a wall-clock optimization: GC timing cannot affect
        # SimStats, so both idle_skip modes remain bit-identical.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            if not self._idle_skip:
                while not self.halted:
                    if max_instructions is not None and (
                        stats.committed_instructions >= max_instructions
                    ):
                        break
                    if self.cycle >= limit:
                        raise SimulationLimitError(
                            f"{self.program.name}: exceeded {limit} cycles"
                        )
                    if (
                        watchdog is not None
                        and self._step_count - self._last_commit_step > window
                    ):
                        watchdog.trip(self)
                    self.step()
            else:
                self._run_event_loop(max_instructions, limit, watchdog, window)
        finally:
            if gc_was_enabled:
                gc.enable()
        if self.halted:
            stats.cycles = self.cycle
        else:
            # Budget break: the trailing _next_cycle may already have
            # jumped the clock deep into an idle stretch nothing will
            # observe.  Report the cycle after the last step that actually
            # ran, which is what a non-skipping loop would read — so the
            # count is independent of idle skipping.
            stats.cycles = self._last_step_cycle + 1
        return stats

    # repro: hot
    def _run_event_loop(
        self,
        max_instructions: Optional[int],
        limit: int,
        watchdog,
        window: int,
    ) -> None:
        """The event-driven scheduler loop (idle_skip=True), inlined.

        One iteration == one :meth:`step` preceded by the budget, cycle-
        limit, and watchdog checks of :meth:`run` — the same order as the
        reference path, so both modes trip limits at identical points.
        """
        stats = self.stats
        event_cycles = self._event_cycles
        waiters = self._frontier_waiters
        ready = self._ready
        rob = self.rob
        mem_queue = self._mem_queue
        mem_retry = self._mem_retry
        forward_retry = self._forward_retry
        prefetch_queue = self._prefetch_queue
        engine = self.engine
        checker = self.invariant_checker
        load_ports = self._load_ports
        # Bound late so profiling wrappers installed on the class are
        # picked up (they wrap the class attribute, not this loop).
        writeback = self._writeback
        process_frontier = self._process_frontier
        commit = self._commit
        issue = self._issue
        schedule_memory = self._schedule_memory
        issue_prefetches = self._issue_prefetches
        dispatch = self._dispatch
        next_cycle = self._next_cycle
        # Budget as a plain int so the per-step check is one comparison.
        budget = max_instructions if max_instructions is not None else -1
        while not self.halted:
            if budget >= 0 and stats.committed_instructions >= budget:
                return
            now = self.cycle
            if now >= limit:
                raise SimulationLimitError(
                    f"{self.program.name}: exceeded {limit} cycles"
                )
            step_count = self._step_count
            if watchdog is not None and (
                step_count - self._last_commit_step > window
            ):
                watchdog.trip(self)
            self._step_count = step_count + 1
            self._last_step_cycle = now
            if event_cycles and event_cycles[0] <= now:
                writeback(now)
            if waiters:
                process_frontier(now)
            if rob:
                state = rob[0].state
                if state == 2 or state == 3:
                    commit(now)
                    if self.halted:
                        return
            if ready:
                issue(now)
            ports = load_ports
            if mem_queue or mem_retry or forward_retry:
                ports = schedule_memory(now, ports)
            if engine is not None and engine.has_candidates():
                ports = engine.issue_spare(ports, now)
            if prefetch_queue and ports > 0:
                issue_prefetches(now, ports)
            if not self.fetch_halted and now >= self.fetch_stalled_until:
                dispatch(now)
            # Fast path: these queues are exactly _next_cycle's first
            # wake-source guard — when any is non-empty the next step is
            # provably at now + 1, so skip the call.
            if ready or mem_queue or forward_retry or prefetch_queue:
                nxt = now + 1
            else:
                nxt = next_cycle(now)
            if checker is not None:
                self._check_countdown -= nxt - now
                if self._check_countdown <= 0:
                    self._check_countdown = self._check_interval
                    checker.check()
            self.cycle = nxt

    def step(self) -> None:
        """Advance the core by one cycle (or skip an idle stretch).

        In event-driven mode (``idle_skip=True``, the default) each phase
        runs behind a cheap activity guard — an idle phase costs one truth
        test — and the clock jumps over provably idle stretches.  With
        ``idle_skip=False`` the core becomes the per-cycle reference loop
        (every phase visited every cycle, clock always +1): every phase is
        a no-op when its queues are empty, so the guards are purely an
        optimization, and the reference mode pins that claim — both modes
        must produce bit-identical :class:`SimStats`.
        """
        now = self.cycle
        self._step_count += 1
        self._last_step_cycle = now
        if self._idle_skip:
            cycles = self._event_cycles
            if cycles and cycles[0] <= now:
                self._writeback(now)
            if self._frontier_waiters:
                self._process_frontier(now)
            if self.rob and self.rob[0].completed:
                self._commit(now)
                if self.halted:
                    return
            if self._ready:
                self._issue(now)
            ports = self._load_ports
            if self._mem_queue or self._mem_retry or self._forward_retry:
                ports = self._schedule_memory(now, ports)
            engine = self.engine
            if engine is not None and engine.has_candidates():
                ports = engine.issue_spare(ports, now)
            if self._prefetch_queue and ports > 0:
                self._issue_prefetches(now, ports)
            if not self.fetch_halted and now >= self.fetch_stalled_until:
                self._dispatch(now)
        else:
            self._writeback(now)
            self._process_frontier(now)
            self._commit(now)
            if self.halted:
                return
            self._issue(now)
            ports = self._schedule_memory(now, self._load_ports)
            if self.engine is not None:
                ports = self.engine.issue_spare(ports, now)
            self._issue_prefetches(now, ports)
            self._dispatch(now)
        nxt = self._next_cycle(now)
        if self.invariant_checker is not None:
            # Cycle-accurate cadence: the countdown burns *simulated
            # cycles*, so idle-skip jumps cannot silently stretch the check
            # interval.  One sweep covers a whole jumped stretch — machine
            # state cannot change while no step runs.
            self._check_countdown -= nxt - now
            if self._check_countdown <= 0:
                self._check_countdown = self._check_interval
                self.invariant_checker.check()
        self.cycle = nxt

    def _next_cycle(self, now: int) -> int:
        """``now + 1``, or a jump to the next timed event when idle.

        Equivalence contract (pinned by tests/pipeline/test_idle_skip.py):
        a skip is legal only when *no* phase could do work at the skipped
        cycles, so a core with ``idle_skip=False`` must produce bit-
        identical :class:`SimStats`.  Every wake source therefore appears
        here: the ready heap, the memory queues, structural-hazard retries
        (MSHR wakeups are computed from the MSHR file), prefetch timers,
        doppelganger candidates, *eligible* frontier waiters (a resolution
        cascade pipelines one step at a time), the timed-event heap, and
        the fetch-stall timer.
        """
        if not self._idle_skip:
            return now + 1
        if (
            self._ready
            or self._mem_queue
            or self._forward_retry
            or self._prefetch_queue
            or (self.engine is not None and self.engine.has_candidates())
        ):
            return now + 1
        waiters = self._frontier_waiters
        if waiters and waiters[0][0] <= self.shadows.frontier():
            # A frontier-resolution cascade (e.g. DoM+AP in-order branch
            # resolution) unlocks at most one layer per step; an already-
            # eligible waiter means next step has work at now + 1.
            return now + 1
        if self.rob and self.rob[0].completed:
            return now + 1
        if not self._dispatch_blocked(now):
            return now + 1
        candidates = []
        if self._event_cycles:
            candidates.append(self._event_cycles[0])
        if self._mem_retry:
            wake = self.hierarchy.mshrs.next_free(now)
            if wake is None:
                return now + 1  # an entry is already free; retry next cycle
            candidates.append(wake)
        if not self.fetch_halted and self.fetch_stalled_until > now:
            candidates.append(self.fetch_stalled_until)
        if not candidates:
            return now + 1
        return max(now + 1, min(candidates))

    def _dispatch_blocked(self, now: int) -> bool:
        if self.fetch_halted or now + 1 < self.fetch_stalled_until:
            return True
        return (
            len(self.rob) >= self._rob_entries
            or self.iq_count >= self._iq_entries
        )

    def inject_invalidation(self, address: int) -> None:
        """Model an external coherence invalidation reaching this core.

        The line is invalidated in the caches and the load queue is
        snooped: executed out-of-order loads with a matching address are
        squashed (memory-consistency repair); doppelganger predicted
        addresses are noted and handled at release (paper §4.5).
        """
        line = self.hierarchy.line_address(address)
        self.hierarchy.invalidate(address)
        violator: Optional[MicroOp] = None
        for load in self.lq:
            if load.squashed:
                continue
            if self.engine is not None and self.engine.on_invalidation(load, line):
                self.stats.lq_invalidation_matches += 1
            if (
                load.result is not None
                and load.address_ready
                and self.hierarchy.line_address(load.address) == line
                and self._has_incomplete_older_load(load)
            ):
                self.stats.lq_invalidation_matches += 1
                if violator is None:
                    violator = load
        if violator is not None:
            self._squash_from(violator.seq - 1, violator.pc, violator.bp_history)

    # ==================================================================
    # Phase 1: writeback (timed events)
    # ==================================================================
    # repro: hot
    def _writeback(self, now: int) -> None:
        cycles = self._event_cycles
        buckets = self._events
        handlers = self._ev_handlers
        while cycles and cycles[0] <= now:
            bucket = buckets.pop(heappop(cycles), None)
            if bucket is None:  # bucket cleared behind our back (tests)
                continue
            for kind, uop in bucket:
                if uop.state != 4:  # not squashed
                    handlers[kind](uop, now)

    # repro: hot
    def _complete(self, uop: MicroOp, now: int = 0) -> None:
        if uop.state >= 2:  # completed/committed/squashed
            return
        uop.state = 2  # STATE_COMPLETED
        if self.tracer is not None:
            self.tracer.on_complete(uop, self.cycle)
        if self._gates_values:
            block = self.scheme.value_block_seq(uop)
            if block != READY:
                # Completed but locked (NDA-P): dependents wake when the
                # shadow frontier reaches the producer itself.
                self._wait_frontier(block, uop, _W_UNLOCK)
                return
        if uop.waiters:
            self._notify_waiters(uop)

    # repro: hot
    def _notify_waiters(self, producer: MicroOp) -> None:
        waiters = producer.waiters
        if not waiters:
            return
        producer.waiters = None
        ready = self._ready
        for consumer, kind in waiters:
            if consumer.state == 4:  # squashed
                continue
            if kind == _K_ISSUE:
                wait_count = consumer.wait_count - 1
                consumer.wait_count = wait_count
                if wait_count == 0 and consumer.in_iq and not consumer.in_ready:
                    consumer.in_ready = True
                    heappush(ready, (consumer.seq, consumer))
            else:  # _K_STORE_DATA
                consumer.result = producer.result or 0
                consumer.store_data_ready = True
                if consumer.address_ready:
                    self._complete(consumer)

    # repro: hot
    def _resolve_branch(self, branch: MicroOp, now: int) -> None:
        # The outcome was computed at execute; the *resolution* (shadow
        # clear, possible squash) may still be deferred by the scheme —
        # STT while the predicate is tainted, DoM+AP until the branch is
        # non-speculative (in-order resolution).  Deferred resolutions
        # pipeline: each fires the moment the frontier reaches its key.
        if self._gates_branches:
            taint = self._operand_taint(branch) if self._uses_taint else UNTAINTED
            block = self.scheme.branch_block_seq(branch, taint)
            if block != READY:
                self._wait_frontier(block, branch, _W_BRANCH)
                return
        branch.branch_resolved = True
        if self._track_shadows:
            self.shadows.branch_resolved(branch.seq)
        self._complete(branch)
        if branch.actual_taken != branch.predicted_taken:
            self.stats.branch_mispredictions += 1
            self.bpred.record_mispredict()
            self.bpred.restore_history(branch.bp_history, branch.actual_taken)
            target = branch.inst.imm if branch.actual_taken else branch.pc + 1
            self._squash_from(branch.seq, target, history_restored=True)

    # repro: hot
    def _finish_load_agu(self, load: MicroOp, now: int) -> None:
        load.address_ready = True
        word = load.address & ~7
        lst = self._lq_index.get(word)
        if lst is None:
            self._lq_index[word] = [load]
        else:
            lst.append(load)
        if self._train_on_execute:
            # INSECURE ablation path: observes speculative/wrong-path
            # addresses (see PredictorConfig.train_on_execute).
            self.stride.train_commit(load.pc, load.address)
        if self.engine is not None:
            self.engine.on_address_resolved(load, now)
        if not (load.has_doppelganger and load.dl_correct):
            heappush(self._mem_queue, (load.seq, load))

    # repro: hot
    def _finish_store_agu(self, store: MicroOp, now: int) -> None:
        store.address_ready = True
        word = store.address & ~7
        lst = self._sq_index.get(word)
        if lst is None:
            self._sq_index[word] = [store]
        else:
            lst.append(store)
        if self._track_shadows:
            self.shadows.store_address_resolved(store.seq)
        if store.store_data_ready:
            self._complete(store)
        self._check_violations(store)

    def _check_violations(self, store: MicroOp) -> None:
        """Memory-order violation: a younger load already bound a value for
        this store's word without forwarding from it (or something
        younger).  Squash from the oldest violator and refetch it."""
        lst = self._lq_index.get(store.word_address)
        if not lst:
            return
        store_seq = store.seq
        violator: Optional[MicroOp] = None
        stale = False
        for load in lst:
            if load.state == 4:  # squashed; dropped lazily below
                stale = True
                continue
            if load.seq < store_seq or load.result is None:
                continue
            if load.forward_source_seq >= store_seq:
                continue
            if violator is None or load.seq < violator.seq:
                violator = load
        if stale:
            lst[:] = [load for load in lst if load.state != 4]
        if violator is not None:
            self._squash_from(violator.seq - 1, violator.pc, violator.bp_history)

    def _release_doppelganger(self, load: MicroOp, now: int) -> None:
        """A verified-correct doppelganger's value becomes the load result."""
        state = load.state
        if state == 4 or state == 2 or state == 3 or load.executed:
            return
        if load.dl_invalidated:
            # §4.5: a noted invalidation takes effect at propagation time —
            # discard the preload and fall back to a real access.
            load.dl_cancelled = True
            load.dl_correct = False
            self._push_mem(load)
            return
        if not self._bind_load_value(load):
            # A matching older store exists but its data is not ready yet;
            # store-to-load forwarding will override the preload as soon as
            # the data arrives (§4.4).  Retry next cycle.
            self._schedule(now + 1, _EV_DL, load)
            return
        load.dl_used = True
        load.executed = True
        if load.forward_source_seq != NO_FORWARD:
            load.dl_forwarded = True
            self.stats.dl_forwarded += 1
        if self._uses_taint:
            load.taint = self.scheme.load_result_taint(load)
        self.stats.dl_released_early += 1
        self._complete(load)

    def _youngest_matching_store(self, load: MicroOp) -> Optional[MicroOp]:
        """The youngest in-SQ store older than ``load`` whose resolved
        address matches the load's word, or None.

        Consults the word-granular SQ index instead of scanning the whole
        queue; squashed entries are dropped lazily.  Matches the original
        reversed-queue scan exactly: the index holds only address-ready,
        uncommitted stores, and the youngest match is the max-seq one.
        """
        lst = self._sq_index.get(load.address & ~7)
        if not lst:
            return None
        load_seq = load.seq
        best: Optional[MicroOp] = None
        best_seq = -1
        stale = False
        for store in lst:
            if store.state == 4:  # squashed; dropped lazily below
                stale = True
                continue
            seq = store.seq
            if seq <= load_seq and seq > best_seq:
                best = store
                best_seq = seq
        if stale:
            lst[:] = [store for store in lst if store.state != 4]
        return best

    def _bind_load_value(self, load: MicroOp) -> bool:
        """Functionally bind the load's value (forwarding-aware).

        Returns False when an address-matching older store's data is not
        yet available (the caller must retry).
        """
        store = self._youngest_matching_store(load)
        if store is not None:
            if not store.store_data_ready:
                return False
            load.result = store.result
            load.forward_source_seq = store.seq
            return True
        load.result = self.arch.read_mem(load.address)
        load.forward_source_seq = NO_FORWARD
        return True

    # ==================================================================
    # Phase 2: frontier wakeups
    # ==================================================================
    def _wait_frontier(self, key: int, uop: MicroOp, reason: int) -> None:
        self._event_counter += 1
        heapq.heappush(self._frontier_waiters, (key, self._event_counter, reason, uop))

    def defer_until_nonspec(self, load: MicroOp) -> None:
        """Queue a doppelganger release for the load's visibility point."""
        self._wait_frontier(load.seq, load, _W_DL)

    def schedule_dl_release(self, load: MicroOp, when: int) -> None:
        self._schedule(when, _EV_DL, load)

    # repro: hot
    def _process_frontier(self, now: int) -> None:
        waiters = self._frontier_waiters
        if not waiters:
            return
        frontier = self.shadows.frontier()
        while waiters and waiters[0][0] <= frontier:
            _, _, reason, uop = heappop(waiters)
            if uop.state == 4:  # squashed
                continue
            if reason == _W_UNLOCK:
                self._notify_waiters(uop)
            elif reason == _W_REREADY:
                if uop.in_iq:
                    self._push_ready(uop)
            elif reason == _W_MEM:
                if not uop.executed and (not uop.completed or uop.vp_active):
                    self._push_mem(uop)
            elif reason == _W_BRANCH:
                if not uop.branch_resolved:
                    self._resolve_branch(uop, now)
            else:  # _W_DL
                if not uop.executed and not uop.completed:
                    self._schedule(
                        max(uop.dl_completion_cycle, now + 1), _EV_DL, uop
                    )

    # ==================================================================
    # Phase 3: commit
    # ==================================================================
    # repro: hot
    def _commit(self, now: int) -> None:
        rob = self.rob
        if not rob:
            return
        state = rob[0].state
        if state != 2 and state != 3:
            return
        width = self._commit_width
        stores_left = self._store_ports
        stats = self.stats
        rename = self.rename
        arch_write = self.arch.write_reg
        tracer = self.tracer
        step_count = self._step_count
        committed = 0
        branches = 0
        while width > 0 and rob:
            uop = rob[0]
            state = uop.state
            if state != 2 and state != 3:
                break
            kind = uop.kind
            if kind == KIND_STORE and stores_left <= 0:
                break
            if kind == KIND_LOAD and uop.vp_active:
                # DoM+VP: a predicted value propagated speculatively but
                # cannot become architectural before validation.
                break
            rob.popleft()
            uop.state = 3  # STATE_COMMITTED
            if tracer is not None:
                tracer.on_commit(uop, now)
            width -= 1
            committed += 1
            inst = uop.inst
            if inst.writes:
                rd = inst.rd
                arch_write(rd, uop.result or 0)
                if rename.get(rd) is uop:
                    del rename[rd]
            if kind == KIND_ALU:
                pass
            elif kind == KIND_LOAD:
                self._commit_load(uop, now)
            elif kind == KIND_STORE:
                self._commit_store(uop, now)
                stores_left -= 1
            elif kind == KIND_CBRANCH:
                branches += 1
                self.bpred.train(uop.pc, uop.actual_taken, uop.bp_history)
            elif kind == KIND_HALT:
                self.halted = True
                stats.cycles = self.cycle
                break
            if uop.waiters:
                self._notify_waiters(uop)
        if committed:
            self._last_commit_cycle = now
            self._last_commit_step = step_count
            stats.committed_instructions += committed
            if branches:
                stats.committed_branches += branches

    # repro: hot
    def _commit_load(self, load: MicroOp, now: int) -> None:
        stats = self.stats
        stats.committed_loads += 1
        if self.lq and self.lq[0] is load:
            self.lq.popleft()
        else:  # pragma: no cover - defensive; loads commit in order
            self._drop(self.lq, load)
        if load.address_ready:
            self._index_remove(self._lq_index, load)
        if load.dom_touch_pending:
            self.hierarchy.touch(load.address, now)
        # Commit is the *only* place predictors are trained — the
        # security-critical invariant for both the prefetcher and the
        # Doppelganger address predictor.  (train_on_execute is the
        # insecure ablation that moves training to address generation.)
        if not self._train_on_execute:
            self.stride.train_commit(load.pc, load.address)
        if self.value_pred is not None:
            self.value_pred.train_commit(load.pc, load.result or 0)
        if self._prefetch_enabled:
            for candidate in self.stride.prefetch_candidates(load.pc, load.address):
                if self.hierarchy.residency(candidate) != 1:
                    self._prefetch_queue.append(candidate)
        if self.engine is not None:
            self.engine.on_commit(load)

    # repro: hot
    def _commit_store(self, store: MicroOp, now: int) -> None:
        self.stats.committed_stores += 1
        if self.sq and self.sq[0] is store:
            self.sq.popleft()
        else:  # pragma: no cover - defensive; stores commit in order
            self._drop(self.sq, store)
        if store.address_ready:
            self._index_remove(self._sq_index, store)
        self.arch.write_mem(store.address, store.result or 0)
        self.hierarchy.access(store.address, now, is_write=True)

    @staticmethod
    def _drop(queue: Deque[MicroOp], uop: MicroOp) -> None:
        try:
            queue.remove(uop)
        except ValueError:
            pass

    @staticmethod
    def _index_remove(index: Dict[int, List[MicroOp]], uop: MicroOp) -> None:
        """Drop an LSQ-index entry (commit/squash of an address-resolved op)."""
        word = uop.address & ~7
        lst = index.get(word)
        if lst is None:
            return
        if len(lst) == 1:
            if lst[0] is uop:
                del index[word]
            return
        try:
            lst.remove(uop)
        except ValueError:  # pragma: no cover - already lazily dropped
            pass

    # ==================================================================
    # Phase 4: issue
    # ==================================================================
    def _push_ready(self, uop: MicroOp) -> None:
        if not uop.in_ready:
            uop.in_ready = True
            heapq.heappush(self._ready, (uop.seq, uop))

    def _push_mem(self, load: MicroOp) -> None:
        heapq.heappush(self._mem_queue, (load.seq, load))

    def _source_blocked(self, producer: Optional[MicroOp]) -> bool:
        if producer is None:
            return False
        state = producer.state
        if state == 3:  # committed
            return False
        if state < 2:  # not yet completed
            return True
        if not self._gates_values:
            return False
        return self.scheme.value_block_seq(producer) != READY

    def _operand_value(self, producer: Optional[MicroOp], snapshot: int) -> int:
        if producer is None:
            return snapshot
        return producer.result or 0

    def _operand_taint(self, uop: MicroOp) -> int:
        taint = self._address_taint(uop)
        producer = uop.src2_uop
        if producer is not None and producer.state != 3 and producer.taint > taint:
            taint = producer.taint
        return taint

    @staticmethod
    def _address_taint(uop: MicroOp) -> int:
        producer = uop.src1_uop
        if producer is not None and producer.state != 3:
            return producer.taint
        return UNTAINTED

    # repro: hot
    def _issue(self, now: int) -> None:
        width = self._issue_width
        ready = self._ready
        scheme = self.scheme
        gates_stores = self._gates_stores
        uses_taint = self._uses_taint
        tracer = self.tracer
        events = self._events
        event_cycles = self._event_cycles
        mask = (1 << 64) - 1
        branch_resolve_latency = self._branch_resolve_latency
        branch_resolution_floor = 1 + self._branch_resolution_delay
        counter = self._event_counter
        issued = 0
        while width > 0 and ready:
            uop = heappop(ready)[1]
            uop.in_ready = False
            if uop.state == 4 or not uop.in_iq:  # squashed or stale entry
                continue
            dec = uop.dec
            kind = dec[1]
            if kind == KIND_STORE and gates_stores:
                # Only the *address* operand (rs1) gates store resolution;
                # tainted store data is harmless until forwarded, and a
                # forwarded value can never out-live its taint (monotone
                # frontier: the consumer goes non-speculative only after
                # the taint root does).
                taint = self._address_taint(uop) if uses_taint else UNTAINTED
                block = scheme.store_block_seq(uop, taint)
                if block != READY:
                    self._event_counter = counter
                    self._wait_frontier(block, uop, _W_REREADY)
                    counter = self._event_counter
                    continue
            uop.in_iq = False
            issued += 1
            uop.issue_cycle = now
            if tracer is not None:
                tracer.on_issue(uop, now)
            # --- execute, inlined (see _execute for the reference copy) ---
            producer = uop.src1_uop
            value1 = uop.src1_value if producer is None else (producer.result or 0)
            if kind == KIND_ALU:
                # Result computed now, visible after latency.
                value2 = (
                    dec[6]  # immediate operand
                    if dec[10]
                    else (
                        uop.src2_value
                        if uop.src2_uop is None
                        else (uop.src2_uop.result or 0)
                    )
                )
                uop.result = dec[8](value1, value2)
                if uses_taint:
                    uop.taint = self._operand_taint(uop)
                when = now + dec[7]
                bucket = events.get(when)
                if bucket is None:
                    events[when] = [(_EV_ALU, uop)]
                    heappush(event_cycles, when)
                else:
                    bucket.append((_EV_ALU, uop))
            elif kind == KIND_LOAD:
                uop.address = (value1 + dec[6]) & mask
                if uses_taint:
                    uop.taint = self._address_taint(uop)
                bucket = events.get(now + 1)
                if bucket is None:
                    events[now + 1] = [(_EV_AGU_LOAD, uop)]
                    heappush(event_cycles, now + 1)
                else:
                    bucket.append((_EV_AGU_LOAD, uop))
            elif kind == KIND_STORE:
                uop.address = (value1 + dec[6]) & mask
                bucket = events.get(now + 1)
                if bucket is None:
                    events[now + 1] = [(_EV_AGU_STORE, uop)]
                    heappush(event_cycles, now + 1)
                else:
                    bucket.append((_EV_AGU_STORE, uop))
            else:  # conditional branch
                value2 = (
                    uop.src2_value
                    if uop.src2_uop is None
                    else (uop.src2_uop.result or 0)
                )
                uop.actual_taken = dec[9](value1, value2)
                # Resolution cannot happen before the branch has traversed
                # the front-end + execute pipeline (a *floor* measured from
                # fetch, modelling pipeline depth) — but a branch whose
                # operand arrived late has long since been fetched and
                # resolves within a couple of cycles of issue.
                resolve_at = now + branch_resolve_latency
                floor = uop.dispatch_cycle + branch_resolution_floor
                if floor > resolve_at:
                    resolve_at = floor
                bucket = events.get(resolve_at)
                if bucket is None:
                    events[resolve_at] = [(_EV_BRANCH, uop)]
                    heappush(event_cycles, resolve_at)
                else:
                    bucket.append((_EV_BRANCH, uop))
            width -= 1
        self.iq_count -= issued
        self._event_counter = counter

    def _execute(self, uop: MicroOp, now: int) -> None:
        """Functionally execute and schedule the completion event.

        The reference copy of the execute stage — :meth:`_issue` inlines
        this logic on its hot path.  Kept callable for single-uop tests
        and as the readable statement of the semantics; the two must stay
        in sync.
        """
        dec = uop.dec
        if dec is None:  # uop built outside _dispatch (unit tests)
            dec = self._dec_entries[uop.pc]
            uop.dec = dec
        inst = uop.inst
        kind = dec[1]
        producer = uop.src1_uop
        value1 = uop.src1_value if producer is None else (producer.result or 0)
        if kind == KIND_LOAD:
            uop.address = (value1 + inst.imm) & ((1 << 64) - 1)
            if self._uses_taint:
                uop.taint = self._address_taint(uop)
            self._schedule(now + 1, _EV_AGU_LOAD, uop)
            return
        if kind == KIND_STORE:
            uop.address = (value1 + inst.imm) & ((1 << 64) - 1)
            self._schedule(now + 1, _EV_AGU_STORE, uop)
            return
        producer = uop.src2_uop
        value2 = uop.src2_value if producer is None else (producer.result or 0)
        if kind == KIND_CBRANCH:
            uop.actual_taken = dec[9](value1, value2)
            resolve_at = max(
                now + self._branch_resolve_latency,
                uop.dispatch_cycle + 1 + self._branch_resolution_delay,
            )
            self._schedule(resolve_at, _EV_BRANCH, uop)
            return
        # ALU (LI/MOV included); result computed now, visible after latency.
        operand_b = dec[6] if dec[10] else value2
        uop.result = dec[8](value1, operand_b)
        if self._uses_taint:
            uop.taint = self._operand_taint(uop)
        self._schedule(now + dec[7], _EV_ALU, uop)

    # ==================================================================
    # Phase 5: memory ports
    # ==================================================================
    # repro: hot
    def _schedule_memory(self, now: int, ports: int) -> int:
        if self._forward_retry:
            for load in self._forward_retry:
                if load.state != 4:
                    self._push_mem(load)
            self._forward_retry.clear()
        if self._mem_retry and self.hierarchy.mshrs.can_allocate(now):
            # MSHR-starved loads re-attempt only once an entry has actually
            # freed: the gate keeps the per-attempt access/stall counters
            # from inflating with the polling rate, and — because the first
            # free cycle is a pure function of the MSHR file — re-attempts
            # land on the same cycles whether or not the idle stretch in
            # between was skipped.
            for load in self._mem_retry:
                if load.state != 4:
                    self._push_mem(load)
            self._mem_retry.clear()
        queue = self._mem_queue
        scheme = self.scheme
        gates_loads = self._gates_loads
        uses_probe = self._uses_probe
        stats = self.stats
        hierarchy_access = self.hierarchy.access
        arch_read_mem = self.arch.read_mem
        while ports > 0 and queue:
            load = heappop(queue)[1]
            state = load.state
            if state == 4 or load.executed:  # squashed
                continue
            if (state == 2 or state == 3) and not load.vp_active:  # completed
                continue
            if load.dl_predicted_address is not None and (
                not load.dl_cancelled and load.dl_correct
            ):
                continue  # value arrives via the doppelganger release
            if gates_loads:
                block = scheme.load_block_seq(load)
                if block != READY:
                    self._wait_frontier(block, load, _W_MEM)
                    continue
            store = self._youngest_matching_store(load)
            if store is not None and not store.store_data_ready:
                self._forward_retry.append(load)
                continue
            ports -= 1
            if store is not None:
                load.result = store.result
                load.forward_source_seq = store.seq
                load.executed = True
                stats.store_to_load_forwards += 1
                self._finish_load(load, now + _FORWARD_LATENCY, level=0)
                continue
            if uses_probe and not load.dom_delayed and scheme.load_is_probe(load):
                if self.hierarchy.probe(load.address, now):
                    load.executed = True
                    load.dom_touch_pending = True
                    load.result = arch_read_mem(load.address)
                    load.forward_source_seq = NO_FORWARD
                    self._finish_load(load, now + self._l1_latency, 1)
                else:
                    load.dom_delayed = True
                    stats.dom_delayed_misses += 1
                    self._wait_frontier(load.seq, load, _W_MEM)
                    if self.value_pred is not None and not load.vp_active:
                        self._speculate_value(load, now)
                continue
            result = hierarchy_access(load.address, now)
            if result.retry:
                self._mem_retry.append(load)
                continue
            if load.dom_delayed:
                stats.dom_reissued_loads += 1
            load.executed = True
            if load.vp_active:
                # The delayed miss finally performed its real access:
                # validate the speculatively propagated value against it.
                load.vp_real_value = self._memory_view(load)
                load.access_level = result.level
                self._schedule(now + result.latency, _EV_VP_VALIDATE, load)
                continue
            load.result = arch_read_mem(load.address)
            load.forward_source_seq = NO_FORWARD
            self._finish_load(load, now + result.latency, result.level)
        return ports

    def _speculate_value(self, load: MicroOp, now: int) -> None:
        """DoM+VP: a delayed miss propagates a *predicted value* that will
        be validated when the real access returns (squash on mismatch)."""
        predicted = self.value_pred.predict_current(load.pc)
        if predicted is None:
            return
        self.stats.vp_predictions += 1
        load.vp_active = True
        load.result = predicted
        load.forward_source_seq = NO_FORWARD
        self._schedule(now + self._l1_latency, _EV_MEM, load)

    def _memory_view(self, load: MicroOp) -> int:
        """The value the load's real access observes (forwarding-aware)."""
        store = self._youngest_matching_store(load)
        if store is not None and store.store_data_ready:
            return store.result or 0
        return self.arch.read_mem(load.address)

    def _validate_value_prediction(self, load: MicroOp, now: int) -> None:
        if load.state == 4 or not load.vp_active:
            return
        load.vp_active = False
        if load.vp_real_value == load.result:
            self.stats.vp_correct += 1
            return
        # Mispredicted value: dependents consumed garbage — squash every
        # younger instruction and refetch after the load; the load itself
        # keeps the (now corrected) real value.
        self.stats.vp_wrong += 1
        self.stats.vp_squashes += 1
        load.result = load.vp_real_value
        self._squash_from(load.seq, load.pc + 1, load.bp_history)

    def _try_forward(
        self, load: MicroOp
    ) -> Tuple[bool, bool, Optional[MicroOp]]:
        """Store-to-load forwarding lookup.

        Returns ``(forwarded, blocked, store)``: *forwarded* when a
        matching older store with ready data exists, *blocked* when the
        match exists but its data is not ready yet.
        """
        store = self._youngest_matching_store(load)
        if store is None:
            return False, False, None
        if store.store_data_ready:
            return True, False, store
        return False, True, store

    def _bind_memory_value(self, load: MicroOp) -> None:
        load.result = self.arch.read_mem(load.address)
        load.forward_source_seq = NO_FORWARD

    def _finish_load(self, load: MicroOp, completion: int, level: int) -> None:
        load.access_level = level
        if self.scheme.uses_taint:
            load.taint = self.scheme.load_result_taint(load)
        self._schedule(completion, _EV_MEM, load)

    def _issue_prefetches(self, now: int, ports: int) -> None:
        queue = self._prefetch_queue
        while ports > 0 and queue:
            address = queue.popleft()
            ports -= 1
            result = self.hierarchy.access(address, now)
            if not result.retry:
                self.stats.prefetches_issued += 1
                if not result.l1_hit:
                    self.stats.prefetch_fills += 1

    def _maybe_complete_store(self, store: MicroOp) -> None:
        if store.address_ready and store.store_data_ready:
            self._complete(store)

    # ==================================================================
    # Phase 6: dispatch / fetch
    # ==================================================================
    # repro: hot
    def _dispatch(self, now: int) -> None:
        if self.fetch_halted or now < self.fetch_stalled_until:
            return
        rob, lq, sq = self.rob, self.lq, self.sq
        entries = self._dec_entries
        length = self._dec_len
        rename = self.rename
        arch_read = self.arch.read_reg
        bpred = self.bpred
        engine = self.engine
        scheme = self.scheme
        shadows = self.shadows
        track_shadows = self._track_shadows
        gates_values = self._gates_values
        tracer = self.tracer
        ready = self._ready
        rob_entries = self._rob_entries
        iq_entries = self._iq_entries
        lq_entries = self._lq_entries
        sq_entries = self._sq_entries
        pc = self.fetch_pc
        seq = self.next_seq
        iq_count = self.iq_count
        fetched = 0
        for _ in range(self._decode_width):
            if len(rob) >= rob_entries or iq_count >= iq_entries:
                break
            if pc < 0 or pc >= length:
                # Fetch ran past the program (wrong path); a
                # squash-and-redirect restarts it.
                self.fetch_halted = True
                break
            dec = entries[pc]
            kind = dec[1]
            if kind == KIND_LOAD:
                if len(lq) >= lq_entries:
                    break
            elif kind == KIND_STORE:
                if len(sq) >= sq_entries:
                    break
            inst = dec[0]
            uop = MicroOp(seq, pc, inst, now)
            uop.dec = dec
            seq += 1
            fetched += 1
            if tracer is not None:
                tracer.on_dispatch(uop, now)
            uop.bp_history = bpred.history
            # --- rename sources (reference copy: _rename_sources) ---
            ren1 = dec[4]
            if ren1 is not None:
                producer = rename.get(ren1)
                if producer is not None:
                    uop.src1_uop = producer
                else:
                    uop.src1_value = arch_read(ren1)
            ren2 = dec[5]
            if ren2 is not None:
                producer = rename.get(ren2)
                if producer is not None:
                    uop.src2_uop = producer
                else:
                    uop.src2_value = arch_read(ren2)
            if dec[2]:  # writes: rename the destination
                rd = dec[3]
                uop.prev_producer = rename.get(rd)
                uop.had_prev_producer = uop.prev_producer is not None
                rename[rd] = uop
            rob.append(uop)
            next_pc = pc + 1
            taken_transfer = False
            if kind == KIND_ALU or kind == KIND_CBRANCH:
                if kind == KIND_CBRANCH:
                    if track_shadows:
                        shadows.branch_dispatched(seq - 1)
                    uop.predicted_taken = bpred.predict(pc)
                    if uop.predicted_taken:
                        next_pc = dec[6]
                        taken_transfer = True
                # --- enter IQ waiting on both sources (ref: _enter_iq) ---
                uop.in_iq = True
                iq_count += 1
                waits = 0
                producer = uop.src1_uop
                if producer is not None:
                    pstate = producer.state
                    if pstate != 3 and (
                        pstate < 2
                        or (
                            gates_values
                            and scheme.value_block_seq(producer) != READY
                        )
                    ):
                        if producer.waiters is None:
                            producer.waiters = [(uop, _K_ISSUE)]
                        else:
                            producer.waiters.append((uop, _K_ISSUE))
                        waits = 1
                producer = uop.src2_uop
                if producer is not None:
                    pstate = producer.state
                    if pstate != 3 and (
                        pstate < 2
                        or (
                            gates_values
                            and scheme.value_block_seq(producer) != READY
                        )
                    ):
                        if producer.waiters is None:
                            producer.waiters = [(uop, _K_ISSUE)]
                        else:
                            producer.waiters.append((uop, _K_ISSUE))
                        waits += 1
                uop.wait_count = waits
                if waits == 0:
                    uop.in_ready = True
                    heappush(ready, (uop.seq, uop))
            elif kind == KIND_LOAD or kind == KIND_STORE:
                # Memory ops wait on the address operand (rs1) only.
                if kind == KIND_LOAD:
                    lq.append(uop)
                else:
                    sq.append(uop)
                    if track_shadows:
                        shadows.store_dispatched(seq - 1)
                uop.in_iq = True
                iq_count += 1
                producer = uop.src1_uop
                waits = 0
                if producer is not None:
                    pstate = producer.state
                    if pstate != 3 and (
                        pstate < 2
                        or (
                            gates_values
                            and scheme.value_block_seq(producer) != READY
                        )
                    ):
                        if producer.waiters is None:
                            producer.waiters = [(uop, _K_ISSUE)]
                        else:
                            producer.waiters.append((uop, _K_ISSUE))
                        waits = 1
                uop.wait_count = waits
                if waits == 0:
                    uop.in_ready = True
                    heappush(ready, (uop.seq, uop))
                if kind == KIND_LOAD:
                    if engine is not None:
                        engine.on_dispatch(uop)
                else:
                    self._bind_store_data(uop)
            elif kind == KIND_JMP:
                uop.actual_taken = uop.predicted_taken = True
                uop.branch_resolved = True
                self._complete(uop)
                next_pc = dec[6]
                taken_transfer = True
            elif kind == KIND_HALT:
                self._complete(uop)
                pc = next_pc
                self.fetch_halted = True
                break
            else:  # NOP
                self._complete(uop)
            pc = next_pc
            if taken_transfer:
                break  # one taken control transfer per fetch group
        if fetched:
            self.next_seq = seq
            self.iq_count = iq_count
            self.stats.fetched_instructions += fetched
        self.fetch_pc = pc

    def _enter_iq(self, uop: MicroOp, wait_rs2: bool) -> None:
        """Register operand waits and enter the (virtual) issue queue."""
        uop.in_iq = True
        self.iq_count += 1
        waits = 0
        producer = uop.src1_uop
        if producer is not None and self._source_blocked(producer):
            if producer.waiters is None:
                producer.waiters = []
            producer.waiters.append((uop, _K_ISSUE))
            waits += 1
        if wait_rs2:
            producer = uop.src2_uop
            if producer is not None and self._source_blocked(producer):
                if producer.waiters is None:
                    producer.waiters = []
                producer.waiters.append((uop, _K_ISSUE))
                waits += 1
        uop.wait_count = waits
        if waits == 0:
            self._push_ready(uop)

    def _bind_store_data(self, store: MicroOp) -> None:
        producer = store.src2_uop
        if producer is None:
            store.result = store.src2_value
            store.store_data_ready = True
        elif not self._source_blocked(producer):
            store.result = producer.result or 0
            store.store_data_ready = True
        else:
            if producer.waiters is None:
                producer.waiters = []
            producer.waiters.append((store, _K_STORE_DATA))

    def _rename_sources(self, uop: MicroOp) -> None:
        inst = uop.inst
        rename = self.rename
        if inst.rs1 is not None and inst.rs1 != 0:
            producer = rename.get(inst.rs1)
            if producer is not None:
                uop.src1_uop = producer
            else:
                uop.src1_value = self.arch.read_reg(inst.rs1)
        if inst.rs2 is not None and inst.rs2 != 0:
            producer = rename.get(inst.rs2)
            if producer is not None:
                uop.src2_uop = producer
            else:
                uop.src2_value = self.arch.read_reg(inst.rs2)

    def _rename_destination(self, uop: MicroOp) -> None:
        inst = uop.inst
        uop.prev_producer = self.rename.get(inst.rd)
        uop.had_prev_producer = uop.prev_producer is not None
        self.rename[inst.rd] = uop

    # ==================================================================
    # Squash
    # ==================================================================
    def _squash_from(
        self,
        boundary_seq: int,
        redirect_pc: int,
        history_snapshot: Optional[int] = None,
        history_restored: bool = False,
    ) -> None:
        """Squash everything younger than ``boundary_seq`` and refetch."""
        rob = self.rob
        rename = self.rename
        track_shadows = self._track_shadows
        squashed = 0
        while rob and rob[-1].seq > boundary_seq:
            uop = rob.pop()
            uop.state = 4  # STATE_SQUASHED
            squashed += 1
            if self.tracer is not None:
                self.tracer.on_squash(uop, self.cycle)
            if uop.in_iq:
                uop.in_iq = False
                self.iq_count -= 1
            inst = uop.inst
            kind = uop.kind
            if inst.writes and rename.get(inst.rd) is uop:
                # Restore the shadowed producer, unless it has already
                # committed — its value lives in the architectural file
                # now, and re-inserting it would leave the map holding a
                # stale reference past retirement.
                prev = uop.prev_producer
                if prev is not None and prev.state != 3:
                    rename[inst.rd] = prev
                else:
                    del rename[inst.rd]
            if kind == KIND_CBRANCH:
                if track_shadows and not uop.branch_resolved:
                    self.shadows.caster_squashed(uop.seq, is_branch=True)
            elif kind == KIND_STORE:
                if track_shadows and not uop.address_ready:
                    self.shadows.caster_squashed(uop.seq, is_branch=False)
                if uop.address_ready:
                    self._index_remove(self._sq_index, uop)
            elif kind == KIND_LOAD:
                if uop.address_ready:
                    self._index_remove(self._lq_index, uop)
                if self.engine is not None:
                    self.engine.on_squash(uop)
        if squashed:
            self.stats.squashed_instructions += squashed
            self._prune(self.lq)
            self._prune(self.sq)
        if not history_restored and history_snapshot is not None:
            self.bpred.history = history_snapshot
        self.fetch_pc = redirect_pc
        self.fetch_halted = False
        self.fetch_stalled_until = self.cycle + 1 + self._mispredict_penalty

    @staticmethod
    def _prune(queue: Deque[MicroOp]) -> None:
        while queue and queue[-1].squashed:
            queue.pop()

    def _has_incomplete_older_load(self, load: MicroOp) -> bool:
        for other in self.lq:
            if other.seq >= load.seq:
                return False
            if not other.squashed and other.result is None:
                return True
        return False

    # ==================================================================
    # Event plumbing
    # ==================================================================
    def _schedule(self, when: int, kind: int, uop: MicroOp) -> None:
        bucket = self._events.get(when)
        if bucket is None:
            self._events[when] = [(kind, uop)]
            heappush(self._event_cycles, when)
        else:
            bucket.append((kind, uop))
