"""Observer attachment points for the pipeline.

Guardrails (invariant checker, watchdog) are pure observers of the core:
they read machine state and raise typed errors, but never change
simulated behaviour.  The dependency therefore points *from* guardrails
*to* the pipeline — the core must not import :mod:`repro.guardrails`
(reprolint RPL401), or disabling/replacing the observers would require
editing the simulator itself.

Instead, the guardrails package registers a provider here at import time
(``repro/__init__`` imports it, and Python initializes parent packages
before submodules, so any ``import repro.pipeline.core`` wires the
provider first).  :class:`~repro.pipeline.core.Core` asks
:func:`build_guardrails` for its observer pair and runs fine with
``(None, None)`` when nothing registered — e.g. when a stripped-down
embedder imports the pipeline package directly.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.guardrails.invariants import InvariantChecker
    from repro.guardrails.watchdog import Watchdog
    from repro.pipeline.core import Core

    GuardrailProvider = Callable[
        ["Core"], Tuple[Optional["InvariantChecker"], Optional["Watchdog"]]
    ]

_guardrail_provider: "Optional[GuardrailProvider]" = None


def register_guardrail_provider(provider: "GuardrailProvider") -> None:
    """Install the factory that builds a core's observer pair.

    Called once, from ``repro.guardrails.__init__``.  Last registration
    wins, which lets tests swap in instrumented observers.
    """
    global _guardrail_provider
    _guardrail_provider = provider


def build_guardrails(
    core: "Core",
) -> "Tuple[Optional[InvariantChecker], Optional[Watchdog]]":
    """``(invariant_checker_or_None, watchdog_or_None)`` for ``core``."""
    if _guardrail_provider is None:
        return None, None
    return _guardrail_provider(core)
