"""Shadow tracking (Ghost Loads / Delay-on-Miss style).

An instruction is *speculative* while it is covered by a shadow:

* **E-shadow (control)** — some older branch is unresolved, or
* **M-shadow (memory)** — some older store has an unresolved address.

The paper's schemes (§5) track exactly these two sources.  We represent
each source as a set of unresolved sequence numbers and expose the *shadow
frontier*: the smallest unresolved sequence number.  An instruction with
``seq`` is non-speculative iff no unresolved shadow caster is older than
it, i.e. ``frontier() > seq``.

Correctness of the monotone-frontier trick: sequence numbers are assigned
in fetch order and casters are inserted in that order, so the oldest
unresolved caster is always the first live entry of an insertion-ordered
deque; resolution and squash remove entries but never add older ones,
hence the frontier never moves backwards for a fixed instruction window.
This gives O(1) amortized speculation queries, which both STT's
visibility point and NDA's propagation release reduce to.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Set

from repro.common.errors import StructuralHazardError

INFINITE_SEQ = 1 << 62
"""Frontier value when no shadow caster is outstanding."""


class _CasterQueue:
    """Insertion-ordered unresolved sequence numbers with lazy deletion.

    ``oldest_seq`` caches the head so the frontier query (the hottest
    shadow operation) is an attribute read; add/remove keep it current.
    """

    __slots__ = ("_queue", "_removed", "_live", "oldest_seq")

    def __init__(self) -> None:
        self._queue: Deque[int] = deque()
        self._removed: Set[int] = set()
        self._live = 0
        self.oldest_seq = INFINITE_SEQ

    def add(self, seq: int) -> None:
        if self._queue and seq <= self._queue[-1]:
            raise StructuralHazardError(
                "shadow casters must be added in sequence order"
            )
        if not self._queue:
            self.oldest_seq = seq
        self._queue.append(seq)
        self._live += 1

    def remove(self, seq: int) -> None:
        """Mark ``seq`` resolved (or squashed).  Idempotent."""
        if seq in self._removed:
            return
        self._removed.add(seq)
        self._live -= 1
        self._compact()

    def _compact(self) -> None:
        queue = self._queue
        removed = self._removed
        while queue and queue[0] in removed:
            removed.discard(queue.popleft())
        self.oldest_seq = queue[0] if queue else INFINITE_SEQ

    def oldest(self) -> int:
        """The oldest unresolved sequence number, or INFINITE_SEQ."""
        return self.oldest_seq

    def live(self) -> list:
        """Every unresolved sequence number, oldest first (guardrails)."""
        return [seq for seq in self._queue if seq not in self._removed]

    def __len__(self) -> int:
        return self._live

    def clear(self) -> None:
        self._queue.clear()
        self._removed.clear()
        self._live = 0
        self.oldest_seq = INFINITE_SEQ


class ShadowTracker:
    """Tracks control and store-address shadows and answers speculation
    queries for the core, the schemes, and the doppelganger engine."""

    def __init__(self) -> None:
        self._branches = _CasterQueue()
        self._stores = _CasterQueue()

    # ------------------------------------------------------------------
    # Caster lifecycle (called by the core)
    # ------------------------------------------------------------------
    def branch_dispatched(self, seq: int) -> None:
        self._branches.add(seq)

    def branch_resolved(self, seq: int) -> None:
        self._branches.remove(seq)

    def store_dispatched(self, seq: int) -> None:
        self._stores.add(seq)

    def store_address_resolved(self, seq: int) -> None:
        self._stores.remove(seq)

    def caster_squashed(self, seq: int, is_branch: bool) -> None:
        if is_branch:
            self._branches.remove(seq)
        else:
            self._stores.remove(seq)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def frontier(self) -> int:
        """Oldest unresolved shadow caster's seq (INFINITE_SEQ when none)."""
        branch_oldest = self._branches.oldest_seq
        store_oldest = self._stores.oldest_seq
        return branch_oldest if branch_oldest < store_oldest else store_oldest

    def is_speculative(self, seq: int) -> bool:
        """Is the instruction with ``seq`` still covered by a shadow?"""
        return self.frontier() < seq

    def is_nonspeculative(self, seq: int) -> bool:
        return self.frontier() >= seq

    def unresolved_branches(self) -> int:
        return len(self._branches)

    def unresolved_stores(self) -> int:
        return len(self._stores)

    def live_branch_casters(self) -> list:
        """Unresolved branch caster seqs, oldest first (guardrails)."""
        return self._branches.live()

    def live_store_casters(self) -> list:
        """Unresolved store-address caster seqs, oldest first (guardrails)."""
        return self._stores.live()

    def reset(self) -> None:
        self._branches.clear()
        self._stores.clear()
