"""Dynamic instruction state (micro-ops).

A :class:`MicroOp` wraps one dynamic instance of a static instruction with
everything the out-of-order core, the secure-speculation scheme, and the
doppelganger engine need to track: renamed operands, execution state,
taint, shadow status, and doppelganger bookkeeping.

``__slots__`` keeps the per-instruction footprint small — a simulation
creates one MicroOp per fetched (including wrong-path) instruction.
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.isa.instructions import Instruction

UNTAINTED = -1
"""Taint value meaning "not derived from any speculative load"."""

NO_FORWARD = -1
"""forward_source_seq value when the load's data came from memory."""


class UopState(enum.IntEnum):
    """Lifecycle of a micro-op.

    Loads add orthogonal sub-state (address_ready, executed, completed)
    because address generation and the memory access are separate events.
    """

    DISPATCHED = 0
    ISSUED = 1
    COMPLETED = 2
    COMMITTED = 3
    SQUASHED = 4


class MicroOp:
    """One dynamic instruction in flight."""

    __slots__ = (
        "seq",
        "pc",
        "inst",
        "state",
        # Renamed sources: producing MicroOp or a snapshotted value.
        "src1_uop",
        "src1_value",
        "src2_uop",
        "src2_value",
        "prev_producer",
        "had_prev_producer",
        # Results
        "result",
        "completion_cycle",
        "issue_cycle",
        "dispatch_cycle",
        # Taint (STT): max sequence number of any speculative root load.
        "taint",
        # Branch state
        "predicted_taken",
        "actual_taken",
        "predicted_target",
        "branch_resolved",
        "bp_history",
        # Load/store state
        # Scoreboard wakeup state
        "waiters",
        "wait_count",
        "in_iq",
        "in_ready",
        "address",
        "address_ready",
        "executed",
        "store_data_ready",
        "forward_source_seq",
        "dom_delayed",
        "dom_touch_pending",
        "access_level",
        "waiting_for_nonspec",
        # Doppelganger state
        "dl_predicted_address",
        "dl_issued",
        "dl_completion_cycle",
        "dl_l1_hit",
        "dl_verified",
        "dl_correct",
        "dl_cancelled",
        "dl_invalidated",
        "dl_forwarded",
        "dl_used",
        # Value prediction (DoM+VP extension)
        "vp_active",
        "vp_real_value",
    )

    def __init__(self, seq: int, pc: int, inst: Instruction, cycle: int):
        self.seq = seq
        self.pc = pc
        self.inst = inst
        self.state = UopState.DISPATCHED
        self.src1_uop: Optional["MicroOp"] = None
        self.src1_value = 0
        self.src2_uop: Optional["MicroOp"] = None
        self.src2_value = 0
        self.prev_producer: Optional["MicroOp"] = None
        self.had_prev_producer = False
        self.result: Optional[int] = None
        self.completion_cycle = -1
        self.issue_cycle = -1
        self.dispatch_cycle = cycle
        self.taint = UNTAINTED
        self.waiters: Optional[list] = None
        self.wait_count = 0
        self.in_iq = False
        self.in_ready = False
        self.predicted_taken = False
        self.actual_taken = False
        self.predicted_target = -1
        self.branch_resolved = False
        self.bp_history = 0
        self.address = -1
        self.address_ready = False
        self.executed = False
        self.store_data_ready = False
        self.forward_source_seq = NO_FORWARD
        self.dom_delayed = False
        self.dom_touch_pending = False
        self.access_level = 0
        self.waiting_for_nonspec = False
        self.dl_predicted_address: Optional[int] = None
        self.dl_issued = False
        self.dl_completion_cycle = -1
        self.dl_l1_hit = False
        self.dl_verified = False
        self.dl_correct = False
        self.dl_cancelled = False
        self.dl_invalidated = False
        self.dl_forwarded = False
        self.dl_used = False
        self.vp_active = False
        self.vp_real_value = 0

    # ------------------------------------------------------------------
    # State predicates
    # ------------------------------------------------------------------
    @property
    def squashed(self) -> bool:
        return self.state == UopState.SQUASHED

    @property
    def committed(self) -> bool:
        return self.state == UopState.COMMITTED

    @property
    def completed(self) -> bool:
        return self.state >= UopState.COMPLETED and self.state != UopState.SQUASHED

    @property
    def in_flight(self) -> bool:
        return self.state < UopState.COMMITTED

    @property
    def is_load(self) -> bool:
        return self.inst.is_load

    @property
    def is_store(self) -> bool:
        return self.inst.is_store

    @property
    def is_branch(self) -> bool:
        return self.inst.is_branch

    @property
    def has_doppelganger(self) -> bool:
        """An address prediction exists and has not been cancelled."""
        return self.dl_predicted_address is not None and not self.dl_cancelled

    @property
    def word_address(self) -> int:
        """The 8-byte-aligned address (forwarding/violation granularity)."""
        return self.address & ~7

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MicroOp(seq={self.seq}, pc={self.pc}, "
            f"{self.inst.disassemble()!r}, state={self.state.name})"
        )
