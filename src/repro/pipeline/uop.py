"""Dynamic instruction state (micro-ops).

A :class:`MicroOp` wraps one dynamic instance of a static instruction with
everything the out-of-order core, the secure-speculation scheme, and the
doppelganger engine need to track: renamed operands, execution state,
taint, shadow status, and doppelganger bookkeeping.

A simulation creates one MicroOp per fetched (including wrong-path)
instruction, so construction cost is a first-order term in simulator
throughput.  The layout is a hybrid:

* fields every uop touches (identity, rename, scoreboard, execution
  state) live in ``__slots__`` and are initialized eagerly — slot access
  is the fastest attribute path and these are read millions of times;
* kind-specific fields (branch prediction state, store data, DoM and
  doppelganger/value-prediction bookkeeping) are *class-level defaults*:
  an instance materializes one in its ``__dict__`` (allocated lazily,
  only for uops that write such a field) the first time a stage writes
  it.  Reads of never-written fields fall back to the class default,
  which is semantically identical to eager initialization because every
  default is immutable (ints, bools, None).

This cuts ``__init__`` from forty-one attribute stores to twenty-five
while keeping slot-speed access for the hot fields.
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.isa.instructions import Instruction

UNTAINTED = -1
"""Taint value meaning "not derived from any speculative load"."""

NO_FORWARD = -1
"""forward_source_seq value when the load's data came from memory."""


class UopState(enum.IntEnum):
    """Lifecycle of a micro-op.

    Loads add orthogonal sub-state (address_ready, executed, completed)
    because address generation and the memory access are separate events.

    ``MicroOp.state`` stores these as **plain ints** (the module-level
    ``STATE_*`` constants) — hot paths compare against int literals; an
    IntEnum compares equal to its int value, so both spellings work.
    """

    DISPATCHED = 0
    ISSUED = 1
    COMPLETED = 2
    COMMITTED = 3
    SQUASHED = 4


# Plain-int mirrors of UopState used on hot paths (enum attribute access
# and enum __eq__ cost real time at MicroOp volumes).
STATE_DISPATCHED = 0
STATE_ISSUED = 1
STATE_COMPLETED = 2
STATE_COMMITTED = 3
STATE_SQUASHED = 4


class MicroOp:
    """One dynamic instruction in flight.

    Slotted fields are the every-uop hot set (initialized eagerly);
    class attributes below are lazy per-field defaults for kind-specific
    state (see module docstring).  All defaults are immutable, so
    sharing them is safe — the one mutable field (``waiters``) defaults
    to None and is lazily replaced with a fresh list by the first
    waiter registration.
    """

    __slots__ = (
        "seq",
        "pc",
        "inst",
        "kind",
        "dec",
        "state",
        "dispatch_cycle",
        "issue_cycle",
        "completion_cycle",
        # Renamed sources: producing MicroOp or a snapshotted value.
        "src1_uop",
        "src1_value",
        "src2_uop",
        "src2_value",
        "prev_producer",
        "had_prev_producer",
        # Results
        "result",
        # Taint (STT): max sequence number of any speculative root load.
        "taint",
        # Scoreboard wakeup state
        "waiters",
        "wait_count",
        "in_iq",
        "in_ready",
        # Load/store hot state
        "address",
        "address_ready",
        "executed",
        "forward_source_seq",
        "bp_history",
        # Lazy kind-specific fields land here (allocated on first write).
        "__dict__",
    )

    # Branch state
    predicted_taken = False
    actual_taken = False
    predicted_target = -1
    branch_resolved = False
    # Store / DoM state
    store_data_ready = False
    dom_delayed = False
    dom_touch_pending = False
    access_level = 0
    waiting_for_nonspec = False
    # Doppelganger state
    dl_predicted_address: Optional[int] = None
    dl_issued = False
    dl_completion_cycle = -1
    dl_l1_hit = False
    dl_verified = False
    dl_correct = False
    dl_cancelled = False
    dl_invalidated = False
    dl_forwarded = False
    dl_used = False
    # Value prediction (DoM+VP extension)
    vp_active = False
    vp_real_value = 0

    def __init__(self, seq: int, pc: int, inst: Instruction, cycle: int):
        self.seq = seq
        self.pc = pc
        self.inst = inst
        self.kind = inst.kind
        self.dec = None  # decoded entry tuple, set by dispatch
        self.state = STATE_DISPATCHED
        self.dispatch_cycle = cycle
        self.issue_cycle = -1
        self.completion_cycle = -1
        self.src1_uop: Optional["MicroOp"] = None
        self.src1_value = 0
        self.src2_uop: Optional["MicroOp"] = None
        self.src2_value = 0
        self.prev_producer: Optional["MicroOp"] = None
        self.had_prev_producer = False
        self.result: Optional[int] = None
        self.taint = UNTAINTED
        self.waiters: Optional[list] = None
        self.wait_count = 0
        self.in_iq = False
        self.in_ready = False
        self.address = -1
        self.address_ready = False
        self.executed = False
        self.forward_source_seq = NO_FORWARD
        self.bp_history = 0

    # ------------------------------------------------------------------
    # State predicates
    # ------------------------------------------------------------------
    @property
    def squashed(self) -> bool:
        return self.state == STATE_SQUASHED

    @property
    def committed(self) -> bool:
        return self.state == STATE_COMMITTED

    @property
    def completed(self) -> bool:
        state = self.state
        return state == STATE_COMPLETED or state == STATE_COMMITTED

    @property
    def in_flight(self) -> bool:
        return self.state < STATE_COMMITTED

    @property
    def is_load(self) -> bool:
        return self.inst.is_load

    @property
    def is_store(self) -> bool:
        return self.inst.is_store

    @property
    def is_branch(self) -> bool:
        return self.inst.is_branch

    @property
    def has_doppelganger(self) -> bool:
        """An address prediction exists and has not been cancelled."""
        return self.dl_predicted_address is not None and not self.dl_cancelled

    @property
    def word_address(self) -> int:
        """The 8-byte-aligned address (forwarding/violation granularity)."""
        return self.address & ~7

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MicroOp(seq={self.seq}, pc={self.pc}, "
            f"{self.inst.disassemble()!r}, state={UopState(self.state).name})"
        )
