"""The out-of-order pipeline: micro-ops, shadows, and the core loop."""

from repro.pipeline.core import Core
from repro.pipeline.shadows import INFINITE_SEQ, ShadowTracker
from repro.pipeline.uop import NO_FORWARD, UNTAINTED, MicroOp, UopState

__all__ = [
    "Core",
    "INFINITE_SEQ",
    "MicroOp",
    "NO_FORWARD",
    "ShadowTracker",
    "UNTAINTED",
    "UopState",
]
