"""Decoded-program cache: per-instruction metadata computed once.

The dispatch stage used to re-derive everything it needs about a static
instruction — kind, register numbers, latency class, functional
evaluator — for every dynamic instance, tens of thousands of times per
run.  :class:`DecodedProgram` does that work once per ``(program
contents, config fingerprint)`` and the core reuses it across warmup and
measure windows, repeated runs of the same workload in a sweep, and both
``idle_skip`` modes.

The cache key includes the **config fingerprint** because decode bakes
in config-derived values (ALU vs MUL latency); two configs that differ
in any simulated parameter never share an entry.  Guardrail settings are
excluded from the fingerprint by design (they cannot change simulated
behaviour), so flipping guardrails on reuses the same decode — which is
exactly the sharing we want.

The cache is process-local and bounded (LRU).  Worker processes in a
:class:`~repro.harness.parallel.ParallelSession` each build their own —
entries are derived purely from the program text and the config, so
there is no cross-job state to leak.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, Optional, Tuple

from repro.common.config import SystemConfig
from repro.isa.instructions import Instruction, KIND_ALU, KIND_CBRANCH
from repro.isa.program import Program

#: One decoded instruction:
#: (inst, kind, writes, rd, ren1, ren2, imm, latency, alu_fn, branch_fn,
#:  use_imm_b).  ``ren1``/``ren2`` are the source registers as the rename
#: stage sees them — None when absent *or r0* (r0 never renames).
#: ``use_imm_b`` selects the immediate as ALU operand b (rs2 absent).
DecodedEntry = Tuple[
    Instruction, int, bool, Optional[int], Optional[int], Optional[int],
    int, int, Optional[Callable[[int, int], int]],
    Optional[Callable[[int, int], bool]], bool,
]

_CACHE_CAPACITY = 128


class DecodedProgram:
    """Immutable per-program decode table, indexed by pc."""

    __slots__ = ("entries", "length")

    def __init__(self, program: Program, config: SystemConfig) -> None:
        alu_latency = config.core.alu_latency
        mul_latency = config.core.mul_latency
        entries = []
        for inst in program.instructions:
            kind = inst.kind
            ren1 = inst.rs1 if inst.rs1 else None
            ren2 = inst.rs2 if inst.rs2 else None
            latency = mul_latency if inst.is_mul else alu_latency
            entries.append((
                inst, kind, inst.writes, inst.rd, ren1, ren2, inst.imm,
                latency,
                inst.alu_fn if kind == KIND_ALU else None,
                inst.branch_fn if kind == KIND_CBRANCH else None,
                inst.rs2 is None,
            ))
        self.entries: Tuple[DecodedEntry, ...] = tuple(entries)
        self.length = len(entries)


def _program_key(program: Program) -> Tuple:
    """Content identity: the instruction stream, not the object."""
    return tuple(
        (inst.opcode, inst.rd, inst.rs1, inst.rs2, inst.imm, inst.label)
        for inst in program.instructions
    )


_cache: "OrderedDict[Tuple, DecodedProgram]" = OrderedDict()
_hits = 0
_misses = 0


def decode_program(program: Program, config: SystemConfig) -> DecodedProgram:
    """The decode table for ``program`` under ``config`` (cached)."""
    global _hits, _misses
    key = (_program_key(program), config.fingerprint())
    decoded = _cache.get(key)
    if decoded is not None:
        _hits += 1
        _cache.move_to_end(key)
        return decoded
    _misses += 1
    decoded = DecodedProgram(program, config)
    _cache[key] = decoded
    while len(_cache) > _CACHE_CAPACITY:
        _cache.popitem(last=False)
    return decoded


def cache_info() -> Dict[str, int]:
    """Hit/miss/size counters (tests and `repro profile`)."""
    return {"hits": _hits, "misses": _misses, "size": len(_cache),
            "capacity": _CACHE_CAPACITY}


def clear_cache() -> None:
    """Drop all cached decodes and reset counters (tests)."""
    global _hits, _misses
    _cache.clear()
    _hits = 0
    _misses = 0
