"""Doppelganger Loads (ISCA 2023) — a full-system reproduction in Python.

The package implements the paper's entire stack from scratch:

* an execution-driven out-of-order core with transient (wrong-path)
  execution (:mod:`repro.pipeline`),
* a three-level cache hierarchy with MSHRs (:mod:`repro.memory`),
* the three secure speculation schemes the paper evaluates — NDA-P, STT,
  and Delay-on-Miss (:mod:`repro.schemes`),
* the Doppelganger Load engine and its shared stride predictor
  (:mod:`repro.doppelganger`, :mod:`repro.predictors`),
* Spectre-style attack gadgets and a leakage harness
  (:mod:`repro.attacks`),
* SPEC-like synthetic workloads (:mod:`repro.workloads`), and
* the experiment harness regenerating every figure and table
  (:mod:`repro.harness`).

Quickstart::

    from repro import simulate
    from repro.workloads import build_workload

    program = build_workload("libquantum")
    result = simulate(program, scheme="dom+ap", max_instructions=20_000)
    print(result.summary())
"""

from __future__ import annotations

from typing import Optional, Union

from repro.common import (
    SimStats,
    SystemConfig,
    default_config,
    geomean,
    small_config,
)
from repro.isa import CodeBuilder, Instruction, Opcode, Program, assemble
from repro.memory import MemoryHierarchy
from repro.pipeline import Core
from repro.schemes import SCHEME_NAMES, SecureScheme, make_scheme

# Imported for its side effect: registers the default guardrail provider
# with repro.pipeline.hooks.  Python initializes this parent package
# before any submodule, so even a direct `import repro.pipeline.core`
# gets its observers wired.
import repro.guardrails  # noqa: E402,F401  (side-effect import)

__version__ = "1.0.0"


def simulate(
    program: Program,
    scheme: Union[str, SecureScheme] = "unsafe",
    config: Optional[SystemConfig] = None,
    max_instructions: Optional[int] = None,
) -> SimStats:
    """Run ``program`` under a scheme and return the collected statistics.

    ``scheme`` may be a name (``"unsafe"``, ``"nda"``, ``"stt"``, ``"dom"``,
    optionally with a ``"+ap"`` suffix for Doppelganger Loads) or an
    already-built :class:`~repro.schemes.SecureScheme` instance.
    """
    if isinstance(scheme, str):
        scheme = make_scheme(scheme)
    core = Core(program, scheme, config=config)
    return core.run(max_instructions=max_instructions)


def build_core(
    program: Program,
    scheme: Union[str, SecureScheme] = "unsafe",
    config: Optional[SystemConfig] = None,
) -> Core:
    """Construct a core without running it (for stepping/introspection)."""
    if isinstance(scheme, str):
        scheme = make_scheme(scheme)
    return Core(program, scheme, config=config)


__all__ = [
    "CodeBuilder",
    "Core",
    "Instruction",
    "MemoryHierarchy",
    "Opcode",
    "Program",
    "SCHEME_NAMES",
    "SecureScheme",
    "SimStats",
    "SystemConfig",
    "assemble",
    "build_core",
    "default_config",
    "geomean",
    "make_scheme",
    "simulate",
    "small_config",
    "__version__",
]
