"""A parallel, persistent, fault-tolerant experiment runner.

The paper's evaluation is a (benchmark × scheme) matrix — Figures 1, 6,
7, and 8 all re-sweep the same seven configurations over every SPEC
stand-in.  :class:`ParallelSession` is a drop-in replacement for
:class:`~repro.harness.runner.ExperimentSession` that makes that matrix
cheap twice over:

* **Parallel** — :meth:`ParallelSession.sweep` fans the pairs out over a
  :class:`~concurrent.futures.ProcessPoolExecutor`.  Each worker receives
  a picklable :class:`SweepJob` (labels, window sizes, and the config as
  plain data), rebuilds the :class:`~repro.pipeline.core.Core` from
  scratch, and ships the measurement-window
  :class:`~repro.common.stats.SimStats` back as a dict.  Every pair is
  simulated in its own interpreter with no shared state, so results are
  bit-identical between ``jobs=1`` and ``jobs=N``: the simulator is
  deterministic and stats are never accumulated across processes — the
  parent reassembles results strictly in request order.

* **Persistent** — with ``cache_dir`` set, every finished run is written
  to a content-addressed :class:`~repro.harness.store.ResultStore` keyed
  by a stable fingerprint of (benchmark, scheme, warmup, measure, full
  :class:`~repro.common.config.SystemConfig`).  Re-running any figure
  after an unrelated code change is a cache hit; changing any config
  knob or window size misses by construction.  Entries are sharded,
  checksummed, and written atomically (unique tmp + rename) so
  concurrent writers can share a directory; corrupt entries are
  quarantined on read and recomputed, and persistent disk errors degrade
  the store to memory instead of killing the sweep.  **Only successful
  runs are ever written to disk** — a failure cached as data would mask
  later fixes until the cache directory is cleared, so failures live in
  the session memo only.  A progress ledger (``ledger.jsonl``) journals
  every resolution; ``resume=True`` adopts it so an interrupted campaign
  loses at most the in-flight wave.

Failure semantics (the fault-tolerance layer):

* A worker that hits a :class:`~repro.common.errors.ReproError` returns
  the error as data.  These are **deterministic** — the simulator has no
  nondeterminism, so retrying is pointless — and the parent re-raises
  them (typed, naming the pair) from :meth:`run`, or, with
  ``skip_errors=True``, records them in :attr:`skipped` and keeps the
  rest of the sweep.
* A worker that exceeds ``job_timeout``, dies outright, or raises a
  non-simulator exception produces a **transient** failure: the job is
  retried up to ``retries`` times with exponential backoff before it is
  recorded as failed.  A dead worker breaks the whole pool (CPython
  offers no per-future blame), so every job in flight at the moment of
  the crash is marked transient and re-run — the deterministic culprit
  fails again on retry while innocent bystanders complete, which is what
  isolates a crash to the job that caused it.
* Results are stored (memo + disk) *as each job resolves*, so Ctrl-C or
  a mid-sweep crash loses only in-flight work; everything already
  finished is in the cache when the sweep is re-run.
* After any sweep that ran cold jobs, a **failure manifest**
  (``failure_manifest.json`` in the cache dir) records each failed run's
  key, error type, attempt count, and crash-dump path if the guardrails
  wrote one.
"""

from __future__ import annotations

import os
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.common.config import (
    SystemConfig,
    config_from_dict,
    config_to_dict,
    default_config,
)
from repro.common.errors import (
    DeadlockError,
    EmptyMeasurementError,
    InvariantViolationError,
    JobTimeoutError,
    ReproError,
    WorkerCrashError,
)
from repro.common.io import atomic_write_json
from repro.common.stats import RunResult
from repro.harness.jobs import JobEngine, failure_payload
from repro.harness.store import ProgressLedger, ResultStore, campaign_id
from repro.harness.runner import (
    BASELINE_SCHEME,
    DEFAULT_MEASURE,
    DEFAULT_WARMUP,
    RunKey,
    run_benchmark,
    run_key,
)

#: Version of the failure-manifest layout.  (Cache entries are versioned
#: by the store's own STORE_FORMAT_VERSION; see repro.harness.store.)
CACHE_FORMAT_VERSION = 1

#: Name of the per-cache-directory record of failed runs.
FAILURE_MANIFEST_NAME = "failure_manifest.json"

#: Name of the per-cache-directory progress ledger (see ProgressLedger).
LEDGER_NAME = "ledger.jsonl"


def _sweep_entry_slug(key: RunKey) -> str:
    """Human-readable prefix for a sweep entry's file name."""
    benchmark, scheme, warmup, measure, _digest = key
    safe_scheme = str(scheme).replace("+", "_").replace("/", "_")
    return f"{benchmark}-{safe_scheme}-w{warmup}-m{measure}"


@dataclass(frozen=True)
class SweepJob:
    """One (benchmark, scheme) run as a picklable, process-portable spec."""

    benchmark: str
    scheme: str
    warmup: int
    measure: int
    config: Dict[str, Any]  # config_to_dict() form

    @classmethod
    def build(
        cls,
        benchmark: str,
        scheme: str,
        warmup: int,
        measure: int,
        config: SystemConfig,
    ) -> "SweepJob":
        return cls(benchmark, scheme, warmup, measure, config_to_dict(config))

    def spec(self) -> Dict[str, Any]:
        """The full job as replayable data (manifest ``spec`` entries)."""
        payload = asdict(self)
        payload["kind"] = "sweep"
        return payload

    @classmethod
    def from_spec(cls, spec: Dict[str, Any]) -> "SweepJob":
        return cls(
            benchmark=spec["benchmark"],
            scheme=spec["scheme"],
            warmup=spec["warmup"],
            measure=spec["measure"],
            config=dict(spec["config"]),
        )


def sweep_job_fields(job: SweepJob) -> Dict[str, Any]:
    """Label + spec fields attached to every failure payload for ``job``."""
    return {
        "benchmark": job.benchmark,
        "scheme": job.scheme,
        "spec": job.spec(),
    }


def _failure_payload(
    job: SweepJob,
    error_type: str,
    message: str,
    transient: bool,
    **extra: Any,
) -> Dict[str, Any]:
    payload = failure_payload(
        error_type, message, transient, fields=sweep_job_fields(job)
    )
    payload.update(extra)
    return payload


def execute_job(job: SweepJob) -> Dict[str, Any]:
    """Worker entry point: rebuild the Core, run, return plain data.

    Must stay a module-level function (pickled by name into the pool) and
    must never raise: errors travel back as data so one bad pair cannot
    poison the pool or lose the rest of a sweep.  Simulator errors
    (:class:`ReproError`) are deterministic and marked non-transient;
    anything else — including a ``KeyboardInterrupt`` delivered to the
    worker when the user hits Ctrl-C — is transient, so the parent can
    finish flushing completed results and retry cleanly later instead of
    unwinding through a half-written pool protocol.
    """
    try:
        result = run_benchmark(
            job.benchmark,
            job.scheme,
            config_from_dict(job.config),
            job.warmup,
            job.measure,
        )
        return {"ok": True, "result": result.to_dict()}
    except InvariantViolationError as error:
        return _failure_payload(
            job,
            type(error).__name__,
            str(error),
            transient=False,
            invariant=error.invariant,
            violations=list(error.violations),
            dump_path=error.dump_path,
        )
    except DeadlockError as error:
        return _failure_payload(
            job,
            type(error).__name__,
            str(error),
            transient=False,
            kind=error.kind,
            dump_path=error.dump_path,
        )
    except ReproError as error:
        return _failure_payload(job, type(error).__name__, str(error), transient=False)
    except KeyboardInterrupt:
        return _failure_payload(
            job, "KeyboardInterrupt", "interrupted mid-run", transient=True
        )
    except Exception as error:  # crash isolation: bugs travel back as data
        return _failure_payload(
            job, type(error).__name__, str(error) or repr(error), transient=True
        )


def _raise_job_error(payload: Dict[str, Any]) -> None:
    """Re-raise a failure payload as the typed error it came from."""
    error_type = payload["error_type"]
    benchmark = payload["benchmark"]
    scheme = payload["scheme"]
    message = payload["message"]
    labelled = f"({benchmark}, {scheme}): {message}"
    if error_type == "EmptyMeasurementError":
        # The worker's message already carries the "(benchmark, scheme):"
        # prefix, so rebuild without re-prefixing and reattach the labels.
        error = EmptyMeasurementError(message)
        error.benchmark = benchmark
        error.scheme = scheme
        raise error
    if error_type == "InvariantViolationError":
        raise InvariantViolationError(
            labelled,
            invariant=payload.get("invariant", "unknown"),
            violations=payload.get("violations"),
            dump_path=payload.get("dump_path"),
        )
    if error_type == "DeadlockError":
        raise DeadlockError(
            labelled,
            kind=payload.get("kind", "deadlock"),
            dump_path=payload.get("dump_path"),
        )
    if error_type == "JobTimeoutError":
        raise JobTimeoutError(labelled)
    if error_type in ("WorkerCrashError", "KeyboardInterrupt"):
        raise WorkerCrashError(labelled)
    raise ReproError(labelled)


@dataclass
class SkippedRun:
    """A pair that a skip-errors sweep dropped, and why."""

    benchmark: str
    scheme: str
    message: str
    error_type: str = "ReproError"
    dump_path: Optional[str] = None


@dataclass
class FailureRecord:
    """One failed run, as recorded in the failure manifest.

    ``spec`` carries the *complete* job description (window sizes, full
    config, generator seed and knobs for fuzz jobs), and ``replay`` the
    one command that re-runs it — so any manifest entry is reproducible
    without reconstructing the sweep that produced it.
    """

    benchmark: str
    scheme: str
    error_type: str
    message: str
    attempts: int = 1
    transient: bool = False
    dump_path: Optional[str] = None
    key: List[Any] = field(default_factory=list)
    spec: Dict[str, Any] = field(default_factory=dict)
    replay: Optional[str] = None

    @classmethod
    def from_payload(
        cls,
        key: Sequence[Any],
        payload: Dict[str, Any],
        replay: Optional[str] = None,
    ) -> "FailureRecord":
        return cls(
            benchmark=payload["benchmark"],
            scheme=payload["scheme"],
            error_type=payload["error_type"],
            message=payload["message"],
            attempts=payload.get("attempts", 1),
            transient=payload.get("transient", False),
            dump_path=payload.get("dump_path"),
            key=list(key),
            spec=dict(payload.get("spec", {})),
            replay=payload.get("replay", replay),
        )


def replay_command(manifest_path: Optional[Path]) -> Optional[str]:
    """The one-liner that re-runs every failure in a manifest."""
    if manifest_path is None:
        return None
    return f"python -m repro fuzz --replay {manifest_path}"


class ParallelSession:
    """Parallel, disk-backed, fault-tolerant drop-in for ``ExperimentSession``.

    Parameters
    ----------
    jobs:
        Worker processes for :meth:`sweep`.  ``None`` means one per CPU;
        ``1`` runs everything inline (no pool, still disk-cached).
    cache_dir:
        Directory for the persistent result cache; ``None`` disables it.
    job_timeout:
        Per-job wall-clock budget in seconds; ``None`` (default) waits
        forever.  A wave of jobs gets ``job_timeout × ceil(n / workers)``
        to finish — the bound a fair scheduler would need — and anything
        still unfinished is marked :class:`JobTimeoutError` (transient),
        the stuck workers are killed, and the jobs retried.
    retries:
        How many times a *transient* failure (timeout, worker crash,
        unexpected exception) is re-run before being recorded as failed.
        Deterministic simulator errors are never retried.
    retry_backoff:
        Base delay in seconds before each retry wave, doubling per wave.
    mp_context:
        ``multiprocessing`` start method for the pool (``"fork"``,
        ``"spawn"``...); ``None`` uses the platform default.
    resume:
        Adopt the cache directory's progress ledger from an interrupted
        campaign of the same grid: deterministic failures it recorded
        replay without re-simulating, successes load from the store, and
        only genuinely unresolved pairs reach the pool.
    chaos:
        Optional armed :class:`~repro.harness.chaos.ChaosEngine`; routes
        store writes through its fault-injecting filesystem and worker
        submissions through its fault stages.  Test-harness only.
    """

    def __init__(
        self,
        config: Optional[SystemConfig] = None,
        warmup: int = DEFAULT_WARMUP,
        measure: int = DEFAULT_MEASURE,
        jobs: Optional[int] = None,
        cache_dir: Optional[os.PathLike] = None,
        job_timeout: Optional[float] = None,
        retries: int = 1,
        retry_backoff: float = 0.5,
        mp_context: Optional[str] = None,
        resume: bool = False,
        chaos: Optional[Any] = None,
    ):
        self.config = config if config is not None else default_config()
        self.warmup = warmup
        self.measure = measure
        self.jobs = max(1, jobs if jobs is not None else os.cpu_count() or 1)
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.job_timeout = job_timeout
        self.retries = max(0, retries)
        self.retry_backoff = max(0.0, retry_backoff)
        self.mp_context = mp_context
        self.resume = resume
        self.chaos = chaos
        self.store: Optional[ResultStore] = None
        if self.cache_dir is not None:
            self.store = ResultStore(
                self.cache_dir,
                fs=chaos.fs if chaos is not None else None,
                namer=_sweep_entry_slug,
            )
        self._memo: Dict[RunKey, RunResult] = {}
        self._failures: Dict[RunKey, Dict[str, Any]] = {}
        self.skipped: List[SkippedRun] = []
        # Provenance counters: where did each requested run come from?
        self.memo_hits = 0
        self.disk_hits = 0
        self.simulated = 0
        self.ledger_hits = 0

    # ------------------------------------------------------------------
    # Keys and the on-disk cache
    # ------------------------------------------------------------------
    def _key(self, benchmark: str, scheme: str) -> RunKey:
        return run_key(benchmark, scheme, self.warmup, self.measure, self.config)

    def _cache_path(self, key: RunKey) -> Optional[Path]:
        if self.store is None:
            return None
        return self.store.path_for(key)

    def _disk_load(self, key: RunKey) -> Optional[RunResult]:
        """Load one result from the store.  Corrupt entries (torn writes,
        checksum mismatches...) are quarantined by the store and read as
        a miss — they are never returned and never raise."""
        if self.store is None:
            return None
        payload = self.store.get(key)
        if not isinstance(payload, dict):
            return None
        if not payload.get("result"):
            return None  # never trust an entry without a real result body
        return RunResult.from_dict(payload["result"])

    def _disk_store(self, key: RunKey, result: RunResult) -> None:
        if self.store is None:
            return
        self.store.put(
            key,
            {"config": config_to_dict(self.config), "result": result.to_dict()},
        )

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def _lookup(self, key: RunKey) -> Optional[RunResult]:
        """Memo, then disk.  Replays memoized *deterministic* failures;
        transient ones (timeout, crash) read as a miss so they re-run."""
        recorded = self._failures.get(key)
        if recorded is not None and not recorded.get("transient", False):
            _raise_job_error(recorded)
        if key in self._memo:
            self.memo_hits += 1
            return self._memo[key]
        from_disk = self._disk_load(key)
        if from_disk is not None:
            self.disk_hits += 1
            self._memo[key] = from_disk
            return from_disk
        return None

    def _store(self, key: RunKey, payload: Dict[str, Any]) -> Optional[RunResult]:
        if not payload["ok"]:
            # Failures are memoized in the session only — never written
            # to the disk cache, where they would mask later fixes until
            # the cache directory is cleared (see module docstring).
            self._failures[key] = payload
            return None
        self._failures.pop(key, None)  # a retry succeeded; clear the record
        result = RunResult.from_dict(payload["result"])
        self._memo[key] = result
        self._disk_store(key, result)
        return result

    def run(self, benchmark: str, scheme: str) -> RunResult:
        """Run (or recall) one pair.  Always inline — no pool spin-up."""
        key = self._key(benchmark, scheme)
        found = self._lookup(key)
        if found is not None:
            return found
        self.simulated += 1
        payload = execute_job(
            SweepJob.build(benchmark, scheme, self.warmup, self.measure, self.config)
        )
        result = self._store(key, payload)
        if result is None:
            _raise_job_error(payload)
        return result

    def sweep(
        self,
        benchmarks: Iterable[str],
        schemes: Iterable[str],
        skip_errors: bool = False,
    ) -> List[RunResult]:
        """Run the full (benchmark × scheme) grid, fanned out over the pool.

        Results come back in the same order as the serial
        ``ExperimentSession.sweep`` — ``for b in benchmarks for s in
        schemes`` — regardless of worker scheduling, minus failed pairs
        when ``skip_errors`` is set (those are appended to
        :attr:`skipped`).  Each run is cached the moment it finishes, so
        interrupting a sweep preserves all completed work; after the cold
        jobs run, the failure manifest in the cache directory is
        rewritten to match this sweep's outcome.
        """
        pairs: List[Tuple[str, str]] = [
            (b, s) for b in benchmarks for s in schemes
        ]
        keys = [self._key(b, s) for b, s in pairs]
        ledger = self._open_ledger(keys)

        # Resolve memo/disk/ledger hits first; only cold pairs reach the
        # pool.  A pair may appear twice in a grid; dedupe while keeping
        # order.  A *transient* recorded failure does not count as
        # resolved — the pair re-runs; only deterministic failures replay
        # (from the memo, or from a resumed ledger).
        cold: List[Tuple[RunKey, SweepJob]] = []
        seen = set()
        for key, (benchmark, scheme) in zip(keys, pairs):
            if key in seen:
                continue
            recorded = self._failures.get(key)
            if recorded is not None and not recorded.get("transient", False):
                continue
            if key in self._memo:
                self.memo_hits += 1
                continue
            from_disk = self._disk_load(key)
            if from_disk is not None:
                self.disk_hits += 1
                self._memo[key] = from_disk
                continue
            replayed = self._ledger_failure(ledger, key)
            if replayed is not None:
                self.ledger_hits += 1
                self._failures[key] = replayed
                continue
            seen.add(key)
            cold.append(
                (
                    key,
                    SweepJob.build(
                        benchmark, scheme, self.warmup, self.measure, self.config
                    ),
                )
            )

        try:
            if cold:
                try:
                    self._run_jobs(cold, ledger)
                finally:
                    # Even an interrupted sweep leaves an accurate manifest
                    # for whatever resolved before the interrupt.
                    self.write_failure_manifest()
        finally:
            if ledger is not None:
                ledger.close()

        results: List[RunResult] = []
        for key, (benchmark, scheme) in zip(keys, pairs):
            if key in self._failures:
                payload = self._failures[key]
                if not skip_errors:
                    _raise_job_error(payload)
                self.skipped.append(
                    SkippedRun(
                        benchmark,
                        scheme,
                        payload["message"],
                        error_type=payload["error_type"],
                        dump_path=payload.get("dump_path"),
                    )
                )
                continue
            results.append(self._memo[key])
        return results

    # ------------------------------------------------------------------
    # The progress ledger (checkpoint/resume)
    # ------------------------------------------------------------------
    @property
    def ledger_path(self) -> Optional[Path]:
        if self.cache_dir is None:
            return None
        return self.cache_dir / LEDGER_NAME

    def _open_ledger(self, keys: Sequence[RunKey]) -> Optional[ProgressLedger]:
        """The campaign's ledger — adopting the previous run's when
        resuming the same grid, starting fresh otherwise.  A ledger that
        cannot be opened (read-only cache dir...) is not worth failing a
        sweep over; the sweep just runs checkpoint-less."""
        path = self.ledger_path
        if path is None:
            return None
        try:
            return ProgressLedger(path, campaign_id(keys), resume=self.resume)
        except OSError:
            return None

    @staticmethod
    def _ledger_failure(
        ledger: Optional[ProgressLedger], key: RunKey
    ) -> Optional[Dict[str, Any]]:
        """A resumed ledger's *deterministic* failure for ``key``, if any.

        Successes need no replay (their results load from the store);
        transient failures re-run, same as within one session.
        """
        if ledger is None or not ledger.resumed:
            return None
        entry = ledger.get(key)
        if entry is None or entry.get("ok", False):
            return None
        payload = entry.get("payload")
        if not isinstance(payload, dict) or payload.get("transient", False):
            return None
        return payload

    # ------------------------------------------------------------------
    # The fault-tolerant job engine
    # ------------------------------------------------------------------
    def _run_jobs(
        self,
        cold: Sequence[Tuple[RunKey, SweepJob]],
        ledger: Optional[ProgressLedger] = None,
    ) -> None:
        """Run cold jobs through the generic wave/retry engine.

        The engine (:class:`~repro.harness.jobs.JobEngine`) owns the
        failure semantics — bounded retry of transients, per-wave
        timeouts with worker kill, crash isolation on a broken pool —
        and stores + journals each job the moment it resolves, so an
        interrupt can only lose jobs still in flight.
        """
        engine = JobEngine(
            execute_job,
            jobs=self.jobs,
            job_timeout=self.job_timeout,
            retries=self.retries,
            retry_backoff=self.retry_backoff,
            mp_context=self.mp_context,
            describe=sweep_job_fields,
            chaos=self.chaos,
        )

        def resolved(key: RunKey, payload: Dict[str, Any]) -> None:
            self.simulated += 1
            self._store(key, payload)
            if ledger is not None:
                # Success results live in the store; the ledger entry is
                # the done-marker.  Failures carry their payload so a
                # resumed run can replay deterministic ones verbatim.
                ledger.record(
                    key, payload["ok"], None if payload["ok"] else payload
                )

        engine.run(cold, resolved)

    # ------------------------------------------------------------------
    # Failure introspection
    # ------------------------------------------------------------------
    def failures(self) -> List[FailureRecord]:
        """Every currently-recorded failed run, as structured records."""
        replay = replay_command(self.failure_manifest_path)
        return [
            FailureRecord.from_payload(key, payload, replay=replay)
            for key, payload in sorted(self._failures.items())
        ]

    @property
    def failure_manifest_path(self) -> Optional[Path]:
        if self.cache_dir is None:
            return None
        return self.cache_dir / FAILURE_MANIFEST_NAME

    def write_failure_manifest(self) -> Optional[Path]:
        """Write the failure manifest; returns its path (None if no cache).

        Always rewritten after a sweep ran cold jobs — an empty
        ``failures`` list is the machine-readable all-clear, replacing
        any stale manifest from an earlier broken run.
        """
        path = self.failure_manifest_path
        if path is None:
            return None
        payload = {
            "version": CACHE_FORMAT_VERSION,
            "failures": [asdict(record) for record in self.failures()],
        }
        return atomic_write_json(path, payload, indent=2)

    # ------------------------------------------------------------------
    # ExperimentSession-compatible derived metrics / introspection
    # ------------------------------------------------------------------
    def normalized_ipc(self, benchmark: str, scheme: str) -> float:
        """IPC of ``scheme`` normalized to the unsafe baseline."""
        baseline = self.run(benchmark, BASELINE_SCHEME).ipc
        if baseline == 0:
            raise EmptyMeasurementError(
                "baseline committed nothing in its measurement window",
                benchmark=benchmark,
                scheme=BASELINE_SCHEME,
            )
        return self.run(benchmark, scheme).ipc / baseline

    def cached_runs(self) -> int:
        return len(self._memo)

    def counters(self) -> Dict[str, int]:
        """Provenance summary: how many runs came from where."""
        return {
            "memo_hits": self.memo_hits,
            "disk_hits": self.disk_hits,
            "simulated": self.simulated,
            "skipped": len(self.skipped),
            "ledger_hits": self.ledger_hits,
        }

    def store_counters(self) -> Dict[str, Any]:
        """The store's integrity/health counters ({} without a cache)."""
        if self.store is None:
            return {}
        return self.store.counters()
