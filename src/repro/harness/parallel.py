"""A parallel, persistent experiment runner.

The paper's evaluation is a (benchmark × scheme) matrix — Figures 1, 6,
7, and 8 all re-sweep the same seven configurations over every SPEC
stand-in.  :class:`ParallelSession` is a drop-in replacement for
:class:`~repro.harness.runner.ExperimentSession` that makes that matrix
cheap twice over:

* **Parallel** — :meth:`ParallelSession.sweep` fans the pairs out over a
  :mod:`multiprocessing` pool.  Each worker receives a picklable
  :class:`SweepJob` (labels, window sizes, and the config as plain data),
  rebuilds the :class:`~repro.pipeline.core.Core` from scratch, and ships
  the measurement-window :class:`~repro.common.stats.SimStats` back as a
  dict.  Every pair is simulated in its own interpreter with no shared
  state, so results are bit-identical between ``jobs=1`` and ``jobs=N``:
  the simulator is deterministic and stats are never accumulated across
  processes — the parent reassembles results strictly in request order.

* **Persistent** — with ``cache_dir`` set, every finished run is written
  to disk keyed by a stable fingerprint of (benchmark, scheme, warmup,
  measure, full :class:`~repro.common.config.SystemConfig`).  Re-running
  any figure after an unrelated code change is a cache hit; changing any
  config knob or window size misses by construction.  Cache files are
  self-describing JSON, written atomically (tmp + rename) so concurrent
  writers can share a directory.

Failure semantics: a worker that hits a
:class:`~repro.common.errors.ReproError` returns the error as data; the
parent re-raises it (typed, naming the pair) from :meth:`run`, or —
with ``skip_errors=True`` — records it in :attr:`skipped` and keeps the
rest of the sweep.  Failures are memoized like results so a halting
benchmark is not re-simulated once per figure.
"""

from __future__ import annotations

import json
import multiprocessing
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.common.config import (
    SystemConfig,
    config_from_dict,
    config_to_dict,
    default_config,
)
from repro.common.errors import EmptyMeasurementError, ReproError
from repro.common.stats import RunResult
from repro.harness.runner import (
    BASELINE_SCHEME,
    DEFAULT_MEASURE,
    DEFAULT_WARMUP,
    RunKey,
    run_benchmark,
    run_key,
)

#: Bump when the cache file layout or the meaning of a counter changes;
#: part of every disk key, so stale formats miss instead of mis-loading.
CACHE_FORMAT_VERSION = 1


@dataclass(frozen=True)
class SweepJob:
    """One (benchmark, scheme) run as a picklable, process-portable spec."""

    benchmark: str
    scheme: str
    warmup: int
    measure: int
    config: Dict[str, Any]  # config_to_dict() form

    @classmethod
    def build(
        cls,
        benchmark: str,
        scheme: str,
        warmup: int,
        measure: int,
        config: SystemConfig,
    ) -> "SweepJob":
        return cls(benchmark, scheme, warmup, measure, config_to_dict(config))


def execute_job(job: SweepJob) -> Dict[str, Any]:
    """Worker entry point: rebuild the Core, run, return plain data.

    Must stay a module-level function (pickled by name into the pool) and
    must never raise: errors travel back as data so one bad pair cannot
    poison the pool or lose the rest of a sweep.
    """
    try:
        result = run_benchmark(
            job.benchmark,
            job.scheme,
            config_from_dict(job.config),
            job.warmup,
            job.measure,
        )
        return {"ok": True, "result": result.to_dict()}
    except ReproError as error:
        return {
            "ok": False,
            "error_type": type(error).__name__,
            "message": str(error),
            "benchmark": job.benchmark,
            "scheme": job.scheme,
        }


def _raise_job_error(payload: Dict[str, Any]) -> None:
    if payload["error_type"] == "EmptyMeasurementError":
        # The worker's message already carries the "(benchmark, scheme):"
        # prefix, so rebuild without re-prefixing and reattach the labels.
        error = EmptyMeasurementError(payload["message"])
        error.benchmark = payload["benchmark"]
        error.scheme = payload["scheme"]
        raise error
    raise ReproError(
        f"({payload['benchmark']}, {payload['scheme']}): {payload['message']}"
    )


@dataclass
class SkippedRun:
    """A pair that a skip-errors sweep dropped, and why."""

    benchmark: str
    scheme: str
    message: str


class ParallelSession:
    """Parallel, disk-backed drop-in for ``ExperimentSession``.

    Parameters
    ----------
    jobs:
        Worker processes for :meth:`sweep`.  ``None`` means one per CPU;
        ``1`` runs everything inline (no pool, still disk-cached).
    cache_dir:
        Directory for the persistent result cache; ``None`` disables it.
    """

    def __init__(
        self,
        config: Optional[SystemConfig] = None,
        warmup: int = DEFAULT_WARMUP,
        measure: int = DEFAULT_MEASURE,
        jobs: Optional[int] = None,
        cache_dir: Optional[os.PathLike] = None,
    ):
        self.config = config if config is not None else default_config()
        self.warmup = warmup
        self.measure = measure
        self.jobs = max(1, jobs if jobs is not None else os.cpu_count() or 1)
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self._memo: Dict[RunKey, RunResult] = {}
        self._failures: Dict[RunKey, Dict[str, Any]] = {}
        self.skipped: List[SkippedRun] = []
        # Provenance counters: where did each requested run come from?
        self.memo_hits = 0
        self.disk_hits = 0
        self.simulated = 0

    # ------------------------------------------------------------------
    # Keys and the on-disk cache
    # ------------------------------------------------------------------
    def _key(self, benchmark: str, scheme: str) -> RunKey:
        return run_key(benchmark, scheme, self.warmup, self.measure, self.config)

    def _cache_path(self, key: RunKey) -> Optional[Path]:
        if self.cache_dir is None:
            return None
        benchmark, scheme, warmup, measure, digest = key
        safe_scheme = scheme.replace("+", "_")
        name = (
            f"v{CACHE_FORMAT_VERSION}-{benchmark}-{safe_scheme}"
            f"-w{warmup}-m{measure}-{digest[:16]}.json"
        )
        return self.cache_dir / name

    def _disk_load(self, key: RunKey) -> Optional[RunResult]:
        path = self._cache_path(key)
        if path is None or not path.exists():
            return None
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None  # treat a torn/corrupt file as a miss
        if payload.get("key") != list(key):
            return None  # digest-prefix collision or stale format
        return RunResult.from_dict(payload["result"])

    def _disk_store(self, key: RunKey, result: RunResult) -> None:
        path = self._cache_path(key)
        if path is None:
            return
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "version": CACHE_FORMAT_VERSION,
            "key": list(key),
            "config": config_to_dict(self.config),
            "result": result.to_dict(),
        }
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(payload, sort_keys=True))
        tmp.replace(path)  # atomic on POSIX: concurrent writers race safely

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def _lookup(self, key: RunKey) -> Optional[RunResult]:
        """Memo, then disk.  Replays memoized failures."""
        if key in self._failures:
            _raise_job_error(self._failures[key])
        if key in self._memo:
            self.memo_hits += 1
            return self._memo[key]
        from_disk = self._disk_load(key)
        if from_disk is not None:
            self.disk_hits += 1
            self._memo[key] = from_disk
            return from_disk
        return None

    def _store(self, key: RunKey, payload: Dict[str, Any]) -> Optional[RunResult]:
        if not payload["ok"]:
            self._failures[key] = payload
            return None
        result = RunResult.from_dict(payload["result"])
        self._memo[key] = result
        self._disk_store(key, result)
        return result

    def run(self, benchmark: str, scheme: str) -> RunResult:
        """Run (or recall) one pair.  Always inline — no pool spin-up."""
        key = self._key(benchmark, scheme)
        found = self._lookup(key)
        if found is not None:
            return found
        self.simulated += 1
        payload = execute_job(
            SweepJob.build(benchmark, scheme, self.warmup, self.measure, self.config)
        )
        result = self._store(key, payload)
        if result is None:
            _raise_job_error(payload)
        return result

    def sweep(
        self,
        benchmarks: Iterable[str],
        schemes: Iterable[str],
        skip_errors: bool = False,
    ) -> List[RunResult]:
        """Run the full (benchmark × scheme) grid, fanned out over the pool.

        Results come back in the same order as the serial
        ``ExperimentSession.sweep`` — ``for b in benchmarks for s in
        schemes`` — regardless of worker scheduling, minus failed pairs
        when ``skip_errors`` is set (those are appended to
        :attr:`skipped`).
        """
        pairs: List[Tuple[str, str]] = [
            (b, s) for b in benchmarks for s in schemes
        ]
        keys = [self._key(b, s) for b, s in pairs]

        # Resolve memo/disk hits first; only cold pairs reach the pool.
        # A pair may appear twice in a grid; dedupe while keeping order.
        cold: List[Tuple[RunKey, Tuple[str, str]]] = []
        seen = set()
        for key, pair in zip(keys, pairs):
            if key in seen or key in self._failures:
                continue
            if key in self._memo:
                self.memo_hits += 1
                continue
            from_disk = self._disk_load(key)
            if from_disk is not None:
                self.disk_hits += 1
                self._memo[key] = from_disk
                continue
            seen.add(key)
            cold.append((key, pair))

        if cold:
            jobs = [
                SweepJob.build(b, s, self.warmup, self.measure, self.config)
                for _, (b, s) in cold
            ]
            for (key, _), payload in zip(cold, self._run_jobs(jobs)):
                self.simulated += 1
                self._store(key, payload)

        results: List[RunResult] = []
        for key, (benchmark, scheme) in zip(keys, pairs):
            if key in self._failures:
                if not skip_errors:
                    _raise_job_error(self._failures[key])
                self.skipped.append(
                    SkippedRun(benchmark, scheme, self._failures[key]["message"])
                )
                continue
            results.append(self._memo[key])
        return results

    def _run_jobs(self, jobs: Sequence[SweepJob]) -> List[Dict[str, Any]]:
        """Execute cold jobs, in order, with up to ``self.jobs`` workers."""
        if self.jobs == 1 or len(jobs) == 1:
            return [execute_job(job) for job in jobs]
        with multiprocessing.get_context().Pool(
            processes=min(self.jobs, len(jobs))
        ) as pool:
            return pool.map(execute_job, jobs)

    # ------------------------------------------------------------------
    # ExperimentSession-compatible derived metrics / introspection
    # ------------------------------------------------------------------
    def normalized_ipc(self, benchmark: str, scheme: str) -> float:
        """IPC of ``scheme`` normalized to the unsafe baseline."""
        baseline = self.run(benchmark, BASELINE_SCHEME).ipc
        if baseline == 0:
            raise EmptyMeasurementError(
                "baseline committed nothing in its measurement window",
                benchmark=benchmark,
                scheme=BASELINE_SCHEME,
            )
        return self.run(benchmark, scheme).ipc / baseline

    def cached_runs(self) -> int:
        return len(self._memo)

    def counters(self) -> Dict[str, int]:
        """Provenance summary: how many runs came from where."""
        return {
            "memo_hits": self.memo_hits,
            "disk_hits": self.disk_hits,
            "simulated": self.simulated,
            "skipped": len(self.skipped),
        }
