"""Export figure results to CSV and Markdown, plus drill-down reports.

The figure objects (:mod:`repro.harness.experiments`) render fixed-width
text for terminals; downstream users usually want the series as data.
These helpers emit:

* CSV — one row per benchmark, one column per scheme/metric;
* Markdown — GitHub-renderable tables (used to refresh EXPERIMENTS.md);
* a per-benchmark report explaining a single benchmark's behaviour in
  terms of the scheme-internal counters.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Dict, Mapping, Optional, Sequence

from repro.common.stats import RunResult
from repro.harness.experiments import (
    Figure6Result,
    Figure7Result,
    Figure8Result,
    SummaryResult,
)
from repro.harness.runner import ExperimentSession


# ----------------------------------------------------------------------
# RunResult serialization (worker processes, the on-disk cache, tooling)
# ----------------------------------------------------------------------
def run_result_to_json(result: RunResult) -> str:
    """Serialize one run to a canonical (sorted-key) JSON document."""
    return json.dumps(result.to_dict(), sort_keys=True)


def run_result_from_json(text: str) -> RunResult:
    """Inverse of :func:`run_result_to_json`; exact round trip."""
    return RunResult.from_dict(json.loads(text))


def sweep_to_csv(results: Sequence[RunResult]) -> str:
    """A sweep as CSV: labels, windows, then every raw counter."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    if not results:
        return ""
    counter_names = sorted(results[0].stats.as_dict())
    writer.writerow(["benchmark", "scheme", "warmup", "measure", *counter_names])
    for result in results:
        stats = result.stats.as_dict()
        writer.writerow(
            [
                result.benchmark,
                result.scheme,
                result.metadata.get("warmup", ""),
                result.metadata.get("measure", ""),
                *(stats[name] for name in counter_names),
            ]
        )
    return buffer.getvalue()


# ----------------------------------------------------------------------
# CSV
# ----------------------------------------------------------------------
def figure6_to_csv(result: Figure6Result) -> str:
    """Figure 6 as CSV: benchmark, then one normalized-IPC column per
    scheme, with a final GMEAN row."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["benchmark", *result.schemes])
    for benchmark, row in result.rows.items():
        writer.writerow([benchmark, *(f"{row[s]:.4f}" for s in result.schemes)])
    writer.writerow(["GMEAN", *(f"{result.gmean[s]:.4f}" for s in result.schemes)])
    return buffer.getvalue()


def figure7_to_csv(result: Figure7Result) -> str:
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["benchmark", "coverage", "accuracy"])
    for benchmark in result.coverage:
        writer.writerow(
            [
                benchmark,
                f"{result.coverage[benchmark]:.4f}",
                f"{result.accuracy[benchmark]:.4f}",
            ]
        )
    writer.writerow(
        ["GMEAN", f"{result.gmean_coverage:.4f}", f"{result.gmean_accuracy:.4f}"]
    )
    return buffer.getvalue()


def figure8_to_csv(result: Figure8Result) -> str:
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    header = ["benchmark"]
    for scheme in result.schemes:
        header.extend([f"l1:{scheme}", f"l2:{scheme}"])
    writer.writerow(header)
    for benchmark in result.l1:
        row = [benchmark]
        for scheme in result.schemes:
            row.append(f"{result.l1[benchmark][scheme]:.4f}")
            row.append(f"{result.l2[benchmark][scheme]:.4f}")
        writer.writerow(row)
    return buffer.getvalue()


# ----------------------------------------------------------------------
# Markdown
# ----------------------------------------------------------------------
def _markdown_table(header: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    lines = [
        "| " + " | ".join(header) + " |",
        "|" + "|".join("---" for _ in header) + "|",
    ]
    for row in rows:
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)


def figure6_to_markdown(result: Figure6Result) -> str:
    rows = [
        [benchmark, *(f"{row[s]:.3f}" for s in result.schemes)]
        for benchmark, row in result.rows.items()
    ]
    rows.append(["**GMEAN**", *(f"{result.gmean[s]:.3f}" for s in result.schemes)])
    return _markdown_table(["benchmark", *result.schemes], rows)


def summary_to_markdown(result: SummaryResult) -> str:
    rows = [
        [scheme, f"{result.paper_gmean[scheme]:.3f}", f"{result.gmean[scheme]:.3f}"]
        for scheme in ("nda", "nda+ap", "stt", "stt+ap", "dom", "dom+ap")
    ]
    table = _markdown_table(["scheme", "paper", "measured"], rows)
    reductions = _markdown_table(
        ["scheme", "paper reduction", "measured reduction"],
        [
            [
                scheme,
                f"{result.paper_reduction[scheme]:.1%}",
                f"{result.slowdown_reduction[scheme]:.1%}",
            ]
            for scheme in ("nda", "stt", "dom")
        ],
    )
    return table + "\n\n" + reductions


# ----------------------------------------------------------------------
# Per-benchmark drill-down
# ----------------------------------------------------------------------
def benchmark_report(
    session: ExperimentSession,
    benchmark: str,
    schemes: Sequence[str] = ("nda", "nda+ap", "stt", "stt+ap", "dom", "dom+ap"),
) -> str:
    """Explain one benchmark: normalized IPC next to the scheme-internal
    counters that cause it."""
    baseline = session.run(benchmark, "unsafe")
    lines = [
        f"# {benchmark}",
        f"baseline IPC {baseline.ipc:.3f}; "
        f"{baseline.stats.l1_misses} L1 misses / "
        f"{baseline.stats.committed_loads} loads; "
        f"{baseline.stats.branch_mispredictions} mispredicts",
        "",
        f"{'scheme':<9}{'normIPC':>8}{'cov':>6}{'acc':>6}"
        f"{'domDelay':>9}{'ndaLock':>9}{'sttDelay':>9}{'dlIssued':>9}",
    ]
    for scheme in schemes:
        result = session.run(benchmark, scheme)
        stats = result.stats
        lines.append(
            f"{scheme:<9}"
            f"{session.normalized_ipc(benchmark, scheme):>8.3f}"
            f"{stats.coverage:>5.0%}{stats.accuracy:>6.0%}"
            f"{stats.dom_delayed_misses:>9}"
            f"{stats.delayed_propagations:>9}"
            f"{stats.delayed_transmitters:>9}"
            f"{stats.dl_issued:>9}"
        )
    return "\n".join(lines)
