"""Deterministic fault injection for the harness, and the chaos check.

PR 6 aimed generate-then-check at the simulator core; this module aims
it at the harness itself.  A :class:`FaultPlan` is a *seeded* schedule of
faults — worker crashes, hangs, slow workers, torn cache writes,
corrupted payloads, disk-full, a mid-wave interrupt — whose every
decision is a pure function of ``(seed, fault kind, job digest,
attempt)``, so a failing chaos run replays exactly from its seed.

Faults enter through two seams, both injectable and zero-cost when off:

* :meth:`ChaosEngine.wrap` sits between :class:`~repro.harness.jobs.JobEngine`
  and its worker, substituting a fault-wrapped worker for attempt 0 of a
  doomed job.  Worker faults fire only on the **first** attempt, so the
  engine's own retry machinery is what recovers — chaos tests the real
  recovery path, never a special one.
* :class:`ChaosFS` wraps the store's filesystem shim and corrupts,
  truncates, or rejects the **first** write of an entry; the rewrite
  after quarantine goes through clean.  Every corruption it injects is
  counted, so the chaos check can demand one quarantine per corruption.

:func:`run_chaos_check` is the differential: run a small figure6 sweep
fault-free, run it again under the plan (resuming over injected
interrupts), then re-read the battered cache with a clean session — and
require bit-identical results plus a quarantine for every injected
corruption.  ``repro chaos`` and the doctor smoke drive it.
"""

from __future__ import annotations

import errno
import json
import os
import random
import shutil
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.common.config import SystemConfig
from repro.common.errors import ReproError
from repro.harness.jobs import Payload, failure_payload
from repro.harness.store import RealFS, key_digest

#: Faults staged in the worker process (or emulated inline).
WORKER_FAULTS = ("crash", "hang", "slow")

#: Faults staged in the store's filesystem shim.
WRITE_FAULTS = ("disk_full", "torn_write", "corrupt_write")


class ChaosInterrupt(KeyboardInterrupt):
    """The injected mid-wave interrupt.

    Subclasses :class:`KeyboardInterrupt` so it unwinds through exactly
    the code paths a real Ctrl-C (or a kill) exercises: the engine's
    kill-and-reraise, the session's finally-write-the-manifest, the
    ledger close.  Chaos must not get a gentler exit than the user does.
    """


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, reproducible schedule of injected faults.

    Each rate is the independent probability that the corresponding
    fault fires for a given (job, attempt) or (entry, write); decisions
    are drawn from a :class:`random.Random` seeded with the fault kind
    and the target's digest, so they are stable across runs, processes,
    and wave ordering.  Worker faults fire only while ``attempt <
    fault_attempts`` and write faults only for the first
    ``fault_attempts`` writes of an entry — with the default of 1 and
    ``retries >= 1`` on the engine, every faulted job converges on
    retry, which is what lets the chaos check demand bit-identical
    results.
    """

    seed: int = 0
    crash: float = 0.0
    hang: float = 0.0
    slow: float = 0.0
    torn_write: float = 0.0
    corrupt_write: float = 0.0
    disk_full: float = 0.0
    #: Raise :class:`ChaosInterrupt` after this many resolutions (None: never).
    interrupt_after: Optional[int] = None
    #: Attempts (per job) and writes (per entry) eligible for faults.
    fault_attempts: int = 1
    #: How long a hung worker naps (bounded so leaked processes die).
    hang_seconds: float = 60.0
    slow_seconds: float = 0.2

    @classmethod
    def chaotic(
        cls, seed: int = 0, interrupt_after: Optional[int] = 3
    ) -> "FaultPlan":
        """The default everything-on plan used by ``repro chaos``."""
        return cls(
            seed=seed,
            crash=0.20,
            hang=0.15,
            slow=0.25,
            torn_write=0.25,
            corrupt_write=0.25,
            disk_full=0.10,
            interrupt_after=interrupt_after,
        )

    def _decide(self, kinds: Sequence[str], rates: Sequence[float],
                scope: str, target: str, nth: int) -> Optional[str]:
        """First fault in ``kinds`` whose seeded coin lands; None if all
        miss.  One Random per (kind, target, nth) keeps decisions
        independent of each other and of call order."""
        for kind, rate in zip(kinds, rates):
            if rate <= 0.0:
                continue
            rng = random.Random(f"chaos:{self.seed}:{scope}:{kind}:{target}:{nth}")
            if rng.random() < rate:
                return kind
        return None

    def worker_fault(self, digest: str, attempt: int) -> Optional[str]:
        """Which worker fault (if any) job ``digest`` suffers on ``attempt``."""
        if attempt >= self.fault_attempts:
            return None
        return self._decide(
            WORKER_FAULTS, (self.crash, self.hang, self.slow),
            "worker", digest, attempt,
        )

    def write_fault(self, entry: str, nth: int) -> Optional[str]:
        """Which write fault (if any) the ``nth`` write of ``entry`` suffers."""
        if nth >= self.fault_attempts:
            return None
        return self._decide(
            WRITE_FAULTS, (self.disk_full, self.torn_write, self.corrupt_write),
            "write", entry, nth,
        )

    def describe(self) -> str:
        rates = ", ".join(
            f"{kind}={getattr(self, kind):g}"
            for kind in WORKER_FAULTS + WRITE_FAULTS
            if getattr(self, kind) > 0
        )
        interrupt = (
            f", interrupt after {self.interrupt_after}"
            if self.interrupt_after is not None
            else ""
        )
        return f"seed={self.seed}: {rates or 'no faults'}{interrupt}"


def chaos_worker(
    fault: str,
    worker: Callable[[Any], Payload],
    job: Any,
    hang_seconds: float,
    slow_seconds: float,
) -> Payload:
    """Pool-side fault stage.  Module-level so it pickles by name.

    ``crash`` dies without unwinding (``os._exit``, like a segfault or
    OOM kill — the pool breaks and the engine's crash isolation takes
    over); ``hang`` naps past any sane per-job budget so the engine's
    wave deadline and worker kill fire; ``slow`` just delays, testing
    that latency alone never changes results.
    """
    if fault == "crash":
        os._exit(23)
    if fault == "hang":
        time.sleep(hang_seconds)
        # A generous budget survived the nap: degrade to a slow worker.
        return worker(job)
    if fault == "slow":
        time.sleep(slow_seconds)
    return worker(job)


def chaos_key_digest(key: Any) -> str:
    """Digest of an engine key, whatever its shape.

    Sweep engines key jobs by JSON-able dicts; the fuzz engine keys them
    by the :class:`~repro.fuzz.session.FuzzJob` itself, whose ``spec()``
    is the canonical JSON form.  ``repr`` is the last-ditch fallback so
    chaos never crashes a campaign over an exotic key — determinism of
    the *digest* is all the fault schedule needs.
    """
    if hasattr(key, "spec"):
        key = key.spec()
    try:
        return key_digest(key)
    except TypeError:
        return key_digest(repr(key))


def _emulated_crash(job: Any) -> Payload:
    """Inline stand-in for a worker crash (no pool to break in-process)."""
    return failure_payload(
        "WorkerCrashError", "chaos: injected worker crash", transient=True
    )


def _emulated_hang(job: Any) -> Payload:
    """Inline stand-in for a hung worker (no wave deadline in-process)."""
    return failure_payload(
        "JobTimeoutError", "chaos: injected worker hang", transient=True
    )


class ChaosFS(RealFS):
    """Fault-injecting filesystem shim for :class:`~repro.harness.store.ResultStore`.

    Only ``write_text`` misbehaves — and only on an entry's first
    ``fault_attempts`` writes, keyed by the *entry* name (temp-file
    suffixes are stripped), so the rewrite after a quarantine goes
    through clean and the campaign converges.  Injected corruptions are
    counted in :attr:`corrupt_writes`; the chaos check requires the
    store to quarantine every one of them.
    """

    def __init__(self, plan: FaultPlan, base: Optional[RealFS] = None):
        self.plan = plan
        self.base = base if base is not None else RealFS()
        self.injected: List[Dict[str, Any]] = []
        self.corrupt_writes = 0
        self._write_counts: Dict[str, int] = {}

    @staticmethod
    def _entry_name(path: Path) -> str:
        """The durable entry a write targets, temp suffix stripped."""
        return Path(path).name.split(".tmp-")[0]

    def read_text(self, path: Path) -> str:
        return self.base.read_text(path)

    def replace(self, src: Path, dst: Path) -> None:
        self.base.replace(src, dst)

    def mkdir(self, path: Path) -> None:
        self.base.mkdir(path)

    def write_text(self, path: Path, text: str) -> None:
        name = self._entry_name(path)
        nth = self._write_counts.get(name, 0)
        self._write_counts[name] = nth + 1
        fault = self.plan.write_fault(name, nth)
        if fault is not None:
            self.injected.append({"fault": fault, "entry": name, "nth": nth})
        if fault == "disk_full":
            # The real error the store must survive, not a repro-typed
            # wrapper: degradation triggers on errno, nothing else.
            raise OSError(errno.ENOSPC, "chaos: injected disk-full")  # repro: noqa[RPL301] - injecting the OS-level error under test
        if fault == "torn_write":
            self.corrupt_writes += 1
            text = text[: max(1, len(text) // 3)]
        elif fault == "corrupt_write":
            self.corrupt_writes += 1
            text = self._corrupt(text)
        self.base.write_text(path, text)

    @staticmethod
    def _corrupt(text: str) -> str:
        """Valid JSON, wrong bytes: only the checksum can catch this."""
        try:
            entry = json.loads(text)
        except ValueError:
            return text[: max(1, len(text) // 2)]
        if isinstance(entry, dict) and isinstance(entry.get("payload"), dict):
            entry = dict(entry)
            entry["payload"] = dict(entry["payload"])
            entry["payload"]["__chaos_corrupted__"] = True
            return json.dumps(entry, sort_keys=True)
        return text + " trailing garbage"


class ChaosEngine:
    """One fault plan, armed: the object sessions and engines accept.

    Holds the plan, the shared :class:`ChaosFS` (one per campaign so
    write counts persist across resumed sessions), the injection log,
    and the interrupt trigger.  :class:`~repro.harness.jobs.JobEngine`
    calls :meth:`wrap` per submission and :meth:`on_resolved` per
    resolution; neither import goes the other way, so the engine stays
    chaos-free when no plan is armed.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.fs = ChaosFS(plan)
        self.injected: List[Dict[str, Any]] = []
        self.resolved = 0
        self._interrupted = False

    def wrap(
        self,
        worker: Callable[[Any], Payload],
        key: Any,
        job: Any,
        attempt: int,
        inline: bool = False,
    ) -> Tuple[Callable[..., Payload], Tuple[Any, ...]]:
        """The (callable, args) the engine should run for this submission.

        Healthy jobs pass straight through.  In a pool, doomed jobs run
        :func:`chaos_worker`; inline (no pool to crash, no deadline to
        trip) crash/hang are emulated as the transient failure payloads
        the engine would have synthesized, so retry semantics still get
        exercised.
        """
        digest = chaos_key_digest(key)
        fault = self.plan.worker_fault(digest, attempt)
        if fault is None:
            return worker, (job,)
        self.injected.append(
            {"fault": fault, "digest": digest[:16], "attempt": attempt}
        )
        if inline:
            if fault == "crash":
                return _emulated_crash, (job,)
            if fault == "hang":
                return _emulated_hang, (job,)
            time.sleep(self.plan.slow_seconds)
            return worker, (job,)
        return chaos_worker, (
            fault, worker, job, self.plan.hang_seconds, self.plan.slow_seconds
        )

    def on_resolved(self, key: Any, payload: Payload) -> None:
        """Fire the (single) mid-wave interrupt once enough jobs resolved.

        Raised *after* the resolution was stored, so the interrupted
        campaign keeps it — exactly what a kill between two stores does.
        """
        self.resolved += 1
        if (
            self.plan.interrupt_after is not None
            and not self._interrupted
            and self.resolved >= self.plan.interrupt_after
        ):
            self._interrupted = True
            self.injected.append(
                {"fault": "interrupt", "after_resolved": self.resolved}
            )
            raise ChaosInterrupt("chaos: injected mid-wave interrupt")

    def injected_summary(self) -> Dict[str, int]:
        """Fault kind -> times injected, across workers and writes."""
        summary: Dict[str, int] = {}
        for event in self.injected + self.fs.injected:
            summary[event["fault"]] = summary.get(event["fault"], 0) + 1
        return summary


@dataclass
class ChaosCheckReport:
    """Outcome of one differential chaos check."""

    seed: int = 0
    plan: str = ""
    pairs: int = 0
    identical: bool = False
    resumes: int = 0
    quarantined: int = 0
    corrupt_writes: int = 0
    injected: Dict[str, int] = field(default_factory=dict)
    verify_disk_hits: int = 0
    verify_simulated: int = 0
    problems: List[str] = field(default_factory=list)
    elapsed: float = 0.0
    work_dir: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.identical and not self.problems

    def render(self) -> str:
        injected = (
            ", ".join(f"{k}×{v}" for k, v in sorted(self.injected.items()))
            or "none"
        )
        lines = [
            f"chaos check ({self.plan})",
            f"  injected: {injected}",
            f"  {self.pairs} pair(s), {self.resumes} resume(s), "
            f"{self.quarantined} quarantined / {self.corrupt_writes} corrupted "
            f"write(s), verify pass: {self.verify_disk_hits} from store, "
            f"{self.verify_simulated} recomputed",
            f"  results bit-identical to fault-free run: "
            f"{'yes' if self.identical else 'NO'}",
        ]
        for problem in self.problems:
            lines.append(f"  PROBLEM: {problem}")
        lines.append(
            f"  {'OK' if self.ok else 'FAILED'} in {self.elapsed:.1f}s"
            + (f" (artifacts: {self.work_dir})" if self.work_dir and not self.ok else "")
        )
        return "\n".join(lines)


def run_chaos_check(
    seed: int = 0,
    benchmarks: Sequence[str] = ("hmmer", "mcf"),
    schemes: Sequence[str] = ("unsafe", "dom+ap"),
    warmup: int = 300,
    measure: int = 900,
    jobs: int = 2,
    config: Optional[SystemConfig] = None,
    plan: Optional[FaultPlan] = None,
    work_dir: Optional[os.PathLike] = None,
    job_timeout: Optional[float] = 20.0,
    retries: int = 2,
    max_resumes: int = 10,
    mp_context: Optional[str] = None,
) -> ChaosCheckReport:
    """The sweep-under-faults differential.

    1. Run the grid fault-free into a clean cache (the reference).
    2. Run it again under ``plan`` into a second cache, resuming over
       injected interrupts (each resume is the real ``--resume`` path).
    3. Re-read the battered cache with a fault-free session: corrupt
       entries must quarantine and recompute, everything else must load.
    4. Require the final results bit-identical to the reference and one
       quarantine for every corruption the plan injected.

    With ``work_dir=None`` a temp directory is used and removed on
    success; on failure it is kept (and named in the report) so the
    quarantine and ledger can be inspected.
    """
    from repro.harness.parallel import ParallelSession

    started = time.monotonic()
    plan = plan if plan is not None else FaultPlan.chaotic(seed)
    report = ChaosCheckReport(seed=plan.seed, plan=plan.describe())
    cleanup = work_dir is None
    root = Path(work_dir) if work_dir is not None else Path(
        tempfile.mkdtemp(prefix="repro-chaos-")
    )
    report.work_dir = str(root)
    benchmarks = tuple(benchmarks)
    schemes = tuple(schemes)

    def session(cache: Path, chaos=None, resume=False) -> ParallelSession:
        return ParallelSession(
            config=config,
            warmup=warmup,
            measure=measure,
            jobs=jobs,
            cache_dir=cache,
            job_timeout=job_timeout if chaos is not None else None,
            retries=retries if chaos is not None else 1,
            retry_backoff=0.01,
            mp_context=mp_context,
            chaos=chaos,
            resume=resume,
        )

    # 1. Fault-free reference.
    expected = session(root / "clean").sweep(benchmarks, schemes)

    # 2. The same grid under the fault plan, resuming over interrupts.
    chaos = ChaosEngine(plan)
    quarantined = 0
    completed = False
    for attempt in range(max_resumes + 1):
        chaotic = session(root / "chaos", chaos=chaos, resume=attempt > 0)
        try:
            chaotic.sweep(benchmarks, schemes)
            completed = True
        except ChaosInterrupt:
            report.resumes += 1
        except ReproError as error:
            report.problems.append(
                f"chaos sweep failed instead of converging: "
                f"{type(error).__name__}: {error}"
            )
        finally:
            quarantined += chaotic.store_counters().get("quarantined", 0)
        if completed or report.problems:
            break
    if not completed and not report.problems:
        report.problems.append(
            f"chaos sweep did not complete within {max_resumes} resume(s)"
        )

    # 3. Fault-free verification read of the battered cache.
    verify = session(root / "chaos")
    actual = verify.sweep(benchmarks, schemes)
    quarantined += verify.store_counters().get("quarantined", 0)

    # 4. The verdict.
    report.pairs = len(expected)
    report.quarantined = quarantined
    report.corrupt_writes = chaos.fs.corrupt_writes
    report.injected = chaos.injected_summary()
    report.verify_disk_hits = verify.disk_hits
    report.verify_simulated = verify.simulated
    report.identical = len(actual) == len(expected) and all(
        a.benchmark == e.benchmark
        and a.scheme == e.scheme
        and a.stats == e.stats
        for a, e in zip(actual, expected)
    )
    if not report.identical:
        report.problems.append(
            "results under faults diverged from the fault-free reference"
        )
    if quarantined < chaos.fs.corrupt_writes:
        report.problems.append(
            f"only {quarantined} of {chaos.fs.corrupt_writes} injected "
            f"corruption(s) were quarantined"
        )
    report.elapsed = time.monotonic() - started
    if cleanup and report.ok:
        shutil.rmtree(root, ignore_errors=True)
        report.work_dir = None
    return report
