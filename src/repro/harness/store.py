"""A content-addressed, corruption-detecting result store + progress ledger.

ROADMAP item 2 promotes the sweep cache into a store that can back a
serve mode: millions of entries, concurrent writers, and — because long
campaigns *will* be killed, run out of disk, and tear writes — an
integrity story that is checked on every read instead of assumed.

:class:`ResultStore` addresses entries by the SHA-256 digest of their
canonical-JSON key, sharded into 256 two-hex-digit subdirectories so no
single directory grows unbounded.  Each entry is a versioned JSON
envelope carrying the full key (so a digest-prefix collision reads as a
miss, never a wrong answer) and a SHA-256 checksum of the canonical
payload.  On read, anything that fails validation — unparseable JSON,
wrong version, key mismatch, checksum mismatch — is **quarantined**:
moved into ``quarantine/`` (never returned, never silently deleted) and
counted, so a torn or corrupted entry costs one recompute instead of a
wrong result.  Writes go through unique-temp-file + fsync + rename, so
concurrent writers race safely and readers never observe a partial
entry.  After :attr:`degrade_after` consecutive persistent disk errors
(ENOSPC, EACCES, EROFS, EDQUOT) the store degrades to an in-memory dict
— the campaign finishes with a ``degraded`` flag in its counters rather
than dying at 90%.

:class:`ProgressLedger` is the checkpoint half: an append-only JSONL
journal, fsynced per record, that a sweep or fuzz campaign writes as
each job resolves.  A ``--resume`` run replays it — tolerating a torn
final line from a kill -9 — so at most the in-flight wave is recomputed.

All filesystem access goes through a small injectable :class:`RealFS`
shim so the chaos harness (:mod:`repro.harness.chaos`) can inject torn
writes, corrupt payloads, and disk-full errors deterministically.
"""

from __future__ import annotations

import errno
import hashlib
import itertools
import json
import os
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional

from repro.common.io import atomic_write_json, atomic_write_text  # noqa: F401  (re-exported)

#: Bump when the entry envelope layout changes; entries with any other
#: version fail validation and are quarantined (stale formats can never
#: be mis-loaded as current results).
STORE_FORMAT_VERSION = 2

#: Subdirectory (under the store root) where invalid entries are moved.
QUARANTINE_DIR = "quarantine"

#: Errnos that indicate a *persistent* disk problem — retrying the next
#: write will not help, so they count toward degradation.  A transient
#: hiccup (EINTR, EIO on one sector...) does not.
DEGRADE_ERRNOS = frozenset(
    {errno.ENOSPC, errno.EACCES, errno.EROFS, errno.EDQUOT}
)


def canonical_json(value: Any) -> str:
    """The one serialization used for digests and checksums: sorted keys,
    no whitespace, so logically-equal values hash identically."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def key_digest(key: Any) -> str:
    """SHA-256 hex digest of a (JSON-able) store key."""
    return hashlib.sha256(canonical_json(key).encode("utf-8")).hexdigest()


def payload_checksum(payload: Any) -> str:
    """SHA-256 hex digest of a canonical payload — the embedded integrity
    check every read re-verifies."""
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


def campaign_id(keys: Any) -> str:
    """Stable identity of a campaign: digest of its sorted key digests.

    Two campaigns with the same job set (in any order) share an id, so a
    ``--resume`` run can tell "same campaign, continue" from "different
    grid, start over".
    """
    digests = sorted(key_digest(key) for key in keys)
    return hashlib.sha256("\n".join(digests).encode("utf-8")).hexdigest()


class RealFS:
    """The store's filesystem surface, as an injectable object.

    Every byte the store persists flows through these four methods, which
    is exactly the seam the chaos harness replaces to inject torn writes,
    corrupt payloads, and disk-full errors without patching the store.
    """

    def read_text(self, path: Path) -> str:
        return Path(path).read_text()

    def write_text(self, path: Path, text: str) -> None:
        with open(path, "w") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())

    def replace(self, src: Path, dst: Path) -> None:
        os.replace(src, dst)

    def mkdir(self, path: Path) -> None:
        Path(path).mkdir(parents=True, exist_ok=True)


class ResultStore:
    """Content-addressed JSON store: sharded, checksummed, self-healing.

    Parameters
    ----------
    root:
        Store directory (created lazily on first write).
    fs:
        Filesystem shim; defaults to :class:`RealFS`.  The chaos harness
        passes a fault-injecting wrapper here.
    namer:
        Optional ``key -> slug`` hook prepended to entry file names so a
        human browsing the shards sees ``hmmer-dom_ap-...`` rather than
        bare digests.  Purely cosmetic: addressing uses the digest.
    degrade_after:
        Consecutive persistent disk errors (:data:`DEGRADE_ERRNOS`)
        tolerated before the store flips to in-memory mode.
    """

    def __init__(
        self,
        root: os.PathLike,
        fs: Optional[RealFS] = None,
        namer: Optional[Callable[[Any], str]] = None,
        degrade_after: int = 3,
    ):
        self.root = Path(root)
        self.fs = fs if fs is not None else RealFS()
        self.namer = namer
        self.degrade_after = max(1, degrade_after)
        # Provenance / health counters (see :meth:`counters`).
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.write_errors = 0
        self.quarantined = 0
        self.degraded = False
        self.quarantine_log: List[Dict[str, str]] = []
        self._memory: Dict[str, Any] = {}
        self._error_streak = 0
        self._tmp_counter = itertools.count()

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------
    def path_for(self, key: Any) -> Path:
        """Where ``key``'s entry lives: ``root/<digest[:2]>/<name>.json``."""
        digest = key_digest(key)
        if self.namer is not None:
            name = f"v{STORE_FORMAT_VERSION}-{self.namer(key)}-{digest[:16]}.json"
        else:
            name = f"v{STORE_FORMAT_VERSION}-{digest}.json"
        return self.root / digest[:2] / name

    @property
    def quarantine_dir(self) -> Path:
        return self.root / QUARANTINE_DIR

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    def get(self, key: Any) -> Optional[Any]:
        """The payload stored for ``key``, or ``None`` on a miss.

        A corrupt entry (torn write, garbage, checksum or key mismatch,
        stale version) is quarantined and reads as a miss — it is never
        returned and never raises.
        """
        digest = key_digest(key)
        if digest in self._memory:
            self.hits += 1
            return self._memory[digest]
        path = self.path_for(key)
        try:
            text = self.fs.read_text(path)
        except FileNotFoundError:
            self.misses += 1
            return None
        except OSError as error:
            self._note_disk_error(error)
            self.misses += 1
            return None
        payload, problem = self._validate(text, key)
        if problem is not None:
            self._quarantine(path, problem)
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def _validate(self, text: str, key: Any):
        """``(payload, None)`` for a sound entry, ``(None, reason)`` else."""
        try:
            entry = json.loads(text)
        except ValueError:
            return None, "unparseable (torn write or garbage)"
        if not isinstance(entry, dict):
            return None, "not an entry envelope"
        if entry.get("version") != STORE_FORMAT_VERSION:
            return None, f"version {entry.get('version')!r} != {STORE_FORMAT_VERSION}"
        normalized = json.loads(canonical_json(key))
        if entry.get("key") != normalized:
            return None, "key mismatch (collision or stale entry)"
        if "payload" not in entry:
            return None, "missing payload"
        payload = entry["payload"]
        if entry.get("checksum") != payload_checksum(payload):
            return None, "checksum mismatch (corrupted payload)"
        return payload, None

    def _quarantine(self, path: Path, reason: str) -> None:
        """Move a bad entry aside — kept for post-mortems, never re-read."""
        self.quarantined += 1
        self.quarantine_log.append({"path": str(path), "reason": reason})
        try:
            self.fs.mkdir(self.quarantine_dir)
            self.fs.replace(path, self.quarantine_dir / path.name)
        except OSError as error:
            # Even if the move fails (read-only disk...), the entry was
            # already counted and will be treated as a miss; a best-effort
            # unlink-by-overwrite is worse than leaving it for the next
            # quarantine attempt.
            self._note_disk_error(error)

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    def put(self, key: Any, payload: Any) -> bool:
        """Persist ``payload`` under ``key``; returns True if it hit disk.

        Failures never propagate: a failed write falls back to the
        in-memory map (so the current session still sees the result) and
        repeated persistent errors degrade the whole store to memory.
        """
        digest = key_digest(key)
        if self.degraded:
            self._memory[digest] = payload
            return False
        path = self.path_for(key)
        entry = {
            "version": STORE_FORMAT_VERSION,
            "key": json.loads(canonical_json(key)),
            "checksum": payload_checksum(payload),
            "payload": payload,
        }
        tmp = path.with_name(
            f"{path.name}.tmp-{os.getpid()}-{next(self._tmp_counter)}"
        )
        try:
            self.fs.mkdir(path.parent)
            self.fs.write_text(tmp, canonical_json(entry))
            self.fs.replace(tmp, path)
        except OSError as error:
            self.write_errors += 1
            self._note_disk_error(error)
            self._memory[digest] = payload
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return False
        self.writes += 1
        self._error_streak = 0
        return True

    # ------------------------------------------------------------------
    # Health
    # ------------------------------------------------------------------
    def _note_disk_error(self, error: OSError) -> None:
        if error.errno in DEGRADE_ERRNOS:
            self._error_streak += 1
            if self._error_streak >= self.degrade_after:
                self.degraded = True

    def counters(self) -> Dict[str, Any]:
        """Provenance and health summary for reporting/asserting."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "write_errors": self.write_errors,
            "quarantined": self.quarantined,
            "degraded": self.degraded,
            "memory_entries": len(self._memory),
        }


#: Bump when the ledger record layout changes; a resume against any
#: other version starts fresh instead of misreading old records.
LEDGER_FORMAT_VERSION = 1


class ProgressLedger:
    """Append-only JSONL journal of resolved jobs, for ``--resume``.

    The first line is a header naming the campaign (see
    :func:`campaign_id`); each subsequent line records one resolved job:
    its key digest, outcome, and — for failures — the full failure
    payload so a resumed run can replay deterministic failures without
    re-simulating them.  Records are flushed and fsynced as written, so
    a kill -9 loses at most a torn final line, which the resume parse
    skips by construction (one record per line, parsed independently).

    Successful results are *not* duplicated here — they live in the
    :class:`ResultStore`; the ledger entry is just the done-marker.
    """

    def __init__(self, path: os.PathLike, campaign: str, resume: bool = False):
        self.path = Path(path)
        self.campaign = campaign
        self.entries: Dict[str, Dict[str, Any]] = {}
        self.resumed = False
        if resume:
            self._load()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = open(self.path, "a" if self.resumed else "w")
        if not self.resumed:
            self._append(
                {
                    "kind": "header",
                    "version": LEDGER_FORMAT_VERSION,
                    "campaign": self.campaign,
                }
            )

    def _load(self) -> None:
        """Adopt an existing ledger if it belongs to this campaign."""
        try:
            lines = self.path.read_text().splitlines()
        except OSError:
            return
        if not lines:
            return
        try:
            header = json.loads(lines[0])
        except ValueError:
            return
        if (
            not isinstance(header, dict)
            or header.get("kind") != "header"
            or header.get("version") != LEDGER_FORMAT_VERSION
            or header.get("campaign") != self.campaign
        ):
            return
        for line in lines[1:]:
            try:
                record = json.loads(line)
            except ValueError:
                continue  # torn final line from a kill -9 mid-append
            if isinstance(record, dict) and record.get("kind") == "resolved":
                digest = record.get("digest")
                if digest:
                    self.entries[digest] = record
        self.resumed = True

    def record(self, key: Any, ok: bool, payload: Optional[Any] = None) -> None:
        """Journal one resolved job the moment it resolves."""
        entry: Dict[str, Any] = {
            "kind": "resolved",
            "digest": key_digest(key),
            "key": json.loads(canonical_json(key)),
            "ok": bool(ok),
        }
        if payload is not None:
            entry["payload"] = payload
        self.entries[entry["digest"]] = entry
        self._append(entry)

    def get(self, key: Any) -> Optional[Dict[str, Any]]:
        return self.entries.get(key_digest(key))

    def __len__(self) -> int:
        return len(self.entries)

    def _append(self, record: Dict[str, Any]) -> None:
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        try:
            self._handle.close()
        except OSError:
            pass
