"""Multi-window (simpoint-style) sampling with dispersion estimates.

The paper measures up to five 100M-instruction simpoints per benchmark;
single-window measurements on a synthetic kernel can land in an atypical
phase (cold caches, an unlucky stretch of mispredicts).  This module
measures several consecutive windows of one run and reports per-window
IPCs plus mean / standard deviation, so results can be quoted with error
bars and the harness tests can assert measurement stability.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

from repro.common.config import SystemConfig
from repro.common.errors import ConfigError, EmptyMeasurementError
from repro.pipeline.core import Core
from repro.schemes import make_scheme
from repro.workloads.profiles import build_workload


@dataclass
class SampledResult:
    """Per-window IPCs for one (benchmark, scheme) measurement."""

    benchmark: str
    scheme: str
    window_instructions: int
    ipcs: List[float] = field(default_factory=list)

    @property
    def mean(self) -> float:
        return sum(self.ipcs) / len(self.ipcs)

    @property
    def stdev(self) -> float:
        if len(self.ipcs) < 2:
            return 0.0
        mean = self.mean
        return math.sqrt(
            sum((x - mean) ** 2 for x in self.ipcs) / (len(self.ipcs) - 1)
        )

    @property
    def relative_stdev(self) -> float:
        """Coefficient of variation; the stability figure of merit."""
        mean = self.mean
        return self.stdev / mean if mean else 0.0

    def format_line(self) -> str:
        return (
            f"{self.benchmark}/{self.scheme}: "
            f"IPC {self.mean:.3f} ± {self.stdev:.3f} "
            f"({len(self.ipcs)} windows of {self.window_instructions})"
        )


def sample_benchmark(
    benchmark: str,
    scheme: str,
    windows: int = 4,
    window_instructions: int = 6000,
    warmup: int = 3000,
    config: Optional[SystemConfig] = None,
) -> SampledResult:
    """Measure ``windows`` consecutive instruction windows of one run.

    Windows share one core (caches and predictors stay warm across
    windows, as with consecutive simpoints of one program), so their IPCs
    estimate steady-state dispersion rather than cold-start effects.
    """
    if windows < 1:
        raise ConfigError("need at least one window")
    core = Core(build_workload(benchmark), make_scheme(scheme), config=config)
    if warmup > 0:
        core.run(max_instructions=warmup)
    result = SampledResult(
        benchmark=benchmark, scheme=scheme,
        window_instructions=window_instructions,
    )
    committed = core.stats.committed_instructions
    for index in range(windows):
        start_cycle = core.cycle
        target = committed + window_instructions
        core.run(max_instructions=target)
        delta_instructions = core.stats.committed_instructions - committed
        delta_cycles = core.cycle - start_cycle
        committed = core.stats.committed_instructions
        if delta_cycles == 0 or delta_instructions == 0:
            break  # program ended inside the window
        result.ipcs.append(delta_instructions / delta_cycles)
    if not result.ipcs:
        raise EmptyMeasurementError(
            "program too short for even one sampling window",
            benchmark=benchmark, scheme=scheme,
        )
    return result


def normalized_with_error(
    benchmark: str,
    scheme: str,
    windows: int = 4,
    window_instructions: int = 6000,
    warmup: int = 3000,
    config: Optional[SystemConfig] = None,
) -> tuple:
    """(mean normalized IPC, combined relative stdev) vs the unsafe run."""
    base = sample_benchmark(
        benchmark, "unsafe", windows, window_instructions, warmup, config
    )
    measured = sample_benchmark(
        benchmark, scheme, windows, window_instructions, warmup, config
    )
    ratio = measured.mean / base.mean
    spread = math.sqrt(
        measured.relative_stdev**2 + base.relative_stdev**2
    )
    return ratio, spread
