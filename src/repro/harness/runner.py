"""Run (benchmark, scheme) pairs and collect measurement-window stats.

The paper measures 100M-instruction simpoints after warmup; we scale that
to Python speeds with an explicit warmup window (caches, branch predictor,
and stride table train) followed by a measurement window whose counter
*deltas* are reported.  :class:`ExperimentSession` memoizes runs so the
figures that share configurations (6, 7, 8 all use the same sweep) don't
re-simulate.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, Iterable, List, Optional, Tuple

from repro.common.config import SystemConfig, default_config
from repro.common.stats import RunResult, SimStats
from repro.pipeline.core import Core
from repro.schemes import make_scheme
from repro.workloads.profiles import build_workload, get_profile

DEFAULT_WARMUP = 6_000
DEFAULT_MEASURE = 30_000

#: The seven configurations of Figure 6 / Figure 8, in plot order.
FIGURE_SCHEMES: Tuple[str, ...] = (
    "nda",
    "nda+ap",
    "stt",
    "stt+ap",
    "dom",
    "dom+ap",
)
BASELINE_SCHEME = "unsafe"


def _stats_delta(before: Dict[str, int], after: SimStats) -> SimStats:
    delta = SimStats()
    for f in fields(SimStats):
        setattr(delta, f.name, getattr(after, f.name) - before[f.name])
    return delta


def run_program(
    program,
    scheme: str,
    config: Optional[SystemConfig] = None,
    warmup: int = DEFAULT_WARMUP,
    measure: int = DEFAULT_MEASURE,
) -> RunResult:
    """Run ``program`` under ``scheme`` and return measurement-window stats."""
    core = Core(program, make_scheme(scheme), config=config)
    if warmup > 0:
        core.run(max_instructions=warmup)
    before = core.stats.as_dict()
    before["cycles"] = core.cycle
    core.run(max_instructions=warmup + measure)
    core.stats.cycles = core.cycle
    stats = _stats_delta(before, core.stats)
    return RunResult(
        benchmark=program.name,
        scheme=scheme,
        stats=stats,
        metadata={"warmup": warmup, "measure": measure},
    )


def run_benchmark(
    benchmark: str,
    scheme: str,
    config: Optional[SystemConfig] = None,
    warmup: int = DEFAULT_WARMUP,
    measure: int = DEFAULT_MEASURE,
) -> RunResult:
    """Build the named SPEC stand-in and measure it under ``scheme``."""
    get_profile(benchmark)  # fail fast on unknown names
    program = build_workload(benchmark)
    return run_program(program, scheme, config, warmup, measure)


@dataclass
class ExperimentSession:
    """A memoizing runner shared by all figure-regeneration code."""

    config: Optional[SystemConfig] = None
    warmup: int = DEFAULT_WARMUP
    measure: int = DEFAULT_MEASURE

    def __post_init__(self) -> None:
        if self.config is None:
            self.config = default_config()
        self._cache: Dict[Tuple[str, str], RunResult] = {}

    def run(self, benchmark: str, scheme: str) -> RunResult:
        key = (benchmark, scheme)
        if key not in self._cache:
            self._cache[key] = run_benchmark(
                benchmark, scheme, self.config, self.warmup, self.measure
            )
        return self._cache[key]

    def sweep(
        self, benchmarks: Iterable[str], schemes: Iterable[str]
    ) -> List[RunResult]:
        return [self.run(b, s) for b in benchmarks for s in schemes]

    def normalized_ipc(self, benchmark: str, scheme: str) -> float:
        """IPC of ``scheme`` normalized to the unsafe baseline."""
        baseline = self.run(benchmark, BASELINE_SCHEME).ipc
        if baseline == 0:
            raise ZeroDivisionError(f"{benchmark}: baseline committed nothing")
        return self.run(benchmark, scheme).ipc / baseline

    def cached_runs(self) -> int:
        return len(self._cache)
