"""Run (benchmark, scheme) pairs and collect measurement-window stats.

The paper measures 100M-instruction simpoints after warmup; we scale that
to Python speeds with an explicit warmup window (caches, branch predictor,
and stride table train) followed by a measurement window whose counter
*deltas* are reported.  :class:`ExperimentSession` memoizes runs so the
figures that share configurations (6, 7, 8 all use the same sweep) don't
re-simulate.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, Iterable, List, Optional, Tuple

from repro.common.config import SystemConfig, default_config
from repro.common.errors import EmptyMeasurementError
from repro.common.stats import RunResult, SimStats
from repro.pipeline.core import Core
from repro.schemes import make_scheme
from repro.workloads.profiles import build_workload, get_profile

DEFAULT_WARMUP = 6_000
DEFAULT_MEASURE = 30_000

#: The seven configurations of Figure 6 / Figure 8, in plot order.
FIGURE_SCHEMES: Tuple[str, ...] = (
    "nda",
    "nda+ap",
    "stt",
    "stt+ap",
    "dom",
    "dom+ap",
)
BASELINE_SCHEME = "unsafe"


def _stats_delta(before: Dict[str, int], after: SimStats) -> SimStats:
    delta = SimStats()
    for f in fields(SimStats):
        setattr(delta, f.name, getattr(after, f.name) - before[f.name])
    return delta


def run_program(
    program,
    scheme: str,
    config: Optional[SystemConfig] = None,
    warmup: int = DEFAULT_WARMUP,
    measure: int = DEFAULT_MEASURE,
) -> RunResult:
    """Run ``program`` under ``scheme`` and return measurement-window stats."""
    core = Core(program, make_scheme(scheme), config=config)
    if warmup > 0:
        core.run(max_instructions=warmup)
    # run() maintains stats.cycles at every return, reporting the cycle
    # after the last executed step on a budget break — NOT core.cycle,
    # whose trailing idle-skip jump may overshoot into a stretch nothing
    # observes.  Window boundaries must use the corrected value so cycle
    # deltas are independent of idle skipping.
    before = core.stats.as_dict()
    core.run(max_instructions=warmup + measure)
    stats = _stats_delta(before, core.stats)
    if core.halted and measure > 0 and stats.committed_instructions == 0:
        raise EmptyMeasurementError(
            f"program shorter than warmup window (halted after "
            f"{before['committed_instructions']} instructions, "
            f"warmup={warmup})",
            benchmark=program.name,
            scheme=scheme,
        )
    return RunResult(
        benchmark=program.name,
        scheme=scheme,
        stats=stats,
        metadata={"warmup": warmup, "measure": measure},
    )


def run_benchmark(
    benchmark: str,
    scheme: str,
    config: Optional[SystemConfig] = None,
    warmup: int = DEFAULT_WARMUP,
    measure: int = DEFAULT_MEASURE,
) -> RunResult:
    """Build the named SPEC stand-in and measure it under ``scheme``."""
    get_profile(benchmark)  # fail fast on unknown names
    program = build_workload(benchmark)
    return run_program(program, scheme, config, warmup, measure)


#: The memo key of one run: (benchmark, scheme, warmup, measure,
#: config fingerprint).  The window sizes and the config digest are part
#: of the key so mutating ``session.warmup`` / ``session.config`` after a
#: run can never replay results from the old configuration, and so the
#: in-memory memo and the on-disk cache (:mod:`repro.harness.parallel`)
#: agree on what "the same experiment" means.
RunKey = Tuple[str, str, int, int, str]


def run_key(
    benchmark: str,
    scheme: str,
    warmup: int,
    measure: int,
    config: SystemConfig,
) -> RunKey:
    """The canonical memo key shared by every runner and cache layer."""
    return (benchmark, scheme, warmup, measure, config.fingerprint())


@dataclass
class ExperimentSession:
    """A memoizing runner shared by all figure-regeneration code."""

    config: Optional[SystemConfig] = None
    warmup: int = DEFAULT_WARMUP
    measure: int = DEFAULT_MEASURE

    def __post_init__(self) -> None:
        if self.config is None:
            self.config = default_config()
        self._cache: Dict[RunKey, RunResult] = {}

    def _key(self, benchmark: str, scheme: str) -> RunKey:
        return run_key(benchmark, scheme, self.warmup, self.measure, self.config)

    def run(self, benchmark: str, scheme: str) -> RunResult:
        key = self._key(benchmark, scheme)
        if key not in self._cache:
            self._cache[key] = run_benchmark(
                benchmark, scheme, self.config, self.warmup, self.measure
            )
        return self._cache[key]

    def sweep(
        self, benchmarks: Iterable[str], schemes: Iterable[str]
    ) -> List[RunResult]:
        return [self.run(b, s) for b in benchmarks for s in schemes]

    def normalized_ipc(self, benchmark: str, scheme: str) -> float:
        """IPC of ``scheme`` normalized to the unsafe baseline."""
        baseline = self.run(benchmark, BASELINE_SCHEME).ipc
        if baseline == 0:
            raise EmptyMeasurementError(
                "baseline committed nothing in its measurement window",
                benchmark=benchmark,
                scheme=BASELINE_SCHEME,
            )
        return self.run(benchmark, scheme).ipc / baseline

    def cached_runs(self) -> int:
        return len(self._cache)
