"""Performance baseline for the event-driven scheduler (``repro bench``).

Times the figure6 sweep — every workload profile under the unsafe
baseline and the scheme grid — twice per (benchmark, scheme) pair: once
with the event-driven loop (``idle_skip=True``, the default) and once
with the per-cycle reference loop (``idle_skip=False``, the pre-existing
tick shape that visits every pipeline phase every cycle).  Each pair is
**differentially verified**: the two runs must produce bit-identical
:class:`~repro.common.stats.SimStats`, cycles included, or the bench
aborts with :class:`StatsMismatchError`.  A baseline that traded
correctness for speed is worthless.

The output is a JSON document (checked in as ``BENCH_figure6.json``)
with one record per pair — simulated instructions, cycles, scheduler
steps, wall-clock for both loops, simulated instructions per wall
second, and the event/reference speedup — plus aggregate totals.  Wall
times are machine-dependent; the checked-in numbers document the shape
of the win (step reduction, where skipping pays) rather than absolute
throughput, and ``compare_baselines`` applies a generous tolerance.

Each pair's wall time is the **best of N samples** (default
``DEFAULT_SAMPLES``), every sample a fresh core over the same program.
A single cold sample conflates simulator throughput with allocator
warm-up, CPU frequency ramp, and scheduling noise — observed spread
between the first and best sample of an identical run exceeds 2x on an
idle container, which is larger than any optimization this baseline is
meant to defend.  The minimum is the right estimator for a
deterministic workload: noise is strictly additive, so the smallest
sample is the closest observation of the true cost.  N is recorded in
the baseline's environment block (``timing_samples``) so a baseline
measured under a different policy is visibly incomparable.  Every
sample must produce bit-identical stats (cross-sample determinism plus
the event/reference equivalence), so more samples also means more
differential coverage, not just less noise.

This module lives in the harness, outside the simulator's determinism
scope, so wall-clock access is legitimate here and nowhere deeper.
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.common.config import SystemConfig, default_config
from repro.common.errors import ReproError
from repro.common.io import atomic_write_text
from repro.harness.runner import BASELINE_SCHEME, FIGURE_SCHEMES
from repro.pipeline.core import Core
from repro.schemes import make_scheme
from repro.workloads.profiles import benchmark_names, build_workload

DEFAULT_BASELINE = "BENCH_figure6.json"

#: Warn when sim-IPS drops by more than this fraction vs the baseline.
DEFAULT_REGRESSION_THRESHOLD = 0.20

#: Timing samples per (pair, mode); the recorded wall is the minimum.
DEFAULT_SAMPLES = 3


class StatsMismatchError(ReproError):
    """The event-driven and reference loops disagreed on SimStats."""


@dataclass(frozen=True)
class BenchProfile:
    """One bench configuration: which pairs to time, for how long."""

    name: str
    benchmarks: Tuple[str, ...]
    schemes: Tuple[str, ...]
    instructions: int


def bench_profiles() -> Dict[str, BenchProfile]:
    """The two shipped profiles: the full figure6 grid and a CI-sized cut."""
    return {
        "full": BenchProfile(
            name="full",
            benchmarks=benchmark_names("all"),
            schemes=(BASELINE_SCHEME,) + FIGURE_SCHEMES,
            instructions=2_500,
        ),
        "quick": BenchProfile(
            name="quick",
            benchmarks=("mcf", "hmmer", "lbm", "gcc", "libquantum", "omnetpp"),
            schemes=(BASELINE_SCHEME, "stt", "dom+ap"),
            instructions=1_500,
        ),
    }


@dataclass
class BenchRecord:
    """Timing of one (benchmark, scheme) pair in both loop modes."""

    benchmark: str
    scheme: str
    instructions: int   # committed in the measured run
    cycles: int         # identical in both modes (verified)
    steps: int          # event-driven scheduler iterations
    wall_event: float   # seconds, event-driven loop
    wall_reference: float  # seconds, per-cycle reference loop
    sim_ips: float      # instructions / wall_event
    speedup: float      # wall_reference / wall_event
    cycles_per_step: float  # skip leverage: simulated cycles per step


def _timed_run(program, scheme: str, config: SystemConfig,
               instructions: int, idle_skip: bool) -> Tuple[Core, float]:
    core = Core(program, make_scheme(scheme), config=config,
                idle_skip=idle_skip)
    start = time.perf_counter()
    core.run(max_instructions=instructions)
    return core, time.perf_counter() - start


def _sampled_run(program, benchmark: str, scheme: str, config: SystemConfig,
                 instructions: int, idle_skip: bool,
                 samples: int) -> Tuple[Core, float]:
    """Best-of-``samples`` timing of one (pair, mode); returns the last
    core and the minimum wall time.

    The simulator is deterministic, so every sample must agree on
    SimStats bit-for-bit — a cross-sample divergence means hidden
    process-level state leaked into the model and invalidates the bench
    as loudly as an event/reference mismatch would.
    """
    best = float("inf")
    core: Optional[Core] = None
    first_stats = None
    for _ in range(samples):
        core, wall = _timed_run(program, scheme, config, instructions,
                                idle_skip)
        if wall < best:
            best = wall
        stats = core.stats.as_dict()
        if first_stats is None:
            first_stats = stats
        elif stats != first_stats:
            diffs = {
                k: (first_stats[k], stats[k])
                for k in stats if stats[k] != first_stats[k]
            }
            raise StatsMismatchError(
                f"({benchmark}, {scheme}): identical runs diverged across "
                f"timing samples (idle_skip={idle_skip}) — the simulator "
                f"is leaking state between runs: {diffs}"
            )
    return core, best


def bench_pair(
    benchmark: str,
    scheme: str,
    instructions: int,
    config: Optional[SystemConfig] = None,
    samples: int = DEFAULT_SAMPLES,
) -> BenchRecord:
    """Time one pair in both modes and verify stats equivalence."""
    if config is None:
        config = default_config()
    if samples < 1:
        raise ReproError(f"bench needs at least one timing sample, got {samples}")
    program = build_workload(benchmark)
    event, wall_event = _sampled_run(
        program, benchmark, scheme, config, instructions, True, samples
    )
    reference, wall_reference = _sampled_run(
        program, benchmark, scheme, config, instructions, False, samples
    )
    a, b = event.stats.as_dict(), reference.stats.as_dict()
    if a != b:
        diffs = {k: (a[k], b[k]) for k in a if a[k] != b[k]}
        raise StatsMismatchError(
            f"({benchmark}, {scheme}): event-driven and reference loops "
            f"diverged — the perf baseline is invalid: {diffs}"
        )
    committed = event.stats.committed_instructions
    steps = event._step_count
    return BenchRecord(
        benchmark=benchmark,
        scheme=scheme,
        instructions=committed,
        cycles=event.stats.cycles,
        steps=steps,
        wall_event=round(wall_event, 4),
        wall_reference=round(wall_reference, 4),
        sim_ips=round(committed / wall_event, 1) if wall_event > 0 else 0.0,
        speedup=round(wall_reference / wall_event, 3) if wall_event > 0 else 0.0,
        cycles_per_step=round(event.stats.cycles / steps, 2) if steps else 0.0,
    )


def _totals(records: Sequence[BenchRecord]) -> Dict[str, float]:
    wall_event = sum(r.wall_event for r in records)
    wall_reference = sum(r.wall_reference for r in records)
    instructions = sum(r.instructions for r in records)
    cycles = sum(r.cycles for r in records)
    steps = sum(r.steps for r in records)
    return {
        "pairs": len(records),
        "instructions": instructions,
        "cycles": cycles,
        "steps": steps,
        "wall_event": round(wall_event, 3),
        "wall_reference": round(wall_reference, 3),
        "sim_ips": round(instructions / wall_event, 1) if wall_event else 0.0,
        "speedup": round(wall_reference / wall_event, 3) if wall_event else 0.0,
        "cycles_per_step": round(cycles / steps, 2) if steps else 0.0,
    }


def run_bench(
    profile: str = "full",
    config: Optional[SystemConfig] = None,
    progress: Optional[Callable[[str], None]] = None,
    samples: int = DEFAULT_SAMPLES,
) -> Dict:
    """Run one profile; returns the payload fragment for that profile."""
    profiles = bench_profiles()
    if profile not in profiles:
        raise ReproError(
            f"unknown bench profile {profile!r}; expected one of "
            f"{sorted(profiles)}"
        )
    spec = profiles[profile]
    records: List[BenchRecord] = []
    for benchmark in spec.benchmarks:
        for scheme in spec.schemes:
            records.append(
                bench_pair(benchmark, scheme, spec.instructions, config,
                           samples=samples)
            )
            if progress is not None:
                r = records[-1]
                progress(
                    f"{benchmark:<14}{scheme:<9}{r.sim_ips:>10.0f}"
                    f"{r.speedup:>9.2f}{r.cycles_per_step:>10.1f}"
                )
    return {
        "profile": profile,
        "instructions_per_pair": spec.instructions,
        "timing_samples": samples,
        "records": [asdict(r) for r in records],
        "totals": _totals(records),
    }


def environment_fingerprint(samples: int = DEFAULT_SAMPLES) -> Dict[str, object]:
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "machine": platform.machine(),
        "system": platform.system(),
        "timing_samples": samples,
    }


def write_baseline(path: str, fragment: Dict) -> Dict:
    """Merge one profile's results into the baseline file at ``path``.

    Other profiles already recorded there are preserved, so ``--quick``
    refreshes never clobber the full grid (and vice versa)."""
    target = Path(path)
    payload: Dict = {"profiles": {}}
    if target.exists():
        try:
            payload = json.loads(target.read_text())
        except (OSError, ValueError):
            payload = {"profiles": {}}
    payload.setdefault("profiles", {})
    payload["profiles"][fragment["profile"]] = fragment
    payload["environment"] = environment_fingerprint(
        samples=fragment.get("timing_samples", DEFAULT_SAMPLES)
    )
    atomic_write_text(target, json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return payload


def load_baseline(path: str) -> Dict:
    target = Path(path)
    if not target.exists():
        raise ReproError(f"baseline file not found: {path}")
    return json.loads(target.read_text())


def compare_baselines(
    fragment: Dict,
    baseline: Dict,
    threshold: float = DEFAULT_REGRESSION_THRESHOLD,
) -> List[str]:
    """Warnings (not errors) for sim-IPS regressions beyond ``threshold``.

    Wall clock is machine- and load-dependent, so regressions warn and
    never fail the run; the stats-equivalence check inside
    :func:`bench_pair` is the only hard gate."""
    name = fragment["profile"]
    recorded = baseline.get("profiles", {}).get(name)
    if recorded is None:
        return [
            f"baseline has no {name!r} profile — run `repro bench"
            f"{' --quick' if name == 'quick' else ''}` to record one"
        ]
    warnings: List[str] = []
    old_by_pair = {
        (r["benchmark"], r["scheme"]): r for r in recorded["records"]
    }
    # Individual pairs run for tens of milliseconds, so their wall times
    # jitter far more than the aggregate; hold them to twice the bar.
    pair_threshold = 2 * threshold
    for record in fragment["records"]:
        key = (record["benchmark"], record["scheme"])
        old = old_by_pair.get(key)
        if old is None or old["sim_ips"] <= 0:
            continue
        drop = 1.0 - record["sim_ips"] / old["sim_ips"]
        if drop > pair_threshold:
            warnings.append(
                f"({key[0]}, {key[1]}): sim-IPS fell {drop:.0%} "
                f"({old['sim_ips']:.0f} -> {record['sim_ips']:.0f})"
            )
    old_total = recorded["totals"]
    new_total = fragment["totals"]
    if old_total["sim_ips"] > 0:
        drop = 1.0 - new_total["sim_ips"] / old_total["sim_ips"]
        if drop > threshold:
            warnings.append(
                f"aggregate sim-IPS fell {drop:.0%} "
                f"({old_total['sim_ips']:.0f} -> {new_total['sim_ips']:.0f})"
            )
    return warnings
