"""Experiment definitions: one function per paper table/figure.

Each function takes an :class:`~repro.harness.runner.ExperimentSession`
(so figures sharing runs reuse them) and returns a plain-data result
object with a ``format_table()`` renderer that prints the same rows /
series the paper reports.  The benchmark list defaults to every profile
in the suite registry, mirroring Figure 6's SPEC2006 + SPEC2017 split.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.errors import EmptyMeasurementError
from repro.common.stats import geomean
from repro.harness.runner import BASELINE_SCHEME, FIGURE_SCHEMES, ExperimentSession
from repro.workloads.profiles import benchmark_names

#: The paper's §7 headline numbers (geomean fraction of baseline IPC).
PAPER_HEADLINE = {
    "nda": 0.887,
    "nda+ap": 0.935,
    "stt": 0.905,
    "stt+ap": 0.951,
    "dom": 0.818,
    "dom+ap": 0.873,
}
#: The paper's geomean slowdown reductions (§7 / abstract).
PAPER_SLOWDOWN_REDUCTION = {"nda": 0.420, "stt": 0.482, "dom": 0.303}


def _benchmarks(benchmarks: Optional[Sequence[str]]) -> Tuple[str, ...]:
    if benchmarks is None:
        return benchmark_names("all")
    return tuple(benchmarks)


def _format_skipped(skipped: Dict[str, str]) -> List[str]:
    """Footer lines naming benchmarks a figure dropped (and why)."""
    return [f"skipped {name}: {reason}" for name, reason in skipped.items()]


# ----------------------------------------------------------------------
# Figure 6: normalized IPC per benchmark
# ----------------------------------------------------------------------
@dataclass
class Figure6Result:
    """Normalized IPC (to the unsafe baseline) per benchmark per scheme."""

    schemes: Tuple[str, ...]
    rows: Dict[str, Dict[str, float]]  # benchmark -> scheme -> norm. IPC
    gmean: Dict[str, float]
    skipped: Dict[str, str] = field(default_factory=dict)

    def format_table(self) -> str:
        header = f"{'benchmark':<14}" + "".join(f"{s:>10}" for s in self.schemes)
        lines = [header, "-" * len(header)]
        for benchmark, row in self.rows.items():
            lines.append(
                f"{benchmark:<14}"
                + "".join(f"{row[s]:>10.3f}" for s in self.schemes)
            )
        lines.append("-" * len(header))
        lines.append(
            f"{'GMEAN':<14}" + "".join(f"{self.gmean[s]:>10.3f}" for s in self.schemes)
        )
        lines.extend(_format_skipped(self.skipped))
        return "\n".join(lines)


def figure6_normalized_ipc(
    session: ExperimentSession,
    benchmarks: Optional[Sequence[str]] = None,
    schemes: Sequence[str] = FIGURE_SCHEMES,
) -> Figure6Result:
    """Regenerate Figure 6: normalized IPC of NDA-P/STT/DoM ± AP.

    A benchmark whose run raises
    :class:`~repro.common.errors.EmptyMeasurementError` (program shorter
    than the warmup window, zero-IPC baseline) is dropped from the rows
    and reported in ``result.skipped`` instead of aborting the sweep.
    """
    names = _benchmarks(benchmarks)
    rows: Dict[str, Dict[str, float]] = {}
    skipped: Dict[str, str] = {}
    for benchmark in names:
        try:
            rows[benchmark] = {
                scheme: session.normalized_ipc(benchmark, scheme)
                for scheme in schemes
            }
        except EmptyMeasurementError as error:
            skipped[benchmark] = str(error)
    gmean = {
        scheme: geomean(rows[b][scheme] for b in rows) if rows else 0.0
        for scheme in schemes
    }
    return Figure6Result(
        schemes=tuple(schemes), rows=rows, gmean=gmean, skipped=skipped
    )


# ----------------------------------------------------------------------
# Figure 1 / §7 headline: geomean summary and slowdown reduction
# ----------------------------------------------------------------------
@dataclass
class SummaryResult:
    """Figure 1 / §7: geomean performance and AP's slowdown reduction."""

    gmean: Dict[str, float]
    slowdown_reduction: Dict[str, float]
    paper_gmean: Dict[str, float] = field(default_factory=lambda: dict(PAPER_HEADLINE))
    paper_reduction: Dict[str, float] = field(
        default_factory=lambda: dict(PAPER_SLOWDOWN_REDUCTION)
    )

    def format_table(self) -> str:
        lines = [
            f"{'scheme':<10}{'measured':>10}{'paper':>10}",
            "-" * 30,
        ]
        for scheme in ("nda", "nda+ap", "stt", "stt+ap", "dom", "dom+ap"):
            lines.append(
                f"{scheme:<10}{self.gmean[scheme]:>10.3f}"
                f"{self.paper_gmean[scheme]:>10.3f}"
            )
        lines.append("")
        lines.append(f"{'scheme':<10}{'slowdown reduction':>20}{'paper':>10}")
        lines.append("-" * 40)
        for scheme in ("nda", "stt", "dom"):
            lines.append(
                f"{scheme:<10}{self.slowdown_reduction[scheme]:>19.1%}"
                f"{self.paper_reduction[scheme]:>9.1%}"
            )
        return "\n".join(lines)


def figure1_summary(
    session: ExperimentSession,
    benchmarks: Optional[Sequence[str]] = None,
) -> SummaryResult:
    """Regenerate Figure 1's red/green arrows and the §7 headline numbers."""
    figure6 = figure6_normalized_ipc(session, benchmarks)
    gmean = figure6.gmean
    reduction = {}
    for scheme in ("nda", "stt", "dom"):
        slowdown = 1.0 - gmean[scheme]
        slowdown_ap = 1.0 - gmean[f"{scheme}+ap"]
        reduction[scheme] = 0.0 if slowdown <= 0 else (slowdown - slowdown_ap) / slowdown
    return SummaryResult(gmean=gmean, slowdown_reduction=reduction)


headline_numbers = figure1_summary
"""Alias: the §7 headline numbers are Figure 1's summary."""


# ----------------------------------------------------------------------
# Figure 7: coverage and accuracy of the address predictor
# ----------------------------------------------------------------------
@dataclass
class Figure7Result:
    """Coverage/accuracy of address prediction per benchmark (DoM+AP)."""

    scheme: str
    coverage: Dict[str, float]
    accuracy: Dict[str, float]
    gmean_coverage: float
    gmean_accuracy: float
    skipped: Dict[str, str] = field(default_factory=dict)

    def format_table(self) -> str:
        header = f"{'benchmark':<14}{'coverage':>10}{'accuracy':>10}"
        lines = [header, "-" * len(header)]
        for benchmark in self.coverage:
            lines.append(
                f"{benchmark:<14}{self.coverage[benchmark]:>9.1%}"
                f"{self.accuracy[benchmark]:>9.1%}"
            )
        lines.append("-" * len(header))
        lines.append(
            f"{'GMEAN':<14}{self.gmean_coverage:>9.1%}{self.gmean_accuracy:>9.1%}"
        )
        lines.extend(_format_skipped(self.skipped))
        return "\n".join(lines)


def figure7_coverage_accuracy(
    session: ExperimentSession,
    benchmarks: Optional[Sequence[str]] = None,
    scheme: str = "dom+ap",
) -> Figure7Result:
    """Regenerate Figure 7 (DoM+AP is the paper's representative; the
    other schemes are within 1%, which ``tests/harness`` asserts)."""
    names = _benchmarks(benchmarks)
    coverage: Dict[str, float] = {}
    accuracy: Dict[str, float] = {}
    skipped: Dict[str, str] = {}
    for benchmark in names:
        try:
            stats = session.run(benchmark, scheme).stats
        except EmptyMeasurementError as error:
            skipped[benchmark] = str(error)
            continue
        coverage[benchmark] = stats.coverage
        accuracy[benchmark] = stats.accuracy
    # Geomean over nonzero entries only (a zero would zero the product;
    # the paper's GMEAN bars likewise summarize the plotted values).
    nonzero_cov = [value for value in coverage.values() if value > 0]
    nonzero_acc = [value for value in accuracy.values() if value > 0]
    return Figure7Result(
        scheme=scheme,
        coverage=coverage,
        accuracy=accuracy,
        gmean_coverage=geomean(nonzero_cov) if nonzero_cov else 0.0,
        gmean_accuracy=geomean(nonzero_acc) if nonzero_acc else 0.0,
        skipped=skipped,
    )


# ----------------------------------------------------------------------
# Figure 8: normalized L1 and L2 accesses
# ----------------------------------------------------------------------
@dataclass
class Figure8Result:
    """L1/L2 access counts normalized to the unsafe baseline."""

    schemes: Tuple[str, ...]
    l1: Dict[str, Dict[str, float]]
    l2: Dict[str, Dict[str, float]]
    skipped: Dict[str, str] = field(default_factory=dict)

    def _format_one(self, title: str, table: Dict[str, Dict[str, float]]) -> List[str]:
        header = f"{title:<14}" + "".join(f"{s:>10}" for s in self.schemes)
        lines = [header, "-" * len(header)]
        for benchmark, row in table.items():
            lines.append(
                f"{benchmark:<14}" + "".join(f"{row[s]:>10.2f}" for s in self.schemes)
            )
        return lines

    def format_table(self) -> str:
        lines = self._format_one("L1 accesses", self.l1)
        lines.append("")
        lines.extend(self._format_one("L2 accesses", self.l2))
        lines.extend(_format_skipped(self.skipped))
        return "\n".join(lines)


def figure8_cache_traffic(
    session: ExperimentSession,
    benchmarks: Optional[Sequence[str]] = None,
    schemes: Sequence[str] = FIGURE_SCHEMES,
) -> Figure8Result:
    """Regenerate Figure 8: normalized L1 (upper) and L2 (lower) accesses."""
    names = _benchmarks(benchmarks)
    l1: Dict[str, Dict[str, float]] = {}
    l2: Dict[str, Dict[str, float]] = {}
    skipped: Dict[str, str] = {}
    for benchmark in names:
        try:
            base = session.run(benchmark, BASELINE_SCHEME).stats
            rows = {scheme: session.run(benchmark, scheme).stats for scheme in schemes}
        except EmptyMeasurementError as error:
            skipped[benchmark] = str(error)
            continue
        l1[benchmark] = {}
        l2[benchmark] = {}
        for scheme, stats in rows.items():
            l1[benchmark][scheme] = (
                stats.l1_accesses / base.l1_accesses if base.l1_accesses else 0.0
            )
            l2[benchmark][scheme] = (
                stats.l2_accesses / base.l2_accesses if base.l2_accesses else 0.0
            )
    return Figure8Result(schemes=tuple(schemes), l1=l1, l2=l2, skipped=skipped)


# ----------------------------------------------------------------------
# §7 "Unsafe Baseline + AP"
# ----------------------------------------------------------------------
@dataclass
class UnsafeAPResult:
    """Geomean gain of address prediction on the unsafe baseline."""

    per_benchmark: Dict[str, float]
    gmean_gain: float
    skipped: Dict[str, str] = field(default_factory=dict)

    def format_table(self) -> str:
        lines = [f"{'benchmark':<14}{'unsafe+ap / unsafe':>20}"]
        lines.append("-" * 34)
        for benchmark, value in self.per_benchmark.items():
            lines.append(f"{benchmark:<14}{value:>20.3f}")
        lines.append("-" * 34)
        lines.append(f"{'GMEAN gain':<14}{self.gmean_gain:>19.1%}")
        lines.extend(_format_skipped(self.skipped))
        return "\n".join(lines)


def unsafe_ap_delta(
    session: ExperimentSession,
    benchmarks: Optional[Sequence[str]] = None,
) -> UnsafeAPResult:
    """Regenerate the §7 claim that AP gains only ~0.5% on the baseline."""
    names = _benchmarks(benchmarks)
    per_benchmark: Dict[str, float] = {}
    skipped: Dict[str, str] = {}
    for name in names:
        try:
            per_benchmark[name] = session.normalized_ipc(name, "unsafe+ap")
        except EmptyMeasurementError as error:
            skipped[name] = str(error)
    return UnsafeAPResult(
        per_benchmark=per_benchmark,
        gmean_gain=(geomean(per_benchmark.values()) - 1.0) if per_benchmark else 0.0,
        skipped=skipped,
    )
