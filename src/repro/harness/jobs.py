"""A generic fault-tolerant process-pool job engine.

Extracted from :class:`repro.harness.parallel.ParallelSession` so any
batch runner — the sweep session, the differential fuzzer — inherits the
same hard-won failure semantics instead of re-implementing them:

* **Waves with bounded retry** — every job resolves exactly once:
  success, deterministic failure, or a transient failure that exhausted
  its retries.  Transient failures (timeout, worker crash, unexpected
  exception) re-run up to ``retries`` times with exponential backoff;
  deterministic ones never re-run.
* **Per-job wall-clock budget** — a wave gets
  ``job_timeout × ceil(n / workers)`` (the bound a fair scheduler would
  need); anything still in flight when it expires is reported as a
  timeout and the stuck workers are killed rather than leaked.
* **Crash isolation** — a dead worker breaks the whole pool and CPython
  cannot say which job killed it, so every in-flight job is marked
  transient and re-run: the culprit fails again, bystanders complete.
* **Incremental resolution** — the ``store`` callback fires the moment
  each job resolves (not at the end of the wave), so an interrupt loses
  only in-flight work.

The engine is payload-shaped, not result-shaped: the worker must be a
**module-level function** (pickled by qualified name into the pool) that
**never raises**, returning a dict with at least ``ok`` (bool) and — for
failures — ``transient`` (bool), ``error_type``, and ``message``.  The
``describe`` hook supplies per-job label fields (benchmark/scheme,
seed/profile, the full job spec...) merged into engine-generated
timeout/crash payloads so every failure is attributable and replayable.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import random
import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Dict, Optional, Sequence, Tuple

Payload = Dict[str, Any]
"""What a worker returns: ``{"ok": True, ...}`` or a failure payload."""


def backoff_schedule(
    retries: int,
    base: float,
    cap: float = 30.0,
    seed: int = 0,
) -> Tuple[float, ...]:
    """Seeded jittered-exponential retry delays, one per retry wave.

    Wave ``n`` (1-based) waits ``min(cap, base * 2**(n-1))`` scaled by a
    jitter factor drawn uniformly from [0.5, 1.0] — decorrelating the
    retry storms of concurrent campaigns sharing a disk or cache without
    ever waiting *longer* than the capped exponential.  The jitter comes
    from a string-seeded :class:`random.Random`, so a given ``seed``
    always produces the same schedule (campaigns replay byte-for-byte)
    and ``base=0`` always produces all-zero delays.
    """
    rng = random.Random(f"repro-backoff:{seed}")
    schedule = []
    for wave in range(1, max(0, retries) + 1):
        raw = min(float(cap), float(base) * (2.0 ** (wave - 1)))
        schedule.append(raw * (0.5 + 0.5 * rng.random()))
    return tuple(schedule)


def failure_payload(
    error_type: str,
    message: str,
    transient: bool,
    fields: Optional[Dict[str, Any]] = None,
) -> Payload:
    """The canonical failure payload shape shared by all job runners."""
    payload: Payload = {
        "ok": False,
        "error_type": error_type,
        "message": message,
        "transient": transient,
    }
    if fields:
        payload.update(fields)
    return payload


def _no_fields(job: Any) -> Dict[str, Any]:
    return {}


class JobEngine:
    """Run picklable jobs through waves of execution + bounded retry.

    Parameters
    ----------
    worker:
        Module-level function mapping one job to a :data:`Payload`.
        Must never raise (errors travel back as data).
    jobs:
        Worker processes.  ``None`` means one per CPU; ``1`` with no
        ``job_timeout`` runs everything inline in the parent (no pool —
        a wall-clock budget can only be enforced on a killable child).
    job_timeout:
        Per-job wall-clock budget in seconds; ``None`` waits forever.
    retries:
        Re-runs granted to each *transient* failure.
    retry_backoff:
        Base delay before each retry wave; waves follow the seeded
        jittered-exponential :func:`backoff_schedule` capped at
        ``backoff_cap``.
    backoff_cap:
        Ceiling on the per-wave exponential delay (before jitter).
    backoff_seed:
        Seed for the jitter draw, so a campaign's schedule replays.
    mp_context:
        ``multiprocessing`` start method; ``None`` is the platform default.
    describe:
        ``job -> dict`` of label fields merged into engine-generated
        timeout/crash payloads (e.g. benchmark/scheme plus a replayable
        job spec).
    chaos:
        Optional armed :class:`~repro.harness.chaos.ChaosEngine`.  When
        set, every submission is routed through ``chaos.wrap`` (which may
        substitute a fault-staging worker) and every resolution through
        ``chaos.on_resolved`` (which may raise the injected interrupt).
        The engine only speaks this two-method protocol — it never
        imports the chaos module.
    """

    def __init__(
        self,
        worker: Callable[[Any], Payload],
        *,
        jobs: Optional[int] = None,
        job_timeout: Optional[float] = None,
        retries: int = 1,
        retry_backoff: float = 0.5,
        backoff_cap: float = 30.0,
        backoff_seed: int = 0,
        mp_context: Optional[str] = None,
        describe: Callable[[Any], Dict[str, Any]] = _no_fields,
        chaos: Optional[Any] = None,
    ):
        self.worker = worker
        self.jobs = max(1, jobs if jobs is not None else os.cpu_count() or 1)
        self.job_timeout = job_timeout
        self.retries = max(0, retries)
        self.retry_backoff = max(0.0, retry_backoff)
        self.backoff = backoff_schedule(
            self.retries, self.retry_backoff, backoff_cap, backoff_seed
        )
        self.mp_context = mp_context
        self.describe = describe
        self.chaos = chaos

    # ------------------------------------------------------------------
    # Engine-generated payloads
    # ------------------------------------------------------------------
    def timeout_payload(self, job: Any) -> Payload:
        return failure_payload(
            "JobTimeoutError",
            f"no result within the {self.job_timeout:g}s per-job budget",
            transient=True,
            fields=self.describe(job),
        )

    def crash_payload(self, job: Any) -> Payload:
        return failure_payload(
            "WorkerCrashError",
            "worker process died before returning a result",
            transient=True,
            fields=self.describe(job),
        )

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def run(
        self,
        cold: Sequence[Tuple[Any, Any]],
        store: Callable[[Any, Payload], None],
    ) -> None:
        """Run ``(key, job)`` pairs; call ``store(key, payload)`` per job.

        Every job resolves exactly once — success, deterministic failure,
        or transient failure that exhausted its retries — and ``store``
        fires *the moment it resolves*, so an interrupt can only lose
        jobs still in flight.  Resolved payloads carry an ``attempts``
        count.
        """
        unresolved: Dict[int, Tuple[Any, Any]] = dict(enumerate(cold))
        attempts: Dict[int, int] = {index: 0 for index in unresolved}
        last_transient: Dict[int, Payload] = {}

        def resolve(index: int, payload: Payload) -> None:
            attempts[index] += 1
            final_wave = wave == self.retries
            if payload["ok"] or not payload.get("transient", False) or final_wave:
                key, _ = unresolved.pop(index)
                payload["attempts"] = attempts[index]
                store(key, payload)
                if self.chaos is not None:
                    self.chaos.on_resolved(key, payload)
            else:
                last_transient[index] = payload

        for wave in range(self.retries + 1):
            if not unresolved:
                break
            if wave and self.backoff[wave - 1]:
                time.sleep(self.backoff[wave - 1])
            self._run_wave(dict(unresolved), resolve, wave)

        # A wave can end without resolving everything only if it was cut
        # short (pool broke after its futures were marked transient, or a
        # kill raced a result); record whatever we last saw.
        for index in list(unresolved):
            key, job = unresolved.pop(index)
            payload = last_transient.get(index, self.crash_payload(job))
            payload["attempts"] = max(1, attempts[index])
            store(key, payload)

    def _target(
        self, key: Any, job: Any, attempt: int, inline: bool
    ) -> Tuple[Callable[..., Payload], Tuple[Any, ...]]:
        """What to actually run for one submission: the worker itself, or
        — under an armed chaos engine — whatever fault stage it wraps in."""
        if self.chaos is None:
            return self.worker, (job,)
        return self.chaos.wrap(self.worker, key, job, attempt, inline=inline)

    def _run_wave(
        self,
        items: Dict[int, Tuple[Any, Any]],
        resolve: Callable[[int, Payload], None],
        attempt: int,
    ) -> None:
        """One attempt at every unresolved job; calls ``resolve`` per job.

        ``resolve`` fires as each future completes (not after the wave),
        which is what makes mid-batch interrupts lossless for finished
        work.  On a per-wave timeout the hung workers are killed; on a
        broken pool every in-flight job is reported as a (transient)
        worker crash and the next wave sorts the culprit from bystanders.
        """
        # Inline only for a serial engine with no timeout: a wall-clock
        # budget can only be enforced on a killable child process, and a
        # parallel engine must keep crash isolation even when a retry
        # wave is down to a single job — running that job in the parent
        # would let a crashing worker take the whole batch with it.
        if self.jobs == 1 and self.job_timeout is None:
            for index, (key, job) in items.items():
                target, args = self._target(key, job, attempt, inline=True)
                resolve(index, target(*args))
            return

        workers = min(self.jobs, len(items))
        context = multiprocessing.get_context(self.mp_context)
        executor = ProcessPoolExecutor(max_workers=workers, mp_context=context)
        try:
            # The worker (and any chaos stage) must be module-level for
            # the pool to pickle it by qualified name.
            futures: Dict[Future, int] = {}
            for index, (key, job) in items.items():
                target, args = self._target(key, job, attempt, inline=False)
                futures[executor.submit(target, *args)] = index
            pending = set(futures)
            deadline = None
            if self.job_timeout is not None:
                # Each worker may serve ceil(n / workers) queued jobs.
                budget = self.job_timeout * math.ceil(len(items) / workers)
                deadline = time.monotonic() + budget
            while pending:
                timeout = None
                if deadline is not None:
                    timeout = max(0.0, deadline - time.monotonic())
                done, pending = wait(
                    pending, timeout=timeout, return_when=FIRST_COMPLETED
                )
                if not done:
                    # Wave budget exhausted: everything still in flight is
                    # a timeout; kill the stuck workers so the pool dies
                    # with this wave instead of leaking hung processes.
                    for future in pending:
                        index = futures[future]
                        resolve(index, self.timeout_payload(items[index][1]))
                    self._kill_workers(executor)
                    return
                broken = False
                for future in done:
                    index = futures[future]
                    try:
                        payload = future.result()
                    except BrokenProcessPool:
                        payload = self.crash_payload(items[index][1])
                        broken = True
                    except Exception as error:  # unpicklable payloads etc.
                        payload = failure_payload(
                            type(error).__name__,
                            str(error) or repr(error),
                            transient=True,
                            fields=self.describe(items[index][1]),
                        )
                    resolve(index, payload)
                if broken:
                    # The pool is gone; every remaining future died with
                    # it.  CPython cannot say *which* worker crashed, so
                    # all of them go back for retry — the deterministic
                    # culprit fails again, the bystanders complete.
                    for future in pending:
                        index = futures[future]
                        resolve(index, self.crash_payload(items[index][1]))
                    return
        except BaseException:
            # Ctrl-C (or an unexpected bug) mid-wave: results already
            # resolved are stored; kill the workers so the interpreter
            # does not block on join at exit.
            self._kill_workers(executor)
            raise
        finally:
            executor.shutdown(wait=False, cancel_futures=True)

    @staticmethod
    def _kill_workers(executor: ProcessPoolExecutor) -> None:
        processes = getattr(executor, "_processes", None) or {}
        for process in list(processes.values()):
            try:
                process.kill()
            except (OSError, AttributeError):  # already gone
                pass
