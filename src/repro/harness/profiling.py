"""Profiling layer for the simulator: ``repro profile``.

Two complementary views of where simulation time goes, both measured over
the same (benchmark × scheme) grid the perf baseline uses:

* **Stage accounting** (default) — wall-clock per pipeline phase
  (`_writeback`, `_commit`, `_issue`, `_dispatch`, ...), measured by
  wrapping the phase methods on the :class:`Core` *class* before any core
  is constructed.  The event loop binds phase methods late (at loop
  entry) precisely so these wrappers are picked up; installing them on
  the class rather than per instance keeps the timed region identical to
  what ``repro bench`` measures.  This answers "which phase should the
  next optimization pass target?" with real wall seconds rather than
  cProfile's inflated call overhead.
* **cProfile mode** (``--cprofile``) — the standard deterministic
  profiler over the same runs, for drilling from a hot phase down to the
  exact callee.  Per-call overhead is inflated (every function entry is
  instrumented), so use the stage view for shares and this view for
  structure.

Stage wall-times carry the wrapper's own ``perf_counter`` overhead
(~0.1-0.2 µs per phase call); the report includes the raw per-stage call
counts so that bias is visible rather than hidden.
"""

from __future__ import annotations

import cProfile
import io
import json
import pstats
import time
from typing import Callable, Dict, List, Optional

from repro.common.io import atomic_write_text
from repro.harness.perfbench import (
    BenchProfile,
    bench_profiles,
    build_workload,
    default_config,
    environment_fingerprint,
    make_scheme,
)
from repro.pipeline.core import Core

#: The pipeline phases the event loop visits, in loop order.  These are
#: the exact names ``Core._run_event_loop`` binds at entry; wrapping them
#: on the class is sufficient to capture every phase invocation in both
#: idle_skip modes.
STAGE_METHODS = (
    "_writeback",
    "_process_frontier",
    "_commit",
    "_issue",
    "_schedule_memory",
    "_issue_prefetches",
    "_dispatch",
    "_next_cycle",
)

PROFILE_FORMAT_VERSION = 1


class StageAccounting:
    """Context manager that patches :class:`Core`'s phase methods with
    timing wrappers and accumulates per-stage wall seconds and calls.

    Must be entered *before* the profiled cores are constructed: the
    wrappers live on the class, and the event loop resolves phase methods
    through the instance (falling back to the class) at ``run()`` time.
    """

    def __init__(self) -> None:
        self.seconds: Dict[str, float] = {name: 0.0 for name in STAGE_METHODS}
        self.calls: Dict[str, int] = {name: 0 for name in STAGE_METHODS}
        self._originals: Dict[str, Callable] = {}

    def _wrap(self, name: str, original: Callable) -> Callable:
        seconds = self.seconds
        calls = self.calls
        perf_counter = time.perf_counter

        def timed(core, *args, **kwargs):
            start = perf_counter()
            try:
                return original(core, *args, **kwargs)
            finally:
                seconds[name] += perf_counter() - start
                calls[name] += 1

        timed.__name__ = f"profiled_{name}"
        timed.__wrapped__ = original
        return timed

    def __enter__(self) -> "StageAccounting":
        for name in STAGE_METHODS:
            original = getattr(Core, name)
            self._originals[name] = original
            setattr(Core, name, self._wrap(name, original))
        return self

    def __exit__(self, *exc_info) -> None:
        for name, original in self._originals.items():
            setattr(Core, name, original)
        self._originals.clear()

    def total_seconds(self) -> float:
        return sum(self.seconds.values())


def _grid(profile: BenchProfile) -> List[tuple]:
    return [
        (benchmark, scheme)
        for benchmark in profile.benchmarks
        for scheme in profile.schemes
    ]


def profile_stages(profile_name: str = "full") -> Dict[str, object]:
    """Run the bench grid once (event mode) under stage accounting.

    Returns a plain-data report: per-stage aggregate seconds/calls/share,
    per-pair wall and instruction counts, and the environment block, all
    JSON-ready.
    """
    profile = bench_profiles()[profile_name]
    pairs: List[Dict[str, object]] = []
    accounting = StageAccounting()
    total_wall = 0.0
    total_instructions = 0
    total_steps = 0
    with accounting:
        for benchmark, scheme in _grid(profile):
            program = build_workload(benchmark)
            core = Core(
                program, make_scheme(scheme), config=default_config(),
                idle_skip=True,
            )
            start = time.perf_counter()
            core.run(max_instructions=profile.instructions)
            wall = time.perf_counter() - start
            committed = core.stats.committed_instructions
            total_wall += wall
            total_instructions += committed
            total_steps += core._step_count
            pairs.append({
                "benchmark": benchmark,
                "scheme": scheme,
                "wall": round(wall, 4),
                "instructions": committed,
                "steps": core._step_count,
                "sim_ips": round(committed / wall, 1) if wall > 0 else 0.0,
            })
    staged = accounting.total_seconds()
    stages = [
        {
            "stage": name,
            "seconds": round(accounting.seconds[name], 4),
            "calls": accounting.calls[name],
            "share": round(accounting.seconds[name] / staged, 4) if staged else 0.0,
        }
        for name in STAGE_METHODS
    ]
    stages.sort(key=lambda row: row["seconds"], reverse=True)
    return {
        "version": PROFILE_FORMAT_VERSION,
        "mode": "stages",
        "profile": profile_name,
        "environment": environment_fingerprint(),
        "totals": {
            "pairs": len(pairs),
            "wall": round(total_wall, 4),
            "instructions": total_instructions,
            "steps": total_steps,
            "sim_ips": round(total_instructions / total_wall, 1)
            if total_wall > 0 else 0.0,
            "staged_seconds": round(staged, 4),
            # Wall outside any phase: the loop driver itself plus run()'s
            # entry/epilogue.  Large values here mean the *scheduler*,
            # not a phase, is the next target.
            "unattributed_seconds": round(max(total_wall - staged, 0.0), 4),
        },
        "stages": stages,
        "pairs": pairs,
    }


def profile_cprofile(profile_name: str = "full", top: int = 25) -> Dict[str, object]:
    """Run the bench grid once (event mode) under cProfile.

    Workload/core construction happens outside the profiled region so the
    output reflects the same timed region as ``repro bench``.
    """
    profile = bench_profiles()[profile_name]
    jobs = []
    for benchmark, scheme in _grid(profile):
        jobs.append((
            benchmark,
            scheme,
            Core(
                build_workload(benchmark), make_scheme(scheme),
                config=default_config(), idle_skip=True,
            ),
        ))
    profiler = cProfile.Profile()
    profiler.enable()
    for _, _, core in jobs:
        core.run(max_instructions=profile.instructions)
    profiler.disable()

    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats("tottime")
    stats.print_stats(top)
    rows = []
    for func, (cc, nc, tt, ct, _callers) in stats.stats.items():  # type: ignore[attr-defined]
        filename, line, name = func
        rows.append({
            "function": f"{filename}:{line}({name})",
            "calls": nc,
            "tottime": round(tt, 4),
            "cumtime": round(ct, 4),
        })
    rows.sort(key=lambda row: row["tottime"], reverse=True)
    return {
        "version": PROFILE_FORMAT_VERSION,
        "mode": "cprofile",
        "profile": profile_name,
        "environment": environment_fingerprint(),
        "totals": {
            "pairs": len(jobs),
            "instructions": sum(
                core.stats.committed_instructions for _, _, core in jobs
            ),
        },
        "top": rows[:top],
        "text": buffer.getvalue(),
    }


def render_stage_report(report: Dict[str, object]) -> str:
    """Human-readable rendering of a :func:`profile_stages` report."""
    totals = report["totals"]
    lines = [
        f"stage profile over the {report['profile']} grid "
        f"({totals['pairs']} pairs, {totals['instructions']} instructions, "
        f"{totals['sim_ips']:.0f} sim-IPS)",
        "",
        f"{'stage':<20}{'seconds':>10}{'share':>8}{'calls':>12}{'us/call':>10}",
    ]
    for row in report["stages"]:
        per_call = row["seconds"] / row["calls"] * 1e6 if row["calls"] else 0.0
        lines.append(
            f"{row['stage']:<20}{row['seconds']:>10.3f}"
            f"{row['share']:>8.1%}{row['calls']:>12}{per_call:>10.2f}"
        )
    lines.append(
        f"{'(loop driver)':<20}{totals['unattributed_seconds']:>10.3f}"
        f"{(totals['unattributed_seconds'] / totals['wall'] if totals['wall'] else 0.0):>8.1%}"
    )
    lines.append("")
    lines.append(
        f"total wall {totals['wall']:.3f}s; phase-attributed "
        f"{totals['staged_seconds']:.3f}s "
        f"(includes per-call timer overhead; see module docstring)"
    )
    return "\n".join(lines)


def write_report(path: str, report: Dict[str, object]) -> None:
    atomic_write_text(
        path, json.dumps(report, indent=2, sort_keys=True) + "\n"
    )
