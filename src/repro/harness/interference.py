"""Coherence interference: scripted invalidations from a phantom peer core.

The simulator models one core; the paper's §4.5 argument is about what
*another* core's stores do to this one (invalidations snooping the load
queue, doppelganger predicted-address matches, consistency squashes).
:class:`InterferenceInjector` stands in for that peer: it drives
``Core.inject_invalidation`` (and, optionally, the corresponding memory
updates) on a schedule while the victim core runs, so consistency
handling is exercised under load rather than only in hand-placed tests.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.common.errors import ConfigError
from repro.pipeline.core import Core


@dataclass
class InterferenceEvent:
    """One peer-core write: when, where, and (optionally) what value."""

    cycle: int
    address: int
    value: Optional[int] = None
    """When set, the phantom peer's store value becomes visible to any
    subsequent (re-)fetch of the line — models the directory supplying
    fresh data after the invalidation."""


class InterferenceInjector:
    """Runs a core while injecting a schedule of invalidations."""

    def __init__(self, core: Core, events: Sequence[InterferenceEvent]):
        self.core = core
        self.events: List[InterferenceEvent] = sorted(
            events, key=lambda event: event.cycle
        )
        self.injected = 0

    def run(self, max_instructions: Optional[int] = None):
        """Like ``core.run`` but firing due events between cycles."""
        core = self.core
        pending = list(self.events)
        while not core.halted:
            if max_instructions is not None and (
                core.stats.committed_instructions >= max_instructions
            ):
                break
            while pending and pending[0].cycle <= core.cycle:
                event = pending.pop(0)
                if event.value is not None:
                    core.arch.write_mem(event.address, event.value)
                core.inject_invalidation(event.address)
                self.injected += 1
            core.step()
        core.stats.cycles = core.cycle
        return core.stats


def periodic_interference(
    addresses: Sequence[int],
    start: int = 100,
    period: int = 200,
    count: int = 50,
    seed: int = 0,
    values: bool = False,
) -> List[InterferenceEvent]:
    """A convenience schedule: every ``period`` cycles, invalidate a
    (seeded-)random address from ``addresses``."""
    if not addresses:
        raise ConfigError("need at least one address to interfere with")
    rng = random.Random(seed)
    events = []
    for index in range(count):
        address = addresses[rng.randrange(len(addresses))]
        value = rng.randrange(1 << 20) if values else None
        events.append(
            InterferenceEvent(cycle=start + index * period, address=address,
                              value=value)
        )
    return events
