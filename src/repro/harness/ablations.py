"""Ablation studies for the design choices DESIGN.md calls out.

The paper (§5.1) deliberately uses the simplest possible predictor to
establish a performance floor; these sweeps quantify the design space
around it:

* confidence threshold — how eagerly the predictor produces doppelganger
  addresses (coverage/accuracy trade-off);
* table size — the 1024-entry, 8-way structure vs smaller/larger tables;
* load ports — how much spare-port bandwidth doppelgangers rely on;
* training policy — commit-only (the security requirement) vs an
  *insecure* train-at-execute variant, quantifying what the security
  constraint costs in prediction quality.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Optional, Sequence

from repro.common.config import SystemConfig, default_config
from repro.common.stats import RunResult
from repro.harness.runner import DEFAULT_MEASURE, DEFAULT_WARMUP, run_benchmark


def _base(config: Optional[SystemConfig]) -> SystemConfig:
    return config if config is not None else default_config()


def sweep_confidence_threshold(
    benchmark: str,
    scheme: str = "dom+ap",
    thresholds: Sequence[int] = (0, 1, 2, 3, 4, 6),
    config: Optional[SystemConfig] = None,
    warmup: int = DEFAULT_WARMUP,
    measure: int = DEFAULT_MEASURE,
) -> Dict[int, RunResult]:
    """IPC / coverage / accuracy across predictor confidence thresholds."""
    base = _base(config)
    results: Dict[int, RunResult] = {}
    for threshold in thresholds:
        cfg = replace(
            base, predictor=replace(base.predictor, confidence_threshold=threshold)
        )
        results[threshold] = run_benchmark(benchmark, scheme, cfg, warmup, measure)
    return results


def sweep_predictor_entries(
    benchmark: str,
    scheme: str = "dom+ap",
    entries: Sequence[int] = (64, 256, 1024, 4096),
    config: Optional[SystemConfig] = None,
    warmup: int = DEFAULT_WARMUP,
    measure: int = DEFAULT_MEASURE,
) -> Dict[int, RunResult]:
    """IPC across stride-table sizes (paper default: 1024 entries, 8-way)."""
    base = _base(config)
    results: Dict[int, RunResult] = {}
    for count in entries:
        cfg = replace(base, predictor=replace(base.predictor, entries=count))
        results[count] = run_benchmark(benchmark, scheme, cfg, warmup, measure)
    return results


def sweep_load_ports(
    benchmark: str,
    scheme: str = "dom+ap",
    ports: Sequence[int] = (1, 2, 3, 4),
    config: Optional[SystemConfig] = None,
    warmup: int = DEFAULT_WARMUP,
    measure: int = DEFAULT_MEASURE,
) -> Dict[int, RunResult]:
    """IPC across memory-port counts — doppelgangers only use spare slots,
    so a port-starved core should show smaller AP gains."""
    base = _base(config)
    results: Dict[int, RunResult] = {}
    for count in ports:
        cfg = replace(base, core=replace(base.core, load_ports=count))
        results[count] = run_benchmark(benchmark, scheme, cfg, warmup, measure)
    return results


def compare_training_policy(
    benchmark: str,
    scheme: str = "dom+ap",
    config: Optional[SystemConfig] = None,
    warmup: int = DEFAULT_WARMUP,
    measure: int = DEFAULT_MEASURE,
) -> Dict[str, RunResult]:
    """Commit-only training (secure) vs train-at-execute (INSECURE).

    Training at execute observes wrong-path addresses, which both
    pollutes the table and — crucially — would let speculative secrets
    reach the predictor, breaking the paper's safety argument.  The
    ablation quantifies how much (or little) performance the security
    requirement costs.
    """
    base = _base(config)
    secure = run_benchmark(benchmark, scheme, base, warmup, measure)
    insecure_cfg = replace(
        base, predictor=replace(base.predictor, train_on_execute=True)
    )
    insecure = run_benchmark(benchmark, scheme, insecure_cfg, warmup, measure)
    return {"commit": secure, "execute": insecure}


def format_sweep(results: Dict[int, RunResult], label: str) -> str:
    """Render a sweep result as the table the ablation bench prints."""
    header = f"{label:<12}{'IPC':>8}{'coverage':>10}{'accuracy':>10}"
    lines = [header, "-" * len(header)]
    for key in sorted(results):
        stats = results[key].stats
        lines.append(
            f"{key:<12}{stats.ipc:>8.3f}{stats.coverage:>9.1%}{stats.accuracy:>9.1%}"
        )
    return "\n".join(lines)
