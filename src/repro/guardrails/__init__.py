"""Guardrails: invariant checker, watchdog, and crash-dump diagnostics.

The simulator's failure mode of record is *silently wrong numbers* — a
leaked rename entry or a wedged ROB shows up only as a skewed IPC figure.
This package makes those failures loud, local, and diagnosable:

* :class:`InvariantChecker` — machine-state invariants swept at a
  configurable cadence (``GuardrailConfig.level``), raising a typed
  :class:`~repro.common.errors.InvariantViolationError` with a snapshot.
* :class:`Watchdog` — commit-starvation/livelock detection with crash
  dumps, raising :class:`~repro.common.errors.DeadlockError`.
* :func:`run_doctor` — the ``repro doctor`` smoke check: every scheme,
  every invariant class, full cadence.
* :func:`machine_snapshot` / :func:`format_crash_dump` /
  :func:`write_crash_dump` — the shared diagnostics plumbing.
"""

from repro.guardrails.doctor import DOCTOR_SCHEMES, DoctorReport, run_doctor, smoke_program
from repro.guardrails.dump import (
    describe_uop,
    format_crash_dump,
    machine_snapshot,
    write_crash_dump,
)
from repro.guardrails.invariants import INVARIANT_CLASSES, InvariantChecker
from repro.guardrails.watchdog import Watchdog
from repro.pipeline.hooks import register_guardrail_provider


def _default_guardrails(core):
    """Build a core's observer pair per its ``GuardrailConfig``.

    Registered with :mod:`repro.pipeline.hooks` below so the pipeline
    gets its observers without ever importing this package (the core is
    the observed object; the dependency points from here to it).
    """
    interval = core.config.guardrails.effective_interval
    checker = InvariantChecker(core) if interval else None
    return checker, Watchdog(core)


register_guardrail_provider(_default_guardrails)

__all__ = [
    "DOCTOR_SCHEMES",
    "DoctorReport",
    "INVARIANT_CLASSES",
    "InvariantChecker",
    "Watchdog",
    "describe_uop",
    "format_crash_dump",
    "machine_snapshot",
    "run_doctor",
    "smoke_program",
    "write_crash_dump",
]
