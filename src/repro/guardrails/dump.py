"""Machine-state snapshots and human-readable crash dumps.

When a guardrail fires — an invariant violation or the watchdog declaring
the pipeline wedged — the single most valuable artifact is the machine
state *at that instant*: a silently-wrong IPC figure gives you nothing,
but the ROB head, the shadow frontier, and the MSHR file usually point
straight at the bug.  :func:`machine_snapshot` captures that state as
plain data (attached to the raised error and shipped across process
boundaries by the sweep runner); :func:`format_crash_dump` renders it for
humans; :func:`write_crash_dump` persists it next to the run so a failure
manifest can reference it.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, List, Optional

from repro.common.io import atomic_write_text
from repro.pipeline.shadows import INFINITE_SEQ
from repro.pipeline.uop import UopState

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.pipeline.core import Core
    from repro.pipeline.uop import MicroOp

DUMP_FORMAT_VERSION = 1


def describe_uop(uop: Optional["MicroOp"]) -> Optional[Dict[str, Any]]:
    """One in-flight instruction as plain data (None-safe)."""
    if uop is None:
        return None
    info: Dict[str, Any] = {
        "seq": uop.seq,
        "pc": uop.pc,
        "disasm": uop.inst.disassemble(),
        "state": UopState(uop.state).name,
        "dispatch_cycle": uop.dispatch_cycle,
        "issue_cycle": uop.issue_cycle,
        "in_iq": uop.in_iq,
        "taint": uop.taint,
    }
    if uop.is_load or uop.is_store:
        info.update(
            address=(hex(uop.address) if uop.address_ready else None),
            address_ready=uop.address_ready,
            executed=uop.executed,
            dom_delayed=uop.dom_delayed,
        )
    if uop.is_load and uop.dl_predicted_address is not None:
        info.update(
            dl_predicted_address=hex(uop.dl_predicted_address),
            dl_issued=uop.dl_issued,
            dl_verified=uop.dl_verified,
            dl_correct=uop.dl_correct,
            dl_cancelled=uop.dl_cancelled,
        )
    if uop.is_branch:
        info.update(
            predicted_taken=uop.predicted_taken,
            branch_resolved=uop.branch_resolved,
        )
    return info


def machine_snapshot(core: "Core") -> Dict[str, Any]:
    """Structured, JSON-able snapshot of the core's microarchitectural
    state — everything a post-mortem needs without replaying the run."""
    stats = core.stats
    frontier = core.shadows.frontier()
    snapshot: Dict[str, Any] = {
        "version": DUMP_FORMAT_VERSION,
        "program": core.program.name,
        "scheme": core.scheme.describe(),
        "cycle": core.cycle,
        "committed_instructions": stats.committed_instructions,
        "last_commit_cycle": core._last_commit_cycle,
        "commit_idle_cycles": core.cycle - core._last_commit_cycle,
        "step_count": core._step_count,
        "commit_idle_steps": core._step_count - core._last_commit_step,
        "occupancy": {
            "rob": len(core.rob),
            "rob_capacity": core.config.core.rob_entries,
            "iq": core.iq_count,
            "iq_capacity": core.config.core.iq_entries,
            "lq": len(core.lq),
            "lq_capacity": core.config.core.lq_entries,
            "sq": len(core.sq),
            "sq_capacity": core.config.core.sq_entries,
            "ready_heap": len(core._ready),
            "mem_queue": len(core._mem_queue),
            "mem_retry": len(core._mem_retry),
            "forward_retry": len(core._forward_retry),
            "frontier_waiters": len(core._frontier_waiters),
            "timed_events": sum(len(b) for b in core._events.values()),
            "prefetch_queue": len(core._prefetch_queue),
            "rename_entries": len(core.rename),
        },
        "fetch": {
            "pc": core.fetch_pc,
            "halted": core.fetch_halted,
            "stalled_until": core.fetch_stalled_until,
        },
        "oldest": describe_uop(core.rob[0] if core.rob else None),
        "youngest": describe_uop(core.rob[-1] if core.rob else None),
        "shadows": {
            "frontier": None if frontier == INFINITE_SEQ else frontier,
            "unresolved_branches": core.shadows.unresolved_branches(),
            "unresolved_stores": core.shadows.unresolved_stores(),
            "oldest_branch_casters": core.shadows.live_branch_casters()[:8],
            "oldest_store_casters": core.shadows.live_store_casters()[:8],
        },
        "memory": core.hierarchy.snapshot(core.cycle),
        "scheme_delays": {
            "delayed_propagations": stats.delayed_propagations,
            "delayed_transmitters": stats.delayed_transmitters,
            "dom_delayed_misses": stats.dom_delayed_misses,
            "dom_reissued_loads": stats.dom_reissued_loads,
            "mshr_stalls": stats.mshr_stalls,
            "squashed_instructions": stats.squashed_instructions,
            "vp_squashes": stats.vp_squashes,
        },
        "next_event_cycle": min(core._events) if core._events else None,
    }
    if core.engine is not None:
        snapshot["doppelganger"] = {
            "outstanding_instances": core.engine.outstanding_instances(),
            "pending_candidates": core.engine.pending_candidates(),
            "dl_issued": stats.dl_issued,
            "dl_correct": stats.dl_correct,
            "dl_wrong": stats.dl_wrong,
        }
    return snapshot


def _section(title: str) -> str:
    return f"\n-- {title} " + "-" * max(1, 60 - len(title)) + "\n"


def format_crash_dump(
    snapshot: Dict[str, Any],
    reason: str,
    violations: Optional[List[str]] = None,
) -> str:
    """Render a snapshot as the human-readable crash-dump text."""
    out: List[str] = []
    out.append("==== repro crash dump " + "=" * 38 + "\n")
    out.append(f"reason: {reason}\n")
    out.append(
        f"program={snapshot['program']} scheme={snapshot['scheme']} "
        f"cycle={snapshot['cycle']}\n"
    )
    out.append(
        f"committed={snapshot['committed_instructions']} "
        f"last_commit_cycle={snapshot['last_commit_cycle']} "
        f"(idle {snapshot['commit_idle_cycles']} cycles)\n"
    )
    if violations:
        out.append(_section("violations"))
        for violation in violations:
            out.append(f"  * {violation}\n")
    occ = snapshot["occupancy"]
    out.append(_section("pipeline occupancy"))
    out.append(
        f"  ROB {occ['rob']}/{occ['rob_capacity']}   "
        f"IQ {occ['iq']}/{occ['iq_capacity']}   "
        f"LQ {occ['lq']}/{occ['lq_capacity']}   "
        f"SQ {occ['sq']}/{occ['sq_capacity']}\n"
    )
    out.append(
        f"  ready={occ['ready_heap']} mem_queue={occ['mem_queue']} "
        f"mem_retry={occ['mem_retry']} frontier_waiters={occ['frontier_waiters']} "
        f"timed_events={occ['timed_events']} prefetch={occ['prefetch_queue']}\n"
    )
    fetch = snapshot["fetch"]
    out.append(
        f"  fetch: pc={fetch['pc']} halted={fetch['halted']} "
        f"stalled_until={fetch['stalled_until']}  "
        f"next_event_cycle={snapshot['next_event_cycle']}\n"
    )
    out.append(_section("oldest / youngest instruction"))
    for label in ("oldest", "youngest"):
        uop = snapshot[label]
        if uop is None:
            out.append(f"  {label}: <ROB empty>\n")
            continue
        out.append(
            f"  {label}: seq={uop['seq']} pc={uop['pc']} {uop['disasm']!r} "
            f"state={uop['state']} dispatched@{uop['dispatch_cycle']} "
            f"issued@{uop['issue_cycle']}\n"
        )
    shadows = snapshot["shadows"]
    out.append(_section("shadow state"))
    out.append(
        f"  frontier={shadows['frontier']} "
        f"unresolved_branches={shadows['unresolved_branches']} "
        f"unresolved_stores={shadows['unresolved_stores']}\n"
    )
    if shadows["oldest_branch_casters"]:
        out.append(f"  oldest branch casters: {shadows['oldest_branch_casters']}\n")
    if shadows["oldest_store_casters"]:
        out.append(f"  oldest store casters:  {shadows['oldest_store_casters']}\n")
    delays = snapshot["scheme_delays"]
    out.append(_section("per-scheme delay reasons"))
    for name, value in delays.items():
        if value:
            out.append(f"  {name} = {value}\n")
    memory = snapshot["memory"]
    out.append(_section("cache / MSHR state"))
    out.append(
        f"  MSHRs {memory['mshr_in_flight']}/{memory['mshr_capacity']} in "
        f"flight, {memory['mshr_stalls']} allocation stalls\n"
    )
    for entry in memory["mshr_lines"]:
        out.append(
            f"    line {entry['line']} completes at {entry['completes_at']}\n"
        )
    if "doppelganger" in snapshot:
        dl = snapshot["doppelganger"]
        out.append(_section("doppelganger engine"))
        out.append(
            f"  outstanding_instances={dl['outstanding_instances']} "
            f"pending_candidates={dl['pending_candidates']} "
            f"issued={dl['dl_issued']} correct={dl['dl_correct']} "
            f"wrong={dl['dl_wrong']}\n"
        )
    out.append(_section("raw snapshot (json)"))
    out.append(json.dumps(snapshot, indent=2, sort_keys=True))
    out.append("\n")
    return "".join(out)


def write_crash_dump(dump_dir: str, snapshot: Dict[str, Any], text: str) -> str:
    """Write ``text`` under ``dump_dir``; returns the file path.

    The name embeds program, scheme, and cycle so dumps from a sweep never
    collide; the write goes through the shared atomic path (unique tmp +
    fsync + rename) so concurrent sweep workers dumping the same pair
    cannot clobber each other's temp file and a crash mid-dump can never
    leave a truncated dump.
    """
    scheme = str(snapshot["scheme"]).replace("+", "_").replace("/", "_")
    name = f"crash-{snapshot['program']}-{scheme}-cycle{snapshot['cycle']}.txt"
    path = atomic_write_text(Path(dump_dir) / name, text)
    return str(path)
