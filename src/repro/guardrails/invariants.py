"""The microarchitectural invariant checker.

A wrong-path bug that leaks a rename-map entry or wedges a load queue
does not crash a Python simulator — it silently skews IPC, which is the
worst possible failure mode for a reproduction whose *output is the
point*.  The checker makes the machine-state contracts that hold in a
correct simulation explicit and executable, in the spirit of the
machine-state invariants formal treatments (ProSpeCT, Colvin & Winter's
abstract semantics) build their proofs on:

========================  =============================================
``rob``                   ROB age-ordered, bounded, only live entries;
                          IQ accounting consistent.
``rename``                every rename-map entry is a live ROB resident
                          (the physical-register-leak analog: a squashed
                          or evicted producer left in the map).
``lsq``                   LQ/SQ entries are the right kind, age-ordered,
                          bounded, and all map to live ROB entries.
``mshr``                  occupancy within capacity, no orphaned miss
                          pinned past the worst-case memory horizon.
``shadows``               shadow casters never outlive (or miss) their
                          casting instruction, in both directions.
``doppelganger``          predicted-instance accounting balances and
                          verify-or-replay holds (no dropped replays,
                          no unverified preload consumed).
``scheme``                the active scheme's own contract (NDA's value
                          lock, STT taint monotonicity, DoM delayed-miss
                          discipline, DoM+VP's validation gate).
========================  =============================================

Cadence is configured by :class:`~repro.common.config.GuardrailConfig`:
``full`` checks every cycle (fault-injection tests, ``repro doctor``),
``cheap`` every ``check_interval`` cycles (CI sweeps), ``off`` costs one
attribute test per cycle.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Tuple

from repro.common.errors import InvariantViolationError
from repro.guardrails.dump import format_crash_dump, machine_snapshot, write_crash_dump
from repro.pipeline.uop import UopState

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.pipeline.core import Core

INVARIANT_CLASSES = (
    "rob",
    "rename",
    "lsq",
    "mshr",
    "shadows",
    "doppelganger",
    "scheme",
)


class InvariantChecker:
    """Sweeps every invariant class over one core's state.

    :meth:`audit` is the non-raising form (used by ``repro doctor`` for a
    per-class report); :meth:`check` raises a typed
    :class:`InvariantViolationError` carrying a machine-state snapshot —
    and writes a crash dump when a dump directory is configured.
    """

    def __init__(self, core: "Core"):
        self.core = core
        self.dump_dir = core.config.guardrails.dump_dir
        self._checks: Tuple[Tuple[str, Callable[[], List[str]]], ...] = (
            ("rob", self._check_rob),
            ("rename", self._check_rename),
            ("lsq", self._check_lsq),
            ("mshr", self._check_mshr),
            ("shadows", self._check_shadows),
            ("doppelganger", self._check_doppelganger),
            ("scheme", self._check_scheme),
        )

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    def audit(self) -> Dict[str, List[str]]:
        """Run every class; returns ``{class: [violations]}`` (all keys)."""
        return {name: check() for name, check in self._checks}

    def check(self) -> None:
        """Raise :class:`InvariantViolationError` on any violation."""
        for name, check in self._checks:
            problems = check()
            if problems:
                self._fail(name, problems)

    def _fail(self, invariant: str, problems: List[str]) -> None:
        core = self.core
        snapshot = machine_snapshot(core)
        labelled = [f"[{invariant}] {problem}" for problem in problems]
        message = (
            f"invariant {invariant!r} violated at cycle {core.cycle} "
            f"({core.program.name} under {core.scheme.describe()}): "
            f"{problems[0]}"
            + (f" (+{len(problems) - 1} more)" if len(problems) > 1 else "")
        )
        dump_path = None
        if self.dump_dir is not None:
            text = format_crash_dump(snapshot, message, labelled)
            dump_path = write_crash_dump(self.dump_dir, snapshot, text)
        raise InvariantViolationError(
            message,
            invariant=invariant,
            violations=labelled,
            snapshot=snapshot,
            dump_path=dump_path,
        )

    # ------------------------------------------------------------------
    # Structural checks
    # ------------------------------------------------------------------
    def _check_rob(self) -> List[str]:
        core = self.core
        problems: List[str] = []
        rob = core.rob
        if len(rob) > core.config.core.rob_entries:
            problems.append(
                f"ROB holds {len(rob)} entries, capacity is "
                f"{core.config.core.rob_entries}"
            )
        previous = -1
        in_iq = 0
        for uop in rob:
            if uop.seq <= previous:
                problems.append(
                    f"ROB not age-ordered: seq={uop.seq} follows seq={previous}"
                )
            previous = uop.seq
            if uop.squashed or uop.committed:
                problems.append(
                    f"ROB contains a {UopState(uop.state).name} entry seq={uop.seq} "
                    f"(must have been removed)"
                )
            if uop.in_iq:
                in_iq += 1
        if in_iq != core.iq_count:
            problems.append(
                f"IQ accounting imbalance: counter says {core.iq_count}, "
                f"ROB holds {in_iq} entries flagged in_iq"
            )
        if not 0 <= core.iq_count <= core.config.core.iq_entries:
            problems.append(
                f"IQ occupancy {core.iq_count} outside "
                f"[0, {core.config.core.iq_entries}]"
            )
        return problems

    def _check_rename(self) -> List[str]:
        core = self.core
        problems: List[str] = []
        residents = {id(uop) for uop in core.rob}
        for reg, uop in core.rename.items():
            if uop.squashed:
                problems.append(
                    f"rename map r{reg} points at squashed seq={uop.seq} "
                    f"(physical register leaked across squash)"
                )
            elif uop.committed:
                problems.append(
                    f"rename map r{reg} points at committed seq={uop.seq} "
                    f"(stale mapping survived commit)"
                )
            elif id(uop) not in residents:
                problems.append(
                    f"rename map r{reg} points at seq={uop.seq} which is "
                    f"not ROB-resident"
                )
        return problems

    def _check_lsq(self) -> List[str]:
        core = self.core
        problems: List[str] = []
        residents = {id(uop) for uop in core.rob}
        for label, queue, capacity, want_load in (
            ("LQ", core.lq, core.config.core.lq_entries, True),
            ("SQ", core.sq, core.config.core.sq_entries, False),
        ):
            if len(queue) > capacity:
                problems.append(
                    f"{label} holds {len(queue)} entries, capacity {capacity}"
                )
            previous = -1
            for uop in queue:
                if uop.seq <= previous:
                    problems.append(
                        f"{label} not age-ordered: seq={uop.seq} follows "
                        f"seq={previous}"
                    )
                previous = uop.seq
                if want_load and not uop.is_load:
                    problems.append(f"{label} entry seq={uop.seq} is not a load")
                if not want_load and not uop.is_store:
                    problems.append(f"{label} entry seq={uop.seq} is not a store")
                if uop.squashed:
                    # Squashes hit a contiguous youngest suffix, which the
                    # prune removes — a surviving squashed entry leaked.
                    problems.append(
                        f"{label} entry seq={uop.seq} is squashed but was "
                        f"never pruned"
                    )
                elif id(uop) not in residents:
                    problems.append(
                        f"{label} entry seq={uop.seq} does not map to a live "
                        f"ROB entry"
                    )
        return problems

    def _check_mshr(self) -> List[str]:
        return self.core.hierarchy.validate(self.core.cycle)

    def _check_shadows(self) -> List[str]:
        core = self.core
        problems: List[str] = []
        by_seq = {uop.seq: uop for uop in core.rob}
        branch_casters = core.shadows.live_branch_casters()
        store_casters = core.shadows.live_store_casters()
        for seq in branch_casters:
            uop = by_seq.get(seq)
            if uop is None:
                problems.append(
                    f"branch shadow caster seq={seq} outlived its casting "
                    f"instruction (not in ROB)"
                )
            elif not uop.inst.is_conditional_branch:
                problems.append(
                    f"branch shadow caster seq={seq} is not a conditional "
                    f"branch"
                )
            elif uop.branch_resolved:
                problems.append(
                    f"branch shadow caster seq={seq} is already resolved but "
                    f"still casts a shadow"
                )
        for seq in store_casters:
            uop = by_seq.get(seq)
            if uop is None:
                problems.append(
                    f"store shadow caster seq={seq} outlived its casting "
                    f"instruction (not in ROB)"
                )
            elif not uop.is_store:
                problems.append(f"store shadow caster seq={seq} is not a store")
            elif uop.address_ready:
                problems.append(
                    f"store shadow caster seq={seq} has a resolved address "
                    f"but still casts a shadow"
                )
        # Reverse direction: every unresolved caster in the window must be
        # tracked, else speculation checks go permissive (unsafe!).
        tracked_branches = set(branch_casters)
        tracked_stores = set(store_casters)
        for uop in core.rob:
            if uop.squashed:
                continue
            if (
                uop.inst.is_conditional_branch
                and not uop.branch_resolved
                and uop.seq not in tracked_branches
            ):
                problems.append(
                    f"unresolved branch seq={uop.seq} casts no shadow "
                    f"(speculation window under-approximated)"
                )
            if (
                uop.is_store
                and not uop.address_ready
                and uop.seq not in tracked_stores
            ):
                problems.append(
                    f"unresolved store seq={uop.seq} casts no shadow "
                    f"(speculation window under-approximated)"
                )
        return problems

    def _check_doppelganger(self) -> List[str]:
        core = self.core
        if core.engine is None:
            return []
        return core.engine.validate(core.rob)

    def _check_scheme(self) -> List[str]:
        return self.core.scheme.check_invariants(self.core)
