"""``repro doctor`` — a guardrails self-check.

Runs a small smoke program that exercises every mechanism the invariant
classes guard (dependent loads, store-to-load forwarding, data-dependent
branches, streaming misses) under **every scheme** with guardrails at
``full`` (invariant sweep every cycle), then prints pass/fail per
invariant class.  A clean doctor run means the simulator's machine-state
contracts held on every single cycle of every scheme — the cheapest
possible confidence check after touching the pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.common.config import GuardrailConfig, SystemConfig, small_config
from repro.common.errors import DeadlockError, InvariantViolationError, ReproError
from repro.guardrails.invariants import INVARIANT_CLASSES, InvariantChecker
from repro.isa.builder import CodeBuilder
from repro.isa.program import Program

#: Every scheme variant the evaluation uses, including +AP forms.
DOCTOR_SCHEMES: Tuple[str, ...] = (
    "unsafe",
    "nda",
    "stt",
    "dom",
    "dom+vp",
    "unsafe+ap",
    "nda+ap",
    "stt+ap",
    "dom+ap",
)

_DATA_BASE = 0x0001_0000
_INDEX_BASE = 0x0002_0000
_STREAM_BASE = 0x0004_0000
_OUT_BASE = 0x0008_0000


def smoke_program(trips: int = 300) -> Program:
    """A compact kernel touching every guarded mechanism.

    Per iteration: an index load feeding a dependent data load (load
    chains + address prediction fodder), a data-dependent branch (control
    shadows + squashes), a store immediately reloaded (forwarding + store
    shadows), and a 64-byte-stride streaming load (L1 misses, MSHR
    pressure, DoM delays, prefetcher traffic).
    """
    b = CodeBuilder()
    for i in range(64):
        # Low bit pseudo-random so the data-dependent branch mispredicts.
        b.set_memory(_DATA_BASE + 8 * i, (i * 2654435761) & 0xFFFF)
        b.set_memory(_INDEX_BASE + 8 * i, (i * 17 + 5) % 64)
    b.li(1, trips)       # trip count
    b.li(2, 0)           # i
    b.li(3, 0)           # accumulator
    b.li(10, _DATA_BASE)
    b.li(11, _INDEX_BASE)
    b.li(12, _STREAM_BASE)
    b.li(13, _OUT_BASE)
    b.label("loop")
    b.andi(16, 2, 63)            # i & 63
    b.shli(16, 16, 3)
    b.add(16, 11, 16)
    b.load(17, 16)               # index = index_array[i & 63]
    b.shli(17, 17, 3)
    b.add(17, 10, 17)
    b.load(18, 17)               # value = data[index]  (dependent load)
    b.add(3, 3, 18)
    b.andi(19, 2, 15)            # out slot
    b.shli(19, 19, 3)
    b.add(19, 13, 19)
    b.store(3, 19)               # store accumulator ...
    b.load(20, 19)               # ... and forward it right back
    b.shli(21, 2, 6)             # i * 64: one new cache line per trip
    b.andi(21, 21, 0x3FFFF)
    b.add(21, 12, 21)
    b.load(22, 21)               # streaming miss
    b.andi(23, 18, 1)
    b.beq(23, 0, "even")         # data-dependent branch
    b.addi(3, 3, 1)
    b.label("even")
    b.addi(2, 2, 1)
    b.blt(2, 1, "loop")
    b.store(3, 0, disp=8)
    b.halt()
    return b.build(name="guardrail_smoke")


@dataclass
class SchemeReport:
    """Doctor outcome for one scheme: status per invariant class."""

    scheme: str
    classes: Dict[str, str] = field(default_factory=dict)
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None and all(
            status in ("ok", "n/a") for status in self.classes.values()
        )


@dataclass
class DoctorReport:
    """Aggregated doctor outcome across every scheme."""

    rows: List[SchemeReport]
    instructions: int
    #: reprolint preflight outcome: "clean", "N finding(s)", or
    #: "skipped" when the caller disabled it (--no-lint).
    lint_status: str = "skipped"
    lint_findings: int = 0
    #: differential fuzz smoke outcome: "clean", "N finding(s)/...", or
    #: "skipped" when the caller disabled it (--no-fuzz).
    fuzz_status: str = "skipped"
    fuzz_findings: int = 0
    #: chaos smoke outcome: "clean", "N problem(s)/...", or "skipped"
    #: when the caller disabled it (--no-chaos).
    chaos_status: str = "skipped"
    chaos_findings: int = 0
    #: specflow smoke outcome: "clean", "N disagreement(s)/...", or
    #: "skipped" when the caller disabled it (--no-specflow).
    specflow_status: str = "skipped"
    specflow_findings: int = 0

    @property
    def ok(self) -> bool:
        return (
            self.lint_findings == 0
            and self.fuzz_findings == 0
            and self.chaos_findings == 0
            and self.specflow_findings == 0
            and all(row.ok for row in self.rows)
        )

    def render(self) -> str:
        width = max(len(row.scheme) for row in self.rows) + 2
        header = "scheme".ljust(width) + "".join(
            name.ljust(14) for name in INVARIANT_CLASSES
        )
        lines = [
            f"static preflight (repro lint): {self.lint_status}",
            f"differential fuzz smoke: {self.fuzz_status}",
            f"chaos smoke (repro chaos): {self.chaos_status}",
            f"specflow smoke (repro specflow): {self.specflow_status}",
            "",
        ]
        lines += [header, "-" * len(header)]
        for row in self.rows:
            cells = "".join(
                row.classes.get(name, "?").ljust(14) for name in INVARIANT_CLASSES
            )
            lines.append(row.scheme.ljust(width) + cells)
            if row.error is not None:
                lines.append(f"    {row.error}")
        verdict = (
            f"doctor: all invariants held over {self.instructions} "
            f"instructions x {len(self.rows)} schemes (guardrails=full)"
            if self.ok
            else "doctor: FAILURES detected — see rows above"
        )
        lines.append("")
        lines.append(verdict)
        return "\n".join(lines)


def _lint_preflight() -> Tuple[str, int]:
    """Self-lint the installed package; ``(status_line, finding_count)``.

    Runs reprolint over ``src/repro`` with the packaged baseline before
    any simulation: a dynamic smoke check is moot if the tree already
    violates a statically-checkable contract (nondeterminism in the
    simulator core, a fingerprint/exclusion mismatch, a layering break).
    """
    from pathlib import Path

    import repro
    from repro.analysis.baseline import PACKAGED_BASELINE, Baseline
    from repro.analysis.engine import LintRunner

    baseline = (
        Baseline.load(PACKAGED_BASELINE) if PACKAGED_BASELINE.exists() else Baseline()
    )
    runner = LintRunner(baseline=baseline)
    report = runner.run([str(Path(repro.__file__).resolve().parent)])
    count = len(report.findings)
    if count == 0:
        return (
            f"clean ({report.files_scanned} files, "
            f"{len(report.rules_run)} rules)",
            0,
        )
    worst = report.findings[0]
    return (
        f"{count} finding(s) — run `repro lint` for the list "
        f"(first: {worst.render()})",
        count,
    )


#: Schemes exercised by the doctor's differential fuzz smoke: the unsafe
#: baseline plus the paper's headline scheme is enough to catch a broken
#: commit path while keeping the smoke to a couple of seconds.
FUZZ_SMOKE_SCHEMES: Tuple[str, ...] = ("unsafe", "dom+ap")
FUZZ_SMOKE_SEEDS: Tuple[int, ...] = (0, 1, 2)


def _fuzz_smoke() -> Tuple[str, int]:
    """Tiny differential fuzz pass; ``(status_line, finding_count)``.

    A few seeded random programs, one execution per scheme (matrix
    ``"schemes"``), run inline — no pools, no repro files.  Any
    architectural divergence or infrastructure failure fails the doctor
    just like an invariant violation would.
    """
    from repro.fuzz import PROFILES, FuzzSession

    session = FuzzSession(
        schemes=FUZZ_SMOKE_SCHEMES,
        matrix="schemes",
        jobs=1,
        minimize_findings=False,
    )
    summary = session.run(list(FUZZ_SMOKE_SEEDS), tuple(PROFILES.values()))
    problems = len(summary.findings) + len(summary.failures)
    if problems == 0:
        return (
            f"clean ({summary.programs} programs x "
            f"{len(FUZZ_SMOKE_SCHEMES)} schemes, {summary.elapsed:.1f}s)",
            0,
        )
    first = (
        summary.findings[0].summary()
        if summary.findings
        else f"{summary.failures[0].error_type}: {summary.failures[0].message}"
    )
    return (
        f"{problems} problem(s) — run `repro fuzz` for details "
        f"(first: {first})",
        problems,
    )


#: Chaos smoke shape: one benchmark, two schemes, short runs — enough to
#: drive the store/ledger/retry machinery through real faults without
#: stretching the doctor past a few seconds.
CHAOS_SMOKE_SEED = 7
CHAOS_SMOKE_BENCHMARKS: Tuple[str, ...] = ("hmmer",)
CHAOS_SMOKE_SCHEMES: Tuple[str, ...] = ("unsafe", "dom+ap")


def _chaos_smoke() -> Tuple[str, int]:
    """Tiny sweep-under-faults differential; ``(status_line, count)``.

    Runs a two-job figure6 sweep under a seeded fault plan (crashes, torn
    and corrupted cache writes, disk-full, a mid-wave interrupt) and
    checks the battered run converges to results bit-identical to a
    fault-free reference, with every injected corruption quarantined.
    """
    from repro.common.errors import ReproError
    from repro.harness.chaos import run_chaos_check

    try:
        report = run_chaos_check(
            seed=CHAOS_SMOKE_SEED,
            benchmarks=CHAOS_SMOKE_BENCHMARKS,
            schemes=CHAOS_SMOKE_SCHEMES,
            warmup=200,
            measure=600,
            jobs=2,
            job_timeout=10.0,
            retries=2,
        )
    except ReproError as error:
        return (f"infrastructure failure: {error}", 1)
    if report.ok:
        injected = sum(report.injected.values())
        return (
            f"clean ({report.pairs} runs, {injected} faults injected, "
            f"{report.quarantined} quarantined, {report.resumes} "
            f"resume(s), {report.elapsed:.1f}s)",
            0,
        )
    problems = len(report.problems) or 1
    first = (
        report.problems[0]
        if report.problems
        else "results diverged from the fault-free run"
    )
    return (
        f"{problems} problem(s) — run `repro chaos --seed "
        f"{CHAOS_SMOKE_SEED}` for details (first: {first})",
        problems,
    )


#: Specflow smoke shape: three corpus gadgets (the headline attack, the
#: paper's hardest fig4 variant, and the all-safe control) against the
#: unprotected baseline, a delay-based defense, and the doppelganger
#: configuration — enough cells to catch a broken verdict on either the
#: static or the dynamic side in well under a second per cell.
SPECFLOW_SMOKE_GADGETS: Tuple[str, ...] = (
    "spectre_v1",
    "fig4b_register_secret",
    "store_forward_probe",
)
SPECFLOW_SMOKE_SCHEMES: Tuple[str, ...] = ("unsafe", "nda", "dom+ap")


def _specflow_smoke() -> Tuple[str, int]:
    """Tiny static-vs-dynamic leakage differential; ``(status_line, count)``.

    Analyzes a three-gadget corpus cut with the specflow static analyzer
    and replays each cell through the dynamic noninterference oracle,
    checking the pinned verdicts on both sides plus the soundness
    inclusion (static ``safe`` must imply dynamically clean).
    """
    from repro.analysis.specflow.differential import run_differential
    from repro.common.errors import ReproError

    try:
        report = run_differential(
            fuzz_seeds=0,
            schemes=list(SPECFLOW_SMOKE_SCHEMES),
            gadgets=list(SPECFLOW_SMOKE_GADGETS),
        )
    except ReproError as error:
        return (f"infrastructure failure: {error}", 1)
    if report.ok:
        return (
            f"clean ({report.corpus_cells} cells, "
            f"{len(SPECFLOW_SMOKE_GADGETS)} gadgets x "
            f"{len(SPECFLOW_SMOKE_SCHEMES)} schemes, "
            f"{report.unknown_cells} unknown)",
            0,
        )
    problems = len(report.disagreements)
    first = report.disagreements[0].render()
    return (
        f"{problems} disagreement(s) — run `repro specflow` for details "
        f"(first: {first})",
        problems,
    )


def run_doctor(
    schemes: Tuple[str, ...] = DOCTOR_SCHEMES,
    instructions: int = 4000,
    config: Optional[SystemConfig] = None,
    lint_preflight: bool = True,
    fuzz_smoke: bool = True,
    chaos_smoke: bool = True,
    specflow_smoke: bool = True,
) -> DoctorReport:
    """Run the smoke program under every scheme with full guardrails.

    ``lint_preflight`` additionally self-lints the installed package
    (reprolint with the packaged baseline) before simulating; findings
    fail the report just like invariant violations.  ``fuzz_smoke`` adds
    a small differential fuzz pass (a few seeds, two schemes) checking
    architectural equivalence end to end.  ``chaos_smoke`` runs a tiny
    sweep under injected faults and requires bit-identical convergence.
    ``specflow_smoke`` cross-checks the static leakage analyzer against
    the dynamic noninterference oracle on a corpus cut.
    """
    from repro.pipeline.core import Core
    from repro.schemes import make_scheme

    lint_status, lint_findings = ("skipped", 0)
    if lint_preflight:
        lint_status, lint_findings = _lint_preflight()

    fuzz_status, fuzz_findings = ("skipped", 0)
    if fuzz_smoke:
        fuzz_status, fuzz_findings = _fuzz_smoke()

    chaos_status, chaos_findings = ("skipped", 0)
    if chaos_smoke:
        chaos_status, chaos_findings = _chaos_smoke()

    specflow_status, specflow_findings = ("skipped", 0)
    if specflow_smoke:
        specflow_status, specflow_findings = _specflow_smoke()

    base = config if config is not None else small_config()
    cfg = base.with_overrides(guardrails=GuardrailConfig(level="full"))
    rows: List[SchemeReport] = []
    for name in schemes:
        core = Core(smoke_program(), make_scheme(name), config=cfg)
        report = SchemeReport(scheme=name, classes={c: "ok" for c in INVARIANT_CLASSES})
        if core.engine is None:
            report.classes["doppelganger"] = "n/a"
        try:
            core.run(max_instructions=instructions)
        except InvariantViolationError as error:
            report.classes[error.invariant] = "FAIL"
            report.error = str(error)
        except DeadlockError as error:
            report.error = f"watchdog: {error}"
        except ReproError as error:  # pragma: no cover - unexpected
            report.error = str(error)
        else:
            # Belt and braces: one final full audit on the end state.
            for cls, problems in InvariantChecker(core).audit().items():
                if problems:
                    report.classes[cls] = "FAIL"
                    report.error = problems[0]
        rows.append(report)
    return DoctorReport(
        rows=rows,
        instructions=instructions,
        lint_status=lint_status,
        lint_findings=lint_findings,
        fuzz_status=fuzz_status,
        fuzz_findings=fuzz_findings,
        chaos_status=chaos_status,
        chaos_findings=chaos_findings,
        specflow_status=specflow_status,
        specflow_findings=specflow_findings,
    )
