"""The commit-progress watchdog: deadlock and livelock detection.

The core's only unconditional liveness obligation is that the ROB head
eventually commits.  The watchdog monitors exactly that, and when the
no-commit window is exceeded it *classifies* the wedge before raising:

* **deadlock** — nothing is in flight that could ever unblock the ROB
  head: no timed events, nothing ready to issue, no memory requests
  queued, and fetch cannot make progress.  The machine is provably stuck.
* **livelock** — the machine is busy (events firing, loads replaying,
  squash/reissue cycling) but nothing retires.  Typical causes: a replay
  loop that re-delays itself, a frontier waiter parked on a key the
  frontier can never reach.

The window counts *steps* (loop iterations), not raw cycle deltas.  With
idle skipping a single step can legitimately jump the clock by an entire
DRAM latency — or by an arbitrarily long known-latency stretch — so a
cycle-delta test would misread a healthy long miss as starvation the
moment the miss outlasted the window.  A wedged machine makes no jumps
(every step advances the clock by one), so in the failure mode the two
countings agree and the trip point is unchanged.  The constructor still
clamps the window to a large multiple of the worst-case memory latency:
even a non-skipping tick loop then cannot misread one slow access chain
as a wedge.

On trigger the watchdog emits a human-readable crash dump (pipeline
occupancy, oldest instruction, shadow state, per-scheme delay reasons,
cache/MSHR state) to ``guardrails.dump_dir`` when configured, and raises
:class:`~repro.common.errors.DeadlockError` carrying the same snapshot.
The watchdog is always armed — unlike the invariant checker it costs one
integer compare per iteration, and a wedged pipeline must fail loudly at
every guardrail level.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.common.errors import DeadlockError
from repro.guardrails.dump import format_crash_dump, machine_snapshot, write_crash_dump
from repro.pipeline.uop import UopState

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.pipeline.core import Core

#: The window is clamped to at least this many worst-case memory
#: latencies so a single slow access can never be misread as a wedge.
MIN_WINDOW_LATENCIES = 16


class Watchdog:
    """Commit-starvation and livelock monitor for one core."""

    def __init__(self, core: "Core"):
        gcfg = core.config.guardrails
        self.dump_dir = gcfg.dump_dir
        self.window = max(
            gcfg.watchdog_window,
            MIN_WINDOW_LATENCIES * core.hierarchy.max_latency,
        )

    def expired(self, core: "Core") -> bool:
        """Cheap per-iteration test: has the no-commit window lapsed?

        Counts steps, not cycles — idle-skip jumps over long misses must
        never look like commit starvation.
        """
        return core._step_count - core._last_commit_step > self.window

    def trip(self, core: "Core") -> None:
        """Classify the wedge, dump, and raise :class:`DeadlockError`."""
        idle_steps = core._step_count - core._last_commit_step
        idle_cycles = core.cycle - core._last_commit_cycle
        busy = bool(
            core._events
            or core._ready
            or core._mem_queue
            or core._mem_retry
            or core._forward_retry
            or core._prefetch_queue
            or (core.engine is not None and core.engine.has_candidates())
        )
        stats = core.stats
        if busy:
            kind = "livelock"
            activity = (
                f"{sum(len(b) for b in core._events.values())} timed events pending, "
                f"{stats.squashed_instructions} squashes, "
                f"{stats.dom_reissued_loads} load replays, "
                f"{stats.vp_squashes} VP squashes so far"
            )
            detail = (
                f"issue/replay activity continues ({activity}) but nothing "
                f"has retired"
            )
        else:
            kind = "deadlock"
            detail = (
                "no timed events, nothing ready to issue, and no memory "
                "requests in flight — the ROB head can never unblock"
            )
        head = core.rob[0] if core.rob else None
        head_text = (
            f"oldest instruction seq={head.seq} pc={head.pc} "
            f"{head.inst.disassemble()!r} in state {UopState(head.state).name}"
            if head is not None
            else "ROB is empty"
        )
        message = (
            f"{core.program.name} under {core.scheme.describe()}: no commit "
            f"for {idle_steps} steps ({idle_cycles} cycles) at cycle "
            f"{core.cycle} ({kind}: {detail}); {head_text}"
        )
        snapshot = machine_snapshot(core)
        snapshot["watchdog"] = {"kind": kind, "window": self.window}
        text = format_crash_dump(snapshot, message)
        dump_path = None
        if self.dump_dir is not None:
            dump_path = write_crash_dump(self.dump_dir, snapshot, text)
            message += f" [crash dump: {dump_path}]"
        raise DeadlockError(
            message, kind=kind, snapshot=snapshot, dump_path=dump_path, dump=text
        )
