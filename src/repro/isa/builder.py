"""A programmatic code builder for generating workloads and gadgets.

``CodeBuilder`` offers label-based control flow with deferred resolution so
kernel generators (``repro.workloads``) and attack gadgets
(``repro.attacks``) can be written without manual instruction indices::

    b = CodeBuilder()
    b.li(1, 0)                    # i = 0
    loop = b.label("loop")
    b.load(2, base=1, disp=BASE)  # r2 = A[i]
    b.addi(1, 1, 8)
    b.blt(1, 3, "loop")           # while i < r3
    b.halt()
    program = b.build(name="sum")
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple, Union

from repro.common.errors import AssemblyError
from repro.isa.instructions import (
    BRANCH_OPS,
    IMMEDIATE_ALU_OPS,
    NUM_REGISTERS,
    Instruction,
    Opcode,
)
from repro.isa.program import Program

Target = Union[str, int]

DISPLACEMENT_LIMIT = 1 << 52
"""Sanity bound for load/store displacements and ALU immediates.

Far beyond any address the simulated memory system models (caches are a
few KB, footprints a few MB) but small enough to catch the classic
malformed-program bugs — a branch target used as a displacement, an
unmasked 64-bit hash, a negative offset that wrapped.
"""

IMMEDIATE_LIMIT = 1 << 64
"""``li`` may materialize any 64-bit value (signed or unsigned form)."""


class CodeBuilder:
    """Incrementally build a :class:`Program`."""

    def __init__(self) -> None:
        self._instructions: List[Instruction] = []
        self._labels: Dict[str, int] = {}
        self._pending: List[Tuple[int, str]] = []
        self._memory: Dict[int, int] = {}
        self._registers: Dict[int, int] = {}
        self._secret_regions: List[Tuple[int, int]] = []

    # ------------------------------------------------------------------
    # Labels and layout
    # ------------------------------------------------------------------
    @property
    def here(self) -> int:
        """Index of the next instruction to be emitted."""
        return len(self._instructions)

    def label(self, name: str) -> int:
        """Bind ``name`` to the current position; returns that position."""
        if name in self._labels:
            raise AssemblyError(f"duplicate label {name!r}")
        self._labels[name] = self.here
        return self.here

    def set_memory(self, address: int, value: int) -> None:
        """Set one 8-byte word of the initial memory image."""
        self._memory[address & ~7] = value

    def set_array(self, base: int, values: Mapping[int, int] | List[int]) -> None:
        """Lay out word values starting at ``base`` (8 bytes apart)."""
        if isinstance(values, Mapping):
            items = values.items()
        else:
            items = enumerate(values)
        for index, value in items:
            self.set_memory(base + 8 * index, value)

    def set_register(self, reg: int, value: int) -> None:
        self._registers[reg] = value

    def mark_secret(self, address: int, words: int = 1) -> None:
        """Declare ``words`` 8-byte words starting at ``address`` secret.

        Recorded on the built :class:`Program` as ``secret_regions`` —
        the single source of truth for "what must not leak", shared by
        the dynamic noninterference oracle and the static specflow
        analyzer.
        """
        if words <= 0:
            raise AssemblyError(f"secret region at {address:#x} has no words")
        start = address & ~7
        self._secret_regions.append((start, start + 8 * words))

    # ------------------------------------------------------------------
    # Instruction emitters
    # ------------------------------------------------------------------
    def emit(self, instruction: Instruction) -> None:
        self._instructions.append(instruction)

    def li(self, rd: int, imm: int) -> None:
        self.emit(Instruction(Opcode.LI, rd=rd, imm=imm))

    def mov(self, rd: int, rs: int) -> None:
        self.emit(Instruction(Opcode.MOV, rd=rd, rs1=rs))

    def _rrr(self, op: Opcode, rd: int, rs1: int, rs2: int) -> None:
        self.emit(Instruction(op, rd=rd, rs1=rs1, rs2=rs2))

    def add(self, rd: int, rs1: int, rs2: int) -> None:
        self._rrr(Opcode.ADD, rd, rs1, rs2)

    def sub(self, rd: int, rs1: int, rs2: int) -> None:
        self._rrr(Opcode.SUB, rd, rs1, rs2)

    def mul(self, rd: int, rs1: int, rs2: int) -> None:
        self._rrr(Opcode.MUL, rd, rs1, rs2)

    def and_(self, rd: int, rs1: int, rs2: int) -> None:
        self._rrr(Opcode.AND, rd, rs1, rs2)

    def or_(self, rd: int, rs1: int, rs2: int) -> None:
        self._rrr(Opcode.OR, rd, rs1, rs2)

    def xor(self, rd: int, rs1: int, rs2: int) -> None:
        self._rrr(Opcode.XOR, rd, rs1, rs2)

    def shl(self, rd: int, rs1: int, rs2: int) -> None:
        self._rrr(Opcode.SHL, rd, rs1, rs2)

    def shr(self, rd: int, rs1: int, rs2: int) -> None:
        self._rrr(Opcode.SHR, rd, rs1, rs2)

    def _rri(self, op: Opcode, rd: int, rs1: int, imm: int) -> None:
        self.emit(Instruction(op, rd=rd, rs1=rs1, imm=imm))

    def addi(self, rd: int, rs1: int, imm: int) -> None:
        self._rri(Opcode.ADDI, rd, rs1, imm)

    def muli(self, rd: int, rs1: int, imm: int) -> None:
        self._rri(Opcode.MULI, rd, rs1, imm)

    def andi(self, rd: int, rs1: int, imm: int) -> None:
        self._rri(Opcode.ANDI, rd, rs1, imm)

    def xori(self, rd: int, rs1: int, imm: int) -> None:
        self._rri(Opcode.XORI, rd, rs1, imm)

    def shli(self, rd: int, rs1: int, imm: int) -> None:
        self._rri(Opcode.SHLI, rd, rs1, imm)

    def shri(self, rd: int, rs1: int, imm: int) -> None:
        self._rri(Opcode.SHRI, rd, rs1, imm)

    def load(self, rd: int, base: int, disp: int = 0) -> None:
        self.emit(Instruction(Opcode.LOAD, rd=rd, rs1=base, imm=disp))

    def store(self, rs: int, base: int, disp: int = 0) -> None:
        self.emit(Instruction(Opcode.STORE, rs2=rs, rs1=base, imm=disp))

    def nop(self, count: int = 1) -> None:
        for _ in range(count):
            self.emit(Instruction(Opcode.NOP))

    def halt(self) -> None:
        self.emit(Instruction(Opcode.HALT))

    def _branch(self, op: Opcode, rs1: int, rs2: int, target: Target) -> None:
        if isinstance(target, str):
            self._pending.append((self.here, target))
            imm = 0
        else:
            imm = target
        self.emit(Instruction(op, rs1=rs1, rs2=rs2, imm=imm))

    def beq(self, rs1: int, rs2: int, target: Target) -> None:
        self._branch(Opcode.BEQ, rs1, rs2, target)

    def bne(self, rs1: int, rs2: int, target: Target) -> None:
        self._branch(Opcode.BNE, rs1, rs2, target)

    def blt(self, rs1: int, rs2: int, target: Target) -> None:
        self._branch(Opcode.BLT, rs1, rs2, target)

    def bge(self, rs1: int, rs2: int, target: Target) -> None:
        self._branch(Opcode.BGE, rs1, rs2, target)

    def jmp(self, target: Target) -> None:
        if isinstance(target, str):
            self._pending.append((self.here, target))
            imm = 0
        else:
            imm = target
        self.emit(Instruction(Opcode.JMP, imm=imm))

    # ------------------------------------------------------------------
    # Finalization
    # ------------------------------------------------------------------
    def build(self, name: str = "program") -> Program:
        """Resolve pending labels, validate, and return the program.

        Validation happens here — not at emit time — because branch
        targets only become known once every label is bound.  A malformed
        program raises :class:`AssemblyError` naming the offending
        instruction, instead of failing deep inside the pipeline with an
        opaque ``TypeError`` or a silent wrong-path fetch.
        """
        instructions = list(self._instructions)
        for index, label in self._pending:
            if label not in self._labels:
                raise AssemblyError(f"undefined label {label!r}")
            original = instructions[index]
            instructions[index] = Instruction(
                original.opcode,
                rd=original.rd,
                rs1=original.rs1,
                rs2=original.rs2,
                imm=self._labels[label],
                label=original.label,
            )
        self._validate(instructions, name)
        return Program(
            instructions,
            initial_memory=self._memory,
            initial_registers=self._registers,
            name=name,
            secret_regions=self._secret_regions,
        )

    def _validate(self, instructions: List[Instruction], name: str) -> None:
        for index, inst in enumerate(instructions):
            problem = _instruction_problem(inst, len(instructions))
            if problem is not None:
                raise AssemblyError(
                    f"{name}: instruction {index} ({inst.disassemble()}): "
                    f"{problem}",
                    line=index,
                )
        for reg in self._registers:
            if not 0 <= reg < NUM_REGISTERS:
                raise AssemblyError(
                    f"{name}: initial value for register r{reg} out of "
                    f"range (0..{NUM_REGISTERS - 1})"
                )
        for address in self._memory:
            if not 0 <= address < (1 << 64):
                raise AssemblyError(
                    f"{name}: initial memory address {address:#x} outside "
                    "the 64-bit address space"
                )


def _require(value: Optional[int], what: str) -> Optional[str]:
    if value is None:
        return f"missing {what} operand"
    return None


def _instruction_problem(inst: Instruction, length: int) -> Optional[str]:
    """Why ``inst`` is malformed, or None.

    Register *ranges* are already enforced by
    :meth:`Instruction.__post_init__`; this layer checks operand
    *presence* per opcode class, displacement/immediate magnitudes, and
    that branch targets land inside the program (``length`` itself is
    allowed: it is an explicit fall-off-the-end exit, which the
    interpreter defines).
    """
    op = inst.opcode
    if op is Opcode.NOP or op is Opcode.HALT:
        return None
    if op in BRANCH_OPS:
        if op is not Opcode.JMP:
            problem = _require(inst.rs1, "rs1") or _require(inst.rs2, "rs2")
            if problem:
                return problem
        if not 0 <= inst.imm <= length:
            return (
                f"branch target {inst.imm} outside program (0..{length})"
            )
        return None
    if op is Opcode.LOAD:
        problem = _require(inst.rd, "destination") or _require(inst.rs1, "base")
        if problem:
            return problem
        if abs(inst.imm) >= DISPLACEMENT_LIMIT:
            return f"displacement {inst.imm} exceeds ±2^52 sanity bound"
        return None
    if op is Opcode.STORE:
        problem = _require(inst.rs1, "base") or _require(inst.rs2, "data")
        if problem:
            return problem
        if abs(inst.imm) >= DISPLACEMENT_LIMIT:
            return f"displacement {inst.imm} exceeds ±2^52 sanity bound"
        return None
    # ALU family.
    problem = _require(inst.rd, "destination")
    if problem:
        return problem
    if op is Opcode.LI:
        if not -IMMEDIATE_LIMIT < inst.imm < IMMEDIATE_LIMIT:
            return f"immediate {inst.imm} does not fit in 64 bits"
        return None
    problem = _require(inst.rs1, "rs1")
    if problem:
        return problem
    if op in IMMEDIATE_ALU_OPS:
        if abs(inst.imm) >= DISPLACEMENT_LIMIT:
            return f"immediate {inst.imm} exceeds ±2^52 sanity bound"
        return None
    if op is Opcode.MOV:
        return None
    return _require(inst.rs2, "rs2")
