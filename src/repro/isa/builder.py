"""A programmatic code builder for generating workloads and gadgets.

``CodeBuilder`` offers label-based control flow with deferred resolution so
kernel generators (``repro.workloads``) and attack gadgets
(``repro.attacks``) can be written without manual instruction indices::

    b = CodeBuilder()
    b.li(1, 0)                    # i = 0
    loop = b.label("loop")
    b.load(2, base=1, disp=BASE)  # r2 = A[i]
    b.addi(1, 1, 8)
    b.blt(1, 3, "loop")           # while i < r3
    b.halt()
    program = b.build(name="sum")
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple, Union

from repro.common.errors import AssemblyError
from repro.isa.instructions import Instruction, Opcode
from repro.isa.program import Program

Target = Union[str, int]


class CodeBuilder:
    """Incrementally build a :class:`Program`."""

    def __init__(self) -> None:
        self._instructions: List[Instruction] = []
        self._labels: Dict[str, int] = {}
        self._pending: List[Tuple[int, str]] = []
        self._memory: Dict[int, int] = {}
        self._registers: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Labels and layout
    # ------------------------------------------------------------------
    @property
    def here(self) -> int:
        """Index of the next instruction to be emitted."""
        return len(self._instructions)

    def label(self, name: str) -> int:
        """Bind ``name`` to the current position; returns that position."""
        if name in self._labels:
            raise AssemblyError(f"duplicate label {name!r}")
        self._labels[name] = self.here
        return self.here

    def set_memory(self, address: int, value: int) -> None:
        """Set one 8-byte word of the initial memory image."""
        self._memory[address & ~7] = value

    def set_array(self, base: int, values: Mapping[int, int] | List[int]) -> None:
        """Lay out word values starting at ``base`` (8 bytes apart)."""
        if isinstance(values, Mapping):
            items = values.items()
        else:
            items = enumerate(values)
        for index, value in items:
            self.set_memory(base + 8 * index, value)

    def set_register(self, reg: int, value: int) -> None:
        self._registers[reg] = value

    # ------------------------------------------------------------------
    # Instruction emitters
    # ------------------------------------------------------------------
    def emit(self, instruction: Instruction) -> None:
        self._instructions.append(instruction)

    def li(self, rd: int, imm: int) -> None:
        self.emit(Instruction(Opcode.LI, rd=rd, imm=imm))

    def mov(self, rd: int, rs: int) -> None:
        self.emit(Instruction(Opcode.MOV, rd=rd, rs1=rs))

    def _rrr(self, op: Opcode, rd: int, rs1: int, rs2: int) -> None:
        self.emit(Instruction(op, rd=rd, rs1=rs1, rs2=rs2))

    def add(self, rd: int, rs1: int, rs2: int) -> None:
        self._rrr(Opcode.ADD, rd, rs1, rs2)

    def sub(self, rd: int, rs1: int, rs2: int) -> None:
        self._rrr(Opcode.SUB, rd, rs1, rs2)

    def mul(self, rd: int, rs1: int, rs2: int) -> None:
        self._rrr(Opcode.MUL, rd, rs1, rs2)

    def and_(self, rd: int, rs1: int, rs2: int) -> None:
        self._rrr(Opcode.AND, rd, rs1, rs2)

    def or_(self, rd: int, rs1: int, rs2: int) -> None:
        self._rrr(Opcode.OR, rd, rs1, rs2)

    def xor(self, rd: int, rs1: int, rs2: int) -> None:
        self._rrr(Opcode.XOR, rd, rs1, rs2)

    def shl(self, rd: int, rs1: int, rs2: int) -> None:
        self._rrr(Opcode.SHL, rd, rs1, rs2)

    def shr(self, rd: int, rs1: int, rs2: int) -> None:
        self._rrr(Opcode.SHR, rd, rs1, rs2)

    def _rri(self, op: Opcode, rd: int, rs1: int, imm: int) -> None:
        self.emit(Instruction(op, rd=rd, rs1=rs1, imm=imm))

    def addi(self, rd: int, rs1: int, imm: int) -> None:
        self._rri(Opcode.ADDI, rd, rs1, imm)

    def muli(self, rd: int, rs1: int, imm: int) -> None:
        self._rri(Opcode.MULI, rd, rs1, imm)

    def andi(self, rd: int, rs1: int, imm: int) -> None:
        self._rri(Opcode.ANDI, rd, rs1, imm)

    def xori(self, rd: int, rs1: int, imm: int) -> None:
        self._rri(Opcode.XORI, rd, rs1, imm)

    def shli(self, rd: int, rs1: int, imm: int) -> None:
        self._rri(Opcode.SHLI, rd, rs1, imm)

    def shri(self, rd: int, rs1: int, imm: int) -> None:
        self._rri(Opcode.SHRI, rd, rs1, imm)

    def load(self, rd: int, base: int, disp: int = 0) -> None:
        self.emit(Instruction(Opcode.LOAD, rd=rd, rs1=base, imm=disp))

    def store(self, rs: int, base: int, disp: int = 0) -> None:
        self.emit(Instruction(Opcode.STORE, rs2=rs, rs1=base, imm=disp))

    def nop(self, count: int = 1) -> None:
        for _ in range(count):
            self.emit(Instruction(Opcode.NOP))

    def halt(self) -> None:
        self.emit(Instruction(Opcode.HALT))

    def _branch(self, op: Opcode, rs1: int, rs2: int, target: Target) -> None:
        if isinstance(target, str):
            self._pending.append((self.here, target))
            imm = 0
        else:
            imm = target
        self.emit(Instruction(op, rs1=rs1, rs2=rs2, imm=imm))

    def beq(self, rs1: int, rs2: int, target: Target) -> None:
        self._branch(Opcode.BEQ, rs1, rs2, target)

    def bne(self, rs1: int, rs2: int, target: Target) -> None:
        self._branch(Opcode.BNE, rs1, rs2, target)

    def blt(self, rs1: int, rs2: int, target: Target) -> None:
        self._branch(Opcode.BLT, rs1, rs2, target)

    def bge(self, rs1: int, rs2: int, target: Target) -> None:
        self._branch(Opcode.BGE, rs1, rs2, target)

    def jmp(self, target: Target) -> None:
        if isinstance(target, str):
            self._pending.append((self.here, target))
            imm = 0
        else:
            imm = target
        self.emit(Instruction(Opcode.JMP, imm=imm))

    # ------------------------------------------------------------------
    # Finalization
    # ------------------------------------------------------------------
    def build(self, name: str = "program") -> Program:
        """Resolve pending labels and return the finished program."""
        instructions = list(self._instructions)
        for index, label in self._pending:
            if label not in self._labels:
                raise AssemblyError(f"undefined label {label!r}")
            original = instructions[index]
            instructions[index] = Instruction(
                original.opcode,
                rd=original.rd,
                rs1=original.rs1,
                rs2=original.rs2,
                imm=self._labels[label],
                label=original.label,
            )
        return Program(
            instructions,
            initial_memory=self._memory,
            initial_registers=self._registers,
            name=name,
        )
