"""The micro-ISA executed by the simulator.

A small RISC-style integer ISA: 32 general-purpose registers (``r0`` is
hardwired to zero), a flat 64-bit byte-addressed memory, and the minimal
set of operations needed to express the paper's attack gadgets and
SPEC-like synthetic kernels:

* ALU: ``li, mov, add, sub, mul, and, or, xor, shl, shr`` plus immediate
  forms ``addi, muli, andi, xori, shli, shri``.
* Memory: ``load rd, [rs1 + imm]`` and ``store rs2, [rs1 + imm]``.
* Control: conditional branches ``beq, bne, blt, bge`` (register-register),
  unconditional ``jmp``, and ``halt``.

Instructions are static objects; the pipeline wraps each dynamic instance
in a :class:`repro.pipeline.uop.MicroOp`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.common.errors import AssemblyError, ExecutionError

NUM_REGISTERS = 32
WORD_MASK = (1 << 64) - 1


class Opcode(enum.Enum):
    """Every operation in the micro-ISA."""

    LI = "li"
    MOV = "mov"
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    SHR = "shr"
    ADDI = "addi"
    MULI = "muli"
    ANDI = "andi"
    XORI = "xori"
    SHLI = "shli"
    SHRI = "shri"
    LOAD = "load"
    STORE = "store"
    BEQ = "beq"
    BNE = "bne"
    BLT = "blt"
    BGE = "bge"
    JMP = "jmp"
    NOP = "nop"
    HALT = "halt"


ALU_OPS = frozenset(
    {
        Opcode.LI,
        Opcode.MOV,
        Opcode.ADD,
        Opcode.SUB,
        Opcode.MUL,
        Opcode.AND,
        Opcode.OR,
        Opcode.XOR,
        Opcode.SHL,
        Opcode.SHR,
        Opcode.ADDI,
        Opcode.MULI,
        Opcode.ANDI,
        Opcode.XORI,
        Opcode.SHLI,
        Opcode.SHRI,
    }
)
BRANCH_OPS = frozenset({Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE, Opcode.JMP})
CONDITIONAL_BRANCH_OPS = frozenset({Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE})
IMMEDIATE_ALU_OPS = frozenset(
    {Opcode.ADDI, Opcode.MULI, Opcode.ANDI, Opcode.XORI, Opcode.SHLI, Opcode.SHRI}
)
MUL_OPS = frozenset({Opcode.MUL, Opcode.MULI})


def _check_reg(value: Optional[int], what: str) -> None:
    if value is None:
        return
    if not 0 <= value < NUM_REGISTERS:
        raise AssemblyError(f"{what} r{value} out of range (0..{NUM_REGISTERS - 1})")


# Instruction kind codes, precomputed per static instruction so the
# pipeline's hot paths dispatch on a plain int instead of enum lookups.
KIND_ALU = 0
KIND_LOAD = 1
KIND_STORE = 2
KIND_CBRANCH = 3
KIND_JMP = 4
KIND_NOP = 5
KIND_HALT = 6


@dataclass(frozen=True)
class Instruction:
    """One static instruction.

    Operand conventions by opcode class:

    * ALU register-register: ``rd``, ``rs1``, ``rs2``.
    * ALU immediate / LI / MOV: ``rd``, ``rs1`` (except LI), ``imm``.
    * LOAD: ``rd``, base ``rs1``, displacement ``imm``.
    * STORE: data ``rs2``, base ``rs1``, displacement ``imm``.
    * Conditional branches: ``rs1``, ``rs2``, target ``imm`` (absolute PC).
    * JMP: target ``imm``.
    """

    opcode: Opcode
    rd: Optional[int] = None
    rs1: Optional[int] = None
    rs2: Optional[int] = None
    imm: int = 0
    label: Optional[str] = None
    """Optional human-readable tag (used in disassembly and tests)."""

    def __post_init__(self) -> None:
        _check_reg(self.rd, "destination")
        _check_reg(self.rs1, "source 1")
        _check_reg(self.rs2, "source 2")
        # Precompute hot-path classification (frozen dataclass, so set via
        # object.__setattr__).  ``kind`` is one of the KIND_* codes.
        op = self.opcode
        if op in ALU_OPS:
            kind = KIND_ALU
        elif op is Opcode.LOAD:
            kind = KIND_LOAD
        elif op is Opcode.STORE:
            kind = KIND_STORE
        elif op in CONDITIONAL_BRANCH_OPS:
            kind = KIND_CBRANCH
        elif op is Opcode.JMP:
            kind = KIND_JMP
        elif op is Opcode.NOP:
            kind = KIND_NOP
        else:
            kind = KIND_HALT
        object.__setattr__(self, "kind", kind)
        object.__setattr__(self, "writes", self.rd is not None and self.rd != 0)
        object.__setattr__(self, "is_mul", op in MUL_OPS)
        # Bind the functional evaluator once per static instruction so the
        # execute stage calls a plain function instead of walking an
        # opcode chain per dynamic instance.
        object.__setattr__(self, "alu_fn", _ALU_FUNCS.get(op))
        object.__setattr__(self, "branch_fn", _BRANCH_FUNCS.get(op))

    # ------------------------------------------------------------------
    # Classification helpers (properties mirror the precomputed fields)
    # ------------------------------------------------------------------
    @property
    def is_load(self) -> bool:
        return self.kind == KIND_LOAD

    @property
    def is_store(self) -> bool:
        return self.kind == KIND_STORE

    @property
    def is_branch(self) -> bool:
        return self.kind == KIND_CBRANCH or self.kind == KIND_JMP

    @property
    def is_conditional_branch(self) -> bool:
        return self.kind == KIND_CBRANCH

    @property
    def is_alu(self) -> bool:
        return self.kind == KIND_ALU

    @property
    def is_halt(self) -> bool:
        return self.kind == KIND_HALT

    @property
    def writes_register(self) -> bool:
        return self.writes

    def source_registers(self) -> Tuple[int, ...]:
        """Architectural registers read by this instruction (r0 excluded)."""
        sources = []
        if self.rs1 is not None and self.rs1 != 0:
            sources.append(self.rs1)
        if self.rs2 is not None and self.rs2 != 0:
            sources.append(self.rs2)
        return tuple(sources)

    def disassemble(self) -> str:
        """Render back to assembler syntax."""
        op = self.opcode
        if op is Opcode.NOP or op is Opcode.HALT:
            return op.value
        if op is Opcode.LI:
            return f"li r{self.rd}, {self.imm}"
        if op is Opcode.MOV:
            return f"mov r{self.rd}, r{self.rs1}"
        if op is Opcode.LOAD:
            return f"load r{self.rd}, [r{self.rs1} + {self.imm}]"
        if op is Opcode.STORE:
            return f"store r{self.rs2}, [r{self.rs1} + {self.imm}]"
        if op is Opcode.JMP:
            return f"jmp {self.imm}"
        if op in CONDITIONAL_BRANCH_OPS:
            return f"{op.value} r{self.rs1}, r{self.rs2}, {self.imm}"
        if op in IMMEDIATE_ALU_OPS:
            return f"{op.value} r{self.rd}, r{self.rs1}, {self.imm}"
        return f"{op.value} r{self.rd}, r{self.rs1}, r{self.rs2}"

    def __str__(self) -> str:  # pragma: no cover - convenience only
        return self.disassemble()


def _add(a: int, b: int) -> int:
    return (a + b) & WORD_MASK


def _sub(a: int, b: int) -> int:
    return (a - b) & WORD_MASK


def _mul(a: int, b: int) -> int:
    return (a * b) & WORD_MASK


def _and(a: int, b: int) -> int:
    return a & b


def _or(a: int, b: int) -> int:
    return a | b


def _xor(a: int, b: int) -> int:
    return a ^ b


def _shl(a: int, b: int) -> int:
    return (a << (b & 63)) & WORD_MASK


def _shr(a: int, b: int) -> int:
    return a >> (b & 63)


def _mov(a: int, b: int) -> int:
    return a


def _li(a: int, b: int) -> int:
    return b & WORD_MASK


#: Opcode -> evaluator dispatch table; the execute stage binds these once
#: per static instruction (``Instruction.alu_fn``) so a dynamic instance
#: pays one call, not an if/elif chain.
_ALU_FUNCS = {
    Opcode.ADD: _add,
    Opcode.ADDI: _add,
    Opcode.SUB: _sub,
    Opcode.MUL: _mul,
    Opcode.MULI: _mul,
    Opcode.AND: _and,
    Opcode.ANDI: _and,
    Opcode.OR: _or,
    Opcode.XOR: _xor,
    Opcode.XORI: _xor,
    Opcode.SHL: _shl,
    Opcode.SHLI: _shl,
    Opcode.SHR: _shr,
    Opcode.SHRI: _shr,
    Opcode.MOV: _mov,
    Opcode.LI: _li,
}


def evaluate_alu(opcode: Opcode, a: int, b: int) -> int:
    """Functionally evaluate an ALU operation on 64-bit unsigned values."""
    fn = _ALU_FUNCS.get(opcode)
    if fn is None:
        raise ExecutionError(f"{opcode} is not an ALU opcode")
    return fn(a, b)


def _signed(value: int) -> int:
    return value - (1 << 64) if value >> 63 else value


def _jmp_taken(a: int, b: int) -> bool:
    return True


def _beq(a: int, b: int) -> bool:
    return a == b


def _bne(a: int, b: int) -> bool:
    return a != b


def _blt(a: int, b: int) -> bool:
    return _signed(a) < _signed(b)


def _bge(a: int, b: int) -> bool:
    return _signed(a) >= _signed(b)


#: Opcode -> predicate dispatch table (``Instruction.branch_fn``).
#: ``blt``/``bge`` compare as two's-complement signed 64-bit values,
#: which lets kernels count down through zero.
_BRANCH_FUNCS = {
    Opcode.JMP: _jmp_taken,
    Opcode.BEQ: _beq,
    Opcode.BNE: _bne,
    Opcode.BLT: _blt,
    Opcode.BGE: _bge,
}


def branch_taken(opcode: Opcode, a: int, b: int) -> bool:
    """Evaluate a branch predicate."""
    fn = _BRANCH_FUNCS.get(opcode)
    if fn is None:
        raise ExecutionError(f"{opcode} is not a branch opcode")
    return fn(a, b)
