"""Programs: static instruction sequences plus initial memory images.

A :class:`Program` is what the simulator executes.  Its functional
reference semantics live in :meth:`Program.interpret`, used by tests to
check that the out-of-order core commits exactly the architectural state a
simple in-order interpreter produces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.common.errors import ExecutionError
from repro.isa.instructions import (
    NUM_REGISTERS,
    WORD_MASK,
    Instruction,
    Opcode,
    branch_taken,
    evaluate_alu,
)

WORD_SIZE = 8
"""Memory is addressed in bytes but loads/stores move 8-byte words."""


@dataclass
class ArchState:
    """Architectural state: registers and word-granular memory."""

    registers: List[int] = field(default_factory=lambda: [0] * NUM_REGISTERS)
    memory: Dict[int, int] = field(default_factory=dict)

    def read_reg(self, index: int) -> int:
        return 0 if index == 0 else self.registers[index]

    def write_reg(self, index: int, value: int) -> None:
        if index != 0:
            self.registers[index] = value & WORD_MASK

    def read_mem(self, address: int) -> int:
        """Read the 8-byte word containing ``address`` (word-aligned)."""
        return self.memory.get(address & ~(WORD_SIZE - 1) & WORD_MASK, 0)

    def write_mem(self, address: int, value: int) -> None:
        self.memory[address & ~(WORD_SIZE - 1) & WORD_MASK] = value & WORD_MASK

    def copy(self) -> "ArchState":
        return ArchState(list(self.registers), dict(self.memory))


@dataclass
class InterpreterResult:
    """Outcome of functional interpretation."""

    state: ArchState
    instructions_executed: int
    halted: bool
    branch_trace: List[bool] = field(default_factory=list)
    mem_trace: Optional[List[Tuple[int, int, bool]]] = None
    """With ``interpret(trace_mem=True)``: every memory access in program
    order as ``(pc, word_address, is_store)``.  The static leakage
    analyzer compares these traces across secret values to detect
    *architectural* channels (access patterns that depend on the secret
    with no speculation involved)."""


class Program:
    """A static program: instructions, entry point, and initial memory."""

    def __init__(
        self,
        instructions: Sequence[Instruction],
        initial_memory: Optional[Mapping[int, int]] = None,
        initial_registers: Optional[Mapping[int, int]] = None,
        name: str = "program",
        secret_regions: Sequence[Sequence[int]] = (),
    ):
        self.instructions: List[Instruction] = list(instructions)
        self.initial_memory: Dict[int, int] = dict(initial_memory or {})
        self.initial_registers: Dict[int, int] = dict(initial_registers or {})
        self.name = name
        self.secret_regions: Tuple[Tuple[int, int], ...] = tuple(
            sorted((int(start), int(end)) for start, end in secret_regions)
        )
        """Half-open byte ranges ``[start, end)`` holding secret data.

        Declared by gadget builders (:meth:`CodeBuilder.mark_secret`) and
        consumed by both judges of the noninterference property: the
        dynamic oracle varies exactly these words between runs, and the
        static analyzer (``repro.analysis.specflow``) seeds its taint
        lattice from them.
        """
        for start, end in self.secret_regions:
            if start >= end:
                raise ExecutionError(
                    f"{name}: empty secret region [{start:#x}, {end:#x})"
                )

    def secret_words(self) -> Tuple[int, ...]:
        """Every word-aligned address covered by a secret region."""
        words = set()
        for start, end in self.secret_regions:
            addr = start & ~(WORD_SIZE - 1)
            while addr < end:
                words.add(addr)
                addr += WORD_SIZE
        return tuple(sorted(words))

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def fetch(self, pc: int) -> Optional[Instruction]:
        """The instruction at ``pc``, or None past the end of the program.

        Wrong-path fetch can run past the program; the front-end treats a
        None fetch as an implicit halt bubble.
        """
        if 0 <= pc < len(self.instructions):
            return self.instructions[pc]
        return None

    def initial_state(self) -> ArchState:
        state = ArchState()
        for addr, value in self.initial_memory.items():
            state.write_mem(addr, value)
        for reg, value in self.initial_registers.items():
            state.write_reg(reg, value)
        return state

    def disassemble(self) -> str:
        return "\n".join(
            f"{pc:5d}: {inst.disassemble()}" for pc, inst in enumerate(self.instructions)
        )

    # ------------------------------------------------------------------
    # Serialization (used by fuzz repro files)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """A JSON-able description that round-trips via :meth:`from_dict`.

        Memory/register keys become strings because JSON objects cannot
        have integer keys.
        """
        return {
            "name": self.name,
            "instructions": [
                {
                    "opcode": inst.opcode.value,
                    "rd": inst.rd,
                    "rs1": inst.rs1,
                    "rs2": inst.rs2,
                    "imm": inst.imm,
                    "label": inst.label,
                }
                for inst in self.instructions
            ],
            "initial_memory": {
                str(addr): value for addr, value in sorted(self.initial_memory.items())
            },
            "initial_registers": {
                str(reg): value
                for reg, value in sorted(self.initial_registers.items())
            },
            "secret_regions": [list(region) for region in self.secret_regions],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Program":
        """Rebuild a program serialized with :meth:`to_dict`."""
        instructions = [
            Instruction(
                Opcode(entry["opcode"]),
                rd=entry.get("rd"),
                rs1=entry.get("rs1"),
                rs2=entry.get("rs2"),
                imm=entry.get("imm", 0),
                label=entry.get("label"),
            )
            for entry in payload["instructions"]
        ]
        return cls(
            instructions,
            initial_memory={
                int(addr): value
                for addr, value in payload.get("initial_memory", {}).items()
            },
            initial_registers={
                int(reg): value
                for reg, value in payload.get("initial_registers", {}).items()
            },
            name=payload.get("name", "program"),
            secret_regions=payload.get("secret_regions", ()),
        )

    # ------------------------------------------------------------------
    # Functional reference semantics
    # ------------------------------------------------------------------
    def interpret(
        self, max_instructions: int = 10_000_000, trace_mem: bool = False
    ) -> InterpreterResult:
        """Run the program on a simple in-order interpreter.

        Returns the final architectural state; used as the golden reference
        for the out-of-order core and for deriving branch traces.  With
        ``trace_mem`` the result additionally records every memory access
        as ``(pc, word_address, is_store)`` — the raw material for the
        static analyzer's architectural-channel check.
        """
        state = self.initial_state()
        pc = 0
        executed = 0
        branch_trace: List[bool] = []
        mem_trace: Optional[List[Tuple[int, int, bool]]] = [] if trace_mem else None
        program_len = len(self.instructions)
        word_align = ~(WORD_SIZE - 1) & WORD_MASK
        while 0 <= pc < program_len:
            if executed >= max_instructions:
                raise ExecutionError(
                    f"{self.name}: exceeded {max_instructions} interpreted instructions"
                )
            inst = self.instructions[pc]
            executed += 1
            op = inst.opcode
            if op is Opcode.HALT:
                return InterpreterResult(state, executed, True, branch_trace, mem_trace)
            if op is Opcode.NOP:
                pc += 1
            elif inst.is_alu:
                a = state.read_reg(inst.rs1) if inst.rs1 is not None else 0
                b = inst.imm if inst.rs2 is None else state.read_reg(inst.rs2)
                state.write_reg(inst.rd, evaluate_alu(op, a, b))
                pc += 1
            elif op is Opcode.LOAD:
                address = (state.read_reg(inst.rs1) + inst.imm) & WORD_MASK
                if mem_trace is not None:
                    mem_trace.append((pc, address & word_align, False))
                state.write_reg(inst.rd, state.read_mem(address))
                pc += 1
            elif op is Opcode.STORE:
                address = (state.read_reg(inst.rs1) + inst.imm) & WORD_MASK
                if mem_trace is not None:
                    mem_trace.append((pc, address & word_align, True))
                state.write_mem(address, state.read_reg(inst.rs2))
                pc += 1
            elif inst.is_branch:
                a = state.read_reg(inst.rs1) if inst.rs1 is not None else 0
                b = state.read_reg(inst.rs2) if inst.rs2 is not None else 0
                taken = branch_taken(op, a, b)
                if inst.is_conditional_branch:
                    branch_trace.append(taken)
                pc = inst.imm if taken else pc + 1
            else:  # pragma: no cover - all opcodes handled above
                raise ExecutionError(f"unhandled opcode {op}")
        return InterpreterResult(state, executed, False, branch_trace, mem_trace)
