"""A small two-pass assembler for the micro-ISA.

Syntax (one instruction per line; ``#`` or ``;`` start comments)::

    start:
        li   r1, 100
    loop:
        load r2, [r1 + 8]
        addi r1, r1, 8
        bne  r2, r0, loop
        halt

Labels are case-sensitive identifiers followed by ``:``; branch/jump
targets may be labels or absolute instruction indices.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.common.errors import AssemblyError
from repro.isa.instructions import (
    CONDITIONAL_BRANCH_OPS,
    IMMEDIATE_ALU_OPS,
    Instruction,
    Opcode,
)

_LABEL_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_]*):\s*(.*)$")
_MEM_RE = re.compile(r"^\[\s*(r\d+)\s*(?:([+-])\s*(\w+))?\s*\]$")
_MNEMONICS = {op.value: op for op in Opcode}
_THREE_REG_OPS = {
    Opcode.ADD,
    Opcode.SUB,
    Opcode.MUL,
    Opcode.AND,
    Opcode.OR,
    Opcode.XOR,
    Opcode.SHL,
    Opcode.SHR,
}


def _parse_register(token: str, line: int) -> int:
    token = token.strip().lower()
    if not token.startswith("r"):
        raise AssemblyError(f"expected register, got {token!r}", line)
    try:
        index = int(token[1:])
    except ValueError:
        raise AssemblyError(f"bad register {token!r}", line) from None
    if not 0 <= index < 32:
        raise AssemblyError(f"register {token!r} out of range", line)
    return index


def _parse_immediate(token: str, line: int) -> int:
    token = token.strip()
    try:
        return int(token, 0)
    except ValueError:
        raise AssemblyError(f"bad immediate {token!r}", line) from None


def _split_operands(rest: str) -> List[str]:
    return [part.strip() for part in rest.split(",")] if rest.strip() else []


def _parse_mem_operand(token: str, line: int) -> Tuple[int, int]:
    """Parse ``[rN + imm]`` into (base register, displacement)."""
    match = _MEM_RE.match(token.strip())
    if not match:
        raise AssemblyError(f"bad memory operand {token!r}", line)
    base = _parse_register(match.group(1), line)
    displacement = 0
    if match.group(3) is not None:
        displacement = _parse_immediate(match.group(3), line)
        if match.group(2) == "-":
            displacement = -displacement
    return base, displacement


class _PendingTarget:
    """A branch target to resolve in the second pass."""

    def __init__(self, index: int, token: str, line: int):
        self.index = index
        self.token = token
        self.line = line


def assemble(source: str) -> List[Instruction]:
    """Assemble source text into a list of instructions."""
    instructions: List[Instruction] = []
    labels: Dict[str, int] = {}
    pending: List[_PendingTarget] = []

    for line_number, raw in enumerate(source.splitlines(), start=1):
        text = raw.split("#", 1)[0].split(";", 1)[0].strip()
        while text:
            match = _LABEL_RE.match(text)
            if not match:
                break
            label = match.group(1)
            if label in labels:
                raise AssemblyError(f"duplicate label {label!r}", line_number)
            labels[label] = len(instructions)
            text = match.group(2).strip()
        if not text:
            continue
        instructions.append(_parse_instruction(text, line_number, pending, len(instructions)))

    resolved: List[Instruction] = list(instructions)
    for target in pending:
        if target.token in labels:
            address = labels[target.token]
        else:
            try:
                address = int(target.token, 0)
            except ValueError:
                raise AssemblyError(
                    f"unknown label {target.token!r}", target.line
                ) from None
        original = resolved[target.index]
        resolved[target.index] = Instruction(
            original.opcode,
            rd=original.rd,
            rs1=original.rs1,
            rs2=original.rs2,
            imm=address,
            label=original.label,
        )
    return resolved


def _parse_instruction(
    text: str, line: int, pending: List[_PendingTarget], index: int
) -> Instruction:
    parts = text.split(None, 1)
    mnemonic = parts[0].lower()
    rest = parts[1] if len(parts) > 1 else ""
    opcode = _MNEMONICS.get(mnemonic)
    if opcode is None:
        raise AssemblyError(f"unknown mnemonic {mnemonic!r}", line)
    operands = _split_operands(rest)

    def expect(count: int) -> None:
        if len(operands) != count:
            raise AssemblyError(
                f"{mnemonic} expects {count} operand(s), got {len(operands)}", line
            )

    if opcode in (Opcode.NOP, Opcode.HALT):
        expect(0)
        return Instruction(opcode)
    if opcode is Opcode.LI:
        expect(2)
        return Instruction(opcode, rd=_parse_register(operands[0], line),
                           imm=_parse_immediate(operands[1], line))
    if opcode is Opcode.MOV:
        expect(2)
        return Instruction(opcode, rd=_parse_register(operands[0], line),
                           rs1=_parse_register(operands[1], line))
    if opcode in _THREE_REG_OPS:
        expect(3)
        return Instruction(
            opcode,
            rd=_parse_register(operands[0], line),
            rs1=_parse_register(operands[1], line),
            rs2=_parse_register(operands[2], line),
        )
    if opcode in IMMEDIATE_ALU_OPS:
        expect(3)
        return Instruction(
            opcode,
            rd=_parse_register(operands[0], line),
            rs1=_parse_register(operands[1], line),
            imm=_parse_immediate(operands[2], line),
        )
    if opcode is Opcode.LOAD:
        expect(2)
        base, disp = _parse_mem_operand(operands[1], line)
        return Instruction(opcode, rd=_parse_register(operands[0], line),
                           rs1=base, imm=disp)
    if opcode is Opcode.STORE:
        expect(2)
        base, disp = _parse_mem_operand(operands[1], line)
        return Instruction(opcode, rs2=_parse_register(operands[0], line),
                           rs1=base, imm=disp)
    if opcode is Opcode.JMP:
        expect(1)
        pending.append(_PendingTarget(index, operands[0], line))
        return Instruction(opcode, imm=0)
    if opcode in CONDITIONAL_BRANCH_OPS:
        expect(3)
        pending.append(_PendingTarget(index, operands[2], line))
        return Instruction(
            opcode,
            rs1=_parse_register(operands[0], line),
            rs2=_parse_register(operands[1], line),
            imm=0,
        )
    raise AssemblyError(f"unhandled mnemonic {mnemonic!r}", line)  # pragma: no cover
