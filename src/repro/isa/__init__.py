"""The micro-ISA: instructions, programs, assembler, and code builder."""

from repro.isa.assembler import assemble
from repro.isa.builder import CodeBuilder
from repro.isa.instructions import (
    NUM_REGISTERS,
    WORD_MASK,
    Instruction,
    Opcode,
    branch_taken,
    evaluate_alu,
)
from repro.isa.program import ArchState, InterpreterResult, Program, WORD_SIZE

__all__ = [
    "ArchState",
    "CodeBuilder",
    "Instruction",
    "InterpreterResult",
    "NUM_REGISTERS",
    "Opcode",
    "Program",
    "WORD_MASK",
    "WORD_SIZE",
    "assemble",
    "branch_taken",
    "evaluate_alu",
]
