"""The attacker's measurement apparatus: a flush+probe cache observer.

The observer models the standard cache covert-channel receiver: it knows a
*probe array* base address and checks, after the victim ran, which probe
lines became resident.  Residency checks are non-mutating
(:meth:`repro.memory.MemoryHierarchy.residency`), so observing does not
disturb the state being observed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.memory.hierarchy import MemoryHierarchy

PROBE_LINE_STRIDE = 64
"""One value maps to one cache line, as in the original Spectre PoC."""


@dataclass
class CacheObserver:
    """Watches ``values`` probe lines starting at ``probe_base``."""

    hierarchy: MemoryHierarchy
    probe_base: int
    values: int = 16
    line_stride: int = PROBE_LINE_STRIDE

    def address_of(self, value: int) -> int:
        return self.probe_base + value * self.line_stride

    def resident_values(self) -> List[int]:
        """Values whose probe line is cached anywhere in the hierarchy."""
        return [
            value
            for value in range(self.values)
            if self.hierarchy.is_cached(self.address_of(value))
        ]

    def snapshot(self, addresses: Sequence[int]) -> Dict[int, Optional[int]]:
        """Residency level per address (None = uncached); used for
        non-interference comparisons."""
        return {address: self.hierarchy.residency(address) for address in addresses}

    def infer_secret(self, exclude: Sequence[int] = ()) -> Optional[int]:
        """The leaked value, if exactly one non-excluded line is resident.

        ``exclude`` lists values legitimately touched during training so
        the receiver can subtract its own noise floor.
        """
        candidates = [v for v in self.resident_values() if v not in exclude]
        if len(candidates) == 1:
            return candidates[0]
        return None
