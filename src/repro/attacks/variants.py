"""Deliberately weakened scheme variants.

These exist to *demonstrate the necessity* of the paper's mitigations: the
security tests show that the full schemes block an attack while the
variant with one rule removed leaks.  They must never be used outside
tests/examples — their names say so.
"""

from __future__ import annotations

from repro.pipeline.uop import MicroOp
from repro.schemes.base import READY
from repro.schemes.dom import DelayOnMiss


class InsecureDoMAPWithoutInOrderBranches(DelayOnMiss):
    """DoM + Doppelganger Loads *without* §4.6's in-order branch rule.

    A secret-dependent branch may then resolve transiently, redirect the
    wrong-path fetch, and steer which doppelganger's (visible) miss
    appears — exactly the implicit channel of Figure 4.  Used by
    ``tests/attacks`` to show the rule is load-bearing.
    """

    name = "dom-insecure-branches"
    specflow_policy = "dom-insecure-branches"

    def branch_block_seq(self, branch: MicroOp, operand_taint: int) -> int:
        return READY


class InsecureDoMAPEagerMispredictReissue(DelayOnMiss):
    """DoM + Doppelganger Loads *without* §5.3's delayed re-issue rule.

    The real load of a mispredicted doppelganger issues immediately (even
    while speculative), so whether a *second* miss appears depends on the
    resolved address — which may be derived from a speculatively loaded
    value, leaking it through the miss pattern.
    """

    name = "dom-insecure-reissue"
    specflow_policy = "dom-insecure-reissue"

    def load_block_seq(self, load: MicroOp) -> int:
        if load.dom_delayed and self.shadows.is_speculative(load.seq):
            return load.seq
        return READY
