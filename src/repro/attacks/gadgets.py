"""Attack gadget programs.

Each builder returns a :class:`Gadget`: the micro-ISA program plus the
metadata the harness needs (probe layout, lines to pre-warm, what counts
as training noise).  The gadgets are executable statements of the paper's
security discussion:

* :func:`spectre_v1` — the universal read gadget (Figure 1a): train a
  bounds check, then transiently read out of bounds and transmit the
  secret through a probe-array load.
* :func:`dom_implicit_channel` — Figure 4: a secret-dependent branch
  steering two address-predicted loads, with the secret either loaded
  speculatively from an L1-resident line (4a) or sitting in a register
  non-speculatively (4b).  This is the channel DoM+AP must close with
  in-order branch resolution.
* :func:`store_forward_probe` — Figure 3: an older store aliasing a
  doppelganger's predicted address; forwarding must override the preload
  without making the doppelganger access disappear.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.common.errors import ConfigError
from repro.isa.builder import CodeBuilder
from repro.isa.program import Program
from repro.attacks.observer import PROBE_LINE_STRIDE

# Address-space layout for gadgets (disjoint from workload bases).
SIZE_ADDR = 0x0000_1000
IDX_BASE = 0x0000_2000
ARRAY1_BASE = 0x0000_4000
PROBE_BASE = 0x0004_0000
SECRET_X_ADDR = 0x0008_0000
SECRET_Y_ADDR = 0x0008_4000
SECRET_CELL = 0x000C_0000
STL_DATA_ADDR = 0x0010_0000

ARRAY1_SIZE_WORDS = 16
_SLOW_CHAIN_MULS = 22
"""muli-by-1 chain length delaying bounds-check resolution (the
transient window: ~3 cycles per multiply — long enough for the nested
mispredict-redirect chains of the Figure 4 gadgets to play out)."""


@dataclass
class Gadget:
    """A program plus everything the attack harness needs around it."""

    program: Program
    probe_base: int = PROBE_BASE
    probe_values: int = 16
    secret_value: int = 0
    secret_address: int = 0
    training_values: Tuple[int, ...] = ()
    """Probe values legitimately touched during training (receiver noise)."""
    warm_addresses: Tuple[int, ...] = ()
    """Lines the harness pre-warms before the run (clflush's inverse)."""
    observed_addresses: Tuple[int, ...] = ()
    """Addresses whose residency a non-interference check compares."""
    notes: str = ""


def _emit_slow_bound(builder: CodeBuilder, bound_reg: int, out_reg: int) -> None:
    """Copy ``bound_reg`` through a multiply chain: same value, ~40 cycles
    later — the window in which transient instructions run."""
    builder.muli(out_reg, bound_reg, 1)
    for _ in range(_SLOW_CHAIN_MULS - 1):
        builder.muli(out_reg, out_reg, 1)


def spectre_v1(
    secret_value: int = 5,
    training_rounds: int = 48,
    oob_index: int = 64,
) -> Gadget:
    """The classic bounds-check-bypass universal read gadget.

    ``array1`` holds zeros; the word at ``array1 + 8 * oob_index`` (out of
    bounds) holds the secret.  Training rounds use index 0 (in bounds,
    probe line 0); the final round uses ``oob_index``, whose bounds check
    fails only after a long dependency chain — by which time, on an unsafe
    core, the transient loads have already touched
    ``probe[secret * 64]``.
    """
    if not 0 < secret_value < 16:
        raise ConfigError("secret_value must be in 1..15 (line 0 is training noise)")
    builder = CodeBuilder()
    builder.set_memory(SIZE_ADDR, ARRAY1_SIZE_WORDS)
    for i in range(ARRAY1_SIZE_WORDS):
        builder.set_memory(ARRAY1_BASE + 8 * i, 0)
    secret_address = ARRAY1_BASE + 8 * oob_index
    builder.set_memory(secret_address, secret_value)
    builder.mark_secret(secret_address)
    for round_index in range(training_rounds):
        builder.set_memory(IDX_BASE + 8 * round_index, 0)
    builder.set_memory(IDX_BASE + 8 * training_rounds, oob_index)
    total_rounds = training_rounds + 1

    builder.li(15, total_rounds)
    builder.li(14, 0)                      # round counter
    builder.li(10, ARRAY1_BASE)
    builder.li(11, PROBE_BASE)
    builder.li(20, SIZE_ADDR)
    builder.label("round")
    builder.shli(16, 14, 3)
    builder.add(17, 16, 0)
    builder.addi(17, 17, IDX_BASE)
    builder.load(1, 17)                    # idx = idx_array[round]
    builder.load(2, 20)                    # size
    _emit_slow_bound(builder, 2, 3)        # r3 = size, slowly
    builder.bge(1, 3, "skip")              # if idx >= size: skip (trained NT)
    builder.shli(4, 1, 3)
    builder.add(5, 10, 4)
    builder.load(6, 5)                     # array1[idx] — the secret access
    builder.shli(7, 6, 6)                  # value * 64 (one line per value)
    builder.add(8, 11, 7)
    builder.load(9, 8)                     # probe[value * 64] — the transmit
    builder.label("skip")
    builder.addi(14, 14, 1)
    builder.blt(14, 15, "round")
    builder.halt()

    # The attacker warms everything it legitimately controls (its index
    # array, the bounds word, the secret's line — as in a classic
    # flush-probe setup where only the probe array is flushed) so the
    # transient window is not wasted on the attacker's own cold misses.
    warm = [secret_address, SIZE_ADDR]
    warm.extend(IDX_BASE + 8 * r for r in range(0, total_rounds, 8))
    # Observing every probe line makes the gadget usable with the generic
    # noninterference oracle too (not just the receiver-style run_attack):
    # the probe line of the secret value is resident iff the run leaked.
    observed = tuple(PROBE_BASE + PROBE_LINE_STRIDE * v for v in range(16))
    return Gadget(
        program=builder.build(name="spectre_v1"),
        secret_value=secret_value,
        secret_address=secret_address,
        training_values=(0,),
        warm_addresses=tuple(warm),
        observed_addresses=observed,
        notes="universal read gadget; leak = probe line of the secret value",
    )


def dom_implicit_channel(
    secret_value: int,
    register_secret: bool = False,
    training_rounds: int = 48,
) -> Gadget:
    """Figure 4: a secret-dependent branch steering two predictable loads.

    The block runs under a mispredicted (trained) outer bounds check.  The
    inner branch tests the secret's low bit and selects between loads of
    two fixed addresses X and Y — both trivially address-predictable, so
    with Doppelganger Loads each would miss visibly *if issued*.  Whether
    X's or Y's line appears in the cache would leak the secret bit unless
    the scheme resolves branches in order (DoM+AP's added rule).

    ``register_secret`` selects Figure 4b: the secret is loaded *before*
    the speculation, i.e. it sits in a register non-speculatively — the
    case DoM protects but NDA-P/STT explicitly do not.
    """
    builder = CodeBuilder()
    builder.set_memory(SIZE_ADDR, ARRAY1_SIZE_WORDS)
    builder.set_memory(SECRET_CELL, secret_value)
    builder.mark_secret(SECRET_CELL)
    builder.set_memory(SECRET_X_ADDR, 1111)
    builder.set_memory(SECRET_Y_ADDR, 2222)
    for round_index in range(training_rounds):
        builder.set_memory(IDX_BASE + 8 * round_index, 0)
    builder.set_memory(IDX_BASE + 8 * training_rounds, ARRAY1_SIZE_WORDS + 1)
    total_rounds = training_rounds + 1
    # Training rounds read a zero "secret" from a separate cell so the
    # inner branch trains on the not-taken path deterministically.
    training_secret_cell = SECRET_CELL + 8
    builder.set_memory(training_secret_cell, 0)

    builder.li(15, total_rounds)
    builder.li(14, 0)
    builder.li(20, SIZE_ADDR)
    builder.li(21, SECRET_CELL)
    builder.li(22, SECRET_X_ADDR)
    builder.li(23, SECRET_Y_ADDR)
    builder.li(26, SECRET_CELL)
    if register_secret:
        # Fig 4b: the secret is architecturally in r12 before speculation.
        builder.load(12, 21)
    builder.label("round")
    builder.shli(16, 14, 3)
    builder.addi(16, 16, IDX_BASE)
    builder.load(1, 16)                    # idx (in bounds while training)
    builder.load(2, 20)
    _emit_slow_bound(builder, 2, 3)
    # X/Y target addresses advance one fresh cache line per round, so the
    # training rounds' (legitimate) accesses cannot mask the final round's
    # observation, while the per-PC stride keeps both loads perfectly
    # address-predictable for the doppelganger engine.
    builder.shli(24, 14, 6)
    builder.bge(1, 3, "skip")              # outer: mispredicted on last round
    # Training runs in two phases keyed off the round counter (attacker
    # data, never the secret): rounds 0..31 commit the X arm (training
    # the X load's stride-table entry and biasing the inner branch
    # not-taken), rounds 32..47 commit the Y arm (training the Y entry
    # and leaving the inner branch's counter *saturated taken*, so the
    # final round's transient fetch deterministically follows the Y arm).
    # The X arm can then only be reached through a secret-dependent
    # transient branch resolution — the channel Figure 4 describes.
    builder.beq(1, 0, "train_secret")
    if register_secret:
        # Fig 4b: the secret has been in r12 since before speculation.
        builder.andi(4, 12, 1)
    else:
        # Fig 4a: the secret is loaded speculatively; its line is warm so
        # even DoM lets the access complete (an L1 hit is allowed).
        builder.load(5, 26)                # r26 holds SECRET_CELL
        builder.andi(4, 5, 1)
    builder.jmp("have_pred")
    builder.label("train_secret")
    builder.shri(4, 14, 5)                 # 0 for rounds < 32, 1 after
    builder.xori(4, 4, 1)                  # phase A: 1 (X arm), B: 0 (Y arm)
    builder.label("have_pred")
    builder.beq(4, 0, "even")              # inner: secret-dependent
    builder.add(28, 22, 24)
    builder.load(6, 28)                    # load X[round]
    builder.jmp("skip")
    builder.label("even")
    builder.add(29, 23, 24)
    builder.load(7, 29)                    # load Y[round]
    builder.label("skip")
    builder.addi(14, 14, 1)
    builder.blt(14, 15, "round")
    builder.halt()

    warm: List[int] = [SECRET_CELL, training_secret_cell, SIZE_ADDR]
    warm.extend(IDX_BASE + 8 * r for r in range(0, total_rounds, 8))
    # Observe: the final round's X/Y lines (direct transient fills), one
    # line further (doppelganger predictions land a stride ahead), and
    # the lines right after the X arm's training phase — that is where a
    # doppelganger for a transiently-dispatched X load would fall.
    final_offset = 64 * training_rounds
    x_phase_end = 64 * 32
    observed = (
        SECRET_X_ADDR + final_offset,
        SECRET_X_ADDR + final_offset + 64,
        SECRET_X_ADDR + x_phase_end,
        SECRET_X_ADDR + x_phase_end + 64,
        SECRET_Y_ADDR + final_offset,
        SECRET_Y_ADDR + final_offset + 64,
    )
    return Gadget(
        program=builder.build(name="dom_implicit_channel"),
        secret_value=secret_value,
        secret_address=SECRET_CELL,
        warm_addresses=tuple(warm),
        observed_addresses=observed,
        notes="Figure 4: X/Y residency must not depend on the secret bit",
    )


def store_forward_probe(store_value: int = 777) -> Gadget:
    """Figure 3: an older store aliases a younger predictable load.

    The load's PC is trained on a fixed address; in the probed iteration
    an older store writes that same address while the load's doppelganger
    is (or could be) in flight.  Correctness requires the load to commit
    the *store's* value; security (§4.4) requires the doppelganger access
    to still appear in the memory hierarchy.
    """
    builder = CodeBuilder()
    rounds = 40
    builder.set_memory(STL_DATA_ADDR, 1)
    builder.li(15, rounds)
    builder.li(14, 0)
    builder.li(10, STL_DATA_ADDR)
    builder.li(11, store_value)
    builder.li(3, 0)
    builder.label("round")
    # On the last round, store to the address the load will read.
    builder.addi(16, 14, 1)
    builder.bne(16, 15, "no_store")
    builder.store(11, 10)
    builder.label("no_store")
    builder.load(5, 10)                    # trained, predictable load
    builder.add(3, 3, 5)
    builder.addi(14, 14, 1)
    builder.blt(14, 15, "round")
    builder.store(3, 0, disp=8)            # checksum
    builder.halt()
    return Gadget(
        program=builder.build(name="store_forward_probe"),
        secret_value=store_value,
        observed_addresses=(STL_DATA_ADDR,),
        notes="forwarding must override the doppelganger preload",
    )
