"""Attack execution harness: run gadgets, observe, decide "leaked?".

Two complementary judgements:

* :func:`run_attack` — the classic receiver view: after the victim runs,
  does the probe array's residency reveal the secret value?
* :func:`noninterference_check` — the strong property the paper's
  arguments reduce to: run the same gadget with different secrets and
  compare the microarchitectural state the attacker can observe; any
  difference is a leak, whether or not a receiver could decode it.

The equivalence machinery (``noninterference_check``,
``snapshots_equal``, ``attack_config``) lives in :mod:`repro.oracle`,
shared with the differential fuzzer, and is re-exported here so existing
imports keep working.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Union

from repro.attacks.gadgets import Gadget
from repro.attacks.observer import CacheObserver
from repro.common.config import SystemConfig
from repro.oracle import (
    attack_config,
    build_gadget_core,
    noninterference_check,
    snapshots_equal,
)
from repro.schemes.base import SecureScheme

__all__ = [
    "AttackOutcome",
    "attack_config",
    "noninterference_check",
    "run_attack",
    "snapshots_equal",
]

# Backward-compatible alias for the pre-oracle private helper.
_build_core = build_gadget_core


@dataclass
class AttackOutcome:
    """The result of one attack run."""

    scheme: str
    secret: int
    inferred: Optional[int]
    leaked: bool
    resident_values: List[int]
    stats_summary: str = ""

    def __str__(self) -> str:  # pragma: no cover - convenience
        verdict = "LEAKED" if self.leaked else "safe"
        return (
            f"[{self.scheme}] secret={self.secret} inferred={self.inferred} "
            f"-> {verdict}"
        )


def run_attack(
    gadget: Gadget,
    scheme: Union[str, SecureScheme] = "unsafe",
    config: Optional[SystemConfig] = None,
) -> AttackOutcome:
    """Run ``gadget`` under ``scheme`` and try to recover the secret via
    the probe-array cache channel."""
    core, scheme_obj = build_gadget_core(gadget, scheme, config)
    core.run()
    observer = CacheObserver(
        core.hierarchy, gadget.probe_base, values=gadget.probe_values
    )
    inferred = observer.infer_secret(exclude=gadget.training_values)
    return AttackOutcome(
        scheme=scheme_obj.describe(),
        secret=gadget.secret_value,
        inferred=inferred,
        leaked=inferred == gadget.secret_value,
        resident_values=observer.resident_values(),
        stats_summary=core.stats.summary(),
    )
