"""Attack execution harness: run gadgets, observe, decide "leaked?".

Two complementary judgements:

* :func:`run_attack` — the classic receiver view: after the victim runs,
  does the probe array's residency reveal the secret value?
* :func:`noninterference_check` — the strong property the paper's
  arguments reduce to: run the same gadget with different secrets and
  compare the microarchitectural state the attacker can observe; any
  difference is a leak, whether or not a receiver could decode it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.attacks.gadgets import Gadget
from repro.attacks.observer import CacheObserver
from repro.common.config import BranchPredictorConfig, SystemConfig
from repro.common.errors import ConfigError
from repro.pipeline.core import Core
from repro.schemes import make_scheme
from repro.schemes.base import SecureScheme


def attack_config() -> SystemConfig:
    """The system configuration attack runs use by default.

    Identical to the Table 1 system except the branch predictor runs with
    zero history bits (pure bimodal).  A real attacker *trains* the
    predictor into a known state before triggering the gadget; with
    global history the prediction at the attack point would depend on
    incidental path history, adding noise that has nothing to do with the
    schemes under test.  Bimodal counters make the trained transient path
    deterministic, which is what the paper's attack discussions assume.
    """
    return SystemConfig(branch=BranchPredictorConfig(history_bits=0))


@dataclass
class AttackOutcome:
    """The result of one attack run."""

    scheme: str
    secret: int
    inferred: Optional[int]
    leaked: bool
    resident_values: List[int]
    stats_summary: str = ""

    def __str__(self) -> str:  # pragma: no cover - convenience
        verdict = "LEAKED" if self.leaked else "safe"
        return (
            f"[{self.scheme}] secret={self.secret} inferred={self.inferred} "
            f"-> {verdict}"
        )


def _build_core(
    gadget: Gadget,
    scheme: Union[str, SecureScheme],
    config: Optional[SystemConfig],
) -> Tuple[Core, SecureScheme]:
    if isinstance(scheme, str):
        scheme = make_scheme(scheme)
    if config is None:
        config = attack_config()
    core = Core(gadget.program, scheme, config=config)
    if gadget.warm_addresses:
        core.hierarchy.warm(list(gadget.warm_addresses))
    return core, scheme


def run_attack(
    gadget: Gadget,
    scheme: Union[str, SecureScheme] = "unsafe",
    config: Optional[SystemConfig] = None,
) -> AttackOutcome:
    """Run ``gadget`` under ``scheme`` and try to recover the secret via
    the probe-array cache channel."""
    core, scheme_obj = _build_core(gadget, scheme, config)
    core.run()
    observer = CacheObserver(
        core.hierarchy, gadget.probe_base, values=gadget.probe_values
    )
    inferred = observer.infer_secret(exclude=gadget.training_values)
    return AttackOutcome(
        scheme=scheme_obj.describe(),
        secret=gadget.secret_value,
        inferred=inferred,
        leaked=inferred == gadget.secret_value,
        resident_values=observer.resident_values(),
        stats_summary=core.stats.summary(),
    )


def noninterference_check(
    gadget_builder: Callable[[int], Gadget],
    scheme: Union[str, SecureScheme] = "dom+ap",
    secrets: Sequence[int] = (0, 1),
    config: Optional[SystemConfig] = None,
) -> Dict[int, Dict[int, Optional[int]]]:
    """Run the gadget once per secret and snapshot observable state.

    Returns ``{secret: {observed_address: residency_level_or_None}}``.
    The scheme is leak-free for this gadget iff all snapshots are equal —
    ``snapshots_equal(result)`` — because then no attacker measuring those
    addresses can distinguish the secrets.
    """
    snapshots: Dict[int, Dict[int, Optional[int]]] = {}
    for secret in secrets:
        gadget = gadget_builder(secret)
        if not gadget.observed_addresses:
            raise ConfigError("gadget declares no observed addresses")
        core, _ = _build_core(gadget, scheme, config)
        # Observe both residency and per-line access counts: an access to
        # an already-resident line still perturbs replacement state, which
        # eviction probing can detect.
        core.hierarchy.watch(list(gadget.observed_addresses))
        core.run()
        observer = CacheObserver(
            core.hierarchy, gadget.probe_base, values=gadget.probe_values
        )
        view: Dict[int, Optional[int]] = observer.snapshot(
            gadget.observed_addresses
        )
        for line, count in core.hierarchy.watched_counts().items():
            view[("accesses", line)] = count  # type: ignore[index]
        snapshots[secret] = view
    return snapshots


def snapshots_equal(snapshots: Dict[int, Dict[int, Optional[int]]]) -> bool:
    """True when every secret produced identical observable state."""
    views = list(snapshots.values())
    return all(view == views[0] for view in views[1:])
