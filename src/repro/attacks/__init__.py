"""Attack gadgets, cache observation, and the leakage harness."""

from repro.attacks.gadgets import (
    ARRAY1_BASE,
    Gadget,
    PROBE_BASE,
    SECRET_X_ADDR,
    SECRET_Y_ADDR,
    dom_implicit_channel,
    spectre_v1,
    store_forward_probe,
)
from repro.attacks.harness import (
    AttackOutcome,
    noninterference_check,
    run_attack,
    snapshots_equal,
)
from repro.attacks.observer import PROBE_LINE_STRIDE, CacheObserver
from repro.attacks.variants import (
    InsecureDoMAPEagerMispredictReissue,
    InsecureDoMAPWithoutInOrderBranches,
)

__all__ = [
    "ARRAY1_BASE",
    "AttackOutcome",
    "CacheObserver",
    "Gadget",
    "InsecureDoMAPEagerMispredictReissue",
    "InsecureDoMAPWithoutInOrderBranches",
    "PROBE_BASE",
    "PROBE_LINE_STRIDE",
    "SECRET_X_ADDR",
    "SECRET_Y_ADDR",
    "dom_implicit_channel",
    "noninterference_check",
    "run_attack",
    "snapshots_equal",
    "spectre_v1",
    "store_forward_probe",
]
