"""The attack corpus: every gadget × every scheme, with pinned verdicts.

One table answers, for each corpus gadget and each scheme configuration,
two different questions:

* **expected_dynamic** — does the simulator, running the gadget twice
  with different secrets, produce distinguishable attacker-visible state
  (``leak``) or not (``clean``)?  This is ground truth for *this*
  microarchitecture: a "clean" can be a genuinely closed channel or a
  lost race.
* **expected_static** — what does the static analyzer
  (``repro.analysis.specflow``) claim?  ``leak-possible`` must cover
  every dynamic ``leak`` (soundness); it may additionally flag cells
  whose dynamic run happens to be clean — those conservative cells are
  listed per entry below, with the reason.

Both judges consume the same secret definition
(:attr:`repro.isa.program.Program.secret_regions`), so an entry is just
a builder, a secret pair, and the two verdict rows.  The differential
harness (``repro specflow``) and the verdict-matrix test replay the
whole table; a simulator change that flips any cell fails loudly and has
to re-pin the expectation here, with the paper section that justifies it.

This module deliberately does not import the analysis layer — the
expected-static row is plain strings, compared by the caller.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Mapping, Tuple

from repro.attacks.gadgets import (
    Gadget,
    dom_implicit_channel,
    spectre_v1,
    store_forward_probe,
)
from repro.attacks.variants import (
    InsecureDoMAPEagerMispredictReissue,
    InsecureDoMAPWithoutInOrderBranches,
)
from repro.common.errors import ConfigError
from repro.schemes import make_scheme
from repro.schemes.base import SecureScheme

DYNAMIC_LEAK = "leak"
DYNAMIC_CLEAN = "clean"
STATIC_LEAK = "leak-possible"
STATIC_SAFE = "safe"

#: Every scheme configuration the corpus pins: the five registry schemes,
#: their doppelganger forms, and the two deliberately weakened variants
#: (only meaningful with address prediction — the removed rule exists to
#: close a doppelganger channel).
CORPUS_SCHEME_LABELS: Tuple[str, ...] = (
    "unsafe",
    "nda",
    "stt",
    "dom",
    "dom+vp",
    "unsafe+ap",
    "nda+ap",
    "stt+ap",
    "dom+ap",
    "dom-insecure-branches+ap",
    "dom-insecure-reissue+ap",
)


def scheme_factory(label: str) -> SecureScheme:
    """A fresh scheme instance for ``label`` (fresh per run — scheme
    objects carry a core binding, so sharing across runs is a bug)."""
    if label == "dom-insecure-branches+ap":
        return InsecureDoMAPWithoutInOrderBranches(address_prediction=True)
    if label == "dom-insecure-reissue+ap":
        return InsecureDoMAPEagerMispredictReissue(address_prediction=True)
    return make_scheme(label)


def _rows(leak_labels: Tuple[str, ...], leak: str, clean: str) -> Dict[str, str]:
    unknown = set(leak_labels) - set(CORPUS_SCHEME_LABELS)
    if unknown:
        raise ConfigError(f"unknown corpus scheme labels: {sorted(unknown)}")
    return {
        label: (leak if label in leak_labels else clean)
        for label in CORPUS_SCHEME_LABELS
    }


@dataclass(frozen=True)
class CorpusEntry:
    """One gadget with its pinned static and dynamic verdict rows."""

    name: str
    build: Callable[[int], Gadget]
    secrets: Tuple[int, int]
    expected_dynamic: Mapping[str, str] = field(default_factory=dict)
    expected_static: Mapping[str, str] = field(default_factory=dict)
    notes: str = ""


ATTACK_CORPUS: Tuple[CorpusEntry, ...] = (
    CorpusEntry(
        name="spectre_v1",
        build=lambda secret: spectre_v1(secret_value=secret),
        secrets=(5, 9),
        expected_dynamic=_rows(
            ("unsafe", "unsafe+ap"), DYNAMIC_LEAK, DYNAMIC_CLEAN
        ),
        expected_static=_rows(
            (
                "unsafe",
                "unsafe+ap",
                "dom-insecure-branches+ap",
                "dom-insecure-reissue+ap",
            ),
            STATIC_LEAK,
            STATIC_SAFE,
        ),
        notes=(
            "Universal read gadget (Figure 1a).  Conservative static "
            "cells: the insecure DoM variants are flagged because a "
            "speculatively loaded value reaches a branch predicate / the "
            "missing reissue rule re-opens the explicit channel in "
            "principle, but this gadget's dynamics never win that race."
        ),
    ),
    CorpusEntry(
        name="fig4a_transient_secret",
        build=lambda secret: dom_implicit_channel(secret, register_secret=False),
        secrets=(0, 1),
        expected_dynamic=_rows(
            ("unsafe", "unsafe+ap", "dom-insecure-branches+ap"),
            DYNAMIC_LEAK,
            DYNAMIC_CLEAN,
        ),
        expected_static=_rows(
            ("unsafe", "unsafe+ap", "dom-insecure-branches+ap"),
            STATIC_LEAK,
            STATIC_SAFE,
        ),
        notes=(
            "Figure 4a: the secret is read speculatively (L1-resident), "
            "then steers a branch between two address-predictable loads.  "
            "Static and dynamic rows agree exactly: NDA/STT squash the "
            "speculatively acquired taint with the window, DoM+AP's "
            "in-order branches close the implicit channel, and dropping "
            "that rule (dom-insecure-branches) leaks."
        ),
    ),
    CorpusEntry(
        name="fig4b_register_secret",
        build=lambda secret: dom_implicit_channel(secret, register_secret=True),
        secrets=(0, 1),
        expected_dynamic=_rows(
            (
                "unsafe",
                "nda",
                "unsafe+ap",
                "nda+ap",
                "dom-insecure-branches+ap",
            ),
            DYNAMIC_LEAK,
            DYNAMIC_CLEAN,
        ),
        expected_static=_rows(
            (
                "unsafe",
                "nda",
                "stt",
                "unsafe+ap",
                "nda+ap",
                "stt+ap",
                "dom-insecure-branches+ap",
            ),
            STATIC_LEAK,
            STATIC_SAFE,
        ),
        notes=(
            "Figure 4b: the secret sits in a register *before* the "
            "speculation window — outside NDA/STT's threat model, so "
            "both are statically leak-possible.  Dynamically NDA leaks "
            "and STT happens to stay clean on this microarchitecture "
            "(its predicate gate delays the branch long enough to lose "
            "the race) — the permitted conservative direction."
        ),
    ),
    CorpusEntry(
        name="store_forward_probe",
        build=lambda secret: store_forward_probe(),
        secrets=(0, 1),
        expected_dynamic=_rows((), DYNAMIC_LEAK, DYNAMIC_CLEAN),
        expected_static=_rows((), STATIC_LEAK, STATIC_SAFE),
        notes=(
            "Figure 3 is a correctness/transparency gadget, not a secrecy "
            "one: it declares no secret regions, so it is vacuously safe "
            "statically and trivially clean dynamically.  It stays in the "
            "corpus to pin that the pipeline handles the no-secret case."
        ),
    ),
)

CORPUS_BY_NAME: Dict[str, CorpusEntry] = {
    entry.name: entry for entry in ATTACK_CORPUS
}


def corpus_entry(name: str) -> CorpusEntry:
    if name not in CORPUS_BY_NAME:
        raise ConfigError(
            f"unknown corpus gadget {name!r}; expected one of "
            f"{sorted(CORPUS_BY_NAME)}"
        )
    return CORPUS_BY_NAME[name]


__all__ = [
    "ATTACK_CORPUS",
    "CORPUS_BY_NAME",
    "CORPUS_SCHEME_LABELS",
    "CorpusEntry",
    "DYNAMIC_CLEAN",
    "DYNAMIC_LEAK",
    "STATIC_LEAK",
    "STATIC_SAFE",
    "corpus_entry",
    "scheme_factory",
]
