#!/usr/bin/env python3
"""Regenerate every figure of the paper's evaluation in one run.

This is the script behind EXPERIMENTS.md: it sweeps all benchmarks and
schemes once (memoized), regenerates Figures 1, 6, 7, and 8 plus the
Unsafe+AP ablation, and prints each alongside the paper's reference
numbers.  Expect a few minutes with the default windows.

Run:  python examples/full_evaluation.py [--fast]
"""

import argparse
import sys
import time

from repro.harness import (
    FIGURE_SCHEMES,
    ParallelSession,
    figure1_summary,
    figure6_normalized_ipc,
    figure7_coverage_accuracy,
    figure8_cache_traffic,
    unsafe_ap_delta,
)
from repro.workloads.profiles import benchmark_names


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--fast", action="store_true",
        help="use short measurement windows (quick smoke run)",
    )
    parser.add_argument("--warmup", type=int, default=None)
    parser.add_argument("--measure", type=int, default=None)
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes for the shared sweep (default: one per CPU)",
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help="persistent result cache; a second run re-simulates nothing",
    )
    args = parser.parse_args(argv)
    warmup = args.warmup if args.warmup is not None else (1000 if args.fast else 4000)
    measure = args.measure if args.measure is not None else (4000 if args.fast else 16000)

    session = ParallelSession(
        warmup=warmup, measure=measure, jobs=args.jobs, cache_dir=args.cache_dir
    )
    started = time.time()

    # One parallel sweep feeds every figure below (all reads are memo hits).
    session.sweep(
        benchmark_names("all"),
        ("unsafe", "unsafe+ap") + FIGURE_SCHEMES,
        skip_errors=True,
    )

    print(f"== Figure 6: normalized IPC (warmup={warmup}, measure={measure}) ==")
    print(figure6_normalized_ipc(session).format_table())

    print("\n== Figure 1 / §7 headline: measured vs paper ==")
    print(figure1_summary(session).format_table())

    print("\n== Figure 7: predictor coverage and accuracy (DoM+AP) ==")
    print(figure7_coverage_accuracy(session).format_table())

    print("\n== Figure 8: normalized L1/L2 accesses ==")
    print(figure8_cache_traffic(session).format_table())

    print("\n== §7 Unsafe Baseline + AP ==")
    print(unsafe_ap_delta(session).format_table())

    counters = session.counters()
    print(
        f"\ncompleted {session.cached_runs()} runs in {time.time() - started:.0f}s "
        f"({counters['simulated']} simulated, {counters['disk_hits']} from disk, "
        f"{counters['skipped']} skipped)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
