#!/usr/bin/env python3
"""Compare the three secure speculation schemes across workload classes.

Runs a small representative slice of the suite — one streaming, one
pointer-chasing, one irregular-probing, and one compute-bound benchmark —
and prints normalized IPC, predictor quality, and the scheme-internal
counters that explain *why* each scheme wins or loses where it does
(DoM's delayed misses, NDA's locked propagations, STT's delayed
transmitters).

Run:  python examples/scheme_comparison.py
"""

from repro.harness import ExperimentSession

BENCHMARKS = ("libquantum", "mcf", "xalancbmk_s", "exchange2_s")
SCHEMES = ("nda", "nda+ap", "stt", "stt+ap", "dom", "dom+ap")


def main() -> None:
    session = ExperimentSession(warmup=3000, measure=12000)
    for name in BENCHMARKS:
        baseline = session.run(name, "unsafe")
        print(f"\n=== {name} (baseline IPC {baseline.ipc:.3f}) ===")
        print(
            f"{'scheme':<9}{'norm IPC':>9}{'cov':>7}{'acc':>7}"
            f"{'dom-delayed':>12}{'nda-locked':>11}{'stt-delayed':>12}"
        )
        print("-" * 67)
        for scheme in SCHEMES:
            result = session.run(name, scheme)
            stats = result.stats
            print(
                f"{scheme:<9}"
                f"{session.normalized_ipc(name, scheme):>9.3f}"
                f"{stats.coverage:>6.0%}{stats.accuracy:>7.0%}"
                f"{stats.dom_delayed_misses:>12}"
                f"{stats.delayed_propagations:>11}"
                f"{stats.delayed_transmitters:>12}"
            )
    print(
        "\nReading guide: libquantum shows DoM's delayed misses and their "
        "recovery; mcf's shuffled pointer chase gives the predictor "
        "nothing (coverage ~0, AP changes nothing); xalancbmk_s has "
        "confident-but-wrong predictions (low accuracy) so AP adds L1 "
        "traffic for little gain; exchange2_s barely touches memory, so "
        "every scheme is near-free."
    )


if __name__ == "__main__":
    main()
