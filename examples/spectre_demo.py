#!/usr/bin/env python3
"""Spectre v1 against every scheme — the security half of the paper.

Runs the classic universal-read gadget (train a bounds check, transiently
read out of bounds, transmit through a probe-array load) against the
unsafe baseline and the three secure speculation schemes, each with and
without Doppelganger Loads, then demonstrates the Figure 4 implicit
channel and why DoM+AP's in-order branch resolution is load-bearing.

Run:  python examples/spectre_demo.py
"""

from repro.attacks import (
    InsecureDoMAPWithoutInOrderBranches,
    dom_implicit_channel,
    noninterference_check,
    run_attack,
    snapshots_equal,
    spectre_v1,
)

SCHEMES = (
    "unsafe",
    "unsafe+ap",
    "nda",
    "nda+ap",
    "stt",
    "stt+ap",
    "dom",
    "dom+ap",
)


def spectre_round() -> None:
    secret = 11
    print(f"=== Spectre v1: victim secret is {secret} ===")
    print(f"{'scheme':<12}{'verdict':<10}{'attacker inferred':>18}")
    print("-" * 40)
    for scheme in SCHEMES:
        outcome = run_attack(spectre_v1(secret_value=secret), scheme)
        verdict = "LEAKED" if outcome.leaked else "safe"
        print(f"{scheme:<12}{verdict:<10}{str(outcome.inferred):>18}")
    print(
        "\nOnly the unsafe baseline leaks; adding Doppelganger Loads to a "
        "secure scheme never re-opens the channel (threat-model "
        "transparency, paper §4.2).\n"
    )


def figure4_round() -> None:
    print("=== Figure 4: secret-dependent branch steering two predicted loads ===")
    print(f"{'configuration':<34}{'non-interference':>18}")
    print("-" * 52)
    for label, scheme in [
        ("unsafe baseline", "unsafe"),
        ("DoM", "dom"),
        ("DoM + Doppelganger Loads", "dom+ap"),
        ("STT + Doppelganger Loads", "stt+ap"),
    ]:
        snaps = noninterference_check(
            lambda secret: dom_implicit_channel(secret), scheme, secrets=(0, 1)
        )
        verdict = "holds" if snapshots_equal(snaps) else "VIOLATED"
        print(f"{label:<34}{verdict:>18}")
    snaps = noninterference_check(
        lambda secret: dom_implicit_channel(secret),
        InsecureDoMAPWithoutInOrderBranches(address_prediction=True),
        secrets=(0, 1),
    )
    verdict = "holds" if snapshots_equal(snaps) else "VIOLATED"
    print(f"{'DoM+AP minus in-order branches':<34}{verdict:>18}")
    print(
        "\nThe last row removes §4.6's in-order branch-resolution rule: the "
        "secret-dependent branch then resolves transiently and steers "
        "which doppelganger access appears — the exact implicit channel "
        "the paper closes."
    )


if __name__ == "__main__":
    spectre_round()
    figure4_round()
