#!/usr/bin/env python3
"""Watch a Doppelganger Load work, cycle by cycle.

Attaches the pipeline tracer to a short strided-load run under DoM+AP and
prints the instruction timeline: you can see doppelganger-covered loads
(marked ``*``) complete long before their plain-DoM counterparts would,
and wrong-path instructions end in ``X`` instead of ``R``.

Run:  python examples/tracing_demo.py
"""

from repro.pipeline.core import Core
from repro.schemes import make_scheme
from repro.trace import PipelineTracer
from repro.workloads import build_workload


def trace(scheme: str, instructions: int = 240) -> PipelineTracer:
    core = Core(build_workload("libquantum"), make_scheme(scheme))
    tracer = PipelineTracer()
    core.tracer = tracer
    core.run(max_instructions=instructions)
    return tracer


def main() -> None:
    for scheme in ("dom", "dom+ap"):
        tracer = trace(scheme)
        print(f"=== {scheme} ===")
        print(tracer.render_summary())
        records = tracer.records()
        first = max(0, len(records) - 28)
        print(tracer.render_timeline(first=first, count=28, width=70))
        print()
    print(
        "Loads marked '*' had a doppelganger issued; compare the distance "
        "between their D (dispatch) and C (complete) marks under dom vs "
        "dom+ap — the doppelganger's early, address-predicted access is "
        "what closes the gap."
    )


if __name__ == "__main__":
    main()
