#!/usr/bin/env python3
"""Write your own workload and victim code for the simulator.

Demonstrates the two program-construction front-ends:

* the assembler — readable text for small kernels and gadgets;
* the CodeBuilder — programmatic generation with labels and memory
  images, the same API the SPEC stand-ins use.

The example builds a binary-search kernel (a branch-heavy, data-dependent
workload that none of the stock kernels model), checks it against the
in-order reference interpreter, and compares schemes on it.

Run:  python examples/custom_workload.py
"""

import random

from repro import Program, assemble, simulate
from repro.isa.builder import CodeBuilder

TABLE_BASE = 0x0040_0000
KEYS_BASE = 0x0020_0000


def assembler_demo() -> None:
    source = """
        # sum of first 100 integers, stored at address 8
        li   r1, 100
        li   r2, 0
        li   r3, 0
    loop:
        add  r3, r3, r2
        addi r2, r2, 1
        blt  r2, r1, loop
        store r3, [r0 + 8]
        halt
    """
    program = Program(assemble(source), name="assembler_demo")
    stats = simulate(program, scheme="unsafe")
    reference = program.interpret()
    print(
        f"assembler demo: sum={reference.state.read_mem(8)} "
        f"(simulated in {stats.cycles} cycles, IPC {stats.ipc:.2f})"
    )


def binary_search_program(table_words: int = 1 << 12, searches: int = 1 << 16) -> Program:
    """Repeated binary search over a sorted table: log2(n) dependent loads
    and data-dependent branches per query — hard on every secure scheme,
    nearly opaque to a stride predictor."""
    rng = random.Random(7)
    builder = CodeBuilder()
    table = sorted(rng.sample(range(1 << 24), table_words))
    builder.set_array(TABLE_BASE, table)
    for i in range(1 << 10):
        builder.set_memory(KEYS_BASE + 8 * i, rng.choice(table))
    builder.li(1, searches)
    builder.li(2, 0)              # query counter
    builder.li(3, 0)              # found-sum accumulator
    builder.li(10, TABLE_BASE)
    builder.label("query")
    builder.andi(16, 2, (1 << 10) * 8 - 8)
    builder.addi(16, 16, KEYS_BASE)
    builder.load(4, 16)           # key
    builder.li(5, 0)              # lo
    builder.li(6, table_words)    # hi
    builder.label("bisect")
    builder.sub(7, 6, 5)
    builder.shri(7, 7, 1)
    builder.add(7, 5, 7)          # mid = lo + (hi - lo) / 2
    builder.shli(8, 7, 3)
    builder.add(8, 10, 8)
    builder.load(9, 8)            # table[mid] — dependent, unpredictable
    builder.bge(4, 9, "go_right")
    builder.mov(6, 7)             # hi = mid
    builder.jmp("check")
    builder.label("go_right")
    builder.addi(5, 7, 1)         # lo = mid + 1
    builder.add(3, 3, 9)
    builder.label("check")
    builder.blt(5, 6, "bisect")
    builder.addi(2, 2, 1)
    builder.blt(2, 1, "query")
    builder.store(3, 0, disp=8)
    builder.halt()
    return builder.build(name="binary_search")


def main() -> None:
    assembler_demo()
    program = binary_search_program()
    print("\nbinary search under each scheme (10k instructions measured):")
    print(f"{'scheme':<10}{'IPC':>8}{'coverage':>10}{'accuracy':>10}")
    print("-" * 38)
    baseline = None
    for scheme in ("unsafe", "nda", "stt", "dom", "dom+ap"):
        stats = simulate(program, scheme=scheme, max_instructions=10_000)
        if baseline is None:
            baseline = stats.ipc
        print(
            f"{scheme:<10}{stats.ipc:>8.3f}"
            f"{stats.coverage:>9.1%}{stats.accuracy:>9.1%}"
        )
    print(
        "\nBinary search chases data-dependent addresses: the predictor "
        "covers almost nothing, so this is a workload where Doppelganger "
        "Loads honestly cannot help — exactly the mcf-shaped corner of "
        "Figure 6."
    )


if __name__ == "__main__":
    main()
