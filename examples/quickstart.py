#!/usr/bin/env python3
"""Quickstart: simulate one workload under every scheme.

Builds the libquantum stand-in (the paper's address-prediction standout),
runs it on the out-of-order core under the unsafe baseline, the three
secure speculation schemes, and their Doppelganger-enhanced variants, and
prints normalized performance — a one-benchmark slice of Figure 6.

Run:  python examples/quickstart.py
"""

from repro import simulate
from repro.workloads import build_workload

WARMUP_AND_MEASURE = 12_000
SCHEMES = ("unsafe", "nda", "nda+ap", "stt", "stt+ap", "dom", "dom+ap")


def main() -> None:
    program = build_workload("libquantum")
    print(f"workload: {program.name}  ({len(program)} static instructions)")
    print(f"{'scheme':<10}{'IPC':>8}{'vs unsafe':>12}{'coverage':>10}{'accuracy':>10}")
    print("-" * 50)
    baseline_ipc = None
    for scheme in SCHEMES:
        stats = simulate(
            build_workload("libquantum"),
            scheme=scheme,
            max_instructions=WARMUP_AND_MEASURE,
        )
        if baseline_ipc is None:
            baseline_ipc = stats.ipc
        print(
            f"{scheme:<10}{stats.ipc:>8.3f}{stats.ipc / baseline_ipc:>11.1%}"
            f"{stats.coverage:>9.1%}{stats.accuracy:>9.1%}"
        )
    print(
        "\nDelay-on-Miss pays the most on this streaming workload; "
        "Doppelganger Loads (the +ap rows) recover most of the loss by "
        "issuing address-predicted accesses while the real loads are "
        "still blocked."
    )


if __name__ == "__main__":
    main()
