"""Watchdog tests: commit-starvation detection, deadlock/livelock
classification, window clamping against long-latency misses, and crash
dumps."""

import pytest

from repro.common.config import GuardrailConfig, small_config
from repro.common.errors import DeadlockError
from repro.guardrails import Watchdog, smoke_program
from repro.guardrails.watchdog import MIN_WINDOW_LATENCIES
from repro.pipeline.core import Core
from repro.schemes import make_scheme


def make_core(dump_dir=None, watchdog_window=200_000):
    config = small_config().with_overrides(
        guardrails=GuardrailConfig(
            watchdog_window=watchdog_window,
            dump_dir=str(dump_dir) if dump_dir else None,
        )
    )
    core = Core(smoke_program(), make_scheme("unsafe"), config=config)
    core.run(max_instructions=600)
    assert not core.halted
    return core


def wedge(core):
    """Make the core look commit-starved without waiting 200k steps.

    The watchdog counts *steps* since the last commit (cycle deltas would
    misread idle-skip jumps as starvation), so a wedge is a stale commit
    step; the cycle counter is aged too so dumps stay coherent.
    """
    core._last_commit_step = core._step_count - core.watchdog.window - 1
    core._last_commit_cycle = core.cycle - core.watchdog.window - 1


def dram_chase_program(hops=6):
    """A serial pointer chase: each load misses to DRAM, so the idle-skip
    clock jumps by roughly a full DRAM latency between commits."""
    from repro.isa.builder import CodeBuilder

    b = CodeBuilder()
    chain = [0x200000 + 8192 * i for i in range(hops + 1)]
    for here, there in zip(chain, chain[1:]):
        b.set_memory(here, there)
    b.li(1, chain[0])
    for _ in range(hops):
        b.load(1, 1)
    b.store(1, 0, disp=8)
    b.halt()
    return b.build(name="watchdog_dram_chase")


class TestIdleSkipImmunity:
    def test_long_miss_jump_does_not_false_trip(self):
        """Regression (idle-skip blind spot): a watchdog window *smaller*
        than one DRAM miss must not trip on a healthy pointer chase.

        Each miss makes the clock jump ~90 cycles in one step; the old
        cycle-delta test read that jump as 90 idle "cycles" and tripped
        once the window was below the miss latency.  Counting steps, the
        chase takes only a handful of iterations per commit.
        """
        core = Core(dram_chase_program(), make_scheme("unsafe"))
        core.watchdog.window = 50  # far below one DRAM round trip
        core.run()  # must not raise
        assert core.halted

        # The scenario is real: the same program shows inter-commit cycle
        # gaps beyond the window, which a cycle-delta watchdog would have
        # misread as starvation.
        probe = Core(dram_chase_program(), make_scheme("unsafe"))
        gaps, prev = [], 0
        while not probe.halted:
            probe.step()
            if probe._last_commit_cycle != prev:
                gaps.append(probe._last_commit_cycle - prev)
                prev = probe._last_commit_cycle
        assert max(gaps) > 50

    def test_true_deadlock_still_trips_with_step_counting(self):
        """In a genuine wedge no jumps happen (every step is +1 cycle), so
        step counting trips at the same point cycle counting did."""
        core = make_core()
        wedge(core)
        with pytest.raises(DeadlockError):
            core.run(max_instructions=10_000)


class TestWindow:
    def test_window_clamped_to_memory_horizon(self):
        """A window shorter than the worst-case miss chain is useless —
        it would misread a single slow access as a wedge."""
        core = make_core(watchdog_window=10)
        assert core.watchdog.window >= (
            MIN_WINDOW_LATENCIES * core.hierarchy.max_latency
        )

    def test_healthy_run_never_trips(self):
        core = make_core()
        core.run(max_instructions=2_000)  # must not raise


class TestClassification:
    def test_busy_machine_is_livelock(self):
        core = make_core()
        wedge(core)
        assert core._events or core._ready or core._mem_queue
        with pytest.raises(DeadlockError) as excinfo:
            core.watchdog.trip(core)
        error = excinfo.value
        assert error.kind == "livelock"
        assert "nothing" in str(error) and "retired" in str(error)

    def test_idle_machine_is_deadlock(self):
        core = make_core()
        wedge(core)
        core._events.clear()
        core._ready.clear()
        core._mem_queue.clear()
        core._mem_retry.clear()
        core._forward_retry.clear()
        core._prefetch_queue.clear()
        with pytest.raises(DeadlockError) as excinfo:
            core.watchdog.trip(core)
        error = excinfo.value
        assert error.kind == "deadlock"
        assert "can never unblock" in str(error)

    def test_snapshot_names_the_oldest_instruction(self):
        core = make_core()
        wedge(core)
        with pytest.raises(DeadlockError) as excinfo:
            core.watchdog.trip(core)
        error = excinfo.value
        head = core.rob[0]
        assert f"seq={head.seq}" in str(error)
        assert error.snapshot["oldest"]["seq"] == head.seq
        assert error.snapshot["watchdog"]["window"] == core.watchdog.window


class TestEndToEnd:
    def test_run_loop_trips_the_watchdog(self):
        """core.run() itself must raise once the window lapses."""
        core = make_core()
        wedge(core)
        with pytest.raises(DeadlockError):
            core.run(max_instructions=10_000)

    def test_trip_writes_crash_dump(self, tmp_path):
        core = make_core(dump_dir=tmp_path)
        wedge(core)
        with pytest.raises(DeadlockError) as excinfo:
            core.watchdog.trip(core)
        error = excinfo.value
        assert error.dump_path is not None
        assert str(tmp_path) in error.dump_path
        text = (tmp_path / error.dump_path.split("/")[-1]).read_text()
        assert "repro crash dump" in text
        assert "pipeline occupancy" in text
        assert "cache / MSHR state" in text
        assert error.dump_path in str(error)

    def test_watchdog_armed_even_with_guardrails_off(self):
        config = small_config().with_overrides(
            guardrails=GuardrailConfig(level="off")
        )
        core = Core(smoke_program(), make_scheme("unsafe"), config=config)
        core.run(max_instructions=400)
        assert core.invariant_checker is None
        wedge(core)
        with pytest.raises(DeadlockError):
            core.run(max_instructions=10_000)


class TestWatchdogStandalone:
    def test_watchdog_reads_config_window(self):
        config = small_config().with_overrides(
            guardrails=GuardrailConfig(watchdog_window=500_000)
        )
        core = Core(smoke_program(), make_scheme("unsafe"), config=config)
        assert Watchdog(core).window == 500_000
