"""Fault-tolerant sweep tests: hung workers, crashed workers, bounded
retry, deterministic-failure semantics, and the failure manifest.

Workers are forked, so a monkeypatched ``run_benchmark`` inside
``repro.harness.parallel`` propagates into the pool — each test swaps in
a stub that is instant for healthy pairs and hangs/crashes/raises for a
designated victim.  ``mp_context="fork"`` is pinned explicitly so the
tests fail loudly rather than silently change meaning if the platform
default ever moves.
"""

import json
import os
import time

import pytest

from repro.common.errors import (
    EmptyMeasurementError,
    JobTimeoutError,
    WorkerCrashError,
)
from repro.common.stats import RunResult, SimStats
from repro.harness import parallel
from repro.harness.parallel import (
    FAILURE_MANIFEST_NAME,
    ParallelSession,
    SweepJob,
    execute_job,
)

BENCHMARKS = ("mcf", "hmmer", "lbm")


def fake_result(benchmark, scheme):
    stats = SimStats()
    stats.committed_instructions = 1000
    stats.cycles = 2000
    return RunResult(benchmark=benchmark, scheme=scheme, stats=stats, metadata={})


def make_session(tmp_path, **kwargs):
    kwargs.setdefault("jobs", 2)
    kwargs.setdefault("warmup", 10)
    kwargs.setdefault("measure", 10)
    kwargs.setdefault("cache_dir", tmp_path)
    kwargs.setdefault("retry_backoff", 0.05)
    kwargs.setdefault("mp_context", "fork")
    return ParallelSession(**kwargs)


def read_manifest(tmp_path):
    return json.loads((tmp_path / FAILURE_MANIFEST_NAME).read_text())


class TestHungWorker:
    def test_sweep_survives_a_hung_worker(self, tmp_path, monkeypatch):
        """Acceptance: one artificially hung worker — the sweep completes
        the remaining jobs and writes a failure manifest naming it."""

        def stub(benchmark, scheme, config=None, warmup=0, measure=0):
            if benchmark == "mcf":
                time.sleep(300)
            return fake_result(benchmark, scheme)

        monkeypatch.setattr(parallel, "run_benchmark", stub)
        session = make_session(tmp_path, job_timeout=1.5, retries=0)
        results = session.sweep(BENCHMARKS, ("unsafe",), skip_errors=True)

        assert [r.benchmark for r in results] == ["hmmer", "lbm"]
        assert len(session.skipped) == 1
        skip = session.skipped[0]
        assert (skip.benchmark, skip.scheme) == ("mcf", "unsafe")
        assert skip.error_type == "JobTimeoutError"

        manifest = read_manifest(tmp_path)
        assert len(manifest["failures"]) == 1
        record = manifest["failures"][0]
        assert record["benchmark"] == "mcf"
        assert record["error_type"] == "JobTimeoutError"
        assert record["transient"] is True
        assert record["key"][0] == "mcf"

    def test_timeout_raises_typed_error_without_skip(self, tmp_path, monkeypatch):
        def stub(benchmark, scheme, config=None, warmup=0, measure=0):
            if benchmark == "mcf":
                time.sleep(300)
            return fake_result(benchmark, scheme)

        monkeypatch.setattr(parallel, "run_benchmark", stub)
        session = make_session(tmp_path, job_timeout=1.5, retries=0)
        with pytest.raises(JobTimeoutError, match=r"\(mcf, unsafe\)"):
            session.sweep(BENCHMARKS, ("unsafe",))

    def test_hung_run_is_retried_not_replayed(self, tmp_path, monkeypatch):
        """A timeout is transient: the next sweep re-runs the pair instead
        of replaying the memoized failure — and can succeed."""

        marker = tmp_path / "fixed"

        def stub(benchmark, scheme, config=None, warmup=0, measure=0):
            if benchmark == "mcf" and not marker.exists():
                time.sleep(300)
            return fake_result(benchmark, scheme)

        monkeypatch.setattr(parallel, "run_benchmark", stub)
        session = make_session(tmp_path, job_timeout=1.5, retries=0)
        session.sweep(BENCHMARKS, ("unsafe",), skip_errors=True)
        assert session.skipped

        marker.write_text("worker behaves now")
        results = session.sweep(BENCHMARKS, ("unsafe",), skip_errors=True)
        assert [r.benchmark for r in results] == list(BENCHMARKS)
        assert session.failures() == []
        assert read_manifest(tmp_path)["failures"] == []


class TestCrashedWorker:
    def test_sweep_survives_a_dead_worker(self, tmp_path, monkeypatch):
        """A worker that dies breaks the pool; retry waves re-run the
        in-flight jobs so only the deterministic culprit ends up failed."""

        def stub(benchmark, scheme, config=None, warmup=0, measure=0):
            if benchmark == "lbm":
                time.sleep(0.5)  # let the healthy jobs finish first
                os._exit(13)
            return fake_result(benchmark, scheme)

        monkeypatch.setattr(parallel, "run_benchmark", stub)
        session = make_session(tmp_path, retries=2)
        results = session.sweep(BENCHMARKS, ("unsafe",), skip_errors=True)

        assert [r.benchmark for r in results] == ["mcf", "hmmer"]
        crash_skips = [s for s in session.skipped if s.benchmark == "lbm"]
        assert crash_skips and crash_skips[0].error_type == "WorkerCrashError"
        manifest = read_manifest(tmp_path)
        assert any(
            record["benchmark"] == "lbm"
            and record["error_type"] == "WorkerCrashError"
            for record in manifest["failures"]
        )

    def test_crash_raises_typed_error_without_skip(self, tmp_path, monkeypatch):
        def stub(benchmark, scheme, config=None, warmup=0, measure=0):
            if benchmark == "lbm":
                time.sleep(0.5)
                os._exit(13)
            return fake_result(benchmark, scheme)

        monkeypatch.setattr(parallel, "run_benchmark", stub)
        session = make_session(tmp_path, retries=1)
        with pytest.raises(WorkerCrashError, match=r"\(lbm, unsafe\)"):
            session.sweep(BENCHMARKS, ("unsafe",))


class TestRetrySemantics:
    def test_transient_failure_succeeds_on_retry(self, tmp_path, monkeypatch):
        """First attempt blows up with a non-simulator error; the retry
        wave succeeds and no failure is recorded anywhere."""
        flag = tmp_path / "already-failed-once"

        def stub(benchmark, scheme, config=None, warmup=0, measure=0):
            if benchmark == "hmmer" and not flag.exists():
                flag.write_text("")
                raise RuntimeError("spurious infrastructure hiccup")
            return fake_result(benchmark, scheme)

        monkeypatch.setattr(parallel, "run_benchmark", stub)
        session = make_session(tmp_path, jobs=1, retries=1)
        results = session.sweep(BENCHMARKS, ("unsafe",))
        assert [r.benchmark for r in results] == list(BENCHMARKS)
        assert session.skipped == []
        assert session.failures() == []
        assert read_manifest(tmp_path)["failures"] == []

    def test_deterministic_error_is_never_retried(self, tmp_path, monkeypatch):
        calls = []

        def stub(benchmark, scheme, config=None, warmup=0, measure=0):
            calls.append(benchmark)
            if benchmark == "hmmer":
                raise EmptyMeasurementError(
                    "program shorter than warmup window",
                    benchmark=benchmark,
                    scheme=scheme,
                )
            return fake_result(benchmark, scheme)

        monkeypatch.setattr(parallel, "run_benchmark", stub)
        session = make_session(tmp_path, jobs=1, retries=3)
        session.sweep(BENCHMARKS, ("unsafe",), skip_errors=True)
        assert calls.count("hmmer") == 1
        record = next(r for r in session.failures() if r.benchmark == "hmmer")
        assert record.attempts == 1
        assert record.transient is False

    def test_retries_are_bounded(self, tmp_path, monkeypatch):
        calls_log = tmp_path / "calls.log"

        def stub(benchmark, scheme, config=None, warmup=0, measure=0):
            with open(calls_log, "a") as handle:
                handle.write(f"{benchmark}\n")
            if benchmark == "hmmer":
                raise RuntimeError("always transient, never lucky")
            return fake_result(benchmark, scheme)

        monkeypatch.setattr(parallel, "run_benchmark", stub)
        session = make_session(tmp_path, jobs=1, retries=2)
        session.sweep(BENCHMARKS, ("unsafe",), skip_errors=True)
        calls = calls_log.read_text().split()
        assert calls.count("hmmer") == 3  # 1 attempt + 2 retries
        assert calls.count("mcf") == 1  # healthy jobs resolve in wave one
        record = next(r for r in session.failures() if r.benchmark == "hmmer")
        assert record.attempts == 3


class TestExecuteJobInterrupts:
    def test_keyboard_interrupt_returns_transient_payload(self, monkeypatch):
        """Ctrl-C in a worker must come back as data, not unwind the pool
        protocol mid-write — the parent flushes finished results first."""

        def stub(benchmark, scheme, config=None, warmup=0, measure=0):
            raise KeyboardInterrupt

        monkeypatch.setattr(parallel, "run_benchmark", stub)
        from repro.common.config import small_config

        payload = execute_job(
            SweepJob.build("mcf", "unsafe", 10, 10, small_config())
        )
        assert payload["ok"] is False
        assert payload["error_type"] == "KeyboardInterrupt"
        assert payload["transient"] is True

    def test_unexpected_exception_returns_transient_payload(self, monkeypatch):
        def stub(benchmark, scheme, config=None, warmup=0, measure=0):
            raise ValueError("simulator bug du jour")

        monkeypatch.setattr(parallel, "run_benchmark", stub)
        from repro.common.config import small_config

        payload = execute_job(
            SweepJob.build("mcf", "unsafe", 10, 10, small_config())
        )
        assert payload["ok"] is False
        assert payload["error_type"] == "ValueError"
        assert payload["transient"] is True


class TestFailuresNeverDiskCached:
    def test_empty_measurement_skip_is_not_disk_cached(self, tmp_path, monkeypatch):
        """Satellite regression: a pair skipped for EmptyMeasurementError
        must leave no cache file, so fixing the workload is picked up by
        the very next session instead of being masked until the cache
        directory is cleared."""

        def broken(benchmark, scheme, config=None, warmup=0, measure=0):
            if benchmark == "hmmer":
                raise EmptyMeasurementError(
                    "program shorter than warmup window",
                    benchmark=benchmark,
                    scheme=scheme,
                )
            return fake_result(benchmark, scheme)

        monkeypatch.setattr(parallel, "run_benchmark", broken)
        first = make_session(tmp_path, jobs=1)
        first.sweep(BENCHMARKS, ("unsafe",), skip_errors=True)
        assert len(first.skipped) == 1

        failed_key = first._key("hmmer", "unsafe")
        assert not first._cache_path(failed_key).exists()
        top_level = sorted(p.name for p in tmp_path.iterdir())
        assert FAILURE_MANIFEST_NAME in top_level
        assert len(list(tmp_path.rglob("v2-*.json"))) == 2

        # "The fix": the same pair now works; a fresh session pointed at
        # the same cache dir re-simulates it rather than replaying the
        # stale failure, and the healthy pairs stay disk hits.
        def fixed(benchmark, scheme, config=None, warmup=0, measure=0):
            return fake_result(benchmark, scheme)

        monkeypatch.setattr(parallel, "run_benchmark", fixed)
        second = make_session(tmp_path, jobs=1)
        results = second.sweep(BENCHMARKS, ("unsafe",))
        assert [r.benchmark for r in results] == list(BENCHMARKS)
        assert second.simulated == 1
        assert second.disk_hits == 2
        assert read_manifest(tmp_path)["failures"] == []

    def test_inline_run_failure_not_disk_cached(self, tmp_path, monkeypatch):
        def broken(benchmark, scheme, config=None, warmup=0, measure=0):
            raise EmptyMeasurementError(
                "program shorter than warmup window",
                benchmark=benchmark,
                scheme=scheme,
            )

        monkeypatch.setattr(parallel, "run_benchmark", broken)
        session = make_session(tmp_path, jobs=1)
        with pytest.raises(EmptyMeasurementError):
            session.run("hmmer", "unsafe")
        assert not session._cache_path(session._key("hmmer", "unsafe")).exists()


class TestDumpPathPropagation:
    def test_invariant_failure_ships_dump_path_through_pool(
        self, tmp_path, monkeypatch
    ):
        """A guardrail error raised inside a worker reaches the parent as
        a typed error carrying the crash-dump path for the manifest."""
        from repro.common.errors import InvariantViolationError

        dump = tmp_path / "dumps" / "crash-fake.txt"

        def broken(benchmark, scheme, config=None, warmup=0, measure=0):
            if benchmark == "mcf":
                raise InvariantViolationError(
                    "invariant 'rename' violated",
                    invariant="rename",
                    violations=["[rename] r3 leaked"],
                    dump_path=str(dump),
                )
            return fake_result(benchmark, scheme)

        monkeypatch.setattr(parallel, "run_benchmark", broken)
        session = make_session(tmp_path, jobs=1)
        results = session.sweep(BENCHMARKS, ("unsafe",), skip_errors=True)
        assert [r.benchmark for r in results] == ["hmmer", "lbm"]
        assert session.skipped[0].error_type == "InvariantViolationError"
        assert session.skipped[0].dump_path == str(dump)
        record = read_manifest(tmp_path)["failures"][0]
        assert record["dump_path"] == str(dump)

        with pytest.raises(InvariantViolationError) as excinfo:
            session.run("mcf", "unsafe")
        assert excinfo.value.invariant == "rename"
        assert excinfo.value.dump_path == str(dump)
