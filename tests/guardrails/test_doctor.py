"""``repro doctor`` smoke tests (subset of schemes to stay fast; the CI
guardrails job runs the full matrix via the CLI)."""

from repro.guardrails import run_doctor
from repro.guardrails.invariants import INVARIANT_CLASSES


class TestDoctor:
    def test_clean_schemes_report_ok(self):
        report = run_doctor(schemes=("unsafe", "dom+ap"), instructions=1500)
        assert report.ok
        assert [row.scheme for row in report.rows] == ["unsafe", "dom+ap"]
        for row in report.rows:
            assert set(row.classes) == set(INVARIANT_CLASSES)
        # No engine on the plain scheme, engine present on +ap.
        assert report.rows[0].classes["doppelganger"] == "n/a"
        assert report.rows[1].classes["doppelganger"] == "ok"

    def test_render_is_a_table_with_verdict(self):
        report = run_doctor(schemes=("unsafe",), instructions=800)
        text = report.render()
        assert text.splitlines()[0].startswith("static preflight (repro lint)")
        header = next(
            line for line in text.splitlines() if line.startswith("scheme")
        )
        for name in INVARIANT_CLASSES:
            assert name in header
        assert "all invariants held" in text

    def test_preflight_can_be_skipped(self):
        report = run_doctor(
            schemes=("unsafe",), instructions=800, lint_preflight=False
        )
        assert report.lint_status == "skipped"
        assert report.ok

    def test_fuzz_smoke_runs_and_reports_clean(self):
        report = run_doctor(
            schemes=("unsafe",), instructions=800, lint_preflight=False
        )
        assert report.fuzz_findings == 0
        assert report.fuzz_status.startswith("clean")
        assert "differential fuzz smoke: clean" in report.render()

    def test_fuzz_smoke_can_be_skipped(self):
        report = run_doctor(
            schemes=("unsafe",),
            instructions=800,
            lint_preflight=False,
            fuzz_smoke=False,
        )
        assert report.fuzz_status == "skipped"
        assert report.ok

    def test_specflow_smoke_runs_and_reports_clean(self):
        report = run_doctor(
            schemes=("unsafe",),
            instructions=800,
            lint_preflight=False,
            fuzz_smoke=False,
            chaos_smoke=False,
        )
        assert report.specflow_findings == 0
        assert report.specflow_status.startswith("clean")
        assert "specflow smoke (repro specflow): clean" in report.render()

    def test_specflow_smoke_can_be_skipped(self):
        report = run_doctor(
            schemes=("unsafe",),
            instructions=800,
            lint_preflight=False,
            fuzz_smoke=False,
            chaos_smoke=False,
            specflow_smoke=False,
        )
        assert report.specflow_status == "skipped"
        assert report.ok

    def test_specflow_findings_fail_the_report(self):
        report = run_doctor(
            schemes=("unsafe",),
            instructions=800,
            lint_preflight=False,
            fuzz_smoke=False,
            chaos_smoke=False,
            specflow_smoke=False,
        )
        report.specflow_findings = 1
        assert not report.ok


class TestDoctorCli:
    def test_cli_doctor_exit_code(self, capsys):
        from repro.cli import main

        code = main(["doctor", "--schemes", "unsafe", "--instructions", "800"])
        out = capsys.readouterr().out
        assert code == 0
        assert "all invariants held" in out

    def test_cli_no_specflow_skips_the_smoke(self, capsys):
        from repro.cli import main

        code = main([
            "doctor", "--schemes", "unsafe", "--instructions", "800",
            "--no-specflow", "--no-fuzz", "--no-chaos", "--no-lint",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "specflow smoke (repro specflow): skipped" in out
