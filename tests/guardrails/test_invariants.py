"""Seeded fault-injection tests for the invariant checker.

Each test runs a healthy core partway through the doctor smoke program,
deliberately corrupts one microarchitectural structure the way a real
wrong-path bug would, and asserts that the matching invariant class —
and only a typed :class:`InvariantViolationError` — reports it, carrying
a usable machine-state snapshot.
"""

import json

import pytest

from repro.common.config import GuardrailConfig, small_config
from repro.common.errors import InvariantViolationError
from repro.guardrails import InvariantChecker, smoke_program
from repro.pipeline.core import Core
from repro.pipeline.uop import UopState
from repro.schemes import make_scheme


def make_core(scheme="unsafe", level="full", dump_dir=None, instructions=600):
    """A healthy mid-flight core: warm pipeline, nothing committed fully."""
    config = small_config().with_overrides(
        guardrails=GuardrailConfig(
            level=level, dump_dir=str(dump_dir) if dump_dir else None
        )
    )
    core = Core(smoke_program(), make_scheme(scheme), config=config)
    core.run(max_instructions=instructions)
    assert not core.halted, "smoke program must still be mid-flight"
    return core


def check_raises(core, invariant):
    with pytest.raises(InvariantViolationError) as excinfo:
        InvariantChecker(core).check()
    error = excinfo.value
    assert error.invariant == invariant
    assert error.violations and all(
        violation.startswith(f"[{invariant}]") for violation in error.violations
    )
    # The snapshot must be there, structured, and name the failure site.
    assert error.snapshot["cycle"] == core.cycle
    assert error.snapshot["scheme"] == core.scheme.describe()
    assert "occupancy" in error.snapshot
    assert "memory" in error.snapshot
    return error


class TestHealthyBaseline:
    def test_mid_flight_core_is_clean(self):
        core = make_core()
        assert all(not v for v in InvariantChecker(core).audit().values())


class TestRenameLeak:
    def test_leaked_squashed_producer_is_caught(self):
        core = make_core()
        # A wrong-path bug that forgets to unwind the map: detach a
        # non-memory producer from the ROB and mark it squashed while its
        # rename-map entry survives.
        reg, victim = next(
            (reg, uop)
            for reg, uop in core.rename.items()
            if not uop.is_load and not uop.is_store
        )
        core.rob.remove(victim)
        if victim.in_iq:
            victim.in_iq = False
            core.iq_count -= 1
        victim.state = UopState.SQUASHED
        error = check_raises(core, "rename")
        assert "leaked across squash" in str(error)
        assert f"r{reg}" in str(error)

    def test_guardrails_off_has_no_checker(self):
        core = make_core(level="off")
        assert core.invariant_checker is None


class TestStepCadence:
    def test_corruption_is_caught_by_the_running_core(self):
        """The checker plugged into Core.step() trips on the next sweep.

        Uses an MSHR orphan because it cannot self-heal: a leaked rename
        entry is often re-mapped by the next dispatched writer, but a
        bogus in-flight line pinned past the memory horizon stays pinned.
        """
        core = make_core(level="full")
        core.hierarchy.mshrs._outstanding[0xDEAD] = core.cycle + 10**9
        with pytest.raises(InvariantViolationError) as excinfo:
            core.run(max_instructions=10_000)
        assert excinfo.value.invariant == "mshr"

    def test_off_level_runs_through_corruption(self):
        """--guardrails off: same corruption, no checker, no raise."""
        core = make_core(level="off")
        core.hierarchy.mshrs._outstanding[0xDEAD] = core.cycle + 10**9
        core.run(max_instructions=700)  # must not raise


class TestRobInvariants:
    def test_age_order_violation(self):
        core = make_core()
        assert len(core.rob) >= 2
        core.rob[0], core.rob[1] = core.rob[1], core.rob[0]
        error = check_raises(core, "rob")
        assert "not age-ordered" in str(error)

    def test_iq_accounting_imbalance(self):
        core = make_core()
        core.iq_count += 3
        error = check_raises(core, "rob")
        assert "IQ" in str(error)


class TestLsqInvariants:
    def test_non_load_in_load_queue(self):
        core = make_core()
        intruder = next(uop for uop in core.rob if not uop.is_load)
        core.lq.append(intruder)
        error = check_raises(core, "lsq")
        assert "is not a load" in str(error) or "not age-ordered" in str(error)


class TestMshrInvariants:
    def test_orphaned_miss_is_caught(self):
        core = make_core()
        # An entry pinned absurdly far past the worst-case latency can
        # never have come from a real allocation.
        core.hierarchy.mshrs._outstanding[0xDEAD] = core.cycle + 10**9
        error = check_raises(core, "mshr")
        assert "orphan" in str(error)

    def test_overfilled_mshr_file_is_caught(self):
        core = make_core()
        mshrs = core.hierarchy.mshrs
        horizon = core.cycle + core.hierarchy.max_latency
        for line in range(mshrs.entries + 1):
            mshrs._outstanding[0x5000 + line] = horizon
        error = check_raises(core, "mshr")
        assert "capacity" in str(error) or "entries" in str(error)


class TestShadowInvariants:
    def test_caster_outliving_instruction_is_caught(self):
        core = make_core()
        core.shadows.branch_dispatched(core.rob[-1].seq + 50)
        error = check_raises(core, "shadows")
        assert "outlived" in str(error)

    def test_untracked_unresolved_branch_is_caught(self):
        core = make_core()
        victim_seq = None
        for uop in core.rob:
            if uop.inst.is_conditional_branch and not uop.branch_resolved:
                victim_seq = uop.seq
                break
        if victim_seq is None:
            pytest.skip("no unresolved branch in flight at the stop point")
        core.shadows.branch_resolved(victim_seq)
        error = check_raises(core, "shadows")
        assert "casts no shadow" in str(error)


class TestDoppelgangerInvariants:
    def test_dropped_replay_is_caught(self):
        core = make_core(scheme="dom+ap", instructions=900)
        victim = next((uop for uop in core.lq if uop.in_flight), None)
        if victim is None:
            pytest.skip("no in-flight load at the stop point")
        # A mispredicted preload must replay the real access before the
        # load may complete; forge the "completed without replay" state.
        victim.dl_predicted_address = victim.dl_predicted_address or 0x40
        victim.dl_verified = True
        victim.dl_correct = False
        victim.dl_cancelled = False
        victim.executed = False
        victim.vp_active = False
        victim.state = UopState.COMPLETED
        error = check_raises(core, "doppelganger")
        joined = " ".join(error.violations)
        assert "dropped replay" in joined or "imbalance" in joined

    def test_unverified_preload_consumption_is_caught(self):
        core = make_core(scheme="dom+ap", instructions=900)
        victim = next((uop for uop in core.lq if uop.in_flight), None)
        if victim is None:
            pytest.skip("no in-flight load at the stop point")
        victim.dl_predicted_address = victim.dl_predicted_address or 0x40
        victim.dl_used = True
        victim.dl_correct = False
        error = check_raises(core, "doppelganger")
        assert "without a verified-correct prediction" in str(error) or (
            "imbalance" in str(error)
        )


class TestSchemeInvariants:
    def test_stt_taint_sanity(self):
        core = make_core(scheme="stt")
        victim = core.rob[-1]
        victim.taint = victim.seq + 100  # tainted by the future
        error = check_raises(core, "scheme")
        assert "taint" in str(error)

    def test_dom_delayed_load_touching_replacement_state(self):
        core = make_core(scheme="dom", instructions=900)
        victim = next((uop for uop in core.lq if uop.in_flight), None)
        if victim is None:
            pytest.skip("no in-flight load at the stop point")
        victim.dom_delayed = True
        victim.executed = False
        victim.dom_touch_pending = True
        error = check_raises(core, "scheme")
        assert "replacement" in str(error) or "delayed" in str(error)


class TestCrashDumps:
    def test_violation_writes_dump_file(self, tmp_path):
        core = make_core(dump_dir=tmp_path)
        core.hierarchy.mshrs._outstanding[0xDEAD] = core.cycle + 10**9
        error = check_raises(core, "mshr")
        assert error.dump_path is not None
        dump = tmp_path / error.dump_path.split("/")[-1]
        assert dump.exists()
        text = dump.read_text()
        assert "pipeline occupancy" in text
        assert "[mshr]" in text  # the violations section names the class
        # The dump ends with the raw machine-readable snapshot.
        json_part = text.split("raw snapshot (json)", 1)[1]
        payload = json.loads(json_part[json_part.index("{") :])
        assert payload["cycle"] == core.cycle
        assert payload["program"] == "guardrail_smoke"

    def test_no_dump_dir_means_no_path(self):
        core = make_core()
        core.iq_count += 1
        error = check_raises(core, "rob")
        assert error.dump_path is None
