"""Pin the invariant checker's cadence to *cycles*, not steps.

Regression: the checker countdown used to decrement once per ``step()``
call.  Under idle skipping a step can advance the clock by an entire DRAM
latency, so the real sweep interval silently stretched with the skip
ratio — a "cheap, every 1024 cycles" setting could degrade to one sweep
per ~100k cycles on memory-bound code.  The countdown now burns the full
clock jump, making the cadence cycle-accurate in both loop modes.

The contract (documented on ``GuardrailConfig.check_interval``):

* consecutive sweeps are at least ``check_interval`` *cycles* apart
  (measured at the post-step clock), and
* at most ``check_interval`` *steps* apart — the countdown loses at
  least one per step, and state cannot change mid-jump, so running at
  most one sweep per step loses nothing.
"""

import pytest

from repro.common.config import GuardrailConfig, small_config
from repro.isa.builder import CodeBuilder
from repro.pipeline.core import Core
from repro.schemes import make_scheme


def dram_chase_program(hops=8):
    b = CodeBuilder()
    chain = [0x300000 + 8192 * i for i in range(hops + 1)]
    for here, there in zip(chain, chain[1:]):
        b.set_memory(here, there)
    b.li(1, chain[0])
    for _ in range(hops):
        b.load(1, 1)
    b.store(1, 0, disp=8)
    b.halt()
    return b.build(name="cadence_dram_chase")


def make_core(interval, idle_skip=True):
    config = small_config().with_overrides(
        guardrails=GuardrailConfig(level="cheap", check_interval=interval)
    )
    return Core(
        dram_chase_program(), make_scheme("unsafe"), config=config,
        idle_skip=idle_skip,
    )


def run_recording_sweeps(core):
    """Step to halt, recording (step_count, post-step cycle) for every
    step during which the checker swept."""
    checker = core.invariant_checker
    fired = []
    original = checker.check

    def recording_check():
        fired.append(True)
        original()

    checker.check = recording_check
    sweeps = []
    while not core.halted:
        fired.clear()
        core.step()
        if fired:
            assert len(fired) == 1, "more than one sweep in a single step"
            sweeps.append((core._step_count, core.cycle))
    return sweeps


class TestCycleAccurateCadence:
    def test_interval_larger_than_step_count_still_sweeps(self):
        """The discriminating case: a serial DRAM chase finishes in far
        fewer *steps* than ``interval``, but far more *cycles*.  Per-step
        counting would never sweep; cycle-accurate counting must."""
        interval = 200
        core = make_core(interval)
        sweeps = run_recording_sweeps(core)
        assert core._step_count < interval  # per-step counting → 0 sweeps
        assert core.cycle > 2 * interval
        assert len(sweeps) >= 2

    @pytest.mark.parametrize("idle_skip", [True, False])
    def test_sweep_spacing_contract(self, idle_skip):
        """≥ interval cycles and ≤ interval steps between sweeps, in both
        loop modes."""
        interval = 64
        core = make_core(interval, idle_skip=idle_skip)
        sweeps = run_recording_sweeps(core)
        assert len(sweeps) >= 2
        for (step_a, cycle_a), (step_b, cycle_b) in zip(sweeps, sweeps[1:]):
            assert cycle_b - cycle_a >= interval
            assert step_b - step_a <= interval

    def test_both_modes_keep_sweeping(self):
        """Both loop modes must keep sweeping throughout the run.  Skip
        mode may sweep somewhat less often — a clock jump that overshoots
        the countdown fires one sweep, not a catch-up burst, because the
        skipped stretch had no state changes to audit — but it must never
        collapse toward zero the way the old per-step cadence did."""
        interval = 64
        skip = make_core(interval)
        skip_sweeps = run_recording_sweeps(skip)
        tick = make_core(interval, idle_skip=False)
        tick_sweeps = run_recording_sweeps(tick)
        assert skip.cycle == tick.cycle
        assert len(tick_sweeps) == tick.cycle // interval
        assert 2 <= len(skip_sweeps) <= len(tick_sweeps)
        # The widest sweep gap is bounded by the widest clock jump plus
        # one full interval, not by the skip ratio.
        widest = max(b - a for (_, a), (_, b) in zip(skip_sweeps, skip_sweeps[1:]))
        assert widest <= 2 * max(
            interval, skip.hierarchy.max_latency + interval
        )
