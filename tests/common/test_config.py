"""Tests for configuration dataclasses and their validation."""

import dataclasses

import pytest

from repro.common.config import (
    BranchPredictorConfig,
    config_from_dict,
    config_to_dict,
    CacheConfig,
    CoreConfig,
    MemoryConfig,
    PredictorConfig,
    SystemConfig,
    default_config,
    small_config,
)
from repro.common.errors import ConfigError


class TestCacheConfig:
    def test_num_sets(self):
        cache = CacheConfig("L1", 48 * 1024, 12, latency=5)
        assert cache.num_sets == 48 * 1024 // (12 * 64)

    def test_rejects_non_multiple_size(self):
        with pytest.raises(ConfigError, match="multiple"):
            CacheConfig("L1", 1000, 3, latency=1)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(size_bytes=0, ways=1, latency=1),
            dict(size_bytes=1024, ways=0, latency=1),
            dict(size_bytes=1024, ways=1, latency=0),
            dict(size_bytes=1024, ways=1, latency=1, mshrs=0),
        ],
    )
    def test_rejects_non_positive_fields(self, kwargs):
        with pytest.raises(ConfigError):
            CacheConfig("X", **kwargs)


class TestMemoryConfig:
    def test_default_matches_table1(self):
        memory = MemoryConfig()
        assert memory.l1.size_bytes == 48 * 1024
        assert memory.l2.size_bytes == 2 * 1024 * 1024
        assert memory.l3.size_bytes == 16 * 1024 * 1024

    def test_rejects_inverted_level_sizes(self):
        with pytest.raises(ConfigError, match="monotonically"):
            MemoryConfig(
                l1=CacheConfig("L1", 1 << 20, 4, latency=2),
                l2=CacheConfig("L2", 1 << 16, 4, latency=8),
            )

    def test_rejects_zero_dram_latency(self):
        with pytest.raises(ConfigError):
            MemoryConfig(dram_latency=0)


class TestCoreConfig:
    def test_rejects_rob_smaller_than_lq(self):
        with pytest.raises(ConfigError, match="ROB"):
            CoreConfig(rob_entries=16, lq_entries=32)

    def test_rejects_zero_widths(self):
        with pytest.raises(ConfigError):
            CoreConfig(decode_width=0)
        with pytest.raises(ConfigError):
            CoreConfig(issue_width=0)

    def test_negative_penalties_rejected(self):
        with pytest.raises(ConfigError):
            CoreConfig(mispredict_penalty=-1)
        with pytest.raises(ConfigError):
            CoreConfig(branch_resolution_delay=-1)
        with pytest.raises(ConfigError):
            CoreConfig(branch_resolve_latency=0)


class TestBranchPredictorConfig:
    def test_power_of_two_tables(self):
        with pytest.raises(ConfigError):
            BranchPredictorConfig(table_entries=1000)
        with pytest.raises(ConfigError):
            BranchPredictorConfig(btb_entries=100)

    def test_history_bits_bounds(self):
        BranchPredictorConfig(history_bits=0)   # bimodal allowed
        with pytest.raises(ConfigError):
            BranchPredictorConfig(history_bits=25)


class TestPredictorConfig:
    def test_num_sets(self):
        assert PredictorConfig(entries=1024, ways=8).num_sets == 128

    def test_entries_divisible_by_ways(self):
        with pytest.raises(ConfigError):
            PredictorConfig(entries=100, ways=8)

    def test_threshold_within_confidence_range(self):
        with pytest.raises(ConfigError):
            PredictorConfig(confidence_threshold=8, max_confidence=7)

    def test_prefetch_degree_zero_allowed(self):
        assert PredictorConfig(prefetch_degree=0).prefetch_degree == 0

    def test_secure_defaults(self):
        cfg = PredictorConfig()
        assert not cfg.train_on_execute
        assert cfg.multi_instance_aging


class TestSystemConfig:
    def test_default_is_frozen(self):
        cfg = default_config()
        with pytest.raises(dataclasses.FrozenInstanceError):
            cfg.max_cycles = 5  # type: ignore[misc]

    def test_with_overrides(self):
        cfg = default_config().with_overrides(max_cycles=123, prefetch_enabled=False)
        assert cfg.max_cycles == 123
        assert not cfg.prefetch_enabled
        assert cfg.core.rob_entries == 352  # untouched

    def test_small_config_keeps_mechanisms(self):
        cfg = small_config()
        assert cfg.core.rob_entries < 64
        assert cfg.memory.l1.mshrs >= 1
        assert cfg.predictor.entries >= 1

    def test_rejects_zero_budget(self):
        with pytest.raises(ConfigError):
            SystemConfig(max_cycles=0)


class TestFingerprintAndRoundTrip:
    def test_fingerprint_is_stable_across_instances(self):
        assert default_config().fingerprint() == default_config().fingerprint()
        assert small_config().fingerprint() == small_config().fingerprint()

    def test_fingerprint_is_hex_digest(self):
        digest = default_config().fingerprint()
        assert len(digest) == 64
        int(digest, 16)

    def test_any_knob_changes_the_fingerprint(self):
        base = default_config()
        assert (
            base.with_overrides(max_cycles=base.max_cycles + 1).fingerprint()
            != base.fingerprint()
        )
        assert (
            base.with_overrides(
                core=dataclasses.replace(base.core, rob_entries=128)
            ).fingerprint()
            != base.fingerprint()
        )
        assert (
            base.with_overrides(
                predictor=dataclasses.replace(base.predictor, kind="two_delta")
            ).fingerprint()
            != base.fingerprint()
        )

    def test_dict_round_trip_is_exact(self):
        for cfg in (default_config(), small_config()):
            assert config_from_dict(config_to_dict(cfg)) == cfg

    def test_round_trip_preserves_fingerprint(self):
        cfg = small_config()
        assert config_from_dict(config_to_dict(cfg)).fingerprint() == cfg.fingerprint()

    def test_dict_form_is_json_able(self):
        import json

        text = json.dumps(config_to_dict(default_config()), sort_keys=True)
        assert config_from_dict(json.loads(text)) == default_config()
