"""The public API surface: top-level imports and the simulate() helper."""

import pytest

import repro
from repro import build_core, simulate
from repro.isa.assembler import assemble
from repro.isa.program import Program


class TestTopLevelAPI:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_simulate_with_scheme_name(self):
        program = Program(assemble("li r1, 5\nstore r1, [r0 + 8]\nhalt"))
        stats = simulate(program, scheme="dom+ap")
        assert stats.committed_instructions == 3

    def test_simulate_with_scheme_instance(self):
        from repro.schemes import make_scheme

        program = Program(assemble("li r1, 5\nhalt"))
        stats = simulate(program, scheme=make_scheme("stt"))
        assert stats.committed_instructions == 2

    def test_simulate_instruction_budget(self):
        from tests.conftest import counting_loop

        stats = simulate(counting_loop(10**6), max_instructions=800)
        assert 800 <= stats.committed_instructions < 900

    def test_build_core_does_not_run(self):
        program = Program(assemble("halt"))
        core = build_core(program, "nda")
        assert core.cycle == 0
        assert not core.halted

    def test_unknown_scheme_from_api(self):
        program = Program(assemble("halt"))
        with pytest.raises(ValueError):
            simulate(program, scheme="sgx")

    def test_default_config_applied(self):
        program = Program(assemble("halt"))
        core = build_core(program)
        assert core.config.core.rob_entries == 352
