"""Tests for statistics containers and aggregate math."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.stats import RunResult, SimStats, geomean, normalized


class TestSimStats:
    def test_defaults_zero(self):
        stats = SimStats()
        assert stats.cycles == 0
        assert stats.ipc == 0.0
        assert stats.coverage == 0.0
        assert stats.accuracy == 0.0
        assert stats.l1_miss_rate == 0.0

    def test_ipc(self):
        stats = SimStats(cycles=100, committed_instructions=250)
        assert stats.ipc == 2.5

    def test_coverage_accuracy(self):
        stats = SimStats(
            committed_loads=100, dl_covered_commits=40, dl_correct_commits=30
        )
        assert stats.coverage == pytest.approx(0.40)
        assert stats.accuracy == pytest.approx(0.75)

    def test_miss_rate(self):
        stats = SimStats(l1_accesses=200, l1_misses=20)
        assert stats.l1_miss_rate == pytest.approx(0.1)

    def test_merge_accumulates_every_field(self):
        a = SimStats(cycles=10, committed_loads=5, dl_issued=2)
        b = SimStats(cycles=7, committed_loads=1, dl_issued=3)
        a.merge(b)
        assert a.cycles == 17
        assert a.committed_loads == 6
        assert a.dl_issued == 5

    def test_as_dict_round_trip(self):
        stats = SimStats(cycles=5, vp_squashes=2)
        data = stats.as_dict()
        assert data["cycles"] == 5
        assert data["vp_squashes"] == 2
        assert set(data) >= {"l1_accesses", "dl_predictions", "writebacks"}

    def test_summary_mentions_key_numbers(self):
        stats = SimStats(cycles=10, committed_instructions=20, dl_issued=3)
        text = stats.summary()
        assert "IPC=2.000" in text
        assert "doppelganger issued=3" in text

    def test_summary_omits_dl_when_absent(self):
        assert "doppelganger" not in SimStats(cycles=1).summary()


class TestGeomean:
    def test_simple(self):
        assert geomean([2, 8]) == pytest.approx(4.0)

    def test_single(self):
        assert geomean([3.3]) == pytest.approx(3.3)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            geomean([])

    def test_non_positive_rejected(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])
        with pytest.raises(ValueError):
            geomean([1.0, -2.0])

    @given(st.lists(st.floats(min_value=0.01, max_value=100), min_size=1, max_size=20))
    def test_bounded_by_min_and_max(self, values):
        result = geomean(values)
        assert min(values) - 1e-9 <= result <= max(values) + 1e-9

    @given(
        st.lists(st.floats(min_value=0.01, max_value=100), min_size=1, max_size=10),
        st.floats(min_value=0.01, max_value=10),
    )
    def test_scale_invariance(self, values, factor):
        scaled = geomean([v * factor for v in values])
        assert scaled == pytest.approx(geomean(values) * factor, rel=1e-6)


class TestNormalized:
    def test_simple(self):
        assert normalized(3.0, 2.0) == 1.5

    def test_zero_baseline_rejected(self):
        with pytest.raises(ValueError):
            normalized(1.0, 0.0)


class TestRunResult:
    def test_ipc_passthrough(self):
        result = RunResult(
            benchmark="x", scheme="dom",
            stats=SimStats(cycles=4, committed_instructions=8),
        )
        assert result.ipc == 2.0
        assert result.metadata == {}


class TestRoundTrips:
    def test_simstats_from_dict_round_trip(self):
        stats = SimStats(cycles=5, vp_squashes=2, dl_issued=9, l2_accesses=17)
        assert SimStats.from_dict(stats.as_dict()) == stats

    def test_simstats_from_dict_ignores_unknown_keys(self):
        data = SimStats(cycles=3).as_dict()
        data["counter_from_the_future"] = 42
        assert SimStats.from_dict(data) == SimStats(cycles=3)

    def test_simstats_from_dict_defaults_missing_keys(self):
        assert SimStats.from_dict({"cycles": 7}) == SimStats(cycles=7)

    def test_run_result_round_trip(self):
        result = RunResult(
            benchmark="hmmer",
            scheme="dom+ap",
            stats=SimStats(cycles=10, committed_instructions=25),
            metadata={"warmup": 100, "measure": 400},
        )
        clone = RunResult.from_dict(result.to_dict())
        assert clone == result
        assert clone.metadata["measure"] == 400

    def test_run_result_to_dict_is_plain_data(self):
        import json

        result = RunResult(benchmark="x", scheme="dom", stats=SimStats(cycles=1))
        json.dumps(result.to_dict())  # must not raise


class TestTypedErrors:
    def test_geomean_raises_repro_typed_error(self):
        from repro.common.errors import ReproError, StatisticsError

        with pytest.raises(StatisticsError):
            geomean([])
        with pytest.raises(ReproError):
            geomean([1.0, 0.0])

    def test_normalized_raises_repro_typed_error(self):
        from repro.common.errors import StatisticsError

        with pytest.raises(StatisticsError):
            normalized(1.0, 0.0)

    def test_statistics_error_is_still_a_value_error(self):
        """Compatibility: long-standing callers guard with ValueError."""
        from repro.common.errors import StatisticsError

        assert issubclass(StatisticsError, ValueError)

    def test_empty_measurement_error_names_the_pair(self):
        from repro.common.errors import EmptyMeasurementError, ReproError

        error = EmptyMeasurementError("no commits", benchmark="mcf", scheme="dom")
        assert error.benchmark == "mcf"
        assert error.scheme == "dom"
        assert "(mcf, dom)" in str(error)
        assert isinstance(error, ReproError)
