"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestList:
    def test_lists_schemes_and_benchmarks(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "dom" in out
        assert "libquantum" in out
        assert "spec2017" in out


class TestRun:
    def test_run_prints_summary(self, capsys):
        assert main(["run", "hmmer", "--scheme", "dom+ap",
                     "--warmup", "500", "--measure", "1500"]) == 0
        out = capsys.readouterr().out
        assert "hmmer under dom+ap" in out
        assert "IPC=" in out
        assert "doppelganger issued=" in out

    def test_run_with_baseline_normalization(self, capsys):
        assert main(["run", "hmmer", "--scheme", "dom",
                     "--warmup", "500", "--measure", "1000",
                     "--baseline"]) == 0
        assert "normalized IPC vs unsafe:" in capsys.readouterr().out

    def test_unknown_benchmark_is_an_error(self, capsys):
        assert main(["run", "doesnotexist"]) == 1
        assert "error:" in capsys.readouterr().err


class TestAttack:
    def test_attack_reports_all_schemes(self, capsys):
        assert main(["attack", "--secret", "9"]) == 0
        out = capsys.readouterr().out
        assert out.count("LEAKED") == 2          # unsafe and unsafe+ap
        assert out.count(" safe ") == 6          # all secure configs
        assert "inferred=9" in out


class TestTrace:
    def test_trace_prints_timeline(self, capsys):
        assert main(["trace", "hmmer", "--scheme", "stt+ap",
                     "--instructions", "200", "--window", "12"]) == 0
        out = capsys.readouterr().out
        assert "traced:" in out
        assert "D=dispatch" in out

    def test_trace_unknown_scheme(self):
        with pytest.raises(SystemExit):
            main(["trace"])  # missing benchmark argument


class TestSweep:
    def test_sweep_prints_grid_and_counters(self, capsys, tmp_path):
        assert main(["sweep", "--benchmarks", "hmmer,mcf",
                     "--schemes", "unsafe,dom", "--jobs", "2",
                     "--cache-dir", str(tmp_path),
                     "--warmup", "300", "--measure", "800"]) == 0
        out = capsys.readouterr().out
        assert "hmmer" in out and "mcf" in out
        assert "4 simulated" in out

    def test_sweep_warm_cache_resimulates_nothing(self, capsys, tmp_path):
        args = ["sweep", "--benchmarks", "hmmer", "--schemes", "unsafe,dom",
                "--jobs", "2", "--cache-dir", str(tmp_path),
                "--warmup", "300", "--measure", "800"]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "0 simulated" in out
        assert "2 from disk cache" in out

    def test_sweep_csv_output(self, capsys, tmp_path):
        csv_path = tmp_path / "sweep.csv"
        assert main(["sweep", "--benchmarks", "hmmer", "--schemes", "unsafe",
                     "--jobs", "1", "--warmup", "300", "--measure", "800",
                     "--csv", str(csv_path)]) == 0
        text = csv_path.read_text()
        assert text.startswith("benchmark,scheme,warmup,measure")
        assert "hmmer,unsafe" in text

    def test_sweep_unknown_benchmark_is_an_error(self, capsys):
        assert main(["sweep", "--benchmarks", "doesnotexist"]) == 1
        assert "unknown benchmark" in capsys.readouterr().err


class TestFuzz:
    FAST = ["--matrix", "schemes", "--schemes", "unsafe,dom+ap",
            "--profiles", "default", "--jobs", "1"]

    def test_clean_campaign_exits_zero(self, capsys, tmp_path):
        assert main(["fuzz", "--seeds", "1",
                     "--repro-dir", str(tmp_path)] + self.FAST) == 0
        out = capsys.readouterr().out
        assert "1 program(s)" in out
        assert "1 clean" in out

    def test_mutation_campaign_expects_findings(self, capsys, tmp_path):
        assert main(["fuzz", "--seeds", "1", "--mutation", "commit-bitflip",
                     "--no-minimize",
                     "--repro-dir", str(tmp_path)] + self.FAST) == 0
        out = capsys.readouterr().out
        assert "1 finding(s)" in out
        assert "--replay" in out  # prints the replay command

    def test_selftest_minimizes_to_single_digits(self, capsys, tmp_path):
        assert main(["fuzz", "--selftest", "--seeds", "1",
                     "--repro-dir", str(tmp_path)] + self.FAST) == 0
        out = capsys.readouterr().out
        assert "selftest OK" in out
        assert "minimized" in out

    def test_replay_repro_file(self, capsys, tmp_path):
        from pathlib import Path

        corpus = Path(__file__).parent.parent / "fuzz" / "corpus"
        entry = sorted(corpus.glob("*.json"))[0]
        assert main(["fuzz", "--replay", str(entry)]) == 0
        out = capsys.readouterr().out
        assert "stock simulator" in out

    def test_replay_missing_file_is_an_error(self, capsys, tmp_path):
        assert main(["fuzz", "--replay", str(tmp_path / "gone.json")]) == 1
        assert "cannot read" in capsys.readouterr().err

    def test_unknown_profile_is_an_error(self, capsys, tmp_path):
        assert main(["fuzz", "--seeds", "1", "--profiles", "nope",
                     "--repro-dir", str(tmp_path)]) == 1
        assert "unknown fuzz profile" in capsys.readouterr().err
