"""Tests for the composed memory hierarchy."""

import pytest

from repro.common.config import CacheConfig, MemoryConfig
from repro.common.stats import SimStats
from repro.memory.hierarchy import DRAM_LEVEL, MemoryHierarchy


def tiny_memory() -> MemoryConfig:
    return MemoryConfig(
        l1=CacheConfig("L1D", 1024, 2, latency=2, mshrs=2),
        l2=CacheConfig("L2", 4096, 4, latency=8),
        l3=CacheConfig("L3", 16384, 8, latency=20),
        dram_latency=30,
    )


@pytest.fixture
def hierarchy() -> MemoryHierarchy:
    return MemoryHierarchy(tiny_memory(), SimStats())


class TestAccessLatencies:
    def test_cold_access_goes_to_dram(self, hierarchy):
        result = hierarchy.access(0x1000, cycle=0)
        assert result.level == DRAM_LEVEL
        assert result.latency == 20 + 30  # l3 + dram
        assert not result.l1_hit

    def test_second_access_hits_l1_after_completion(self, hierarchy):
        first = hierarchy.access(0x1000, cycle=0)
        later = first.latency + 1
        second = hierarchy.access(0x1000, cycle=later)
        assert second.l1_hit
        assert second.latency == 2

    def test_l2_hit_after_l1_eviction(self, hierarchy):
        hierarchy.access(0x1000, cycle=0)
        # Evict from tiny L1 by filling its set (L1 has 8 sets, 2 ways).
        conflicting = [0x1000 + 512 * k for k in (1, 2)]
        cycle = 100
        for address in conflicting:
            cycle += hierarchy.access(address, cycle).latency + 1
        result = hierarchy.access(0x1000, cycle=cycle + 100)
        assert result.level == 2
        assert result.latency == 8

    def test_counters_accumulate(self, hierarchy):
        hierarchy.access(0x1000, cycle=0)
        stats = hierarchy.stats
        assert stats.l1_accesses == 1
        assert stats.l1_misses == 1
        assert stats.l2_accesses == 1
        assert stats.l3_accesses == 1
        assert stats.dram_accesses == 1


class TestMSHRBehaviour:
    def test_coalescing_same_line(self, hierarchy):
        first = hierarchy.access(0x1000, cycle=0)
        second = hierarchy.access(0x1008, cycle=5)  # same 64B line
        assert second.coalesced
        assert second.latency == first.latency - 5
        # The coalesced request produced no additional L2 traffic.
        assert hierarchy.stats.l2_accesses == 1

    def test_retry_when_mshrs_full(self, hierarchy):
        hierarchy.access(0x1000, cycle=0)
        hierarchy.access(0x2000, cycle=0)
        third = hierarchy.access(0x3000, cycle=0)  # 2 MSHRs only
        assert third.retry
        assert hierarchy.stats.mshr_stalls == 1

    def test_mshrs_free_after_completion(self, hierarchy):
        first = hierarchy.access(0x1000, cycle=0)
        hierarchy.access(0x2000, cycle=0)
        result = hierarchy.access(0x3000, cycle=first.latency + 1)
        assert not result.retry


class TestDoMProbe:
    def test_probe_miss_changes_nothing(self, hierarchy):
        assert not hierarchy.probe(0x1000, cycle=0)
        assert hierarchy.residency(0x1000) is None
        assert hierarchy.stats.l2_accesses == 0

    def test_probe_hit_after_fill(self, hierarchy):
        done = hierarchy.access(0x1000, cycle=0).latency + 1
        assert hierarchy.probe(0x1000, cycle=done)

    def test_probe_counts_l1_access(self, hierarchy):
        hierarchy.probe(0x1000, cycle=0)
        assert hierarchy.stats.l1_accesses == 1

    def test_probe_of_inflight_line_misses(self, hierarchy):
        hierarchy.access(0x1000, cycle=0)
        assert not hierarchy.probe(0x1000, cycle=1)

    def test_probe_does_not_update_replacement(self, hierarchy):
        """A speculative DoM hit must not refresh LRU state."""
        base = 0x0
        way2 = 512  # same L1 set as base in the tiny config
        way3 = 1024
        hierarchy.warm([base])
        hierarchy.warm([way2])
        hierarchy.probe(base, cycle=10)       # probe: no touch
        hierarchy.warm([way3])                 # forces an eviction
        # base was filled first and never *demand*-touched, so it is gone.
        assert hierarchy.l1.lookup(hierarchy.line_address(way2))
        assert not hierarchy.l1.lookup(hierarchy.line_address(base))

    def test_touch_applies_retroactive_update(self, hierarchy):
        base = 0x0
        way2 = 512
        way3 = 1024
        hierarchy.warm([base])
        hierarchy.warm([way2])
        hierarchy.touch(base, cycle=10)        # commit-time update
        hierarchy.warm([way3])
        assert hierarchy.l1.lookup(hierarchy.line_address(base))
        assert not hierarchy.l1.lookup(hierarchy.line_address(way2))


class TestObservation:
    def test_residency_reports_innermost_level(self, hierarchy):
        hierarchy.access(0x1000, cycle=0)
        assert hierarchy.residency(0x1000) == 1

    def test_invalidate_all_levels(self, hierarchy):
        hierarchy.access(0x1000, cycle=0)
        assert hierarchy.invalidate(0x1000)
        assert hierarchy.residency(0x1000) is None

    def test_warm_preloads_every_level(self, hierarchy):
        hierarchy.warm([0x5000])
        assert hierarchy.is_cached(0x5000)
        assert hierarchy.l1.lookup(hierarchy.line_address(0x5000))
        assert hierarchy.l3.lookup(hierarchy.line_address(0x5000))

    def test_flush_all(self, hierarchy):
        hierarchy.warm([0x5000])
        hierarchy.flush_all()
        assert not hierarchy.is_cached(0x5000)


class TestWrites:
    def test_write_allocates_dirty(self, hierarchy):
        hierarchy.access(0x1000, cycle=0, is_write=True)
        assert hierarchy.residency(0x1000) == 1

    def test_dirty_eviction_counts_writeback(self, hierarchy):
        hierarchy.access(0x0, cycle=0, is_write=True)
        cycle = 200
        for k in (1, 2):  # conflict in the same L1 set
            cycle += hierarchy.access(512 * k, cycle).latency + 1
        assert hierarchy.stats.writebacks >= 1
