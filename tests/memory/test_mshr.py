"""Unit tests for the MSHR file."""

import pytest

from repro.common.errors import StructuralHazardError
from repro.memory.mshr import MSHRFile


class TestAllocation:
    def test_needs_at_least_one_entry(self):
        with pytest.raises(ValueError):
            MSHRFile(0)

    def test_allocate_until_full(self):
        mshrs = MSHRFile(2)
        assert mshrs.can_allocate(cycle=0)
        mshrs.allocate(line=1, completion=100, cycle=0)
        mshrs.allocate(line=2, completion=100, cycle=0)
        assert not mshrs.can_allocate(cycle=0)

    def test_entries_expire_at_completion(self):
        mshrs = MSHRFile(1)
        mshrs.allocate(line=1, completion=10, cycle=0)
        assert not mshrs.can_allocate(cycle=9)
        assert mshrs.can_allocate(cycle=10)

    def test_overallocation_raises(self):
        mshrs = MSHRFile(1)
        mshrs.allocate(line=1, completion=10, cycle=0)
        with pytest.raises(StructuralHazardError):
            mshrs.allocate(line=2, completion=10, cycle=0)

    def test_in_flight_count(self):
        mshrs = MSHRFile(4)
        mshrs.allocate(1, 10, 0)
        mshrs.allocate(2, 20, 0)
        assert mshrs.in_flight(0) == 2
        assert mshrs.in_flight(15) == 1
        assert mshrs.in_flight(25) == 0


class TestCoalescing:
    def test_same_line_coalesces(self):
        """A second request to an outstanding line needs no new entry."""
        mshrs = MSHRFile(1)
        mshrs.allocate(line=7, completion=50, cycle=0)
        assert mshrs.outstanding_completion(7, cycle=5) == 50
        # Re-allocating the same line is permitted even when "full".
        mshrs.allocate(line=7, completion=60, cycle=5)
        assert mshrs.outstanding_completion(7, cycle=5) == 50  # keeps earliest

    def test_completed_line_no_longer_outstanding(self):
        mshrs = MSHRFile(1)
        mshrs.allocate(line=7, completion=10, cycle=0)
        assert mshrs.outstanding_completion(7, cycle=10) is None

    def test_reset_clears_everything(self):
        mshrs = MSHRFile(1)
        mshrs.allocate(1, 100, 0)
        mshrs.reset()
        assert mshrs.can_allocate(0)
        assert mshrs.outstanding_completion(1, 0) is None
