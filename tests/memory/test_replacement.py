"""Tests for replacement policies."""

import pytest

from repro.memory.replacement import (
    FIFOPolicy,
    LRUPolicy,
    RandomPolicy,
    make_policy,
)


class TestLRU:
    def test_picks_least_recent_touch(self):
        assert LRUPolicy().victim([5, 2, 9], [0, 0, 0]) == 1

    def test_first_way_wins_ties(self):
        assert LRUPolicy().victim([3, 3, 3], [0, 0, 0]) == 0


class TestFIFO:
    def test_picks_oldest_fill(self):
        assert FIFOPolicy().victim([9, 9, 9], [4, 1, 7]) == 1


class TestRandom:
    def test_deterministic_with_seed(self):
        a = RandomPolicy(seed=7)
        b = RandomPolicy(seed=7)
        picks_a = [a.victim([0] * 8, [0] * 8) for _ in range(20)]
        picks_b = [b.victim([0] * 8, [0] * 8) for _ in range(20)]
        assert picks_a == picks_b

    def test_within_bounds(self):
        policy = RandomPolicy(seed=1)
        assert all(0 <= policy.victim([0] * 4, [0] * 4) < 4 for _ in range(50))


class TestFactory:
    def test_known_policies(self):
        assert isinstance(make_policy("lru"), LRUPolicy)
        assert isinstance(make_policy("FIFO"), FIFOPolicy)
        assert isinstance(make_policy("random", seed=3), RandomPolicy)

    def test_unknown_policy(self):
        with pytest.raises(ValueError, match="unknown replacement"):
            make_policy("plru")
