"""Property-based tests for the memory subsystem (hypothesis).

Each test drives a component with a random operation stream and checks
invariants against either an independent reference model or internal
consistency rules.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import CacheConfig, MemoryConfig
from repro.common.stats import SimStats
from repro.memory.cache import CacheLevel
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.mshr import MSHRFile

# Small geometries so collisions/evictions happen constantly.
LINES = st.integers(min_value=0, max_value=63)


def tiny_cache() -> CacheLevel:
    return CacheLevel(CacheConfig("T", 64 * 2 * 4, ways=2, latency=1))


class ReferenceLRUSet:
    """Independent model: per-set LRU list of at most `ways` lines."""

    def __init__(self, sets: int, ways: int):
        self.sets = [[] for _ in range(sets)]
        self.ways = ways

    def fill(self, line: int) -> None:
        bucket = self.sets[line % len(self.sets)]
        if line in bucket:
            bucket.remove(line)
        elif len(bucket) == self.ways:
            bucket.pop(0)  # evict LRU
        bucket.append(line)

    def touch(self, line: int) -> None:
        bucket = self.sets[line % len(self.sets)]
        if line in bucket:
            bucket.remove(line)
            bucket.append(line)

    def contains(self, line: int) -> bool:
        return line in self.sets[line % len(self.sets)]


class TestCacheAgainstReference:
    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.tuples(st.sampled_from(["fill", "access", "lookup", "invalidate"]), LINES),
            min_size=1,
            max_size=120,
        )
    )
    def test_matches_reference_lru(self, operations):
        cache = tiny_cache()
        reference = ReferenceLRUSet(cache.num_sets, cache.ways)
        cycle = 0
        for op, line in operations:
            cycle += 1
            if op == "fill":
                cache.fill(line, cycle)
                reference.fill(line)
            elif op == "access":
                hit = cache.access(line, cycle)
                assert hit == reference.contains(line)
                reference.touch(line)
            elif op == "lookup":
                assert cache.lookup(line) == reference.contains(line)
            else:
                cache.invalidate(line)
                bucket = reference.sets[line % len(reference.sets)]
                if line in bucket:
                    bucket.remove(line)
            # Global invariants.
            assert cache.occupancy() <= cache.num_sets * cache.ways
            for resident in cache.resident_lines():
                assert reference.contains(resident)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(LINES, min_size=1, max_size=80))
    def test_fill_is_idempotent_for_residency(self, lines):
        cache = tiny_cache()
        for cycle, line in enumerate(lines):
            cache.fill(line, cycle)
            assert cache.lookup(line)  # most recent fill always resident


class TestMSHRProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.tuples(LINES, st.integers(min_value=1, max_value=30)),
            min_size=1,
            max_size=60,
        )
    )
    def test_capacity_never_exceeded(self, requests):
        mshrs = MSHRFile(4)
        cycle = 0
        for line, latency in requests:
            cycle += 1
            if mshrs.outstanding_completion(line, cycle) is not None:
                mshrs.allocate(line, cycle + latency, cycle)  # coalesce
            elif mshrs.can_allocate(cycle):
                mshrs.allocate(line, cycle + latency, cycle)
            assert mshrs.in_flight(cycle) <= 4

    @settings(max_examples=50, deadline=None)
    @given(LINES, st.integers(min_value=1, max_value=50))
    def test_completion_frees_entry(self, line, latency):
        mshrs = MSHRFile(1)
        mshrs.allocate(line, latency, 0)
        assert not mshrs.can_allocate(latency - 1)
        assert mshrs.can_allocate(latency)


class TestHierarchyProperties:
    def _hierarchy(self) -> MemoryHierarchy:
        return MemoryHierarchy(
            MemoryConfig(
                l1=CacheConfig("L1", 1024, 2, latency=2, mshrs=4),
                l2=CacheConfig("L2", 4096, 4, latency=8),
                l3=CacheConfig("L3", 16384, 8, latency=20),
                dram_latency=30,
            ),
            SimStats(),
        )

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.integers(min_value=0, max_value=1 << 16),
            min_size=1,
            max_size=80,
        )
    )
    def test_counter_consistency(self, addresses):
        hierarchy = self._hierarchy()
        cycle = 0
        for address in addresses:
            cycle += 100  # plenty of time: no MSHR pressure
            hierarchy.access(address, cycle)
        stats = hierarchy.stats
        assert stats.l1_accesses == len(addresses)
        assert stats.l1_hits + stats.l1_misses == stats.l1_accesses
        assert stats.l2_accesses <= stats.l1_misses
        assert stats.l3_accesses <= stats.l2_accesses
        assert stats.dram_accesses <= stats.l3_accesses

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.integers(min_value=0, max_value=1 << 14),
            min_size=1,
            max_size=60,
        )
    )
    def test_latency_monotone_in_level(self, addresses):
        hierarchy = self._hierarchy()
        cycle = 0
        for address in addresses:
            cycle += 100
            result = hierarchy.access(address, cycle)
            assert not result.retry
            if result.level == 1:
                assert result.latency == 2
            elif result.level == 2:
                assert result.latency == 8
            elif result.level == 3:
                assert result.latency == 20
            else:
                assert result.latency == 50

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.integers(min_value=0, max_value=1 << 14),
            min_size=1,
            max_size=40,
        )
    )
    def test_probe_never_changes_observable_state(self, addresses):
        hierarchy = self._hierarchy()
        cycle = 0
        for address in addresses:
            cycle += 100
            hierarchy.access(address, cycle)
        resident_before = sorted(hierarchy.l1.resident_lines())
        for address in addresses:
            cycle += 1
            hierarchy.probe(address, cycle)
        assert sorted(hierarchy.l1.resident_lines()) == resident_before
        assert hierarchy.stats.l2_accesses == hierarchy.stats.l2_accesses
