"""Tests for the per-line access-count watch (the attack observer's
fine-grained channel)."""

import pytest

from repro.common.config import MemoryConfig
from repro.common.stats import SimStats
from repro.memory.hierarchy import MemoryHierarchy


@pytest.fixture
def hierarchy():
    return MemoryHierarchy(MemoryConfig(), SimStats())


class TestWatch:
    def test_counts_accesses_to_watched_lines(self, hierarchy):
        hierarchy.watch([0x1000])
        hierarchy.access(0x1000, 0)
        hierarchy.access(0x1008, 200)   # same line
        hierarchy.access(0x2000, 400)   # different line: not counted
        counts = hierarchy.watched_counts()
        line = hierarchy.line_address(0x1000)
        assert counts == {line: 2}

    def test_unwatched_hierarchy_pays_nothing(self, hierarchy):
        hierarchy.access(0x1000, 0)
        assert hierarchy.watched_counts() == {}

    def test_probe_not_counted(self, hierarchy):
        """DoM probes are state-transparent by design: the watch (which
        models replacement perturbation) must not see them."""
        hierarchy.watch([0x1000])
        hierarchy.probe(0x1000, 0)
        line = hierarchy.line_address(0x1000)
        assert hierarchy.watched_counts()[line] == 0

    def test_writes_counted(self, hierarchy):
        hierarchy.watch([0x1000])
        hierarchy.access(0x1000, 0, is_write=True)
        line = hierarchy.line_address(0x1000)
        assert hierarchy.watched_counts()[line] == 1

    def test_watch_is_idempotent(self, hierarchy):
        hierarchy.watch([0x1000])
        hierarchy.access(0x1000, 0)
        hierarchy.watch([0x1000])  # re-watching must not reset counts
        line = hierarchy.line_address(0x1000)
        assert hierarchy.watched_counts()[line] == 1

    def test_retry_still_counts_the_attempt(self, hierarchy):
        """An MSHR-rejected access still reached the L1 (observable)."""
        hierarchy.watch([0x50000])
        # Exhaust the 16 MSHRs with distinct lines.
        for k in range(16):
            hierarchy.access(0x10000 + 4096 * k, 0)
        result = hierarchy.access(0x50000, 0)
        assert result.retry
        line = hierarchy.line_address(0x50000)
        assert hierarchy.watched_counts()[line] == 1
