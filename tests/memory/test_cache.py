"""Unit tests for the set-associative cache level."""

import pytest

from repro.common.config import CacheConfig
from repro.memory.cache import CacheLevel
from repro.memory.replacement import FIFOPolicy, LRUPolicy


def tiny_cache(ways=2, sets=4, policy=None) -> CacheLevel:
    config = CacheConfig("T", size_bytes=64 * ways * sets, ways=ways, latency=1)
    return CacheLevel(config, policy)


class TestBasicOperations:
    def test_empty_cache_misses(self):
        cache = tiny_cache()
        assert not cache.lookup(0)
        assert not cache.access(0, cycle=0)

    def test_fill_then_hit(self):
        cache = tiny_cache()
        cache.fill(5, cycle=0)
        assert cache.lookup(5)
        assert cache.access(5, cycle=1)

    def test_line_address_uses_line_size(self):
        cache = tiny_cache()
        assert cache.line_address(0) == 0
        assert cache.line_address(63) == 0
        assert cache.line_address(64) == 1

    def test_set_mapping_modulo(self):
        cache = tiny_cache(sets=4)
        assert cache.set_index(0) == cache.set_index(4)
        assert cache.set_index(1) != cache.set_index(2)

    def test_occupancy_counts_lines(self):
        cache = tiny_cache()
        cache.fill(0, 0)
        cache.fill(1, 0)
        assert cache.occupancy() == 2

    def test_flush_empties_cache(self):
        cache = tiny_cache()
        cache.fill(0, 0)
        cache.flush()
        assert cache.occupancy() == 0
        assert not cache.lookup(0)


class TestEviction:
    def test_lru_victim(self):
        cache = tiny_cache(ways=2, sets=1, policy=LRUPolicy())
        cache.fill(0, cycle=0)
        cache.fill(1, cycle=1)
        cache.access(0, cycle=2)  # 1 becomes LRU
        evicted = cache.fill(2, cycle=3)
        assert evicted == (1, False)
        assert cache.lookup(0) and cache.lookup(2) and not cache.lookup(1)

    def test_fifo_ignores_touches(self):
        cache = tiny_cache(ways=2, sets=1, policy=FIFOPolicy())
        cache.fill(0, cycle=0)
        cache.fill(1, cycle=1)
        cache.access(0, cycle=5)  # touch does not save it under FIFO
        evicted = cache.fill(2, cycle=6)
        assert evicted == (0, False)

    def test_dirty_eviction_reported(self):
        cache = tiny_cache(ways=1, sets=1)
        cache.fill(0, cycle=0, is_write=True)
        evicted = cache.fill(1, cycle=1)
        assert evicted == (0, True)

    def test_refill_same_line_no_eviction(self):
        cache = tiny_cache(ways=1, sets=1)
        cache.fill(0, cycle=0)
        assert cache.fill(0, cycle=1) is None

    def test_invalid_way_used_before_eviction(self):
        cache = tiny_cache(ways=2, sets=1)
        cache.fill(0, cycle=0)
        assert cache.fill(4, cycle=1) is None  # second way free
        assert cache.occupancy() == 2


class TestDoMSupport:
    def test_lookup_does_not_touch_replacement(self):
        """A DoM probe must not change which line is the LRU victim."""
        cache = tiny_cache(ways=2, sets=1, policy=LRUPolicy())
        cache.fill(0, cycle=0)
        cache.fill(1, cycle=1)
        cache.lookup(0)  # probe — must NOT refresh line 0
        evicted = cache.fill(2, cycle=2)
        assert evicted is not None and evicted[0] == 0

    def test_retroactive_touch_updates_replacement(self):
        """DoM's delayed replacement update: touch at commit."""
        cache = tiny_cache(ways=2, sets=1, policy=LRUPolicy())
        cache.fill(0, cycle=0)
        cache.fill(1, cycle=1)
        assert cache.touch(0, cycle=2)  # commit-time update
        evicted = cache.fill(2, cycle=3)
        assert evicted is not None and evicted[0] == 1

    def test_touch_of_evicted_line_returns_false(self):
        cache = tiny_cache(ways=1, sets=1)
        cache.fill(0, cycle=0)
        cache.fill(1, cycle=1)  # evicts 0
        assert not cache.touch(0, cycle=2)


class TestInvalidation:
    def test_invalidate_removes_line(self):
        cache = tiny_cache()
        cache.fill(3, cycle=0)
        assert cache.invalidate(3)
        assert not cache.lookup(3)

    def test_invalidate_missing_line(self):
        assert not tiny_cache().invalidate(3)

    def test_invalidated_way_reusable(self):
        cache = tiny_cache(ways=1, sets=1)
        cache.fill(0, cycle=0)
        cache.invalidate(0)
        assert cache.fill(1, cycle=1) is None  # no eviction needed

    def test_resident_lines_listing(self):
        cache = tiny_cache()
        cache.fill(1, 0)
        cache.fill(2, 0)
        assert sorted(cache.resident_lines()) == [1, 2]
