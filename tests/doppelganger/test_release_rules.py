"""Release-rule timing per scheme (paper §5.2/§5.3, Figure 5 item F).

A verified-correct doppelganger's value must become consumable at exactly
the scheme's release point: STT at verification, NDA-P at the later of
verification and non-speculation, DoM at verification for L1 hits but at
non-speculation for misses.  These tests observe the release points
directly by stepping the core.
"""

import pytest

from repro.isa.builder import CodeBuilder
from repro.pipeline.core import Core
from repro.pipeline.uop import UopState
from repro.schemes import make_scheme


def covered_load_under_shadow(miss: bool):
    """Train a stride-0 load, then issue one instance under a slow branch.

    Returns (program, trained_address): the final instance's doppelganger
    will be issued while the outer branch keeps it speculative.
    """
    address = 0xA0000
    b = CodeBuilder()
    b.set_memory(address, 321)
    # Training loop: commits the load PC with a stable address.
    b.li(1, 30)
    b.li(2, 0)
    b.li(10, address)
    b.label("train")
    b.load(4, 10)
    b.addi(2, 2, 1)
    b.blt(2, 1, "train")
    # Evict the line if the probe phase wants a miss: the kernel can't
    # flush, so the harness flushes between phases via a marker store.
    b.li(6, 0)
    for _ in range(18):
        b.mul(6, 6, 6)            # slow predicate, value stays 0
    b.bne(6, 0, "skip")           # not taken; resolves late -> shadow
    b.load(5, 10)                 # the measured, dl-covered instance
    b.addi(7, 5, 1)               # dependent
    b.label("skip")
    b.store(7, 0, disp=8)
    b.halt()
    return b.build(name="release_probe"), address


def run_and_watch(scheme_name: str, miss: bool):
    """Step the core, recording per-candidate release/non-speculation
    cycles, then report them for the dl-covered load that *committed*
    (wrong-path instances also issue doppelgangers and get squashed)."""
    program, address = covered_load_under_shadow(miss)
    core = Core(program, make_scheme(scheme_name))
    release_cycles = {}
    nonspec_cycles = {}
    candidates = {}
    for _ in range(6000):
        if core.halted:
            break
        # Flush the trained line right before the measured phase when a
        # miss is wanted (the attacker-style clflush).
        if miss and core.stats.committed_loads == 30 and core.hierarchy.is_cached(address):
            core.hierarchy.invalidate(address)
        core.step()
        for uop in core.rob:
            if uop.inst.is_load and uop.dl_issued and not uop.squashed:
                candidates[uop.seq] = uop
                if uop.completed and uop.seq not in release_cycles:
                    release_cycles[uop.seq] = core.cycle
                if (
                    core.shadows.is_nonspeculative(uop.seq)
                    and uop.seq not in nonspec_cycles
                ):
                    nonspec_cycles[uop.seq] = core.cycle
    committed = [u for u in candidates.values() if u.committed]
    target = max(committed, key=lambda u: u.seq) if committed else None
    if target is None:
        return core, None, None, None
    seq = target.seq
    release = release_cycles.get(seq)
    nonspec = nonspec_cycles.get(seq)
    # completed_under_shadow: the value became consumable while the load
    # was still speculative — robust against idle-cycle skipping because
    # both facts are sampled in the same observation.
    completed_under_shadow = release is not None and (
        nonspec is None or release < nonspec
    )
    return core, target, release, (nonspec, completed_under_shadow)


class TestReleasePoints:
    def test_stt_releases_before_nonspeculative(self):
        core, target, release, (nonspec, under_shadow) = run_and_watch(
            "stt+ap", miss=True
        )
        assert target is not None and target.dl_correct
        assert release is not None
        assert under_shadow, "STT+AP must release at verification"

    def test_nda_value_not_readable_until_nonspec(self):
        """NDA may complete the preload early, but the value stays locked
        (value_block_seq) while the load is speculative."""
        from repro.schemes.base import READY

        program, address = covered_load_under_shadow(miss=False)
        core = Core(program, make_scheme("nda+ap"))
        observed_locked = False
        for _ in range(6000):
            if core.halted:
                break
            core.step()
            for uop in core.rob:
                if (
                    uop.inst.is_load
                    and uop.dl_issued
                    and uop.completed
                    and core.shadows.is_speculative(uop.seq)
                ):
                    assert core.scheme.value_block_seq(uop) != READY
                    observed_locked = True
        assert observed_locked

    def test_dom_miss_release_waits_for_nonspec(self):
        core, target, release, (nonspec, under_shadow) = run_and_watch(
            "dom+ap", miss=True
        )
        assert target is not None
        if target.dl_correct and not target.dl_l1_hit and release is not None:
            assert not under_shadow, "DoM+AP miss released while speculative"

    def test_dom_hit_releases_at_verification(self):
        core, target, release, (nonspec, under_shadow) = run_and_watch(
            "dom+ap", miss=False
        )
        assert target is not None and target.dl_correct and target.dl_l1_hit
        assert release is not None
        # An L1-hit doppelganger releases on verification, which happens
        # while the outer branch is still unresolved.
        assert under_shadow

    @pytest.mark.parametrize("scheme", ["nda+ap", "stt+ap", "dom+ap"])
    @pytest.mark.parametrize("miss", [False, True])
    def test_architectural_result(self, scheme, miss):
        core, _, _, _ = run_and_watch(scheme, miss)
        assert core.halted
        assert core.arch.read_mem(8) == 322
