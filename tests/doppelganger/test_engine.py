"""Doppelganger engine behaviour: prediction, issue, verification,
release rules, and the commit-only training invariant."""

import pytest

from repro.common.config import PredictorConfig, SystemConfig
from repro.isa.builder import CodeBuilder
from repro.pipeline.core import Core
from repro.schemes import make_scheme

from tests.conftest import ALL_SCHEME_NAMES


def strided_loop(n=400, base=0x20000, stride=8, miss_stride=False):
    """A simple strided load loop; every load is stride-predictable."""
    b = CodeBuilder()
    step = 64 if miss_stride else stride
    for i in range(n + 8):
        b.set_memory(base + step * i, i)
    b.li(1, n)
    b.li(2, 0)
    b.li(3, 0)
    b.li(10, base)
    b.label("loop")
    b.muli(4, 2, step)
    b.add(5, 10, 4)
    b.load(6, 5)
    b.add(3, 3, 6)
    b.addi(2, 2, 1)
    b.blt(2, 1, "loop")
    b.store(3, 0, disp=8)
    b.halt()
    return b.build(name="strided_loop")


class TestPredictionAndIssue:
    def test_predictions_made_for_strided_loads(self):
        core = Core(strided_loop(), make_scheme("dom+ap"))
        core.run()
        assert core.stats.dl_predictions > 100
        assert core.stats.dl_issued > 100

    def test_high_coverage_and_accuracy_on_strided_code(self):
        core = Core(strided_loop(), make_scheme("dom+ap"))
        stats = core.run()
        assert stats.coverage > 0.8
        assert stats.accuracy > 0.9

    def test_no_engine_without_ap(self):
        core = Core(strided_loop(), make_scheme("dom"))
        core.run()
        assert core.engine is None
        assert core.stats.dl_predictions == 0

    def test_architectural_result_unchanged_by_ap(self):
        program = strided_loop()
        reference = program.interpret().state.read_mem(8)
        for scheme in ALL_SCHEME_NAMES:
            core = Core(program, make_scheme(scheme))
            core.run()
            assert core.arch.read_mem(8) == reference, scheme

    def test_verified_correct_loads_counted_at_commit(self):
        core = Core(strided_loop(), make_scheme("stt+ap"))
        stats = core.run()
        assert stats.dl_correct_commits > 0
        assert stats.dl_correct_commits <= stats.dl_covered_commits
        assert stats.dl_covered_commits <= stats.committed_loads


class TestMispredictionHandling:
    def _pointer_chase(self, shuffled=True):
        from repro.workloads.kernels import pointer_chase_kernel

        return pointer_chase_kernel(
            iterations=600,
            nodes=1 << 10,
            sequential_fraction=0.0 if shuffled else 1.0,
            seed=3,
        )

    def test_unpredictable_loads_produce_wrong_predictions(self):
        core = Core(self._pointer_chase(shuffled=True), make_scheme("stt+ap"))
        stats = core.run()
        # Pointer chase over a shuffled list: predictions mostly wrong or
        # absent, never crashing and never corrupting state.
        assert stats.dl_wrong >= 0
        assert stats.accuracy < 0.5

    def test_mispredicted_load_still_correct(self):
        program = self._pointer_chase(shuffled=True)
        reference = program.interpret().state.read_mem(8)
        for scheme in ("nda+ap", "stt+ap", "dom+ap"):
            core = Core(program, make_scheme(scheme))
            core.run()
            assert core.arch.read_mem(8) == reference, scheme

    def test_no_squash_on_misprediction(self):
        """§5.1: a wrong doppelganger discards the preload — it never
        squashes instructions (unlike value misprediction)."""
        program = self._pointer_chase(shuffled=True)
        plain = Core(program, make_scheme("stt"))
        plain.run()
        with_ap = Core(program, make_scheme("stt+ap"))
        with_ap.run()
        # Squashes come only from branch/memory mispredictions, which are
        # identical with and without AP (same committed path).
        assert abs(
            with_ap.stats.branch_mispredictions - plain.stats.branch_mispredictions
        ) <= plain.stats.branch_mispredictions * 0.2 + 8


class TestCommitOnlyTraining:
    def test_squashed_loads_never_train_the_table(self):
        """The security-critical invariant: wrong-path loads must not
        reach the stride table.  Train on a program whose wrong paths
        load from a poison address repeatedly; the poison PC must have no
        table entry afterwards."""
        b = CodeBuilder()
        b.set_memory(0x30000, 1)
        b.li(1, 200)
        b.li(2, 0)
        b.li(10, 0x7000)
        b.label("loop")
        b.addi(2, 2, 1)
        # Taken branch; the fall-through (wrong path when predicted
        # not-taken early on) contains the poison load.
        b.beq(2, 2, "over")
        poison_pc = b.here
        b.load(9, 10)               # only ever on the wrong path
        b.label("over")
        b.blt(2, 1, "loop")
        b.halt()
        program = b.build()
        core = Core(program, make_scheme("dom+ap"))
        core.run()
        assert core.stats.squashed_instructions > 0
        assert core.stride.entry_for(poison_pc) is None

    def test_trainings_match_committed_loads(self):
        core = Core(strided_loop(), make_scheme("unsafe+ap"))
        stats = core.run()
        assert core.stride.trainings == stats.committed_loads


class TestReleaseRules:
    def test_dom_ap_miss_released_at_nonspec(self):
        """DoM+AP: a correct doppelganger that missed in the L1 must not
        complete before the load's visibility point."""
        core = Core(strided_loop(miss_stride=True), make_scheme("dom+ap"))
        stats = core.run()
        assert stats.dl_released_early > 0
        # Architectural equivalence is covered elsewhere; here we check
        # the release machinery actually ran through the nonspec path.
        assert stats.dl_correct > 0

    def test_multi_instance_aging_improves_accuracy(self):
        base_cfg = SystemConfig()
        naive_cfg = SystemConfig(
            predictor=PredictorConfig(multi_instance_aging=False)
        )
        program = strided_loop(miss_stride=True)
        aged = Core(program, make_scheme("stt+ap"), config=base_cfg)
        aged_stats = aged.run()
        naive = Core(program, make_scheme("stt+ap"), config=naive_cfg)
        naive_stats = naive.run()
        assert aged_stats.accuracy >= naive_stats.accuracy
