"""§4.5: Doppelganger Loads and memory consistency (LQ invalidations).

An external invalidation snoops the load queue.  A doppelganger's
*predicted* address can match, but the doppelganger itself is never
squashed — the note takes effect when the preloaded value would
propagate: the preload is discarded and the real access re-issues,
observing post-invalidation memory.
"""

import pytest

from repro.isa.builder import CodeBuilder
from repro.pipeline.core import Core
from repro.schemes import make_scheme


def trained_load_program(rounds=60, base=0x50000):
    """A stride-0 load loop: after a few commits the predictor covers the
    load with a stable (same-address) prediction."""
    b = CodeBuilder()
    b.set_memory(base, 1111)
    b.li(1, rounds)
    b.li(2, 0)
    b.li(3, 0)
    b.li(10, base)
    b.label("loop")
    b.load(4, 10)
    b.add(3, 3, 4)
    b.addi(2, 2, 1)
    b.blt(2, 1, "loop")
    b.store(3, 0, disp=8)
    b.halt()
    return b.build(name="trained_load"), base


class TestDoppelgangerInvalidation:
    def _run_to_inflight_dl(self, scheme="stt+ap"):
        program, base = trained_load_program()
        core = Core(program, make_scheme(scheme))
        target = None
        for _ in range(3000):
            if core.halted:
                break
            core.step()
            for load in core.lq:
                if load.dl_issued and not load.dl_verified and not load.squashed:
                    target = load
                    break
            if target is not None:
                break
        return core, target, base

    def test_invalidation_notes_matching_prediction(self):
        core, load, base = self._run_to_inflight_dl()
        if load is None:
            pytest.skip("no in-flight doppelganger captured (timing)")
        core.inject_invalidation(base)
        assert load.dl_invalidated
        assert not load.squashed  # §4.5: the doppelganger is not squashed
        assert core.stats.lq_invalidation_matches >= 1

    def test_invalidation_of_other_line_ignored(self):
        core, load, base = self._run_to_inflight_dl()
        if load is None:
            pytest.skip("no in-flight doppelganger captured (timing)")
        core.inject_invalidation(base + 0x10000)
        assert not load.dl_invalidated

    def test_invalidated_preload_discarded_and_reissued(self):
        """After the note, the load must observe *current* memory at its
        re-issue, not the stale preloaded value."""
        core, load, base = self._run_to_inflight_dl()
        if load is None:
            pytest.skip("no in-flight doppelganger captured (timing)")
        # Another core writes the line: invalidate + update the backing
        # memory image (what the directory would supply on re-fetch).
        core.inject_invalidation(base)
        core.arch.write_mem(base, 2222)
        core.run()
        assert core.halted
        # Every load that committed after the invalidation read 2222; the
        # checksum proves no stale 1111 leaked through a noted preload.
        # (loads before the invalidation legitimately read 1111)
        checksum = core.arch.read_mem(8)
        assert checksum % 1111 != 0 or checksum == 0 or True  # sanity only
        # The strong property: the noted load itself did not use the preload.
        assert load.squashed or load.result in (1111, 2222)
        if load.committed:
            assert not load.dl_used

    def test_architectural_state_consistent_after_invalidation(self):
        program, base = trained_load_program(rounds=40)
        core = Core(program, make_scheme("dom+ap"))
        for _ in range(120):
            core.step()
        core.inject_invalidation(base)
        core.run()
        assert core.halted
        # All rounds read the unchanged value: checksum exact.
        assert core.arch.read_mem(8) == 40 * 1111


class TestEagerReissueVariant:
    """§5.3's second rule: a mispredicted doppelganger's real load must
    wait for non-speculation under DoM.  The insecure variant re-issues
    eagerly; its extra speculative miss is a visible, secret-dependent
    event."""

    def _gadget(self, secret):
        """Transient load whose *real* address depends on a secret while
        its doppelganger was trained elsewhere."""
        b = CodeBuilder()
        TRAIN = 0x60000
        LEAK0 = 0x70000
        LEAK1 = 0x78000
        b.set_memory(0x100, secret)
        for i in range(70):
            b.set_memory(TRAIN + 8 * i, TRAIN + 8 * (i + 1))
        b.li(1, 64)
        b.li(2, 0)
        b.li(10, TRAIN)
        b.li(11, LEAK0)
        b.li(12, LEAK1 - LEAK0)
        b.label("loop")
        b.muli(13, 2, 8)
        b.add(13, 10, 13)
        b.load(4, 13)                 # trained, predictable load
        b.addi(2, 2, 1)
        b.blt(2, 1, "loop")
        # Attack: under a slow *mispredicted* branch (taken, but cold
        # predictors guess not-taken), transiently load from a
        # secret-dependent address.
        b.load(5, 0, disp=0x100)      # the secret (L1-warm)
        b.li(6, 0)
        for _ in range(14):
            b.mul(6, 6, 6)            # slow chain; value stays 0
        b.beq(6, 0, "skip")           # actually taken; predicted not-taken
        b.mul(7, 5, 12)               # secret * 0x8000
        b.add(7, 11, 7)               # LEAK0 or LEAK1
        b.load(8, 7)                  # transient, secret-addressed load
        b.label("skip")
        b.halt()
        return b.build(name="eager_reissue_gadget"), (LEAK0, LEAK1)

    def test_secure_dom_ap_blocks_eager_reissue_channel(self):
        from repro.attacks.harness import attack_config

        residency = {}
        for secret in (0, 1):
            program, (leak0, leak1) = self._gadget(secret)
            core = Core(program, make_scheme("dom+ap"), config=attack_config())
            core.hierarchy.warm([0x100])
            core.run()
            residency[secret] = (
                core.hierarchy.is_cached(leak0),
                core.hierarchy.is_cached(leak1),
            )
        assert residency[0] == residency[1], "DoM+AP leaked via reissue"

    def test_insecure_eager_reissue_variant_exists_and_runs(self):
        from repro.attacks.variants import InsecureDoMAPEagerMispredictReissue
        from repro.attacks.harness import attack_config

        program, _ = self._gadget(1)
        scheme = InsecureDoMAPEagerMispredictReissue(address_prediction=True)
        core = Core(program, scheme, config=attack_config())
        core.hierarchy.warm([0x100])
        core.run()
        assert core.halted
