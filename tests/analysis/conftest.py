"""Shared fixture machinery for reprolint tests.

``lint_fixture`` writes a source string to a ``repro/...``-shaped path
under a temp directory (so the module-name resolver maps it into the
package namespace the rules gate on) and runs a configured
:class:`~repro.analysis.engine.LintRunner` over just that file.
"""

import textwrap

import pytest

from repro.analysis.engine import LintRunner


@pytest.fixture
def lint_fixture(tmp_path):
    def _lint(relpath, source, select=(), ignore=(), baseline=None):
        file = tmp_path / relpath
        file.parent.mkdir(parents=True, exist_ok=True)
        file.write_text(textwrap.dedent(source))
        runner = LintRunner(select=select, ignore=ignore, baseline=baseline)
        return runner.run([str(file)])

    return _lint


def rule_ids(report):
    return [finding.rule for finding in report.findings]
