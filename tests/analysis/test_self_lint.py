"""Self-hosting: the shipped tree must lint clean against its baseline,
and the fingerprint rule must stay *live* on the real config module —
deleting either side of the exclusion agreement has to fire RPL201."""

from pathlib import Path

import pytest

import repro
from repro.analysis.baseline import PACKAGED_BASELINE, Baseline
from repro.analysis.engine import LintRunner
from repro.common.config import FINGERPRINT_EXCLUDED_FIELDS

PACKAGE_DIR = Path(repro.__file__).resolve().parent
CONFIG_SOURCE = (PACKAGE_DIR / "common" / "config.py").read_text()


class TestSelfLint:
    def test_tree_is_clean_against_checked_in_baseline(self):
        baseline = Baseline.load(PACKAGED_BASELINE)
        report = LintRunner(baseline=baseline).run([str(PACKAGE_DIR)])
        assert report.ok, "\n".join(f.render() for f in report.findings)
        # The baseline must not rot either: every entry still matches.
        assert report.stale_baseline == [], [
            entry.message for entry in report.stale_baseline
        ]

    def test_every_baseline_entry_is_justified(self):
        baseline = Baseline.load(PACKAGED_BASELINE)
        for entry in baseline.entries:
            assert entry.justification, f"unjustified baseline entry: {entry}"
            assert "TODO" not in entry.justification, (
                f"placeholder justification: {entry}"
            )


def _lint_modified_config(tmp_path, transform):
    """Lint a copy of the real config module after ``transform``(source)."""
    modified = transform(CONFIG_SOURCE)
    assert modified != CONFIG_SOURCE, "transform must change the source"
    target = tmp_path / "repro" / "common" / "config.py"
    target.parent.mkdir(parents=True)
    target.write_text(modified)
    return LintRunner(select=["RPL201"]).run([str(target)])


class TestFingerprintRuleLiveness:
    def test_real_config_is_clean(self, tmp_path):
        report = LintRunner(select=["RPL201"]).run(
            [str(PACKAGE_DIR / "common" / "config.py")]
        )
        assert report.ok

    @pytest.mark.parametrize("field", sorted(FINGERPRINT_EXCLUDED_FIELDS))
    def test_deleting_an_exclusion_entry_fires(self, tmp_path, field):
        def drop_entry(source):
            lines = source.splitlines(keepends=True)
            for index, line in enumerate(lines):
                if line.startswith("FINGERPRINT_EXCLUDED_FIELDS"):
                    lines[index] = line.replace(f'"{field}"', '"__deleted__"')
                    break
            return "".join(lines)

        report = _lint_modified_config(tmp_path, drop_entry)
        assert not report.ok
        assert any(field in f.message for f in report.findings)

    def test_deleting_the_constant_fires(self, tmp_path):
        def drop_constant(source):
            return source.replace(
                "FINGERPRINT_EXCLUDED_FIELDS = ",
                "_RENAMED_AWAY = ",
                1,
            )

        report = _lint_modified_config(tmp_path, drop_constant)
        assert not report.ok

    def test_adding_an_unsanctioned_pop_fires(self, tmp_path):
        def add_pop(source):
            return source.replace(
                'payload.pop("guardrails", None)',
                'payload.pop("guardrails", None)\n'
                '    payload.pop("max_cycles", None)',
                1,
            )

        report = _lint_modified_config(tmp_path, add_pop)
        assert not report.ok
        assert any("max_cycles" in f.message for f in report.findings)
