"""RPL701: hot-path discipline (per-call allocations, repeated chains)."""

from tests.analysis.conftest import rule_ids

SELECT = ("RPL701",)


class TestFires:
    def test_dict_display_in_hot_function(self, lint_fixture):
        report = lint_fixture(
            "repro/pipeline/demo.py",
            """
            class Core:
                # repro: hot
                def _dispatch(self, now):
                    table = {1: "a", 2: "b"}
                    return table.get(now)
            """,
            select=SELECT,
        )
        assert rule_ids(report) == ["RPL701"]
        assert "dict display" in report.findings[0].message
        assert "_dispatch" in report.findings[0].message

    def test_marker_on_def_line(self, lint_fixture):
        report = lint_fixture(
            "repro/pipeline/demo.py",
            """
            def step(core):  # repro: hot
                return {x for x in core.rob}
            """,
            select=SELECT,
        )
        assert rule_ids(report) == ["RPL701"]
        assert "set comprehension" in report.findings[0].message

    def test_list_comprehension(self, lint_fixture):
        report = lint_fixture(
            "repro/pipeline/demo.py",
            """
            class Core:
                # repro: hot
                def _commit(self, now):
                    return [u for u in self.rob if u.state == 2]
            """,
            select=SELECT,
        )
        assert rule_ids(report) == ["RPL701"]

    def test_repeated_self_chain(self, lint_fixture):
        report = lint_fixture(
            "repro/memory/demo.py",
            """
            class Hierarchy:
                # repro: hot
                def access(self, address, cycle):
                    if self.mshrs.outstanding:
                        return None
                    return self.mshrs.outstanding.get(address)
            """,
            select=SELECT,
        )
        # 'self.mshrs.outstanding' twice (the second read is the inner
        # segment of a 3-deep chain, still a repeat of the full 2-deep
        # path? no — full chains differ) ... the two *full* chains here
        # are 'self.mshrs.outstanding' and 'self.mshrs.outstanding.get':
        # distinct, so this specific shape is clean.  Make it repeat:
        assert rule_ids(report) == []
        report = lint_fixture(
            "repro/memory/demo.py",
            """
            class Hierarchy:
                # repro: hot
                def access(self, address, cycle):
                    a = self.l1.line_address(address)
                    b = self.l1.line_address(cycle)
                    return a, b
            """,
            select=SELECT,
        )
        assert rule_ids(report) == ["RPL701"]
        assert "self.l1.line_address" in report.findings[0].message
        assert "2 times" in report.findings[0].message

    def test_noqa_suppresses(self, lint_fixture):
        report = lint_fixture(
            "repro/pipeline/demo.py",
            """
            class Core:
                # repro: hot
                def _dispatch(self, now):
                    return {1: "a"}  # repro: noqa[RPL701] - per-call by design
            """,
            select=SELECT,
        )
        assert rule_ids(report) == []


class TestClean:
    def test_unmarked_function_never_checked(self, lint_fixture):
        report = lint_fixture(
            "repro/pipeline/demo.py",
            """
            class Core:
                def _slow_path(self, now):
                    table = {1: "a"}
                    return self.hierarchy.mshrs, self.hierarchy.mshrs, table
            """,
            select=SELECT,
        )
        assert rule_ids(report) == []

    def test_distinct_chains_clean(self, lint_fixture):
        report = lint_fixture(
            "repro/memory/demo.py",
            """
            class Hierarchy:
                # repro: hot
                def access(self, address, cycle):
                    line = self.l1.line_address(address)
                    return self.l1.access(line, cycle)
            """,
            select=SELECT,
        )
        assert rule_ids(report) == []

    def test_single_attribute_reads_clean(self, lint_fixture):
        report = lint_fixture(
            "repro/pipeline/demo.py",
            """
            class Core:
                # repro: hot
                def _issue(self, now):
                    ready = self.ready
                    rob = self.rob
                    return ready, rob, self.ready
            """,
            select=SELECT,
        )
        assert rule_ids(report) == []

    def test_list_display_and_hoisted_locals_clean(self, lint_fixture):
        report = lint_fixture(
            "repro/pipeline/demo.py",
            """
            class Core:
                # repro: hot
                def _next_cycle(self, now):
                    candidates = []
                    mshrs = self.hierarchy.mshrs
                    candidates.append(mshrs.next_free(now))
                    return candidates
            """,
            select=SELECT,
        )
        assert rule_ids(report) == []

    def test_nested_function_scope_excluded(self, lint_fixture):
        report = lint_fixture(
            "repro/harness/demo.py",
            """
            class Profiler:
                # repro: hot
                def wrap(self, name):
                    def timed(core):
                        return {n: 0.0 for n in core.stages}
                    return timed
            """,
            select=SELECT,
        )
        assert rule_ids(report) == []

    def test_writes_through_chain_clean(self, lint_fixture):
        report = lint_fixture(
            "repro/pipeline/demo.py",
            """
            class Core:
                # repro: hot
                def _trip(self, now):
                    self.stats.cycles = now
                    self.stats.cycles += 1
            """,
            select=SELECT,
        )
        assert rule_ids(report) == []
