"""``repro lint`` CLI contract: exit codes, formats, rule selection."""

import json

from repro.cli import main


def _write(tmp_path, relpath, source):
    file = tmp_path / relpath
    file.parent.mkdir(parents=True, exist_ok=True)
    file.write_text(source)
    return file


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        file = _write(tmp_path, "repro/pipeline/ok.py", "X = 1\n")
        assert main(["lint", str(file), "--no-baseline"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        file = _write(tmp_path, "repro/pipeline/bad.py", "import random\n")
        assert main(["lint", str(file), "--no-baseline"]) == 1
        assert "RPL101" in capsys.readouterr().out

    def test_unknown_rule_id_exits_two(self, tmp_path, capsys):
        file = _write(tmp_path, "repro/pipeline/ok.py", "X = 1\n")
        assert main(["lint", str(file), "--select", "RPL999"]) == 2
        assert "unknown rule id" in capsys.readouterr().err

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert main(["lint", str(tmp_path / "nope.py")]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_missing_baseline_file_exits_two(self, tmp_path, capsys):
        file = _write(tmp_path, "repro/pipeline/ok.py", "X = 1\n")
        code = main(
            ["lint", str(file), "--baseline", str(tmp_path / "nope.json")]
        )
        assert code == 2

    def test_syntax_error_in_target_exits_two(self, tmp_path, capsys):
        file = _write(tmp_path, "repro/pipeline/broken.py", "def f(:\n")
        assert main(["lint", str(file), "--no-baseline"]) == 2
        assert "syntax error" in capsys.readouterr().err


class TestSelectionAndFormats:
    def test_ignore_silences_a_rule(self, tmp_path):
        file = _write(tmp_path, "repro/pipeline/bad.py", "import random\n")
        assert main(["lint", str(file), "--ignore", "RPL101"]) == 0

    def test_select_runs_only_named_rules(self, tmp_path, capsys):
        file = _write(tmp_path, "repro/pipeline/bad.py", "import random\n")
        assert main(["lint", str(file), "--select", "RPL601"]) == 0

    def test_json_format_is_parseable(self, tmp_path, capsys):
        file = _write(tmp_path, "repro/pipeline/bad.py", "import random\n")
        assert main(["lint", str(file), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert payload["findings"][0]["rule"] == "RPL101"

    def test_list_rules_names_every_rule(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in (
            "RPL101",
            "RPL102",
            "RPL103",
            "RPL201",
            "RPL301",
            "RPL401",
            "RPL501",
            "RPL502",
            "RPL601",
            "RPL602",
        ):
            assert rule_id in out

    def test_update_baseline_round_trips_via_cli(self, tmp_path, capsys):
        file = _write(tmp_path, "repro/pipeline/bad.py", "import random\n")
        baseline = tmp_path / "baseline.json"
        assert (
            main(
                [
                    "lint",
                    str(file),
                    "--baseline",
                    str(baseline),
                    "--update-baseline",
                ]
            )
            == 0
        )
        assert baseline.exists()
        assert main(["lint", str(file), "--baseline", str(baseline)]) == 0


class TestDefaultTarget:
    def test_no_paths_lints_installed_package_cleanly(self, capsys):
        # The packaged baseline covers the deliberate keeps, so the
        # default invocation is the CI gate and must exit 0.
        assert main(["lint"]) == 0
