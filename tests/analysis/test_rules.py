"""Per-rule firing and non-firing fixtures.

Every rule id has at least one fixture that fires it and one that stays
clean, so a rule that silently stops matching (or starts over-matching)
fails here rather than in review.
"""

from tests.analysis.conftest import rule_ids


class TestRPL101NondeterministicCall:
    def test_fires_on_random_import_in_simulator_scope(self, lint_fixture):
        report = lint_fixture(
            "repro/pipeline/clock.py",
            "import random\n",
            select=["RPL101"],
        )
        assert rule_ids(report) == ["RPL101"]

    def test_fires_on_wall_clock_call(self, lint_fixture):
        report = lint_fixture(
            "repro/memory/timing.py",
            """
            import time as _t

            def now():
                return _t.time()
            """,
            select=["RPL101"],
        )
        # One finding for the import, one for the call.
        assert rule_ids(report) == ["RPL101", "RPL101"]

    def test_clean_outside_simulator_scope(self, lint_fixture):
        report = lint_fixture(
            "repro/harness/shuffle.py",
            "import random\n",
            select=["RPL101"],
        )
        assert report.ok

    def test_clean_simulator_module_without_nondeterminism(self, lint_fixture):
        report = lint_fixture(
            "repro/pipeline/alu.py",
            "def add(a, b):\n    return a + b\n",
            select=["RPL101"],
        )
        assert report.ok


class TestRPL102SetIteration:
    def test_fires_on_bare_set_iteration(self, lint_fixture):
        report = lint_fixture(
            "repro/pipeline/wake.py",
            """
            ready = {3, 1, 2}

            def drain():
                for seq in ready:
                    print(seq)
            """,
            select=["RPL102"],
        )
        assert rule_ids(report) == ["RPL102"]

    def test_clean_when_sorted(self, lint_fixture):
        report = lint_fixture(
            "repro/pipeline/wake.py",
            """
            ready = {3, 1, 2}

            def drain():
                for seq in sorted(ready):
                    print(seq)
            """,
            select=["RPL102"],
        )
        assert report.ok


class TestRPL103IdOrdering:
    def test_fires_on_id_call(self, lint_fixture):
        report = lint_fixture(
            "repro/doppelganger/table.py",
            """
            def key_for(uop):
                return id(uop)
            """,
            select=["RPL103"],
        )
        assert rule_ids(report) == ["RPL103"]

    def test_fires_on_sort_key_id(self, lint_fixture):
        report = lint_fixture(
            "repro/pipeline/queue.py",
            """
            def order(uops):
                return sorted(uops, key=id)
            """,
            select=["RPL103"],
        )
        assert rule_ids(report) == ["RPL103"]

    def test_clean_on_seq_ordering(self, lint_fixture):
        report = lint_fixture(
            "repro/pipeline/queue.py",
            """
            def order(uops):
                return sorted(uops, key=lambda u: u.seq)
            """,
            select=["RPL103"],
        )
        assert report.ok


class TestRPL201FingerprintCompleteness:
    def test_fires_when_exclusion_constant_missing(self, lint_fixture):
        report = lint_fixture(
            "repro/common/config.py",
            """
            from dataclasses import asdict

            def config_fingerprint(config):
                payload = asdict(config)
                payload.pop("guardrails", None)
                return str(payload)
            """,
            select=["RPL201"],
        )
        assert rule_ids(report) == ["RPL201"]
        assert "FINGERPRINT_EXCLUDED_FIELDS" in report.findings[0].message

    def test_fires_on_unsanctioned_pop(self, lint_fixture):
        report = lint_fixture(
            "repro/common/config.py",
            """
            from dataclasses import asdict

            FINGERPRINT_EXCLUDED_FIELDS = frozenset()

            def config_fingerprint(config):
                payload = asdict(config)
                payload.pop("guardrails", None)
                return str(payload)
            """,
            select=["RPL201"],
        )
        assert rule_ids(report) == ["RPL201"]
        assert "guardrails" in report.findings[0].message

    def test_fires_on_stale_exclusion_entry(self, lint_fixture):
        report = lint_fixture(
            "repro/common/config.py",
            """
            from dataclasses import asdict

            FINGERPRINT_EXCLUDED_FIELDS = frozenset({"guardrails", "ghost"})

            def config_fingerprint(config):
                payload = asdict(config)
                payload.pop("guardrails", None)
                return str(payload)
            """,
            select=["RPL201"],
        )
        assert rule_ids(report) == ["RPL201"]
        assert "ghost" in report.findings[0].message

    def test_fires_on_hand_built_payload(self, lint_fixture):
        report = lint_fixture(
            "repro/common/config.py",
            """
            FINGERPRINT_EXCLUDED_FIELDS = frozenset()

            def config_fingerprint(config):
                payload = {"core": config.core}
                return str(payload)
            """,
            select=["RPL201"],
        )
        assert rule_ids(report) == ["RPL201"]

    def test_fires_on_exclusion_of_nonexistent_field(self, lint_fixture):
        report = lint_fixture(
            "repro/common/config.py",
            """
            from dataclasses import asdict, dataclass

            @dataclass
            class SystemConfig:
                core: int = 0
                guardrails: int = 0

            FINGERPRINT_EXCLUDED_FIELDS = frozenset({"guardrails", "bogus"})

            def config_fingerprint(config):
                payload = asdict(config)
                payload.pop("guardrails", None)
                payload.pop("bogus", None)
                return str(payload)
            """,
            select=["RPL201"],
        )
        assert rule_ids(report) == ["RPL201"]
        assert "bogus" in report.findings[0].message

    def test_clean_when_pops_and_exclusions_agree(self, lint_fixture):
        report = lint_fixture(
            "repro/common/config.py",
            """
            from dataclasses import asdict

            FINGERPRINT_EXCLUDED_FIELDS = frozenset({"guardrails"})

            def config_fingerprint(config):
                payload = asdict(config)
                payload.pop("guardrails", None)
                return str(payload)
            """,
            select=["RPL201"],
        )
        assert report.ok

    def test_not_triggered_without_fingerprint_function(self, lint_fixture):
        report = lint_fixture(
            "repro/common/other.py",
            "def unrelated():\n    return 1\n",
            select=["RPL201"],
        )
        assert report.ok


class TestRPL301TypedErrors:
    def test_fires_on_builtin_raise(self, lint_fixture):
        report = lint_fixture(
            "repro/memory/cache.py",
            """
            def check(ways):
                if ways < 1:
                    raise ValueError("need ways")
            """,
            select=["RPL301"],
        )
        assert rule_ids(report) == ["RPL301"]

    def test_clean_on_repro_error_subclass(self, lint_fixture):
        report = lint_fixture(
            "repro/memory/cache.py",
            """
            from repro.common.errors import ConfigError

            def check(ways):
                if ways < 1:
                    raise ConfigError("need ways")
            """,
            select=["RPL301"],
        )
        assert report.ok

    def test_clean_on_local_subclass_and_reraise(self, lint_fixture):
        report = lint_fixture(
            "repro/memory/cache.py",
            """
            from repro.common.errors import ReproError

            class CacheError(ReproError):
                pass

            def check(ways):
                try:
                    if ways < 1:
                        raise CacheError("need ways")
                except CacheError:
                    raise
            """,
            select=["RPL301"],
        )
        assert report.ok


class TestRPL401Layering:
    def test_fires_on_scheme_importing_pipeline(self, lint_fixture):
        report = lint_fixture(
            "repro/schemes/sneaky.py",
            "from repro.pipeline.uop import MicroOp\n",
            select=["RPL401"],
        )
        assert rule_ids(report) == ["RPL401"]

    def test_fires_on_memory_importing_pipeline(self, lint_fixture):
        report = lint_fixture(
            "repro/memory/driver.py",
            "from repro.pipeline.core import Core\n",
            select=["RPL401"],
        )
        assert rule_ids(report) == ["RPL401"]

    def test_fires_on_core_importing_guardrails(self, lint_fixture):
        report = lint_fixture(
            "repro/pipeline/core2.py",
            "from repro.guardrails.watchdog import Watchdog\n",
            select=["RPL401"],
        )
        assert rule_ids(report) == ["RPL401"]

    def test_schemes_base_is_exempt(self, lint_fixture):
        report = lint_fixture(
            "repro/schemes/base.py",
            "from repro.pipeline.uop import MicroOp\n",
            select=["RPL401"],
        )
        assert report.ok

    def test_type_checking_imports_are_exempt(self, lint_fixture):
        report = lint_fixture(
            "repro/schemes/typed.py",
            """
            from typing import TYPE_CHECKING

            if TYPE_CHECKING:
                from repro.pipeline.core import Core
            """,
            select=["RPL401"],
        )
        assert report.ok


class TestRPL501PicklableSubmit:
    def test_fires_on_lambda_submit(self, lint_fixture):
        report = lint_fixture(
            "repro/harness/pool.py",
            """
            from concurrent.futures import ProcessPoolExecutor

            def sweep(jobs):
                with ProcessPoolExecutor() as pool:
                    return pool.submit(lambda: 1).result()
            """,
            select=["RPL501"],
        )
        assert rule_ids(report) == ["RPL501"]

    def test_fires_on_nested_function_submit(self, lint_fixture):
        report = lint_fixture(
            "repro/harness/pool.py",
            """
            from concurrent.futures import ProcessPoolExecutor

            def sweep(jobs):
                def work(job):
                    return job
                with ProcessPoolExecutor() as pool:
                    return pool.submit(work, jobs[0]).result()
            """,
            select=["RPL501"],
        )
        assert rule_ids(report) == ["RPL501"]

    def test_fires_on_bound_method_submit(self, lint_fixture):
        report = lint_fixture(
            "repro/harness/pool.py",
            """
            from concurrent.futures import ProcessPoolExecutor

            class Runner:
                def work(self, job):
                    return job

                def sweep(self, jobs):
                    with ProcessPoolExecutor() as pool:
                        return pool.submit(self.work, jobs[0]).result()
            """,
            select=["RPL501"],
        )
        assert rule_ids(report) == ["RPL501"]

    def test_clean_on_module_level_worker(self, lint_fixture):
        report = lint_fixture(
            "repro/harness/pool.py",
            """
            from concurrent.futures import ProcessPoolExecutor

            def work(job):
                return job

            def sweep(jobs):
                with ProcessPoolExecutor() as pool:
                    return pool.submit(work, jobs[0]).result()
            """,
            select=["RPL501"],
        )
        assert report.ok

    def test_inactive_without_process_pool(self, lint_fixture):
        report = lint_fixture(
            "repro/harness/pool.py",
            """
            from concurrent.futures import ThreadPoolExecutor

            def sweep(jobs):
                with ThreadPoolExecutor() as pool:
                    return pool.submit(lambda: 1).result()
            """,
            select=["RPL501"],
        )
        assert report.ok


class TestRPL502WorkerGlobalMutation:
    _PREAMBLE = """
        from concurrent.futures import ProcessPoolExecutor

        _CACHE = {}

        def sweep(jobs):
            with ProcessPoolExecutor() as pool:
                return [pool.submit(work, job).result() for job in jobs]
    """

    def test_fires_on_subscript_write(self, lint_fixture):
        report = lint_fixture(
            "repro/harness/pool.py",
            self._PREAMBLE
            + """
        def work(job):
            _CACHE[job] = 1
            return job
            """,
            select=["RPL502"],
        )
        assert rule_ids(report) == ["RPL502"]

    def test_fires_on_global_statement(self, lint_fixture):
        report = lint_fixture(
            "repro/harness/pool.py",
            self._PREAMBLE
            + """
        def work(job):
            global _CACHE
            _CACHE = {}
            return job
            """,
            select=["RPL502"],
        )
        assert "RPL502" in rule_ids(report)

    def test_fires_on_mutator_call(self, lint_fixture):
        report = lint_fixture(
            "repro/harness/pool.py",
            self._PREAMBLE
            + """
        def work(job):
            _CACHE.update({job: 1})
            return job
            """,
            select=["RPL502"],
        )
        assert rule_ids(report) == ["RPL502"]

    def test_clean_on_pure_worker(self, lint_fixture):
        report = lint_fixture(
            "repro/harness/pool.py",
            self._PREAMBLE
            + """
        def work(job):
            local = {}
            local[job] = 1
            return job
            """,
            select=["RPL502"],
        )
        assert report.ok


class TestRPL601MutableDefault:
    def test_fires_on_list_default(self, lint_fixture):
        report = lint_fixture(
            "repro/harness/collect.py",
            "def gather(item, acc=[]):\n    acc.append(item)\n    return acc\n",
            select=["RPL601"],
        )
        assert rule_ids(report) == ["RPL601"]

    def test_fires_on_dict_call_default(self, lint_fixture):
        report = lint_fixture(
            "repro/harness/collect.py",
            "def gather(item, acc=dict()):\n    return acc\n",
            select=["RPL601"],
        )
        assert rule_ids(report) == ["RPL601"]

    def test_clean_on_none_default(self, lint_fixture):
        report = lint_fixture(
            "repro/harness/collect.py",
            """
            def gather(item, acc=None):
                if acc is None:
                    acc = []
                acc.append(item)
                return acc
            """,
            select=["RPL601"],
        )
        assert report.ok


class TestRPL602UnregisteredStat:
    _STATS = """
        from dataclasses import dataclass

        @dataclass
        class SimStats:
            cycles: int = 0
            l1_hits: int = 0
    """

    def test_fires_on_typoed_counter(self, lint_fixture):
        report = lint_fixture(
            "repro/pipeline/count.py",
            self._STATS
            + """
        class Core:
            def step(self):
                self.stats.l1_hitz += 1
            """,
            select=["RPL602"],
        )
        assert rule_ids(report) == ["RPL602"]
        assert "l1_hitz" in report.findings[0].message

    def test_clean_on_declared_counter(self, lint_fixture):
        report = lint_fixture(
            "repro/pipeline/count.py",
            self._STATS
            + """
        class Core:
            def step(self):
                self.stats.l1_hits += 1
            """,
            select=["RPL602"],
        )
        assert report.ok

    def test_uses_live_simstats_without_local_class(self, lint_fixture):
        report = lint_fixture(
            "repro/pipeline/count.py",
            """
            class Core:
                def step(self):
                    self.stats.committed_instructions += 1
                    self.stats.committed_instructionz += 1
            """,
            select=["RPL602"],
        )
        assert rule_ids(report) == ["RPL602"]
        assert "committed_instructionz" in report.findings[0].message


class TestRPL801NonAtomicJsonWrite:
    def test_fires_on_open_plus_json_dump(self, lint_fixture):
        report = lint_fixture(
            "repro/harness/manifest.py",
            """
            import json

            def write(path, payload):
                with open(path, "w") as handle:
                    json.dump(payload, handle)
            """,
            select=["RPL801"],
        )
        assert rule_ids(report) == ["RPL801"]
        assert "atomic_write_json" in report.findings[0].message

    def test_fires_on_write_text_of_dumps(self, lint_fixture):
        report = lint_fixture(
            "repro/fuzz/repro_files.py",
            """
            import json

            def save(path, payload):
                path.write_text(json.dumps(payload, indent=2))
            """,
            select=["RPL801"],
        )
        assert rule_ids(report) == ["RPL801"]

    def test_clean_with_temp_and_os_replace(self, lint_fixture):
        report = lint_fixture(
            "repro/guardrails/dumps.py",
            """
            import json
            import os

            def write(path, payload):
                tmp = str(path) + ".tmp"
                with open(tmp, "w") as handle:
                    json.dump(payload, handle)
                os.replace(tmp, path)
            """,
            select=["RPL801"],
        )
        assert report.ok

    def test_clean_with_path_replace(self, lint_fixture):
        report = lint_fixture(
            "repro/harness/manifest.py",
            """
            import json

            def write(path, tmp, payload):
                tmp.write_text(json.dumps(payload))
                tmp.replace(path)
            """,
            select=["RPL801"],
        )
        assert report.ok

    def test_str_replace_is_not_an_exemption(self, lint_fixture):
        report = lint_fixture(
            "repro/harness/manifest.py",
            """
            import json

            def write(path, payload):
                name = str(path).replace(".json", ".out")
                with open(name, "w") as handle:
                    json.dump(payload, handle)
            """,
            select=["RPL801"],
        )
        assert rule_ids(report) == ["RPL801"]

    def test_scoped_to_persistent_packages(self, lint_fixture):
        report = lint_fixture(
            "repro/analysis/export.py",
            """
            import json

            def write(path, payload):
                with open(path, "w") as handle:
                    json.dump(payload, handle)
            """,
            select=["RPL801"],
        )
        assert report.ok

    def test_rename_in_another_function_does_not_excuse(self, lint_fixture):
        report = lint_fixture(
            "repro/harness/manifest.py",
            """
            import json
            import os

            def atomic(path, tmp):
                os.replace(tmp, path)

            def sloppy(path, payload):
                with open(path, "w") as handle:
                    json.dump(payload, handle)
            """,
            select=["RPL801"],
        )
        assert rule_ids(report) == ["RPL801"]


class TestRPL901SpecflowPolicyDeclared:
    def test_fires_on_scheme_without_policy(self, lint_fixture):
        report = lint_fixture(
            "repro/schemes/fancy.py",
            """
            from repro.schemes.base import Scheme

            class FancyScheme(Scheme):
                name = "fancy"
            """,
            select=["RPL901"],
        )
        assert rule_ids(report) == ["RPL901"]

    def test_fires_on_unknown_policy_key(self, lint_fixture):
        report = lint_fixture(
            "repro/schemes/fancy.py",
            """
            class FancyScheme:
                name = "fancy"
                specflow_policy = "retpoline"
            """,
            select=["RPL901"],
        )
        assert rule_ids(report) == ["RPL901"]

    def test_fires_on_non_literal_policy(self, lint_fixture):
        report = lint_fixture(
            "repro/schemes/fancy.py",
            """
            KEY = "nda"

            class FancyScheme:
                name = "fancy"
                specflow_policy = KEY
            """,
            select=["RPL901"],
        )
        assert rule_ids(report) == ["RPL901"]

    def test_clean_with_declared_policy(self, lint_fixture):
        report = lint_fixture(
            "repro/schemes/fancy.py",
            """
            class FancyScheme:
                name = "fancy"
                specflow_policy = "nda"
            """,
            select=["RPL901"],
        )
        assert report.ok

    def test_clean_with_explicit_opt_out(self, lint_fixture):
        report = lint_fixture(
            "repro/schemes/fancy.py",
            """
            class FancyScheme:
                name = "fancy"
                specflow_opt_out = True
            """,
            select=["RPL901"],
        )
        assert report.ok

    def test_clean_outside_scheme_scopes(self, lint_fixture):
        report = lint_fixture(
            "repro/harness/jobs.py",
            """
            class Job:
                name = "sweep"
            """,
            select=["RPL901"],
        )
        assert report.ok

    def test_variants_module_is_in_scope(self, lint_fixture):
        report = lint_fixture(
            "repro/attacks/variants.py",
            """
            class WeakDoM:
                name = "dom-weak"
            """,
            select=["RPL901"],
        )
        assert rule_ids(report) == ["RPL901"]

    def test_non_scheme_class_in_scope_is_ignored(self, lint_fixture):
        report = lint_fixture(
            "repro/schemes/helpers.py",
            """
            class ShadowBookkeeping:
                capacity = 32
            """,
            select=["RPL901"],
        )
        assert report.ok
