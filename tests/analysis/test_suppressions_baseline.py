"""Suppression comments and baseline round-trip mechanics."""

import textwrap

from repro.analysis.baseline import Baseline, BaselineEntry, write_baseline
from repro.analysis.engine import LintRunner
from repro.analysis.suppressions import suppressed_ids


class TestInlineSuppression:
    def test_named_noqa_suppresses_only_that_rule(self, lint_fixture):
        report = lint_fixture(
            "repro/pipeline/clock.py",
            "import random  # repro: noqa[RPL101]\n",
        )
        assert report.ok
        assert [f.rule for f in report.suppressed] == ["RPL101"]

    def test_wrong_id_does_not_suppress(self, lint_fixture):
        report = lint_fixture(
            "repro/pipeline/clock.py",
            "import random  # repro: noqa[RPL999]\n",
        )
        assert [f.rule for f in report.findings] == ["RPL101"]

    def test_blanket_noqa_suppresses_everything(self, lint_fixture):
        report = lint_fixture(
            "repro/pipeline/clock.py",
            "import random  # repro: noqa\n",
        )
        assert report.ok
        assert [f.rule for f in report.suppressed] == ["RPL101"]

    def test_marker_parsing(self):
        assert suppressed_ids("x = 1  # repro: noqa[RPL101]") == {"RPL101"}
        assert suppressed_ids("x = 1  # repro: noqa[rpl101, RPL102]") == {
            "RPL101",
            "RPL102",
        }
        assert suppressed_ids("x = 1  # plain comment") is None
        blanket = suppressed_ids("x = 1  # repro: noqa")
        assert "*" in blanket


class TestBaselineRoundTrip:
    def _write_violation(self, tmp_path):
        file = tmp_path / "repro" / "pipeline" / "clock.py"
        file.parent.mkdir(parents=True, exist_ok=True)
        file.write_text("import random\n")
        return file

    def test_round_trip(self, tmp_path):
        file = self._write_violation(tmp_path)
        first = LintRunner(select=["RPL101"]).run([str(file)])
        assert not first.ok

        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, first.all_findings(), Baseline())
        loaded = Baseline.load(baseline_path)
        assert len(loaded.entries) == 1
        assert loaded.entries[0].justification == "TODO: justify"

        second = LintRunner(select=["RPL101"], baseline=loaded).run([str(file)])
        assert second.ok
        assert [f.rule for f in second.baselined] == ["RPL101"]
        assert second.stale_baseline == []

    def test_rewrite_keeps_existing_justifications(self, tmp_path):
        file = self._write_violation(tmp_path)
        report = LintRunner(select=["RPL101"]).run([str(file)])
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, report.all_findings(), Baseline())
        justified = Baseline.load(baseline_path)
        entry = justified.entries[0]
        justified.entries[0] = BaselineEntry(
            rule=entry.rule,
            path=entry.path,
            message=entry.message,
            justification="kept on purpose",
        )
        write_baseline(baseline_path, report.all_findings(), justified)
        assert (
            Baseline.load(baseline_path).entries[0].justification
            == "kept on purpose"
        )

    def test_stale_entries_are_reported(self, tmp_path):
        file = tmp_path / "repro" / "pipeline" / "clean.py"
        file.parent.mkdir(parents=True, exist_ok=True)
        file.write_text("def f():\n    return 1\n")
        stale = Baseline(
            entries=[
                BaselineEntry(
                    rule="RPL101",
                    path="repro/pipeline/clean.py",
                    message="long gone",
                    justification="obsolete",
                )
            ],
            source="test",
        )
        report = LintRunner(baseline=stale).run([str(file)])
        assert report.ok
        assert [entry.message for entry in report.stale_baseline] == ["long gone"]

    def test_baseline_matches_by_path_suffix(self, tmp_path):
        file = self._write_violation(tmp_path)
        report = LintRunner(select=["RPL101"]).run([str(file)])
        # Entry path is anchored at repro/, not the tmp invocation dir.
        entry = BaselineEntry(
            rule="RPL101",
            path="repro/pipeline/clock.py",
            message=report.findings[0].message,
            justification="test",
        )
        again = LintRunner(
            select=["RPL101"], baseline=Baseline(entries=[entry])
        ).run([str(file)])
        assert again.ok


class TestReporters:
    def test_text_report_lists_findings_and_summary(self, lint_fixture):
        report = lint_fixture("repro/pipeline/clock.py", "import random\n")
        from repro.analysis.reporters import render_text

        text = render_text(report)
        assert "RPL101" in text
        assert "repro/pipeline/clock.py" in text
        assert "1 finding(s)" in text

    def test_json_report_shape(self, lint_fixture):
        import json

        report = lint_fixture("repro/pipeline/clock.py", "import random\n")
        from repro.analysis.reporters import render_json

        payload = json.loads(render_json(report))
        assert payload["ok"] is False
        assert payload["findings"][0]["rule"] == "RPL101"
        assert payload["files_scanned"] == 1
