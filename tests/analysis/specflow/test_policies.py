"""Declarative scheme policy models."""

import pytest

from repro.analysis.specflow.model import (
    KIND_ARCH,
    KIND_PRE,
    KIND_SPEC,
    Transmitter,
    TaintFact,
)
from repro.analysis.specflow.policies import (
    POLICY_KEYS,
    STANDARD_SCHEME_LABELS,
    TRANSMIT_BRANCH,
    TRANSMIT_LOAD,
    policy_for,
    surviving_facts,
)
from repro.attacks.corpus import CORPUS_SCHEME_LABELS, scheme_factory
from repro.common.errors import ConfigError


def transmitter(kind=TRANSMIT_LOAD, *fact_kinds):
    facts = tuple(
        TaintFact(source_pc=10 + i, kind=k, path=(10 + i,))
        for i, k in enumerate(fact_kinds)
    )
    return Transmitter(pc=5, kind=kind, window_pc=1, facts=facts)


class TestPolicyFor:
    def test_label_with_ap_suffix(self):
        policy = policy_for("nda+ap")
        assert policy.blocks_spec_taint and policy.ap_observable

    def test_every_standard_label_resolves(self):
        for label in STANDARD_SCHEME_LABELS:
            assert policy_for(label).name == label

    def test_corpus_labels_are_the_standard_labels(self):
        assert tuple(CORPUS_SCHEME_LABELS) == tuple(STANDARD_SCHEME_LABELS)

    def test_scheme_instance_resolves_from_declared_policy(self):
        scheme = scheme_factory("dom+ap")
        policy = policy_for(scheme)
        assert policy.name == "dom+ap"
        assert policy.invisible_speculation and policy.inorder_branches

    def test_unknown_label_is_a_config_error(self):
        with pytest.raises(ConfigError):
            policy_for("retpoline")

    def test_opt_out_instance_is_a_config_error(self):
        class OptedOut:
            name = "mystery"
            specflow_opt_out = True
            address_prediction = False

        with pytest.raises(ConfigError):
            policy_for(OptedOut())

    def test_undeclared_instance_is_a_config_error(self):
        class Undeclared:
            name = "mystery"
            address_prediction = False

        with pytest.raises(ConfigError):
            policy_for(Undeclared())

    def test_policy_keys_cover_every_scheme_declaration(self):
        for label in ("unsafe", "nda", "stt", "dom", "dom+vp"):
            scheme = scheme_factory(label)
            assert scheme.specflow_policy in POLICY_KEYS


class TestSurvivingFacts:
    def test_unsafe_keeps_everything(self):
        t = transmitter(TRANSMIT_LOAD, KIND_ARCH, KIND_PRE, KIND_SPEC)
        assert len(surviving_facts(policy_for("unsafe"), t)) == 3

    def test_nda_blocks_spec_but_not_pre(self):
        policy = policy_for("nda")
        spec_only = transmitter(TRANSMIT_LOAD, KIND_SPEC)
        assert surviving_facts(policy, spec_only) == ()
        mixed = transmitter(TRANSMIT_LOAD, KIND_PRE, KIND_SPEC)
        assert [f.kind for f in surviving_facts(policy, mixed)] == [KIND_PRE]

    def test_dom_hides_load_transmitters(self):
        t = transmitter(TRANSMIT_LOAD, KIND_ARCH, KIND_PRE, KIND_SPEC)
        assert surviving_facts(policy_for("dom"), t) == ()

    def test_dom_ap_exposes_branch_transmitters(self):
        t = transmitter(TRANSMIT_BRANCH, KIND_PRE)
        # Plain DoM keeps transient work invisible...
        assert surviving_facts(policy_for("dom"), t) == ()
        # ...but under AP the branch resolves in order, so the implicit
        # branch channel is closed for a *different* reason: still safe.
        assert surviving_facts(policy_for("dom+ap"), t) == ()

    def test_insecure_branch_variant_leaks_branch_channel_under_ap(self):
        t = transmitter(TRANSMIT_BRANCH, KIND_PRE)
        assert surviving_facts(policy_for("dom-insecure-branches+ap"), t)

    def test_insecure_reissue_variant_leaks_load_channel_under_ap(self):
        t = transmitter(TRANSMIT_LOAD, KIND_PRE)
        assert surviving_facts(policy_for("dom-insecure-reissue+ap"), t)
        # The same transmitter is invisible under the correct DoM+AP.
        assert surviving_facts(policy_for("dom+ap"), t) == ()
