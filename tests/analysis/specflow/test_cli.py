"""``repro specflow`` CLI contract: output shapes and exit codes."""

import json

from repro.cli import main


class TestExitCodes:
    def test_clean_static_only_run_exits_zero(self, capsys):
        assert main(["specflow", "--static-only", "--fuzz-seeds", "0"]) == 0
        out = capsys.readouterr().out
        assert "spectre_v1" in out
        assert "0 disagreement(s)" in out

    def test_unknown_gadget_is_a_usage_error(self, capsys):
        assert main(["specflow", "--gadget", "nope"]) == 2
        assert "usage error" in capsys.readouterr().err

    def test_unknown_scheme_is_a_usage_error(self, capsys):
        assert main(["specflow", "--schemes", "unsafe,warp-drive"]) == 2
        assert "warp-drive" in capsys.readouterr().err

    def test_negative_fuzz_seeds_is_a_usage_error(self, capsys):
        assert main(["specflow", "--fuzz-seeds", "-1"]) == 2
        assert "usage error" in capsys.readouterr().err


class TestOutputs:
    def test_list_gadgets(self, capsys):
        assert main(["specflow", "--list-gadgets"]) == 0
        out = capsys.readouterr().out
        assert "spectre_v1" in out
        assert "store_forward_probe" in out

    def test_json_format_is_machine_readable(self, capsys):
        assert main([
            "specflow", "--static-only", "--fuzz-seeds", "0",
            "--gadget", "spectre_v1", "--schemes", "unsafe,dom+ap",
            "--format", "json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["corpus_cells"] == 2
        verdicts = payload["programs"][0]["verdicts"]
        assert verdicts["unsafe"]["verdict"] == "leak-possible"
        assert verdicts["dom+ap"]["verdict"] == "safe"

    def test_json_file_written_alongside_text(self, capsys, tmp_path):
        out_path = tmp_path / "specflow.json"
        assert main([
            "specflow", "--static-only", "--fuzz-seeds", "0",
            "--gadget", "spectre_v1", "--json", str(out_path),
        ]) == 0
        payload = json.loads(out_path.read_text())
        assert payload["ok"] is True

    def test_leak_path_rendered_for_leaking_scheme(self, capsys):
        assert main([
            "specflow", "--static-only", "--fuzz-seeds", "0",
            "--gadget", "spectre_v1", "--schemes", "unsafe",
        ]) == 0
        out = capsys.readouterr().out
        assert "transmitter @pc" in out
        assert "speculation window" in out


class TestDynamicCut:
    def test_one_cell_with_dynamics_runs_clean(self, capsys):
        assert main([
            "specflow", "--fuzz-seeds", "0",
            "--gadget", "store_forward_probe", "--schemes", "unsafe",
        ]) == 0
        assert "1 cell(s) checked" in capsys.readouterr().out
